#include "reliability/calibration.hh"

#include <algorithm>
#include <cmath>

#include "reliability/lifetime.hh"
#include "util/logging.hh"

namespace imsim {
namespace reliability {

Years
lifetimeWith(const ModelConstants &c, const StressCondition &cond)
{
    util::fatalIf(cond.tMin > cond.tjMax,
                  "lifetimeWith: cycle minimum above Tj max");
    // Gate oxide with the parameterised quadratic (clamped at its
    // vertex, as in the shipped model).
    const double vertex = -c.oxideTempA / (2.0 * c.oxideTempC);
    const double dt = std::max(cond.tjMax - constants::kTjRef, vertex);
    const double ox =
        c.oxideA *
        std::exp(c.oxideGamma * (cond.voltage - constants::kVRef)) *
        std::exp(c.oxideTempA * dt + c.oxideTempC * dt * dt);

    const double j =
        (cond.voltage / constants::kVRef) * cond.freqRatio;
    const Kelvin t = units::toKelvin(cond.tjMax);
    const Kelvin tref = units::toKelvin(constants::kTjRef);
    const double em =
        c.emA * std::pow(j, constants::kEmN) *
        std::exp(c.emEa / units::kBoltzmannEv * (1.0 / tref - 1.0 / t));

    const double swing = cond.swing();
    const double tc =
        swing > 0.0
            ? c.tcA * std::pow(swing / constants::kSwingRef, c.tcQ)
            : 0.0;

    const double total = ox + em + tc;
    util::panicIf(total <= 0.0, "lifetimeWith: non-positive rate");
    return 1.0 / total;
}

std::vector<LifetimeAnchor>
tableVAnchors()
{
    std::size_t count = 0;
    const auto *scenarios = tableVScenarios(count);
    std::vector<LifetimeAnchor> anchors;
    anchors.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        LifetimeAnchor anchor;
        anchor.condition = scenarios[i].condition;
        anchor.lowerBound = false;
        anchor.upperBound = false;
        // Table V's published values per row.
        const bool air = std::string(scenarios[i].cooling) ==
                         "Air cooling";
        if (!scenarios[i].overclocked && air) {
            anchor.target = 5.0;
        } else if (scenarios[i].overclocked && air) {
            anchor.target = 1.0;
            anchor.upperBound = true; // "< 1 year".
        } else if (!scenarios[i].overclocked) {
            anchor.target = 10.0;
            anchor.lowerBound = true; // "> 10 years".
        } else if (std::string(scenarios[i].cooling) == "FC-3284") {
            anchor.target = 4.0;
        } else {
            anchor.target = 5.0; // HFE-7000 overclocked.
        }
        anchors.push_back(anchor);
    }
    return anchors;
}

double
calibrationLoss(const ModelConstants &c,
                const std::vector<LifetimeAnchor> &anchors)
{
    util::fatalIf(anchors.empty(), "calibrationLoss: no anchors");
    double loss = 0.0;
    for (const auto &anchor : anchors) {
        const Years life = lifetimeWith(c, anchor.condition);
        const double err = std::log(life / anchor.target);
        if (anchor.lowerBound && err >= 0.0)
            continue;
        if (anchor.upperBound && err <= 0.0)
            continue;
        loss += err * err;
    }
    return loss;
}

ModelConstants
fitConstants(const ModelConstants &initial,
             const std::vector<LifetimeAnchor> &anchors, int rounds)
{
    util::fatalIf(rounds <= 0, "fitConstants: rounds must be positive");
    ModelConstants best = initial;
    double best_loss = calibrationLoss(best, anchors);

    // The tunable coordinates (exponents tcQ/emN held at physics-book
    // values; the vendor fits magnitudes and accelerations).
    const auto coordinates = {
        &ModelConstants::oxideA, &ModelConstants::oxideGamma,
        &ModelConstants::oxideTempA, &ModelConstants::oxideTempC,
        &ModelConstants::emA, &ModelConstants::emEa,
        &ModelConstants::tcA,
    };

    double step = 0.10; // Multiplicative perturbation.
    for (int round = 0; round < rounds; ++round) {
        bool improved = false;
        for (auto member : coordinates) {
            for (double direction : {1.0 + step, 1.0 / (1.0 + step)}) {
                ModelConstants trial = best;
                trial.*member *= direction;
                const double loss = calibrationLoss(trial, anchors);
                if (loss < best_loss - 1e-15) {
                    best = trial;
                    best_loss = loss;
                    improved = true;
                }
            }
        }
        if (!improved)
            step *= 0.5;
        if (step < 1e-4)
            break;
    }
    return best;
}

} // namespace reliability
} // namespace imsim
