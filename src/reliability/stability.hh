/**
 * @file
 * Computational-stability model (Sec. IV "Computational stability").
 *
 * Excessive overclocking induces bitflips (correctable by ECC, or silent)
 * and ungraceful crashes when voltage/frequency are pushed too far. The
 * model expresses both as rates driven by the *voltage margin* at the
 * operating point: the supplied voltage minus the V-f curve's required
 * voltage. Calibration reproduces the paper's 6-month campaign: ~zero
 * correctable errors on small tank #1, 56 CPU cache errors on small tank
 * #2, no silent errors, and crashes only under excessive settings.
 */

#ifndef IMSIM_RELIABILITY_STABILITY_HH
#define IMSIM_RELIABILITY_STABILITY_HH

#include <cstdint>
#include <deque>
#include <utility>

#include "util/random.hh"
#include "util/units.hh"

namespace imsim {
namespace reliability {

/**
 * Margin-driven error/crash rate model for one part.
 */
class StabilityModel
{
  public:
    /**
     * @param quality  Part quality factor: base correctable-error rate at
     *                 zero margin [errors/hour]. Tank #1's chip ~0.02,
     *                 tank #2's chip ~1.9 (calibrated to the paper's
     *                 six-month counts at the +50 mV offset).
     */
    explicit StabilityModel(double quality = 1.9);

    /**
     * Correctable-error rate at the given voltage margin.
     * @param margin_mv Voltage margin [mV] (can be negative).
     * @return errors per hour.
     */
    double correctableErrorRate(double margin_mv) const;

    /**
     * Crash rate at the given voltage margin; negligible above ~+20 mV,
     * near-certain within the hour below 0 mV.
     * @return crashes per hour.
     */
    double crashRate(double margin_mv) const;

    /**
     * Silent-error (undetected bitflip) rate: ECC catches almost all
     * margin-induced flips, so this is a small fraction of the
     * correctable rate.
     */
    double silentErrorRate(double margin_mv) const;

    /** Sample correctable-error count for @p hours at @p margin_mv. */
    std::int64_t sampleErrors(util::Rng &rng, double hours,
                              double margin_mv) const;

    /** Sample whether the machine crashes within @p hours. */
    bool sampleCrash(util::Rng &rng, double hours, double margin_mv) const;

    /** Part on small tank #1 (saw no errors in 6 months). */
    static StabilityModel tank1Part() { return StabilityModel(0.02); }

    /** Part on small tank #2 (saw 56 cache errors in 6 months). */
    static StabilityModel tank2Part() { return StabilityModel(1.9); }

  private:
    double quality;
};

/**
 * Watchdog over the correctable-error counter, as the paper proposes:
 * "overclocking ... can be accomplished, for example, by monitoring the
 * rate of change in correctable errors". Trips when the error rate over
 * the trailing window exceeds a threshold, signalling the control plane
 * to back off frequency.
 */
class ErrorRateWatchdog
{
  public:
    /**
     * @param window_s          Trailing window [s].
     * @param trip_errors_per_h Error-rate threshold [errors/hour].
     */
    explicit ErrorRateWatchdog(Seconds window_s = 3600.0,
                               double trip_errors_per_h = 10.0);

    /** Record the cumulative correctable-error counter at time @p t. */
    void record(Seconds t, std::int64_t cumulative_errors);

    /** @return trailing-window error rate [errors/hour]. */
    double ratePerHour(Seconds now) const;

    /** @return whether the watchdog recommends backing off. */
    bool tripped(Seconds now) const;

  private:
    Seconds windowLen;
    double tripThreshold;
    std::deque<std::pair<Seconds, std::int64_t>> history;
};

} // namespace reliability
} // namespace imsim

#endif // IMSIM_RELIABILITY_STABILITY_HH
