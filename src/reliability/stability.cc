#include "reliability/stability.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace reliability {

namespace {

/** Exponential margin scale of correctable errors [mV]. */
constexpr double kErrorMarginScale = 10.0;

/** Crash-rate parameters: rate = exp(-(margin + offset)/scale) [1/h]. */
constexpr double kCrashMarginOffset = 10.0;
constexpr double kCrashMarginScale = 4.0;

/** Fraction of margin-induced flips that escape ECC. */
constexpr double kSilentFraction = 1e-4;

} // namespace

StabilityModel::StabilityModel(double quality_factor) : quality(quality_factor)
{
    util::fatalIf(quality_factor < 0.0,
                  "StabilityModel: quality factor must be non-negative");
}

double
StabilityModel::correctableErrorRate(double margin_mv) const
{
    // quality is the rate at zero margin; each kErrorMarginScale mV of
    // margin buys e-fold fewer errors. Calibration: tank #2 at the paper's
    // +50 mV offset logged 56 errors in ~6 months (4383 h):
    // 1.9/h * exp(-50/10) * 4383 h ~= 56.
    return quality * std::exp(-margin_mv / kErrorMarginScale);
}

double
StabilityModel::crashRate(double margin_mv) const
{
    return std::exp(-(margin_mv + kCrashMarginOffset) / kCrashMarginScale);
}

double
StabilityModel::silentErrorRate(double margin_mv) const
{
    return kSilentFraction * correctableErrorRate(margin_mv);
}

std::int64_t
StabilityModel::sampleErrors(util::Rng &rng, double hours,
                             double margin_mv) const
{
    util::fatalIf(hours < 0.0, "sampleErrors: negative duration");
    const double mean = correctableErrorRate(margin_mv) * hours;
    // Poisson sampling becomes expensive and unnecessary for very large
    // means; use a normal approximation there.
    if (mean > 1e6) {
        const double draw = rng.normal(mean, std::sqrt(mean));
        return static_cast<std::int64_t>(std::max(0.0, draw));
    }
    return rng.poisson(mean);
}

bool
StabilityModel::sampleCrash(util::Rng &rng, double hours,
                            double margin_mv) const
{
    util::fatalIf(hours < 0.0, "sampleCrash: negative duration");
    const double p = 1.0 - std::exp(-crashRate(margin_mv) * hours);
    return rng.bernoulli(p);
}

ErrorRateWatchdog::ErrorRateWatchdog(Seconds window_s,
                                     double trip_errors_per_h)
    : windowLen(window_s), tripThreshold(trip_errors_per_h)
{
    util::fatalIf(window_s <= 0.0, "ErrorRateWatchdog: window must be > 0");
    util::fatalIf(trip_errors_per_h <= 0.0,
                  "ErrorRateWatchdog: threshold must be > 0");
}

void
ErrorRateWatchdog::record(Seconds t, std::int64_t cumulative_errors)
{
    util::fatalIf(!history.empty() && t < history.back().first,
                  "ErrorRateWatchdog::record: time went backwards");
    util::fatalIf(!history.empty() &&
                      cumulative_errors < history.back().second,
                  "ErrorRateWatchdog::record: counter went backwards");
    history.emplace_back(t, cumulative_errors);
}

double
ErrorRateWatchdog::ratePerHour(Seconds now) const
{
    if (history.size() < 2)
        return 0.0;
    const Seconds start = now - windowLen;
    // Find the earliest sample inside (or straddling) the window.
    std::size_t first = 0;
    while (first + 1 < history.size() && history[first + 1].first <= start)
        ++first;
    const auto &[t0, c0] = history[first];
    const auto &[t1, c1] = history.back();
    if (t1 <= t0)
        return 0.0;
    const double errors = static_cast<double>(c1 - c0);
    const double hours = (t1 - t0) / units::kSecondsPerHour;
    return errors / hours;
}

bool
ErrorRateWatchdog::tripped(Seconds now) const
{
    return ratePerHour(now) > tripThreshold;
}

} // namespace reliability
} // namespace imsim
