/**
 * @file
 * The three lifetime-degradation mechanisms of Table IV, each exposed as a
 * failure-rate contribution [1/years] as a function of its operational
 * parameters:
 *
 *  - Gate-oxide breakdown: depends on junction temperature and voltage
 *    (non-Arrhenius temperature acceleration, per the paper's refs [19],
 *    [69]).
 *  - Electromigration: depends on junction temperature and current density
 *    (Black's law).
 *  - Thermal cycling: depends on the temperature swing (Coffin-Manson).
 *
 * The constants are calibrated so the composite model (lifetime.hh)
 * reproduces the six Table V anchors; see the per-constant notes.
 */

#ifndef IMSIM_RELIABILITY_MECHANISMS_HH
#define IMSIM_RELIABILITY_MECHANISMS_HH

#include "util/units.hh"

namespace imsim {
namespace reliability {

/** Operating stress applied to a processor. */
struct StressCondition
{
    Volts voltage = 0.90;      ///< Supply voltage [V].
    Celsius tjMax = 85.0;      ///< Peak junction temperature [C].
    Celsius tMin = 20.0;       ///< Cycle low temperature [C].
    double freqRatio = 1.0;    ///< f / all-core-turbo (current density).
    double dutyCycle = 1.0;    ///< Fraction of time under this stress.

    /** @return the thermal-cycle amplitude DTj [C]. */
    Celsius
    swing() const
    {
        return tjMax - tMin;
    }
};

/**
 * Gate-oxide breakdown failure rate [1/years].
 *
 * lambda = A * exp(gamma * (V - Vref)) * exp(a*dT + c*dT^2), with
 * dT = Tj - 85 C, clamped at the low-temperature vertex of the quadratic
 * (the voltage-driven breakdown floor). The quadratic term models the
 * stronger-than-Arrhenius acceleration observed at high temperature.
 */
double gateOxideRate(Volts voltage, Celsius tj);

/**
 * Electromigration failure rate [1/years] via Black's law:
 * lambda = A * J^2 * exp(Ea/k * (1/Tref - 1/Tj)), with the current density
 * ratio J = (V/Vref) * freq_ratio.
 */
double electromigrationRate(Volts voltage, Celsius tj, double freq_ratio);

/**
 * Thermal-cycling failure rate [1/years] via Coffin-Manson:
 * lambda = A * (DTj / DTref)^q.
 */
double thermalCyclingRate(Celsius swing);

/** Calibration constants, exposed for tests and documentation. */
namespace constants {

/** Reference voltage: the air-cooled nominal operating point [V]. */
inline constexpr double kVRef = 0.90;
/** Reference junction temperature: air-cooled nominal [C]. */
inline constexpr double kTjRef = 85.0;
/** Reference thermal swing: air-cooled nominal 20-85 C [C]. */
inline constexpr double kSwingRef = 65.0;

/** Gate oxide: base rate at the reference point [1/years]. */
inline constexpr double kOxideA = 0.17;
/** Gate oxide: voltage acceleration [1/V] (a 0.08 V step costs 2.1x). */
inline constexpr double kOxideGamma = 9.2737;
/** Gate oxide: linear temperature coefficient [1/C]. */
inline constexpr double kOxideTempA = 0.04698;
/** Gate oxide: quadratic (non-Arrhenius) temperature coefficient [1/C^2]. */
inline constexpr double kOxideTempC = 0.000863;

/** Electromigration: base rate at the reference point [1/years]. */
inline constexpr double kEmA = 0.01;
/** Electromigration: activation energy [eV]. */
inline constexpr double kEmEa = 0.9;
/** Electromigration: current-density exponent. */
inline constexpr double kEmN = 2.0;

/** Thermal cycling: base rate at the reference swing [1/years]. */
inline constexpr double kTcA = 0.02;
/** Thermal cycling: Coffin-Manson exponent. */
inline constexpr double kTcQ = 2.5;

} // namespace constants
} // namespace reliability
} // namespace imsim

#endif // IMSIM_RELIABILITY_MECHANISMS_HH
