#include "reliability/lifetime.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace reliability {

RateBreakdown
LifetimeModel::failureRate(const StressCondition &cond) const
{
    util::fatalIf(cond.tMin > cond.tjMax,
                  "failureRate: cycle minimum above Tj max");
    RateBreakdown out{};
    out.gateOxide = gateOxideRate(cond.voltage, cond.tjMax);
    out.electromigration =
        electromigrationRate(cond.voltage, cond.tjMax, cond.freqRatio);
    out.thermalCycling = thermalCyclingRate(cond.swing());
    out.total = out.gateOxide + out.electromigration + out.thermalCycling;
    return out;
}

Years
LifetimeModel::lifetime(const StressCondition &cond) const
{
    const RateBreakdown rates = failureRate(cond);
    util::panicIf(rates.total <= 0.0, "lifetime: non-positive failure rate");
    return 1.0 / rates.total;
}

double
LifetimeModel::wearFraction(const StressCondition &cond, Years duration) const
{
    util::fatalIf(duration < 0.0, "wearFraction: negative duration");
    util::fatalIf(cond.dutyCycle < 0.0 || cond.dutyCycle > 1.0,
                  "wearFraction: duty cycle out of [0,1]");
    const RateBreakdown rates = failureRate(cond);
    const double duty =
        std::max(cond.dutyCycle, LifetimeModel::kIdleWearFloor);
    const double active_rate =
        (rates.gateOxide + rates.electromigration) * duty;
    return (active_rate + rates.thermalCycling) * duration;
}

double
LifetimeModel::maxFrequencyRatioForLifetime(Celsius tj_nominal, Celsius tj_oc,
                                            Celsius t_min,
                                            Years target) const
{
    util::fatalIf(target <= 0.0, "maxFrequencyRatioForLifetime: bad target");
    const auto condition_at = [&](double ratio) {
        StressCondition cond;
        // Voltage and junction temperature track the frequency ratio
        // linearly between the (1.0, 0.90 V, tj_nominal) and
        // (1.23, 0.98 V, tj_oc) anchors of the paper's measured curve.
        const double t = (ratio - 1.0) / 0.23;
        cond.voltage = 0.90 + t * 0.08;
        cond.tjMax = tj_nominal + t * (tj_oc - tj_nominal);
        cond.tMin = t_min;
        cond.freqRatio = ratio;
        return cond;
    };

    if (lifetime(condition_at(1.0)) < target)
        return 1.0; // Even nominal misses the target; do not overclock.

    double lo = 1.0;
    double hi = 1.5; // Beyond +50 % nothing survives; ample bracket.
    if (lifetime(condition_at(hi)) >= target)
        return hi;
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (lifetime(condition_at(mid)) >= target)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

WearTracker::WearTracker(const LifetimeModel &lifetime_model,
                         Years design_life)
    : model(lifetime_model), designYears(design_life)
{
    util::fatalIf(design_life <= 0.0,
                  "WearTracker: design life must be positive");
}

void
WearTracker::accrue(const StressCondition &cond, Years duration)
{
    consumedFrac += model.wearFraction(cond, duration);
    serviceYears += duration;
}

double
WearTracker::credit() const
{
    // The design budget spends 1/designYears of life per year; credit is
    // the unspent fraction.
    return serviceYears / designYears - consumedFrac;
}

bool
WearTracker::canAfford(const StressCondition &cond, Years duration) const
{
    const double projected =
        consumedFrac + model.wearFraction(cond, duration);
    const Years at_age = serviceYears + duration;
    // Affordable when, after the proposed episode, consumed wear does not
    // exceed the design budget for the processor's age.
    return projected <= at_age / designYears + 1e-12;
}

const LifetimeScenario *
tableVScenarios(std::size_t &count)
{
    // Operating points from Table V. The paper reports DTj ranges whose
    // low end is the cooling medium temperature (air: 20 C ambient cycle
    // floor; FC-3284: 50 C; HFE-7000: 35 C).
    static const LifetimeScenario scenarios[] = {
        {"Air cooling", false, {0.90, 85.0, 20.0, 1.00, 1.0}},
        {"Air cooling", true, {0.98, 101.0, 20.0, 1.23, 1.0}},
        {"FC-3284", false, {0.90, 66.0, 50.0, 1.00, 1.0}},
        {"FC-3284", true, {0.98, 74.0, 50.0, 1.23, 1.0}},
        {"HFE-7000", false, {0.90, 51.0, 35.0, 1.00, 1.0}},
        {"HFE-7000", true, {0.98, 60.0, 35.0, 1.23, 1.0}},
    };
    count = sizeof(scenarios) / sizeof(scenarios[0]);
    return scenarios;
}

} // namespace reliability
} // namespace imsim
