/**
 * @file
 * Composite lifetime model and wear-out accounting.
 *
 * Stands in for the paper's proprietary 5 nm composite processor model
 * (Sec. IV "Lifetime"): three competing failure mechanisms whose rates
 * add, with constants calibrated so the model reproduces the six Table V
 * anchors (air / FC-3284 / HFE-7000, each nominal and overclocked).
 *
 * The WearTracker implements the paper's "lifetime credit" idea: the model
 * assumes worst-case utilization, so moderately utilized servers accrue
 * credit that can be spent on overclocking beyond the +23 % boost.
 */

#ifndef IMSIM_RELIABILITY_LIFETIME_HH
#define IMSIM_RELIABILITY_LIFETIME_HH

#include <cstddef>

#include "reliability/mechanisms.hh"
#include "util/units.hh"

namespace imsim {
namespace reliability {

/** Per-mechanism breakdown of a failure-rate evaluation. */
struct RateBreakdown
{
    double gateOxide;        ///< [1/years]
    double electromigration; ///< [1/years]
    double thermalCycling;   ///< [1/years]
    double total;            ///< Sum [1/years].
};

/**
 * Composite (competing-risk) lifetime model.
 */
class LifetimeModel
{
  public:
    LifetimeModel() = default;

    /** Failure rate under @p cond, per mechanism [1/years]. */
    RateBreakdown failureRate(const StressCondition &cond) const;

    /** Projected lifetime under constant stress @p cond [years]. */
    Years lifetime(const StressCondition &cond) const;

    /**
     * Wear accumulated by @p duration of operation under @p cond, as a
     * fraction of total life (1.0 = end of life). Voltage/current driven
     * mechanisms scale with the duty cycle (with an idle floor, since the
     * supply stays up when idle); thermal cycling does not, as it is
     * driven by load transitions rather than load level.
     */
    double wearFraction(const StressCondition &cond, Years duration) const;

    /**
     * Highest frequency ratio (f / all-core turbo) sustainable under
     * cooling conditions (@p tj_at(ratio), @p t_min) without dropping the
     * projected lifetime below @p target. Voltage follows from the ratio
     * via linear interpolation between the 0.90 V and 0.98 V anchors.
     *
     * Used by the control plane to size the "green band" of Fig. 5(b).
     *
     * @param tj_nominal  Junction temperature at ratio 1.0 [C].
     * @param tj_oc       Junction temperature at ratio 1.23 [C]; Tj for
     *                    other ratios is interpolated/extrapolated.
     * @param t_min       Cycle low temperature [C].
     * @param target      Required lifetime [years].
     */
    double maxFrequencyRatioForLifetime(Celsius tj_nominal, Celsius tj_oc,
                                        Celsius t_min, Years target) const;

    /** Idle floor for duty-cycle scaling of voltage-driven wear. */
    static constexpr double kIdleWearFloor = 0.3;
};

/**
 * Tracks consumed lifetime ("wear-out counters") for one processor, the
 * counters the paper says it is working with component manufacturers to
 * expose.
 */
class WearTracker
{
  public:
    /**
     * @param model        The lifetime model to integrate.
     * @param design_life  Target service life [years], 5 for Azure fleet.
     */
    explicit WearTracker(const LifetimeModel &model, Years design_life = 5.0);

    /** Record @p duration years under stress @p cond. */
    void accrue(const StressCondition &cond, Years duration);

    /** @return consumed life fraction in [0, +inf); 1.0 = worn out. */
    double consumed() const { return consumedFrac; }

    /** @return years of service so far. */
    Years age() const { return serviceYears; }

    /**
     * Lifetime credit: the wear the design budget allowed so far minus
     * the wear actually consumed (positive = headroom to overclock).
     */
    double credit() const;

    /**
     * @return whether spending @p duration years under @p cond keeps the
     * processor within its design budget at end of life.
     */
    bool canAfford(const StressCondition &cond, Years duration) const;

    /** @return the design service life [years]. */
    Years designLife() const { return designYears; }

  private:
    LifetimeModel model; ///< Stateless; held by value.
    Years designYears;
    double consumedFrac = 0.0;
    Years serviceYears = 0.0;
};

/** A named row of Table V (cooling x overclocking). */
struct LifetimeScenario
{
    const char *cooling;  ///< "Air cooling", "FC-3284", "HFE-7000".
    bool overclocked;
    StressCondition condition;
};

/** @return the six Table V scenarios with the paper's operating points. */
const LifetimeScenario *tableVScenarios(std::size_t &count);

} // namespace reliability
} // namespace imsim

#endif // IMSIM_RELIABILITY_LIFETIME_HH
