#include "reliability/mechanisms.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace reliability {

using namespace constants;

double
gateOxideRate(Volts voltage, Celsius tj)
{
    util::fatalIf(voltage <= 0.0, "gateOxideRate: voltage must be positive");
    // Quadratic exponent in dT has its vertex at dT* = -a/(2c); below the
    // vertex, colder silicon no longer slows voltage-driven breakdown, so
    // clamp there.
    const double vertex = -kOxideTempA / (2.0 * kOxideTempC);
    const double dt = std::max(tj - kTjRef, vertex);
    const double temp_term = kOxideTempA * dt + kOxideTempC * dt * dt;
    const double volt_term = kOxideGamma * (voltage - kVRef);
    return kOxideA * std::exp(volt_term) * std::exp(temp_term);
}

double
electromigrationRate(Volts voltage, Celsius tj, double freq_ratio)
{
    util::fatalIf(voltage <= 0.0,
                  "electromigrationRate: voltage must be positive");
    util::fatalIf(freq_ratio <= 0.0,
                  "electromigrationRate: frequency ratio must be positive");
    const double j = (voltage / kVRef) * freq_ratio;
    const Kelvin t = units::toKelvin(tj);
    const Kelvin tref = units::toKelvin(kTjRef);
    const double arrhenius =
        std::exp(kEmEa / units::kBoltzmannEv * (1.0 / tref - 1.0 / t));
    // Black's-law current-density exponent is fixed at 2, so j^kEmN is
    // evaluated as j*j: exact algebra, and the fleet wear kernel on
    // this hot path need not pay for generic pow.
    static_assert(kEmN == 2.0, "j^kEmN below assumes kEmN == 2");
    return kEmA * (j * j) * arrhenius;
}

double
thermalCyclingRate(Celsius swing)
{
    util::fatalIf(swing < 0.0, "thermalCyclingRate: negative swing");
    if (swing == 0.0)
        return 0.0;
    // The Coffin-Manson exponent is fixed at 5/2, so r^kTcQ is
    // evaluated as r*r*sqrt(r): exact algebra (to rounding), and sqrt
    // is a hardware instruction where generic pow is a libm call — this
    // sits on the per-server-minute wear path of the fleet kernels.
    static_assert(kTcQ == 2.5, "r^kTcQ below assumes kTcQ == 2.5");
    const double r = swing / kSwingRef;
    return kTcA * (r * r * std::sqrt(r));
}

} // namespace reliability
} // namespace imsim
