/**
 * @file
 * Lifetime-model calibration: a runtime-parameterised variant of the
 * composite model and a coordinate-descent fitter against the Table V
 * anchors.
 *
 * The paper's vendor "validated the model through accelerated testing"
 * (Sec. IV). This module reproduces the calibration workflow: given the
 * observed lifetime anchors (point targets like "5 years" and one-sided
 * targets like "> 10 years"), fit the mechanism constants. The tests use
 * it to verify the shipped constants are (near) a fixed point of the
 * fit, i.e. that the hard-coded numbers are reproducible from the data
 * rather than folklore.
 */

#ifndef IMSIM_RELIABILITY_CALIBRATION_HH
#define IMSIM_RELIABILITY_CALIBRATION_HH

#include <vector>

#include "reliability/mechanisms.hh"
#include "util/units.hh"

namespace imsim {
namespace reliability {

/** Runtime-adjustable copy of the mechanism constants. */
struct ModelConstants
{
    double oxideA = constants::kOxideA;
    double oxideGamma = constants::kOxideGamma;
    double oxideTempA = constants::kOxideTempA;
    double oxideTempC = constants::kOxideTempC;
    double emA = constants::kEmA;
    double emEa = constants::kEmEa;
    double tcA = constants::kTcA;
    double tcQ = constants::kTcQ;
};

/** Composite lifetime evaluated with explicit constants [years]. */
Years lifetimeWith(const ModelConstants &c, const StressCondition &cond);

/** One calibration target. */
struct LifetimeAnchor
{
    StressCondition condition;
    Years target;      ///< Target lifetime [years].
    bool lowerBound;   ///< true: ">= target" (no penalty above it).
    bool upperBound;   ///< true: "<= target" (no penalty below it).
};

/** @return the six Table V rows as calibration anchors. */
std::vector<LifetimeAnchor> tableVAnchors();

/**
 * Sum of squared log-space errors of @p c against @p anchors (one-sided
 * anchors contribute zero inside their feasible half-line).
 */
double calibrationLoss(const ModelConstants &c,
                       const std::vector<LifetimeAnchor> &anchors);

/**
 * Fit the constants by cyclic coordinate descent with shrinking
 * multiplicative steps.
 *
 * @param initial  Starting constants.
 * @param anchors  Calibration targets.
 * @param rounds   Descent rounds.
 * @return the fitted constants.
 */
ModelConstants fitConstants(const ModelConstants &initial,
                            const std::vector<LifetimeAnchor> &anchors,
                            int rounds = 60);

} // namespace reliability
} // namespace imsim

#endif // IMSIM_RELIABILITY_CALIBRATION_HH
