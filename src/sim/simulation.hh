/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The queueing experiments (Figs. 12, 13, 15, 16; Table XI) run on this
 * kernel: a virtual clock, an event queue ordered by (time, sequence), and
 * helpers for periodic tasks (the auto-scaler's 3 s decision loop, telemetry
 * sampling) and one-shot delayed actions (the 60 s VM scale-out latency).
 */

#ifndef IMSIM_SIM_SIMULATION_HH
#define IMSIM_SIM_SIMULATION_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hh"

namespace imsim {
namespace sim {

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Observer interface for the kernel's lifecycle: scheduling, firing,
 * and cancellation. The default implementations do nothing, so
 * observers override only what they need. obs::KernelTracer adapts
 * this interface onto the Chrome-trace EventTracer.
 *
 * The kernel pays one branch per callback site when no observer is
 * attached (`if (hooks)`), so disabled observability is effectively
 * free; see bench_obs_overhead.
 */
class KernelHooks
{
  public:
    virtual ~KernelHooks() = default;

    /** An event was scheduled for @p t (period > 0 for periodic). */
    virtual void onSchedule(EventId id, Seconds t, Seconds period)
    {
        (void)id; (void)t; (void)period;
    }

    /** A live queued event was cancelled. */
    virtual void onCancel(EventId id) { (void)id; }

    /** Event @p id is about to execute at virtual time @p t. */
    virtual void onFire(EventId id, Seconds t) { (void)id; (void)t; }

    /** Event @p id finished executing (clock still at @p t). */
    virtual void onFireDone(EventId id, Seconds t) { (void)id; (void)t; }
};

/**
 * Discrete-event simulation engine.
 *
 * Events scheduled for the same timestamp fire in scheduling order, which
 * keeps runs deterministic. Cancellation is lazy: cancelled events stay in
 * the queue but are skipped (and their cancellation record dropped) when
 * popped, so both cancel() and the pop-side check are O(1).
 */
class Simulation
{
  public:
    Simulation() = default;

    /** @return the current virtual time [s]. */
    Seconds now() const { return clock; }

    /**
     * Schedule @p fn to run at absolute time @p t (>= now).
     * @return a handle usable with cancel().
     */
    EventId at(Seconds t, EventFn fn);

    /** Schedule @p fn to run @p delay seconds from now (delay >= 0). */
    EventId after(Seconds delay, EventFn fn);

    /**
     * Schedule @p fn every @p period seconds, first firing at
     * now + @p period. Runs until cancelled or the simulation stops.
     * @return a handle usable with cancel() (cancels future firings).
     */
    EventId every(Seconds period, EventFn fn);

    /** Cancel a pending (or periodic) event; unknown ids are ignored. */
    void cancel(EventId id);

    /**
     * Run until the event queue is exhausted or the clock passes @p horizon.
     *
     * Horizon boundary: events scheduled exactly at the horizon still
     * fire, *including* events that a horizon-time event schedules for
     * the horizon itself (e.g. via after(0)) — the time==horizon
     * cascade runs to completion before runUntil() returns. Events
     * scheduled strictly past the horizon stay queued for a later
     * runUntil()/run(). On return the clock is at least @p horizon.
     */
    void runUntil(Seconds horizon);

    /** Run until the queue is empty. */
    void run();

    /** Stop the current runUntil()/run() after the in-flight event. */
    void stop() { stopping = true; }

    /**
     * @return number of event callbacks actually executed so far.
     * Cancelled events that are popped and skipped are excluded, by
     * both run() and runUntil().
     */
    std::uint64_t eventsExecuted() const { return executed; }

    /** @return number of live (non-cancelled) events currently pending. */
    std::size_t pendingEvents() const { return live.size(); }

    /**
     * Attach a lifecycle observer (nullptr detaches). The kernel does
     * not own the observer; it must outlive the simulation or be
     * detached first. At most one observer is attached at a time.
     */
    void setHooks(KernelHooks *h) { hooks = h; }

    /** @return the attached lifecycle observer, or nullptr. */
    KernelHooks *hooksAttached() const { return hooks; }

  private:
    struct Event
    {
        Seconds time;
        EventId id;
        EventFn fn;
        Seconds period;  ///< 0 for one-shot events.

        bool
        operator>(const Event &other) const
        {
            if (time != other.time)
                return time > other.time;
            return id > other.id;
        }
    };

    EventId push(Seconds t, EventFn fn, Seconds period);
    bool isCancelled(EventId id) const;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
    /**
     * Ids of queued events that were cancelled but not yet popped.
     * Invariant: every member corresponds to exactly one queued event
     * (each id has at most one queue entry at a time — periodic events
     * re-arm only when popped), so queue.size() - cancelled.size() is
     * the live pending count.
     */
    std::unordered_set<EventId> cancelled;
    /** Ids currently in the queue and not cancelled. */
    std::unordered_set<EventId> live;
    Seconds clock = 0.0;
    EventId nextId = 1;
    std::uint64_t executed = 0;
    bool stopping = false;
    KernelHooks *hooks = nullptr;
};

} // namespace sim
} // namespace imsim

#endif // IMSIM_SIM_SIMULATION_HH
