/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The queueing experiments (Figs. 12, 13, 15, 16; Table XI) run on this
 * kernel: a virtual clock, an event queue ordered by (time, sequence), and
 * helpers for periodic tasks (the auto-scaler's 3 s decision loop, telemetry
 * sampling) and one-shot delayed actions (the 60 s VM scale-out latency).
 *
 * Allocation contract (see DESIGN.md "Performance & hot paths" and
 * bench_hot_paths): callbacks live in a slab with a free list, the binary
 * heap holds 16-byte POD (time, id) records, and per-slot state replaces
 * the old cancellation hash sets — so steady-state event dispatch (pops,
 * periodic re-arms, one-shot churn whose closures fit std::function's
 * small-buffer storage) performs zero heap allocations.
 */

#ifndef IMSIM_SIM_SIMULATION_HH
#define IMSIM_SIM_SIMULATION_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hh"

namespace imsim {
namespace sim {

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/**
 * Opaque handle used to cancel a scheduled event.
 *
 * Handles are unique for the lifetime of a Simulation: the kernel packs
 * a monotonic schedule sequence into the high bits and the slab slot
 * into the low bits, so a handle whose event already fired (or was
 * cancelled) can never resurrect a later event that reuses the slot.
 * Comparing two handles orders them by schedule time, which is what
 * breaks ties between events scheduled for the same timestamp.
 */
using EventId = std::uint64_t;

/**
 * Observer interface for the kernel's lifecycle: scheduling, firing,
 * and cancellation. The default implementations do nothing, so
 * observers override only what they need. obs::KernelTracer adapts
 * this interface onto the Chrome-trace EventTracer.
 *
 * The kernel pays one branch per callback site when no observer is
 * attached (`if (hooks)`), so disabled observability is effectively
 * free; see bench_obs_overhead.
 */
class KernelHooks
{
  public:
    virtual ~KernelHooks() = default;

    /** An event was scheduled for @p t (period > 0 for periodic). */
    virtual void onSchedule(EventId id, Seconds t, Seconds period)
    {
        (void)id; (void)t; (void)period;
    }

    /** A live queued event was cancelled. */
    virtual void onCancel(EventId id) { (void)id; }

    /** Event @p id is about to execute at virtual time @p t. */
    virtual void onFire(EventId id, Seconds t) { (void)id; (void)t; }

    /** Event @p id finished executing (clock still at @p t). */
    virtual void onFireDone(EventId id, Seconds t) { (void)id; (void)t; }
};

/**
 * Discrete-event simulation engine.
 *
 * Events scheduled for the same timestamp fire in scheduling order, which
 * keeps runs deterministic (periodic events keep their original position:
 * a re-arm reuses the event's id, and with it its tie-break rank).
 * Cancellation is lazy: a cancelled event's heap record stays queued but
 * is skipped (and its slab slot reclaimed) when popped, so both cancel()
 * and the pop-side check are O(1) — no hashing involved, cancel() flips
 * the event's slab slot to Cancelled in place.
 */
class Simulation
{
  public:
    Simulation() = default;

    /** @return the current virtual time [s]. */
    Seconds now() const { return clock; }

    /**
     * Schedule @p fn to run at absolute time @p t (>= now).
     * @return a handle usable with cancel().
     */
    EventId at(Seconds t, EventFn fn);

    /** Schedule @p fn to run @p delay seconds from now (delay >= 0). */
    EventId after(Seconds delay, EventFn fn);

    /**
     * Schedule @p fn every @p period seconds, first firing at
     * now + @p period. Runs until cancelled or the simulation stops.
     * @return a handle usable with cancel() (cancels future firings).
     */
    EventId every(Seconds period, EventFn fn);

    /** Cancel a pending (or periodic) event; unknown ids are ignored. */
    void cancel(EventId id);

    /**
     * Run until the event queue is exhausted or the clock passes @p horizon.
     *
     * Horizon boundary: events scheduled exactly at the horizon still
     * fire, *including* events that a horizon-time event schedules for
     * the horizon itself (e.g. via after(0)) — the time==horizon
     * cascade runs to completion before runUntil() returns. Events
     * scheduled strictly past the horizon stay queued for a later
     * runUntil()/run(). On return the clock is at least @p horizon.
     */
    void runUntil(Seconds horizon);

    /** Run until the queue is empty. */
    void run();

    /** Stop the current runUntil()/run() after the in-flight event. */
    void stop() { stopping = true; }

    /**
     * @return number of event callbacks actually executed so far.
     * Cancelled events that are popped and skipped are excluded, by
     * both run() and runUntil().
     */
    std::uint64_t eventsExecuted() const { return executed; }

    /** @return number of live (non-cancelled) events currently pending. */
    std::size_t pendingEvents() const { return liveCount; }

    /**
     * Attach a lifecycle observer (nullptr detaches). The kernel does
     * not own the observer; it must outlive the simulation or be
     * detached first. At most one observer is attached at a time.
     */
    void setHooks(KernelHooks *h) { hooks = h; }

    /** @return the attached lifecycle observer, or nullptr. */
    KernelHooks *hooksAttached() const { return hooks; }

  private:
    /**
     * Low bits of an EventId addressing the slab slot; the remaining
     * high bits carry the monotonic schedule sequence. 24 slot bits
     * allow ~16.7M concurrently pending events and ~1.1e12 schedules
     * per Simulation before the (fatal-checked) sequence space runs
     * out.
     */
    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

    enum class SlotState : std::uint8_t
    {
        Free,      ///< On the free list, no event attached.
        Live,      ///< Queued (or currently re-armed periodic).
        Cancelled, ///< Cancelled; heap record not yet popped.
        Running,   ///< One-shot mid-execution; slot reclaimed after.
    };

    /** Slab cell owning one event's callback and bookkeeping. */
    struct Slot
    {
        EventFn fn;
        Seconds period = 0.0;    ///< 0 for one-shot events.
        EventId id = 0;          ///< Current full handle; 0 when free.
        std::uint32_t nextFree = kNoSlot; ///< Free-list link.
        SlotState state = SlotState::Free;
    };

    /**
     * POD heap record: the priority queue orders by (time, id), and
     * because ids carry the schedule sequence in their high bits this
     * reproduces the documented same-timestamp scheduling order.
     */
    struct HeapEntry
    {
        Seconds time;
        EventId id;

        bool
        operator>(const HeapEntry &other) const
        {
            if (time != other.time)
                return time > other.time;
            return id > other.id;
        }
    };

    static std::uint32_t slotIndex(EventId id)
    {
        return static_cast<std::uint32_t>(id) & kSlotMask;
    }

    EventId push(Seconds t, EventFn fn, Seconds period);
    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t index);
    void drain(bool bounded, Seconds horizon);

    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> queue;
    std::vector<Slot> slots;
    std::uint32_t freeHead = kNoSlot;
    std::size_t liveCount = 0;
    Seconds clock = 0.0;
    std::uint64_t nextSeq = 1;
    std::uint64_t executed = 0;
    bool stopping = false;
    KernelHooks *hooks = nullptr;
};

} // namespace sim
} // namespace imsim

#endif // IMSIM_SIM_SIMULATION_HH
