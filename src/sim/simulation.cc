#include "sim/simulation.hh"

#include "util/logging.hh"

namespace imsim {
namespace sim {

EventId
Simulation::push(Seconds t, EventFn fn, Seconds period)
{
    util::fatalIf(t < clock, "Simulation: cannot schedule in the past");
    const EventId id = nextId++;
    queue.push(Event{t, id, std::move(fn), period});
    live.insert(id);
    if (hooks)
        hooks->onSchedule(id, t, period);
    return id;
}

EventId
Simulation::at(Seconds t, EventFn fn)
{
    return push(t, std::move(fn), 0.0);
}

EventId
Simulation::after(Seconds delay, EventFn fn)
{
    util::fatalIf(delay < 0.0, "Simulation::after: negative delay");
    return push(clock + delay, std::move(fn), 0.0);
}

EventId
Simulation::every(Seconds period, EventFn fn)
{
    util::fatalIf(period <= 0.0, "Simulation::every: period must be > 0");
    return push(clock + period, std::move(fn), period);
}

void
Simulation::cancel(EventId id)
{
    // Only ids with a queued, not-yet-cancelled event need a record;
    // fired one-shots, unknown ids, and double cancels are no-ops.
    if (live.erase(id) > 0) {
        cancelled.insert(id);
        if (hooks)
            hooks->onCancel(id);
    }
}

bool
Simulation::isCancelled(EventId id) const
{
    return cancelled.count(id) > 0;
}

void
Simulation::runUntil(Seconds horizon)
{
    stopping = false;
    while (!queue.empty() && !stopping) {
        const Event &top = queue.top();
        if (top.time > horizon)
            break;
        Event ev = top;
        queue.pop();
        if (cancelled.erase(ev.id) > 0)
            continue; // Skipped cancellations never count as executed.
        live.erase(ev.id);
        clock = ev.time;
        ++executed;
        if (ev.period > 0.0) {
            // Re-arm the periodic event under the *same* id so that a
            // single cancel() kills all future firings.
            queue.push(Event{clock + ev.period, ev.id, ev.fn, ev.period});
            live.insert(ev.id);
            if (hooks)
                hooks->onSchedule(ev.id, clock + ev.period, ev.period);
        }
        if (hooks)
            hooks->onFire(ev.id, clock);
        ev.fn();
        if (hooks)
            hooks->onFireDone(ev.id, clock);
    }
    if (clock < horizon)
        clock = horizon;
}

void
Simulation::run()
{
    stopping = false;
    while (!queue.empty() && !stopping) {
        Event ev = queue.top();
        queue.pop();
        if (cancelled.erase(ev.id) > 0)
            continue; // Skipped cancellations never count as executed.
        live.erase(ev.id);
        clock = ev.time;
        ++executed;
        if (ev.period > 0.0) {
            queue.push(Event{clock + ev.period, ev.id, ev.fn, ev.period});
            live.insert(ev.id);
            if (hooks)
                hooks->onSchedule(ev.id, clock + ev.period, ev.period);
        }
        if (hooks)
            hooks->onFire(ev.id, clock);
        ev.fn();
        if (hooks)
            hooks->onFireDone(ev.id, clock);
    }
}

} // namespace sim
} // namespace imsim
