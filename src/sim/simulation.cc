#include "sim/simulation.hh"

#include <limits>
#include <utility>

#include "util/logging.hh"

namespace imsim {
namespace sim {

std::uint32_t
Simulation::allocSlot()
{
    if (freeHead != kNoSlot) {
        const std::uint32_t index = freeHead;
        freeHead = slots[index].nextFree;
        slots[index].nextFree = kNoSlot;
        return index;
    }
    util::fatalIf(slots.size() > kSlotMask,
                  "Simulation: pending-event slab exhausted");
    slots.emplace_back();
    return static_cast<std::uint32_t>(slots.size() - 1);
}

void
Simulation::freeSlot(std::uint32_t index)
{
    Slot &slot = slots[index];
    slot.fn = nullptr; // Release the closure's resources now.
    slot.period = 0.0;
    slot.id = 0;
    slot.state = SlotState::Free;
    slot.nextFree = freeHead;
    freeHead = index;
}

EventId
Simulation::push(Seconds t, EventFn fn, Seconds period)
{
    util::fatalIf(t < clock, "Simulation: cannot schedule in the past");
    util::fatalIf(nextSeq >
                      (std::numeric_limits<std::uint64_t>::max() >>
                       kSlotBits),
                  "Simulation: event sequence space exhausted");
    const std::uint32_t index = allocSlot();
    const EventId id = (nextSeq++ << kSlotBits) | index;
    Slot &slot = slots[index];
    slot.fn = std::move(fn);
    slot.period = period;
    slot.id = id;
    slot.state = SlotState::Live;
    queue.push(HeapEntry{t, id});
    ++liveCount;
    if (hooks)
        hooks->onSchedule(id, t, period);
    return id;
}

EventId
Simulation::at(Seconds t, EventFn fn)
{
    return push(t, std::move(fn), 0.0);
}

EventId
Simulation::after(Seconds delay, EventFn fn)
{
    util::fatalIf(delay < 0.0, "Simulation::after: negative delay");
    return push(clock + delay, std::move(fn), 0.0);
}

EventId
Simulation::every(Seconds period, EventFn fn)
{
    util::fatalIf(period <= 0.0, "Simulation::every: period must be > 0");
    return push(clock + period, std::move(fn), period);
}

void
Simulation::cancel(EventId id)
{
    // Only live events need work: fired one-shots, unknown or stale
    // (slot-reused) ids, and double cancels fail the id/state check
    // below and are no-ops.
    const std::uint32_t index = slotIndex(id);
    if (index >= slots.size())
        return;
    Slot &slot = slots[index];
    if (slot.id != id || slot.state != SlotState::Live)
        return;
    slot.state = SlotState::Cancelled;
    --liveCount;
    if (hooks)
        hooks->onCancel(id);
}

/**
 * Shared stepping loop of run() and runUntil(): pop (time, id) records,
 * reclaim cancelled slots, re-arm periodics, and fire callbacks.
 *
 * The callback is moved out of its slab slot for the duration of the
 * call (and moved back for periodics): events it schedules may grow the
 * slab vector, which would otherwise relocate the closure mid-execution.
 * std::function moves never allocate, so the dispatch path stays
 * allocation-free.
 */
void
Simulation::drain(bool bounded, Seconds horizon)
{
    while (!queue.empty() && !stopping) {
        const HeapEntry top = queue.top();
        if (bounded && top.time > horizon)
            break;
        queue.pop();
        const std::uint32_t index = slotIndex(top.id);
        Slot &slot = slots[index];
        if (slot.state == SlotState::Cancelled) {
            // Skipped cancellations never count as executed.
            freeSlot(index);
            continue;
        }
        clock = top.time;
        ++executed;
        EventFn fn = std::move(slot.fn);
        const Seconds period = slot.period;
        if (period > 0.0) {
            // Re-arm the periodic event under the *same* id so that a
            // single cancel() kills all future firings and the event
            // keeps its tie-break rank; the slot stays Live.
            queue.push(HeapEntry{clock + period, top.id});
            if (hooks)
                hooks->onSchedule(top.id, clock + period, period);
        } else {
            slot.state = SlotState::Running;
            --liveCount;
        }
        if (hooks)
            hooks->onFire(top.id, clock);
        fn();
        if (hooks)
            hooks->onFireDone(top.id, clock);
        // Re-index: fn() may have grown the slab.
        Slot &after_fire = slots[index];
        if (after_fire.state == SlotState::Running)
            freeSlot(index);
        else
            after_fire.fn = std::move(fn); // Periodic (live or cancelled
                                           // mid-fire): hand it back.
    }
}

void
Simulation::runUntil(Seconds horizon)
{
    stopping = false;
    drain(true, horizon);
    if (clock < horizon)
        clock = horizon;
}

void
Simulation::run()
{
    stopping = false;
    drain(false, 0.0);
}

} // namespace sim
} // namespace imsim
