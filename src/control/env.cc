#include "control/env.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "fleet/state.hh"
#include "util/logging.hh"

namespace imsim {
namespace control {

namespace {

constexpr double kSecondsPerMinute = 60.0;

/// Aggregator sized to the SKU table, snapshot-only: the env reads the
/// published sample each epoch and never needs the per-tick series or
/// whole-run sketches.
obs::FleetAggregator::Config
aggConfigFor(const cluster::PerServerPhysics &physics)
{
    obs::FleetAggregator::Config agg_cfg;
    agg_cfg.skuCount = std::max<std::size_t>(physics.skus.size(), 1);
    agg_cfg.record = false;
    agg_cfg.cumulative = false;
    return agg_cfg;
}

} // namespace

ControlEnvConfig::ControlEnvConfig()
{
    // The bench_power_oversub topology scaled down to the smallest
    // fleet that still exercises priority-aware capping: two batch
    // racks that soak the feed and one latency rack whose tenants want
    // overclocking.
    cluster::RackConfig batch;
    batch.servers = 8;
    batch.priority = 1;
    batch.overclockDemand = 0.3;
    cluster::RackConfig latency;
    latency.servers = 8;
    latency.priority = 2;
    latency.overclockDemand = 0.7;
    racks = {batch, batch, latency};
    physics = cluster::PerServerPhysics::openComputeImmersed();
    // The latency proxy: a few VMs whose service demand puts the
    // cluster near the knee at baseQps — nominal-frequency capacity is
    // ~20 qps, so the diurnal peak (~1.5x the base rate) overloads a
    // non-overclocked cluster and the tail rewards buying frequency.
    // The long per-request demand keeps simulated request counts (and
    // bench wall-clock) an order of magnitude below a web-scale mean
    // at the same utilization.
    queueing.serviceMean = 0.4;
    queueing.refFreq = 0.0; // 0 = derive from the SKU nominal point.
}

ControlEnv::ControlEnv(ControlEnvConfig config, util::Rng &rng)
    : cfg(std::move(config)),
      dc(cfg.racks, cfg.feedCapacity, cfg.oversubscription, cfg.ocSpeedup),
      agg(aggConfigFor(cfg.physics))
{
    util::fatalIf(cfg.epoch < kSecondsPerMinute ||
                      std::fmod(cfg.epoch, kSecondsPerMinute) != 0.0,
                  "ControlEnv: epoch must be a positive multiple of 60 s");
    util::fatalIf(cfg.days <= 0.0, "ControlEnv: days must be positive");
    util::fatalIf(cfg.vms == 0, "ControlEnv: need at least one VM");
    util::fatalIf(cfg.referenceUtil <= 0.0,
                  "ControlEnv: referenceUtil must be positive");
    util::fatalIf(cfg.minPackingFraction <= 0.0 ||
                      cfg.minPackingFraction > 1.0,
                  "ControlEnv: minPackingFraction out of (0,1]");

    dc.enablePerServerFidelity(cfg.physics);
    dc.setSimThreads(cfg.simThreads);
    dc.attachObservability(&agg, nullptr);

    // Session first: it consumes the trace/offset draws exactly as
    // run() would, then the queueing cluster forks its own substream,
    // so the datacenter side of the episode is bit-identical to a
    // plain run() with the same seed.
    session = dc.startPerServerSession(cfg.policy, rng, cfg.days);

    epochMinutes = static_cast<std::size_t>(cfg.epoch / kSecondsPerMinute);
    epochsTotal = session->totalMinutes() / epochMinutes;
    util::fatalIf(epochsTotal == 0,
                  "ControlEnv: horizon shorter than one epoch");

    const auto &skus = session->skus();
    ceilMin = skus[0].level[fleet::kNominal].frequency;
    ceilMax = skus[0].level[fleet::kOverclocked].frequency;
    for (const auto &sku : skus) {
        ceilMin = std::min(ceilMin, sku.level[fleet::kNominal].frequency);
        ceilMax = std::max(ceilMax,
                           sku.level[fleet::kOverclocked].frequency);
    }

    workload::QueueingCluster::Params qp = cfg.queueing;
    if (qp.refFreq <= 0.0)
        qp.refFreq = ceilMin;
    cluster = std::make_unique<workload::QueueingCluster>(
        eventSim, rng.child(), qp);
    for (std::size_t i = 0; i < cfg.vms; ++i)
        cluster->addServer(ceilMin);
    cluster->enableTailTracking(cfg.epoch);
    cluster->setArrivalRate(cfg.baseQps);

    pending.frequencyCeiling = ceilMax;
    appliedCeiling = ceilMax;
    publishObservation(0.0);
}

void
ControlEnv::act(const Action &action)
{
    util::fatalIf(finished, "ControlEnv::act: episode finished");
    pending = action;
}

void
ControlEnv::applyCrisesDue(Seconds t)
{
    const auto &events = cfg.crises.scripted();
    util::fatalIf(cfg.crises.crashProcess().enabled,
                  "ControlEnv: stochastic crash process unsupported "
                  "(scripted faults only)");
    while (nextCrisis < events.size() && events[nextCrisis].first <= t) {
        const fault::Fault &f = events[nextCrisis].second;
        switch (f.kind) {
          case fault::FaultKind::PowerDerate:
            util::fatalIf(f.magnitude <= 0.0 || f.magnitude >= 1.0,
                          "ControlEnv: PowerDerate magnitude out of (0,1)");
            powerDerate = f.magnitude;
            break;
          case fault::FaultKind::PowerRestore:
            powerDerate = 1.0;
            break;
          case fault::FaultKind::CoolingDegrade:
            // A degraded tank cannot absorb the overclock's extra heat:
            // bar overclocking outright until restored.
            coolingDegraded = true;
            break;
          case fault::FaultKind::CoolingRestore:
            coolingDegraded = false;
            break;
          case fault::FaultKind::ServerCrash: {
            std::size_t victim = f.target;
            if (victim == fault::kAnyServer) {
                // Deterministic victim: the lowest-id live server.
                victim = cluster->serverCount();
                for (std::size_t id = 0; id < cluster->serverCount();
                     ++id) {
                    if (cluster->isActive(id) && !cluster->isCrashed(id)) {
                        victim = id;
                        break;
                    }
                }
            }
            if (victim < cluster->serverCount() &&
                cluster->isActive(victim) && !cluster->isCrashed(victim))
                cluster->crashServer(victim);
            break;
          }
          case fault::FaultKind::ServerRepair: {
            std::size_t victim = f.target;
            if (victim == fault::kAnyServer) {
                victim = cluster->serverCount();
                for (std::size_t id = 0; id < cluster->serverCount();
                     ++id) {
                    if (cluster->isCrashed(id)) {
                        victim = id;
                        break;
                    }
                }
            }
            if (victim < cluster->serverCount() &&
                cluster->isCrashed(victim))
                cluster->repairServer(victim);
            break;
          }
        }
        ++nextCrisis;
    }
}

void
ControlEnv::applyKnobs()
{
    // Ceiling: the action clamped to the SKU envelope, then crisis-
    // clamped — a degraded tank forces nominal regardless of the ask.
    GHz ceiling = std::clamp(pending.frequencyCeiling, ceilMin, ceilMax);
    if (coolingDegraded)
        ceiling = ceilMin;
    appliedCeiling = ceiling;
    session->setFrequencyCeiling(ceiling);

    // Feed: the derated nominal is the physical limit; an action cap
    // below it tightens further, and everything stays above the racks'
    // capping floors so the allocator never browns out.
    const Watts derated = session->nominalFeedCapacity() * powerDerate;
    Watts cap = pending.feedCapacity > 0.0
                    ? std::min(pending.feedCapacity, derated)
                    : derated;
    cap = std::max(cap, session->minimumFeedDemand());
    session->setFeedCapacity(cap);

    session->setPackingFraction(std::clamp(
        pending.packingFraction, cfg.minPackingFraction, 1.0));
}

bool
ControlEnv::step()
{
    util::fatalIf(finished, "ControlEnv::step: episode finished");
    util::fatalIf(epochIndex >= epochsTotal,
                  "ControlEnv::step: horizon already reached");

    const Seconds epoch_start =
        static_cast<double>(epochIndex) * cfg.epoch;
    applyCrisesDue(epoch_start);
    applyKnobs();

    const double energy0 = session->energyMwhSoFar();
    const double wear0 = session->fleet().meanWearConsumed();
    session->stepMinutes(epochMinutes);

    // Couple the physics to the latency proxy: the queueing VMs run
    // the epoch at the fleet's delivered mean clock, with offered load
    // tracking the diurnal utilization the traces produced.
    const obs::FleetSample sample = agg.snapshot();
    const fleet::FleetState &state = session->fleet();
    const GHz mean_freq = meanFleetFrequency();
    const double mean_util = sample.overall[obs::kChanUtilization].mean;
    const double qps =
        cfg.baseQps * std::max(mean_util / cfg.referenceUtil, 0.05);
    cluster->setAllFrequencies(mean_freq);
    cluster->setArrivalRate(qps);
    const Seconds epoch_end = epoch_start + cfg.epoch;
    eventSim.runUntil(epoch_end);

    ++epochIndex;
    if (epochIndex == 1) {
        // Epoch 0 is warmup: the whole-run percentile estimator
        // restarts so transient queue build-out does not dominate P99.
        warmupRequests = cluster->completed();
        cluster->resetLatencies();
        lastCompleted = cluster->completed();
    }

    // Economics of the epoch just run: energy at the tariff plus wear
    // amortizing the replacement capex across the fleet.
    const double epoch_energy_mwh = session->energyMwhSoFar() - energy0;
    const double wear1 = state.meanWearConsumed();
    const double epoch_cost =
        epoch_energy_mwh * cfg.electricityUsdPerMwh +
        (wear1 - wear0) * static_cast<double>(state.size()) *
            cfg.serverCostUsd;
    totalCostUsd += epoch_cost;
    ceilingSum += appliedCeiling;
    peakTj = std::max(peakTj, sample.overall[obs::kChanTj].max);

    publishObservation(epoch_end);
    lastObs.epochEnergyKwh = epoch_energy_mwh * 1000.0;
    lastObs.epochCostUsd = epoch_cost;
    lastObs.epochRequests =
        static_cast<double>(cluster->completed() - lastCompleted);
    lastObs.arrivalQps = qps;
    lastCompleted = cluster->completed();
    if (lastObs.tailP99S > cfg.slaP99)
        ++slaViolations;

    return epochIndex < epochsTotal;
}

GHz
ControlEnv::meanFleetFrequency() const
{
    const fleet::FleetState &state = session->fleet();
    if (state.empty())
        return ceilMin;
    const auto &skus = session->skus();
    double freq_sum = 0.0;
    for (std::size_t i = 0; i < state.size(); ++i) {
        freq_sum +=
            skus[state.skuIndex[i]].level[state.freqLevel[i]].frequency;
    }
    return freq_sum / static_cast<double>(state.size());
}

void
ControlEnv::publishObservation(Seconds t)
{
    const obs::FleetSample sample = agg.snapshot();
    lastObs.t = t;
    lastObs.epoch = epochIndex;
    lastObs.units = sample.units;
    lastObs.maxTjC = sample.overall[obs::kChanTj].max;
    lastObs.p99TjC = sample.overall[obs::kChanTj].p99;
    lastObs.meanTjC = sample.overall[obs::kChanTj].mean;
    lastObs.fleetPowerW = sample.fleetPower;
    lastObs.meanUtil = sample.overall[obs::kChanUtilization].mean;
    lastObs.p99WearRatePerYear = sample.overall[obs::kChanWearRate].p99;

    const fleet::FleetState &state = session->fleet();
    lastObs.feedUtilization =
        session->feedCapacity() > 0.0
            ? sample.fleetPower / session->feedCapacity()
            : 0.0;
    lastObs.cappedShare =
        state.empty() ? 0.0
                      : static_cast<double>(state.cappedCount()) /
                            static_cast<double>(state.size());
    lastObs.overclockedShare =
        state.empty() ? 0.0
                      : static_cast<double>(state.overclockedCount()) /
                            static_cast<double>(state.size());
    lastObs.meanFrequencyGhz = meanFleetFrequency();

    lastObs.tailP99S = cluster ? cluster->recentTailQuantile(99.0) : 0.0;

    lastObs.frequencyCeilingGhz = appliedCeiling;
    lastObs.feedCapacityW = session->feedCapacity();
    lastObs.packingFraction = session->packingFraction();
    lastObs.powerDerateFraction = powerDerate;
    lastObs.coolingDegraded = coolingDegraded;
    lastObs.crashedVms = cluster ? cluster->crashedServers() : 0;
}

ControlOutcome
ControlEnv::finish()
{
    util::fatalIf(finished, "ControlEnv::finish: called twice");
    util::fatalIf(epochIndex < epochsTotal,
                  "ControlEnv::finish: horizon not reached");
    finished = true;

    ControlOutcome result;
    result.datacenter = session->finish();
    result.p99LatencyS = cluster->latencies().p99();
    result.requests = cluster->completed() - warmupRequests;
    result.energyMwh = result.datacenter.energyMwh;
    result.meanFleetPowerW =
        result.datacenter.fleet.meanServerPower *
        static_cast<double>(result.datacenter.fleet.servers);
    result.maxTjC = peakTj;
    result.wearConsumed = result.datacenter.fleet.meanWearConsumed;
    const double years = cfg.days / 365.0;
    result.impliedLifetimeYears =
        result.wearConsumed > 1e-12 ? years / result.wearConsumed : 1e6;
    result.totalCostUsd = totalCostUsd;
    result.costPerMRequestsUsd =
        result.requests > 0
            ? totalCostUsd * 1e6 / static_cast<double>(result.requests)
            : 0.0;
    result.slaViolationShare = static_cast<double>(slaViolations) /
                               static_cast<double>(epochsTotal);
    result.meanCeilingGhz = ceilingSum / static_cast<double>(epochsTotal);
    result.epochs = epochsTotal;
    return result;
}

} // namespace control
} // namespace imsim
