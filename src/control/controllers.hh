/**
 * @file
 * Baseline controllers for the closed-loop control environment.
 *
 * Three learning-free controllers spanning the classic design space —
 * a PID servo on the hottest junction temperature, a greedy
 * hill-climber on per-epoch TCO, and an epsilon-greedy bandit over
 * discrete frequency ceilings — plus the static OC-A / OC-B schedules
 * from the paper as the yardsticks they must beat. Every controller is
 * deterministic for a fixed seed and observation sequence, so the
 * bench's Pareto fronts are exactly reproducible.
 */

#ifndef IMSIM_CONTROL_CONTROLLERS_HH
#define IMSIM_CONTROL_CONTROLLERS_HH

#include <cstddef>
#include <vector>

#include "autoscale/predictive.hh"
#include "control/env.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace imsim {
namespace control {

/** Per-epoch policy: observation in, action out. */
class Controller
{
  public:
    virtual ~Controller() = default;

    /** @return a stable display name for reports. */
    virtual const char *name() const = 0;

    /** Choose the next epoch's action from the last observation. */
    virtual Action decide(const Observation &observation) = 0;
};

/**
 * The paper's static schedules: Baseline never overclocks, OC-A
 * overclocks around the clock, OC-B only off-peak (the diurnal trough
 * side, when the feed has headroom).
 */
class StaticOcController : public Controller
{
  public:
    enum class Mode
    {
        Baseline, ///< Ceiling pinned at the nominal point.
        OcA,      ///< Ceiling pinned at the overclock point.
        OcB,      ///< Overclock 22:00-10:00, nominal through the peak.
    };

    /**
     * @param mode      Schedule to follow.
     * @param floor     Nominal-frequency ceiling [GHz].
     * @param cap       Overclock-frequency ceiling [GHz].
     */
    StaticOcController(Mode mode, GHz floor, GHz cap);

    const char *name() const override;
    Action decide(const Observation &observation) override;

  private:
    Mode mode;
    GHz floor;
    GHz cap;
};

/**
 * PID servo holding the fleet's hottest junction at a setpoint: the
 * control signal u in [0, 1] maps linearly onto the [nominal,
 * overclock] ceiling range, so positive thermal headroom buys
 * frequency and overshoot sheds it. Gains are in ceiling-fractions per
 * degree; the integrator is clamped to the actuator range
 * (anti-windup).
 */
/** PID gains in ceiling-fractions per degree (and per epoch). */
struct PidGains
{
    double kp = 0.10;  ///< [1/C]
    double ki = 0.02;  ///< [1/(C*epoch)]
    double kd = 0.05;  ///< [epoch/C]
};

class PidTjController : public Controller
{
  public:
    /**
     * @param setpoint Target max junction temperature [C].
     * @param floor    Nominal-frequency ceiling [GHz].
     * @param cap      Overclock-frequency ceiling [GHz].
     * @param gains    PID gains (defaulted; tuned for the default env).
     */
    PidTjController(Celsius setpoint, GHz floor, GHz cap,
                    PidGains gains = PidGains{});

    const char *name() const override { return "pid-tj"; }
    Action decide(const Observation &observation) override;

    /** @return the temperature setpoint [C]. */
    Celsius setpoint() const { return target; }

  private:
    Celsius target;
    GHz floor;
    GHz cap;
    PidGains gains;
    double integrator = 0.0;
    double prevError = 0.0;
    bool primed = false;
};

/**
 * Greedy TCO hill-climber over a discrete ceiling ladder: each epoch
 * scores the last epoch's cost per completed request (plus an SLA
 * penalty when the tail breached), keeps walking the ladder in the
 * current direction while the objective improves, and turns around
 * when it worsens. A HoltForecaster over mean utilization gates
 * exploration: while the forecast says load is swinging, the climber
 * holds its level instead of attributing the swing to its own move.
 */
class GreedyTcoController : public Controller
{
  public:
    /**
     * @param floor        Nominal-frequency ceiling [GHz].
     * @param cap          Overclock-frequency ceiling [GHz].
     * @param levels       Ladder rungs between floor and cap (>= 2).
     * @param sla_p99      Tail-latency SLA [s] for the penalty term.
     * @param sla_penalty  Objective penalty per breached epoch [USD/Mreq].
     */
    GreedyTcoController(GHz floor, GHz cap, std::size_t levels = 5,
                        Seconds sla_p99 = 1.0,
                        double sla_penalty = 50.0);

    const char *name() const override { return "greedy-tco"; }
    Action decide(const Observation &observation) override;

  private:
    std::vector<GHz> ladder;
    Seconds slaP99;
    double slaPenalty;
    autoscale::HoltForecaster forecaster;
    std::size_t level;     ///< Current rung (starts at the top).
    int direction = -1;    ///< Ladder walk direction.
    double prevObjective = 0.0;
    bool primed = false;
};

/**
 * Epsilon-greedy bandit over the same discrete ceiling ladder: each
 * arm's value is the running mean of the per-epoch reward (negative
 * cost per request, minus the SLA penalty), explored with probability
 * epsilon from the controller's own seeded stream. Credit is assigned
 * one epoch late — an observation reflects the previously pulled arm.
 */
class BanditController : public Controller
{
  public:
    /**
     * @param floor    Nominal-frequency ceiling [GHz].
     * @param cap      Overclock-frequency ceiling [GHz].
     * @param seed     Seed of the exploration stream.
     * @param levels   Number of arms (>= 2).
     * @param epsilon  Exploration probability.
     * @param sla_p99  Tail-latency SLA [s] for the penalty term.
     */
    BanditController(GHz floor, GHz cap, std::uint64_t seed,
                     std::size_t levels = 5, double epsilon = 0.1,
                     Seconds sla_p99 = 1.0);

    const char *name() const override { return "bandit"; }
    Action decide(const Observation &observation) override;

  private:
    std::vector<GHz> ladder;
    std::vector<double> value; ///< Running mean reward per arm.
    std::vector<std::size_t> pulls;
    util::Rng rng;
    double epsilon;
    Seconds slaP99;
    std::size_t lastArm = 0;
    bool primed = false;
};

/**
 * Drive @p env to the horizon under @p controller and return the final
 * outcome: act on the initial observation, then observe-decide-act
 * every epoch.
 */
ControlOutcome runEpisode(ControlEnv &env, Controller &controller);

} // namespace control
} // namespace imsim

#endif // IMSIM_CONTROL_CONTROLLERS_HH
