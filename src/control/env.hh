/**
 * @file
 * Closed-loop control environment over the immersion-cooled datacenter.
 *
 * The paper's OC-A/OC-B policies are *static* frequency schedules, but
 * its real claim is that overclocking is a control knob traded against
 * wear, power, and TCO. ControlEnv packages ImmerSim as the
 * step/observe/act environment that claim calls for: a per-server
 * DatacenterPowerSim session (physics, capping, Tj, wear) coupled to a
 * QueueingCluster (tail latency) behind an epoch-stepped API, with
 * observations drawn from the published obs::FleetAggregator snapshot
 * and actions covering the frequency-ceiling, power-cap, and
 * packing-density knobs. Scripted fault::FaultPlan crises (feed
 * derates, cooling degradations, VM crashes) land at epoch boundaries,
 * so controllers are exercised through the regimes the paper's Sec. IV
 * and VII describe.
 *
 * Determinism contract: for a fixed config, seed, and action sequence,
 * every observation and the final outcome are bit-identical across any
 * --sim-threads value (the session's sharding contract) and contain no
 * wall-clock or host dependence, so controller comparisons are exactly
 * reproducible.
 */

#ifndef IMSIM_CONTROL_ENV_HH
#define IMSIM_CONTROL_ENV_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/datacenter.hh"
#include "fault/plan.hh"
#include "obs/fleet_agg.hh"
#include "sim/simulation.hh"
#include "util/random.hh"
#include "util/units.hh"
#include "workload/queueing.hh"

namespace imsim {
namespace control {

/** Everything a controller may see after one epoch. */
struct Observation
{
    Seconds t = 0.0;           ///< End of the observed epoch.
    std::size_t epoch = 0;     ///< Epochs completed so far.
    std::size_t units = 0;     ///< Fleet size the snapshot reduced.

    // --- fleet physics, from the FleetAggregator snapshot ------------
    Celsius maxTjC = 0.0;      ///< Hottest junction this minute.
    Celsius p99TjC = 0.0;      ///< Fleet Tj p99.
    Celsius meanTjC = 0.0;
    Watts fleetPowerW = 0.0;   ///< Fleet IT power.
    double meanUtil = 0.0;     ///< Mean per-server utilization.
    double p99WearRatePerYear = 0.0; ///< Fleet wear-rate p99 [life/yr].

    // --- datacenter control state ------------------------------------
    double feedUtilization = 0.0; ///< Fleet power / feed capacity.
    double cappedShare = 0.0;     ///< Servers under power capping.
    double overclockedShare = 0.0;///< Servers running overclocked.
    GHz meanFrequencyGhz = 0.0;   ///< Delivered mean core clock.

    // --- workload ----------------------------------------------------
    Seconds tailP99S = 0.0;    ///< Trailing-window queueing P99.
    double epochRequests = 0.0;///< Requests completed this epoch.
    double arrivalQps = 0.0;   ///< Offered load this epoch.

    // --- economics (per epoch; what TCO-seeking controllers climb) ---
    double epochEnergyKwh = 0.0;
    double epochCostUsd = 0.0; ///< Energy + wear-amortized capex.

    // --- knob echo + crisis state ------------------------------------
    GHz frequencyCeilingGhz = 0.0;  ///< Ceiling actually applied.
    Watts feedCapacityW = 0.0;      ///< Feed capacity in force.
    double packingFraction = 1.0;
    double powerDerateFraction = 1.0; ///< < 1 while a feed crisis is on.
    bool coolingDegraded = false;     ///< Tank crisis: overclock barred.
    std::size_t crashedVms = 0;       ///< Queueing VMs currently down.
};

/** One epoch's actuation. Fields are clamped to the env's bounds. */
struct Action
{
    /** Per-SKU overclock admission via the session's frequency
     *  ceiling; clamped to [nominal, overclock] of the SKU table. */
    GHz frequencyCeiling = 1e9;
    /** Feed power cap [W]; 0 = run at the (possibly derated) nominal
     *  capacity. Clamped above the racks' capping floors. */
    Watts feedCapacity = 0.0;
    /** Packing-density knob, (0, 1]; clamped to the config minimum. */
    double packingFraction = 1.0;
};

/** Whole-episode outcome (ControlEnv::finish). */
struct ControlOutcome
{
    cluster::DatacenterOutcome datacenter;
    double p99LatencyS = 0.0;   ///< Whole-run queueing P99 (post-warmup).
    std::uint64_t requests = 0; ///< Requests completed (whole run).
    double energyMwh = 0.0;
    Watts meanFleetPowerW = 0.0;
    Celsius maxTjC = 0.0;
    double wearConsumed = 0.0;  ///< End-of-run mean life fraction.
    /** Years until mean wear reaches 1.0 at this run's wear rate. */
    double impliedLifetimeYears = 0.0;
    double totalCostUsd = 0.0;  ///< Energy + wear-amortized capex.
    /** Cost per million completed requests — the TCO axis of the
     *  Pareto front (same accounting every controller is scored by). */
    double costPerMRequestsUsd = 0.0;
    double slaViolationShare = 0.0; ///< Epochs with P99 over the SLA.
    GHz meanCeilingGhz = 0.0;   ///< Mean applied frequency ceiling.
    std::size_t epochs = 0;
};

/** Environment configuration. */
struct ControlEnvConfig
{
    // --- horizon -----------------------------------------------------
    double days = 1.0;
    Seconds epoch = 300.0;     ///< Control period; a multiple of 60 s.

    // --- datacenter --------------------------------------------------
    /** Rack layout; empty = two batch racks + one latency rack (the
     *  bench_power_oversub topology). */
    std::vector<cluster::RackConfig> racks;
    Watts feedCapacity = 40000.0;
    double oversubscription = 1.3;
    double ocSpeedup = 1.2;
    /** SKU physics; empty skus = PerServerPhysics::openComputeImmersed. */
    cluster::PerServerPhysics physics;
    cluster::OverclockPolicy policy = cluster::OverclockPolicy::Always;
    std::size_t simThreads = 1;

    // --- workload (latency proxy cluster) ----------------------------
    workload::QueueingCluster::Params queueing;
    std::size_t vms = 2;          ///< Queueing VMs.
    double baseQps = 13.0;        ///< Offered load at referenceUtil.
    double referenceUtil = 0.45;  ///< Trace mean the QPS is scaled by.
    Seconds slaP99 = 3.0;         ///< Epoch P99 SLA [s].

    // --- economics ---------------------------------------------------
    double electricityUsdPerMwh = 80.0;
    /** Server replacement cost: wear 0..1 amortizes this linearly, so
     *  running hot is priced as faster capex burn (Sec. VII framing). */
    double serverCostUsd = 9000.0;

    // --- action bounds -----------------------------------------------
    double minPackingFraction = 0.25;

    // --- crises ------------------------------------------------------
    /** Scripted faults applied at epoch boundaries: PowerDerate /
     *  PowerRestore (feed), CoolingDegrade / CoolingRestore (bars
     *  overclocking while degraded), ServerCrash / ServerRepair
     *  (queueing VMs). The stochastic crash process is not supported
     *  here (epoch boundaries only). */
    fault::FaultPlan crises;

    ControlEnvConfig();
};

/**
 * The closed-loop environment. Drive it as:
 *
 *   ControlEnv env(cfg, rng);
 *   env.act(controller.decide(env.observe()));
 *   while (env.step())
 *       env.act(controller.decide(env.observe()));
 *   ControlOutcome outcome = env.finish();
 *
 * observe() is free to call at any time (it returns the last epoch's
 * observation); act() records the action applied from the next step()
 * on; step() advances one epoch and returns false once the horizon is
 * reached (the final epoch still runs).
 */
class ControlEnv
{
  public:
    /**
     * @param config Environment configuration.
     * @param rng    Seeds the diurnal traces, per-server offsets, and
     *               the queueing cluster's arrival/service streams.
     */
    ControlEnv(ControlEnvConfig config, util::Rng &rng);

    /** @return the last epoch's observation (initial state at epoch 0). */
    const Observation &observe() const { return lastObs; }

    /** Set the knobs applied from the next step() on. */
    void act(const Action &action);

    /**
     * Advance one epoch: apply due crises and the pending action, step
     * the datacenter session epoch-minutes, then the queueing cluster
     * over the same window, and publish a fresh observation.
     *
     * @return true while further epochs remain, false after the final
     *         epoch has been simulated.
     */
    bool step();

    /** @return total epochs in the horizon. */
    std::size_t totalEpochs() const { return epochsTotal; }

    /** @return epochs simulated so far. */
    std::size_t epochsDone() const { return epochIndex; }

    /** Final accounting; callable once, after the last epoch. */
    ControlOutcome finish();

    /** @return the SKU nominal frequency — the ceiling's floor [GHz]. */
    GHz minCeiling() const { return ceilMin; }

    /** @return the SKU overclock frequency — the ceiling's cap [GHz]. */
    GHz maxCeiling() const { return ceilMax; }

    /** @return the environment configuration. */
    const ControlEnvConfig &config() const { return cfg; }

  private:
    void applyCrisesDue(Seconds t);
    void applyKnobs();
    void publishObservation(Seconds t);
    GHz meanFleetFrequency() const;

    ControlEnvConfig cfg;
    cluster::DatacenterPowerSim dc;
    obs::FleetAggregator agg;
    std::unique_ptr<cluster::PerServerSession> session;
    sim::Simulation eventSim;
    std::unique_ptr<workload::QueueingCluster> cluster;

    std::size_t epochMinutes = 0;
    std::size_t epochsTotal = 0;
    std::size_t epochIndex = 0;
    bool finished = false;

    GHz ceilMin = 0.0;
    GHz ceilMax = 0.0;
    Action pending;             ///< Last act(); re-applied each epoch.
    GHz appliedCeiling = 0.0;   ///< Ceiling in force (crisis-clamped).

    // Crisis state.
    std::size_t nextCrisis = 0; ///< Cursor into cfg.crises.scripted().
    double powerDerate = 1.0;
    bool coolingDegraded = false;

    // Epoch accounting.
    double lastEnergyMwh = 0.0;
    double lastWear = 0.0;
    std::uint64_t lastCompleted = 0;
    std::uint64_t warmupRequests = 0;
    double totalCostUsd = 0.0;
    double ceilingSum = 0.0;
    std::size_t slaViolations = 0;
    Celsius peakTj = 0.0;
    Observation lastObs;
};

} // namespace control
} // namespace imsim

#endif // IMSIM_CONTROL_ENV_HH
