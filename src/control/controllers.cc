#include "control/controllers.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace control {

namespace {

constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerHour = 3600.0;

/// Evenly spaced ceiling ladder from floor to cap, inclusive.
std::vector<GHz>
buildLadder(GHz floor, GHz cap, std::size_t levels)
{
    util::fatalIf(levels < 2, "controller ladder needs >= 2 levels");
    util::fatalIf(cap <= floor, "controller ladder: cap <= floor");
    std::vector<GHz> ladder(levels);
    for (std::size_t i = 0; i < levels; ++i) {
        ladder[i] = floor + (cap - floor) * static_cast<double>(i) /
                                static_cast<double>(levels - 1);
    }
    return ladder;
}

/// Per-epoch objective the TCO-seeking controllers minimize: cost per
/// million requests plus a flat penalty when the tail breached. The
/// first epoch (no completed requests yet) scores neutral.
double
tcoObjective(const Observation &observation, Seconds sla_p99,
             double sla_penalty)
{
    if (observation.epochRequests <= 0.0)
        return 0.0;
    double objective = observation.epochCostUsd * 1e6 /
                       observation.epochRequests;
    if (observation.tailP99S > sla_p99)
        objective += sla_penalty;
    return objective;
}

} // namespace

// ----- StaticOcController ------------------------------------------------

StaticOcController::StaticOcController(Mode mode_in, GHz floor_in,
                                       GHz cap_in)
    : mode(mode_in), floor(floor_in), cap(cap_in)
{}

const char *
StaticOcController::name() const
{
    switch (mode) {
      case Mode::Baseline:
        return "static-baseline";
      case Mode::OcA:
        return "static-oc-a";
      case Mode::OcB:
        return "static-oc-b";
    }
    return "static";
}

Action
StaticOcController::decide(const Observation &observation)
{
    Action action;
    switch (mode) {
      case Mode::Baseline:
        action.frequencyCeiling = floor;
        break;
      case Mode::OcA:
        action.frequencyCeiling = cap;
        break;
      case Mode::OcB: {
        // Off-peak only: the diurnal peak sits at 16:00, so OC-B
        // overclocks from 22:00 to 10:00 and rides nominal through
        // the daytime ramp (the paper's "periods of power
        // underutilization").
        const double hour =
            std::fmod(observation.t, kSecondsPerDay) / kSecondsPerHour;
        const bool off_peak = hour < 10.0 || hour >= 22.0;
        action.frequencyCeiling = off_peak ? cap : floor;
        break;
      }
    }
    return action;
}

// ----- PidTjController ---------------------------------------------------

PidTjController::PidTjController(Celsius setpoint, GHz floor_in,
                                 GHz cap_in, PidGains gains_in)
    : target(setpoint), floor(floor_in), cap(cap_in), gains(gains_in)
{
    util::fatalIf(cap <= floor, "PidTjController: cap <= floor");
}

Action
PidTjController::decide(const Observation &observation)
{
    // Positive error = thermal headroom below the setpoint = room to
    // buy frequency.
    const double error = target - observation.maxTjC;
    if (!primed) {
        prevError = error;
        primed = true;
    }
    integrator = std::clamp(integrator + gains.ki * error, 0.0, 1.0);
    const double derivative = gains.kd * (error - prevError);
    prevError = error;
    const double u =
        std::clamp(gains.kp * error + integrator + derivative, 0.0, 1.0);
    Action action;
    action.frequencyCeiling = floor + u * (cap - floor);
    return action;
}

// ----- GreedyTcoController -----------------------------------------------

GreedyTcoController::GreedyTcoController(GHz floor, GHz cap,
                                         std::size_t levels,
                                         Seconds sla_p99,
                                         double sla_penalty)
    : ladder(buildLadder(floor, cap, levels)), slaP99(sla_p99),
      slaPenalty(sla_penalty), forecaster(0.4, 0.2),
      level(ladder.size() - 1)
{}

Action
GreedyTcoController::decide(const Observation &observation)
{
    // Track load so exploration pauses while the diurnal ramp (not the
    // climber's own move) is what changes the objective. The +1 guards
    // the forecaster's strictly-increasing-time contract at t = 0.
    forecaster.observe(observation.t + 1.0, observation.meanUtil);
    const double predicted =
        forecaster.forecast(300.0); // one epoch ahead
    const bool load_swinging =
        std::abs(predicted - observation.meanUtil) > 0.05;

    const double objective =
        tcoObjective(observation, slaP99, slaPenalty);
    if (!primed) {
        prevObjective = objective;
        primed = true;
    } else if (!load_swinging && observation.epochRequests > 0.0) {
        // Keep walking while the objective improves; turn around when
        // it worsens (ties keep the direction: no thrash on plateaus).
        if (objective > prevObjective)
            direction = -direction;
        prevObjective = objective;
        const long next = static_cast<long>(level) + direction;
        if (next < 0 || next >= static_cast<long>(ladder.size()))
            direction = -direction;
        level = static_cast<std::size_t>(
            std::clamp<long>(static_cast<long>(level) + direction, 0,
                             static_cast<long>(ladder.size()) - 1));
    }

    Action action;
    action.frequencyCeiling = ladder[level];
    return action;
}

// ----- BanditController --------------------------------------------------

BanditController::BanditController(GHz floor, GHz cap,
                                   std::uint64_t seed,
                                   std::size_t levels, double epsilon_in,
                                   Seconds sla_p99)
    : ladder(buildLadder(floor, cap, levels)),
      value(ladder.size(), 0.0), pulls(ladder.size(), 0), rng(seed),
      epsilon(epsilon_in), slaP99(sla_p99),
      lastArm(ladder.size() - 1)
{
    util::fatalIf(epsilon < 0.0 || epsilon > 1.0,
                  "BanditController: epsilon out of [0,1]");
}

Action
BanditController::decide(const Observation &observation)
{
    // Credit assignment is one epoch late: this observation reflects
    // the arm pulled last time.
    if (primed && observation.epochRequests > 0.0) {
        const double reward =
            -tcoObjective(observation, slaP99, /*sla_penalty=*/50.0);
        ++pulls[lastArm];
        value[lastArm] +=
            (reward - value[lastArm]) / static_cast<double>(pulls[lastArm]);
    }
    primed = true;

    std::size_t arm;
    if (rng.uniform() < epsilon) {
        arm = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(ladder.size()) - 1));
    } else {
        // Greedy arm; unpulled arms (value 0) win early, which seeds
        // exploration of the whole ladder. Ties break low-index for
        // determinism.
        arm = 0;
        for (std::size_t i = 1; i < ladder.size(); ++i) {
            if (value[i] > value[arm])
                arm = i;
        }
    }
    lastArm = arm;

    Action action;
    action.frequencyCeiling = ladder[arm];
    return action;
}

// ----- runEpisode --------------------------------------------------------

ControlOutcome
runEpisode(ControlEnv &env, Controller &controller)
{
    env.act(controller.decide(env.observe()));
    while (env.step())
        env.act(controller.decide(env.observe()));
    return env.finish();
}

} // namespace control
} // namespace imsim
