#include "power/vf_curve.hh"

#include <algorithm>

#include "util/logging.hh"

namespace imsim {
namespace power {

VfCurve::VfCurve(GHz f_nominal, Volts v_nominal, double dv_df, Volts v_min)
    : fNominal(f_nominal), vNominal(v_nominal), slope(dv_df), vMin(v_min)
{
    util::fatalIf(f_nominal <= 0.0, "VfCurve: nominal frequency must be > 0");
    util::fatalIf(v_nominal <= 0.0, "VfCurve: nominal voltage must be > 0");
    util::fatalIf(dv_df <= 0.0, "VfCurve: slope must be > 0");
    util::fatalIf(v_min > v_nominal, "VfCurve: floor above nominal voltage");
}

Volts
VfCurve::voltageFor(GHz f) const
{
    util::fatalIf(f <= 0.0, "VfCurve::voltageFor: frequency must be > 0");
    return std::max(vMin, vNominal + slope * (f - fNominal));
}

GHz
VfCurve::frequencyFor(Volts v) const
{
    util::fatalIf(v <= 0.0, "VfCurve::frequencyFor: voltage must be > 0");
    return fNominal + (v - vNominal) / slope;
}

VfCurve
VfCurve::xeonW3175x()
{
    // 0.90 V @ 3.4 GHz all-core turbo (config B2); 0.98 V buys +23 %
    // frequency (Sec. IV) => slope = 0.08 V / (0.23 * 3.4 GHz).
    return VfCurve(3.4, 0.90, 0.08 / (0.23 * 3.4));
}

VfCurve
VfCurve::xeonServer(GHz all_core_turbo)
{
    return VfCurve(all_core_turbo, 0.90, 0.08 / (0.23 * all_core_turbo));
}

} // namespace power
} // namespace imsim
