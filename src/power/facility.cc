#include "power/facility.hh"

#include "util/logging.hh"

namespace imsim {
namespace power {

Facility::Facility(thermal::CoolingTech tech)
    : techSpec(thermal::coolingTechSpec(tech))
{}

Watts
Facility::facilityPowerPeak(Watts it_power) const
{
    util::fatalIf(it_power < 0.0, "Facility: negative IT power");
    return it_power * techSpec.peakPue;
}

Watts
Facility::facilityPowerAverage(Watts it_power) const
{
    util::fatalIf(it_power < 0.0, "Facility: negative IT power");
    return it_power * techSpec.avgPue;
}

Watts
Facility::overheadPeak(Watts it_power) const
{
    return facilityPowerPeak(it_power) - it_power;
}

ImmersionSavings
immersionSavings(Watts server_power, Watts fan_power,
                 Watts static_per_socket, int sockets,
                 thermal::CoolingTech air)
{
    util::fatalIf(server_power <= 0.0,
                  "immersionSavings: server power must be positive");
    const Facility air_facility(air);
    const Facility immersion(thermal::CoolingTech::Immersion2P);

    ImmersionSavings s{};
    s.staticPerSocket = static_per_socket;
    s.staticTotal = static_per_socket * sockets;
    s.fans = fan_power;
    // The paper computes the PUE saving on the full air facility power:
    // 700 W * 1.20 * (1.20 - 1.03)/1.20 ~= 700 * 1.20 * 14 % = 118 W.
    const double pue_air = air_facility.spec().peakPue;
    const double pue_2pic = immersion.spec().peakPue;
    const double reduction = (pue_air - pue_2pic) / pue_air;
    s.pueOverhead = server_power * pue_air * reduction;
    s.total = s.staticTotal + s.fans + s.pueOverhead;
    return s;
}

} // namespace power
} // namespace imsim
