#include "power/server_power.hh"

#include "util/logging.hh"

namespace imsim {
namespace power {

ServerPowerModel::ServerPowerModel(SocketPowerModel socket_model,
                                   int sockets,
                                   std::vector<ServerComponent> comps,
                                   GHz nominal_mem_clock)
    : socket(std::move(socket_model)), socketsN(sockets),
      components(std::move(comps)), nominalMemClock(nominal_mem_clock)
{
    util::fatalIf(sockets <= 0, "ServerPowerModel: need at least 1 socket");
    util::fatalIf(nominal_mem_clock <= 0.0,
                  "ServerPowerModel: memory clock must be positive");
}

ServerPowerBreakdown
ServerPowerModel::compute(const OperatingPoint &op,
                          const thermal::CoolingSystem &cooling,
                          GHz mem_clock) const
{
    util::fatalIf(mem_clock <= 0.0,
                  "ServerPowerModel::compute: memory clock must be positive");
    ServerPowerBreakdown out{};

    const PowerSolution sol = socket.solve(op, cooling);
    out.sockets = sol.total * socketsN;
    out.socketTj = sol.tj;

    const bool immersed = cooling.spec().fanOverheadFraction == 0.0;
    for (const auto &comp : components) {
        const double units = static_cast<double>(comp.count);
        Watts p = comp.powerEach * units;
        if (comp.isFan) {
            if (!immersed)
                out.fans += p;
            continue;
        }
        if (comp.scalesWithMemoryClock) {
            p *= mem_clock / nominalMemClock;
            out.memory += p;
        } else {
            out.other += p;
        }
    }
    out.total = out.sockets + out.memory + out.fans + out.other;
    return out;
}

ServerPowerModel
ServerPowerModel::openComputeBlade(GHz all_core_turbo)
{
    std::vector<ServerComponent> comps{
        {"DDR4 DIMM", 5.0, 24, false, true},
        {"Motherboard", 26.0, 1, false, false},
        {"FPGA", 30.0, 1, false, false},
        {"Flash drive", 12.0, 6, false, false},
        {"Fan", 7.0, 6, true, false},
    };
    return ServerPowerModel(SocketPowerModel::skylakeServer(all_core_turbo),
                            2, std::move(comps));
}

ServerPowerModel
ServerPowerModel::smallTank1Server()
{
    std::vector<ServerComponent> comps{
        {"DDR4 DIMM", 5.0, 8, false, true},
        {"Motherboard", 26.0, 1, false, false},
        {"Flash drive", 12.0, 2, false, false},
        {"Fan", 7.0, 4, true, false},
    };
    return ServerPowerModel(SocketPowerModel::xeonW3175x(), 1,
                            std::move(comps));
}

} // namespace power
} // namespace imsim
