/**
 * @file
 * CPU socket power model: activity-dependent dynamic power plus
 * temperature-dependent leakage, with the coupled power<->temperature
 * fixed point solved against a cooling system.
 *
 * Calibration (Sec. IV "Power consumption" and "Lifetime"):
 *  - A 205 W TDP socket in FC-3284 (Tj about 66 C) spends about 41 W on
 *    leakage and 164 W on dynamic power at full activity.
 *  - Raising 0.90 V -> 0.98 V and frequency by 23 % raises package power
 *    205 W -> 305 W, which an effective cubic voltage dependence of the
 *    dynamic term reproduces.
 *  - Lowering the junction 17-22 C saves about 11 W of leakage per socket
 *    (Table III discussion), reproduced by an exponential leakage term
 *    with temperature scale theta = 80 C.
 */

#ifndef IMSIM_POWER_SOCKET_POWER_HH
#define IMSIM_POWER_SOCKET_POWER_HH

#include "power/vf_curve.hh"
#include "thermal/cooling.hh"
#include "util/units.hh"

namespace imsim {
namespace power {

/** One operating point of a socket. */
struct OperatingPoint
{
    GHz frequency;   ///< Core clock [GHz].
    Volts voltage;   ///< Supply voltage [V].
    double activity; ///< Activity factor in [0, 1] (1 = fully loaded).
};

/** Result of the coupled power/temperature solve. */
struct PowerSolution
{
    Watts total;     ///< Package power [W].
    Watts dynamic;   ///< Dynamic component [W].
    Watts leakage;   ///< Leakage component [W].
    Celsius tj;      ///< Junction temperature [C].
    bool converged;  ///< Fixed point converged (always true in practice).
};

/**
 * Power model for one CPU socket.
 */
class SocketPowerModel
{
  public:
    /**
     * @param curve        Voltage-frequency curve of the part.
     * @param dyn_nominal  Dynamic power at the curve's anchor point with
     *                     activity 1 [W].
     * @param leak_ref     Leakage at the reference junction temperature [W].
     * @param leak_ref_tj  Reference junction temperature [C].
     * @param leak_theta   Exponential temperature scale of leakage [C].
     */
    SocketPowerModel(const VfCurve &curve, Watts dyn_nominal,
                     Watts leak_ref = 55.0, Celsius leak_ref_tj = 90.0,
                     Celsius leak_theta = 80.0);

    /** Dynamic power at an operating point (no temperature dependence). */
    Watts dynamicPower(const OperatingPoint &op) const;

    /** Leakage power at junction temperature @p tj. */
    Watts leakagePower(Celsius tj) const;

    /**
     * Solve the coupled power/temperature fixed point for a socket at
     * operating point @p op cooled by @p cooling.
     */
    PowerSolution solve(const OperatingPoint &op,
                        const thermal::CoolingSystem &cooling) const;

    /**
     * Maximum frequency sustainable within a package power limit
     * @p power_limit under @p cooling, with the voltage following the
     * V-f curve. This is what the turbo governor evaluates; the extra
     * frequency bin 2PIC buys in Table III comes from its lower leakage.
     *
     * @param activity Activity factor of the load.
     */
    GHz maxFrequencyAtPowerLimit(Watts power_limit,
                                 const thermal::CoolingSystem &cooling,
                                 double activity = 1.0) const;

    /** @return the part's V-f curve. */
    const VfCurve &curve() const { return vf; }

    /** @return dynamic power at the curve anchor with activity 1 [W]. */
    Watts dynamicNominal() const { return dynNominal; }

    /** @return leakage at the reference junction temperature [W]. */
    Watts leakageReference() const { return leakRef; }

    /** @return the leakage reference junction temperature [C]. */
    Celsius leakageReferenceTj() const { return leakRefTj; }

    /** @return the exponential temperature scale of leakage [C]. */
    Celsius leakageTheta() const { return leakTheta; }

    /**
     * The paper's 205 W TDP server Skylake socket (8168/8180 class) with
     * the given all-core turbo.
     */
    static SocketPowerModel skylakeServer(GHz all_core_turbo);

    /** The overclockable Xeon W-3175X (255 W TDP, 28 cores). */
    static SocketPowerModel xeonW3175x();

  private:
    VfCurve vf;
    Watts dynNominal;
    Watts leakRef;
    Celsius leakRefTj;
    Celsius leakTheta;
};

} // namespace power
} // namespace imsim

#endif // IMSIM_POWER_SOCKET_POWER_HH
