/**
 * @file
 * Voltage-frequency curves.
 *
 * Encodes the experimental curve the paper obtained from the overclockable
 * Xeon W-3175X (Sec. IV "Lifetime"): raising package power from 205 W to
 * 305 W requires raising the voltage from 0.90 V to 0.98 V and yields 23 %
 * higher frequency than all-core turbo. The curve is linearised around the
 * all-core-turbo operating point, which matches that data over the studied
 * range.
 */

#ifndef IMSIM_POWER_VF_CURVE_HH
#define IMSIM_POWER_VF_CURVE_HH

#include "util/units.hh"

namespace imsim {
namespace power {

/**
 * Linearised voltage-frequency curve with a voltage floor.
 *
 * voltageFor(f) = max(vMin, vNominal + slope * (f - fNominal)).
 */
class VfCurve
{
  public:
    /**
     * @param f_nominal  All-core-turbo frequency anchor [GHz].
     * @param v_nominal  Voltage at the anchor [V].
     * @param slope      dV/df [V/GHz] (> 0).
     * @param v_min      Voltage floor at low frequency [V].
     */
    VfCurve(GHz f_nominal, Volts v_nominal, double slope, Volts v_min = 0.70);

    /** Minimum stable voltage required to run at frequency @p f. */
    Volts voltageFor(GHz f) const;

    /** Maximum stable frequency at voltage @p v (inverse of voltageFor). */
    GHz frequencyFor(Volts v) const;

    /** @return the anchor frequency [GHz]. */
    GHz nominalFrequency() const { return fNominal; }

    /** @return the anchor voltage [V]. */
    Volts nominalVoltage() const { return vNominal; }

    /**
     * Voltage margin at an operating point: how far the supplied voltage
     * @p v exceeds the required voltage for @p f. Negative margins are
     * unstable (Sec. IV "Computational stability").
     */
    Volts margin(GHz f, Volts v) const { return v - voltageFor(f); }

    /**
     * The Xeon W-3175X curve used throughout the paper: 0.90 V at 3.4 GHz
     * all-core turbo; +23 % frequency at 0.98 V.
     */
    static VfCurve xeonW3175x();

    /**
     * Curve for the locked server Skylakes (8168/8180), anchored at their
     * all-core turbo with the same slope as the overclockable part.
     */
    static VfCurve xeonServer(GHz all_core_turbo);

  private:
    GHz fNominal;
    Volts vNominal;
    double slope;
    Volts vMin;
};

} // namespace power
} // namespace imsim

#endif // IMSIM_POWER_VF_CURVE_HH
