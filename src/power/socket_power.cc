#include "power/socket_power.hh"

#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace power {

SocketPowerModel::SocketPowerModel(const VfCurve &curve, Watts dyn_nominal,
                                   Watts leak_ref, Celsius leak_ref_tj,
                                   Celsius leak_theta)
    : vf(curve), dynNominal(dyn_nominal), leakRef(leak_ref),
      leakRefTj(leak_ref_tj), leakTheta(leak_theta)
{
    util::fatalIf(dyn_nominal <= 0.0,
                  "SocketPowerModel: dynamic power must be positive");
    util::fatalIf(leak_ref < 0.0, "SocketPowerModel: negative leakage");
    util::fatalIf(leak_theta <= 0.0,
                  "SocketPowerModel: leakage theta must be positive");
}

Watts
SocketPowerModel::dynamicPower(const OperatingPoint &op) const
{
    util::fatalIf(op.activity < 0.0 || op.activity > 1.0,
                  "SocketPowerModel: activity out of [0,1]");
    util::fatalIf(op.frequency <= 0.0 || op.voltage <= 0.0,
                  "SocketPowerModel: non-positive operating point");
    const double v_ratio = op.voltage / vf.nominalVoltage();
    const double f_ratio = op.frequency / vf.nominalFrequency();
    // Effective cubic voltage dependence: classic C*V^2*f switching power
    // plus the voltage-dependent short-circuit and clock-distribution
    // currents; calibrated to the paper's 205 W -> 305 W measurement.
    return dynNominal * op.activity * v_ratio * v_ratio * v_ratio * f_ratio;
}

Watts
SocketPowerModel::leakagePower(Celsius tj) const
{
    return leakRef * std::exp((tj - leakRefTj) / leakTheta);
}

PowerSolution
SocketPowerModel::solve(const OperatingPoint &op,
                        const thermal::CoolingSystem &cooling) const
{
    PowerSolution sol{};
    sol.dynamic = dynamicPower(op);

    // Fixed point: P = Pdyn + Pleak(Tj(P)). The map is a contraction
    // (dPleak/dTj * Rth << 1), so plain iteration converges fast.
    Watts total = sol.dynamic + leakagePower(leakRefTj);
    sol.converged = false;
    for (int iter = 0; iter < 60; ++iter) {
        const Celsius tj = cooling.junctionTemperature(total);
        const Watts next = sol.dynamic + leakagePower(tj);
        if (std::abs(next - total) < 1e-6) {
            total = next;
            sol.converged = true;
            break;
        }
        total = next;
    }
    sol.total = total;
    sol.tj = cooling.junctionTemperature(total);
    sol.leakage = leakagePower(sol.tj);
    return sol;
}

GHz
SocketPowerModel::maxFrequencyAtPowerLimit(
    Watts power_limit, const thermal::CoolingSystem &cooling,
    double activity) const
{
    util::fatalIf(power_limit <= 0.0,
                  "maxFrequencyAtPowerLimit: limit must be positive");
    // Bisect on frequency; package power is monotonic in frequency along
    // the V-f curve.
    GHz lo = 0.5;
    GHz hi = 8.0;
    const auto power_at = [&](GHz f) {
        const OperatingPoint op{f, vf.voltageFor(f), activity};
        return solve(op, cooling).total;
    };
    if (power_at(hi) <= power_limit)
        return hi;
    if (power_at(lo) > power_limit)
        return lo;
    for (int iter = 0; iter < 60; ++iter) {
        const GHz mid = 0.5 * (lo + hi);
        if (power_at(mid) <= power_limit)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

SocketPowerModel
SocketPowerModel::skylakeServer(GHz all_core_turbo)
{
    // 205 W TDP: about 149 W dynamic at the air-cooled all-core-turbo
    // anchor (Table III: the part sustains its all-core turbo exactly at
    // TDP with ~56 W of leakage at Tj ~90-92 C); in 2PIC the leakage
    // saving buys one extra 100 MHz bin within the same TDP.
    return SocketPowerModel(VfCurve::xeonServer(all_core_turbo), 148.0);
}

SocketPowerModel
SocketPowerModel::xeonW3175x()
{
    // 255 W TDP part: same curve family, scaled dynamic power.
    return SocketPowerModel(VfCurve::xeonW3175x(), 205.0);
}

} // namespace power
} // namespace imsim
