/**
 * @file
 * Whole-server power aggregation.
 *
 * Encodes the paper's Open Compute server budget (Sec. III): 410 W for two
 * 205 W sockets, 120 W for 24 DDR4 DIMMs (5 W each), 26 W motherboard,
 * 30 W FPGA, 72 W storage (6 flash drives at 12 W), and 42 W of fans —
 * 700 W total. Immersion removes the fans; memory power scales with the
 * memory frequency when overclocked.
 */

#ifndef IMSIM_POWER_SERVER_POWER_HH
#define IMSIM_POWER_SERVER_POWER_HH

#include <string>
#include <vector>

#include "power/socket_power.hh"
#include "thermal/cooling.hh"
#include "util/units.hh"

namespace imsim {
namespace power {

/** Static (non-CPU) component of the server power budget. */
struct ServerComponent
{
    std::string name;
    Watts powerEach;   ///< Power per unit at nominal settings [W].
    int count;         ///< Number of units.
    bool isFan;        ///< Fans are removed under immersion.
    bool scalesWithMemoryClock; ///< DIMM power scales with memory clock.
};

/** Breakdown of a server power computation. */
struct ServerPowerBreakdown
{
    Watts sockets;   ///< Sum of socket package power [W].
    Watts memory;    ///< DIMM power [W].
    Watts fans;      ///< Fan power (0 under immersion) [W].
    Watts other;     ///< Motherboard, FPGA, storage [W].
    Watts total;     ///< Total server power [W].
    Celsius socketTj;///< Junction temperature of the hottest socket [C].
};

/**
 * Power model of a dual-socket Open Compute server.
 */
class ServerPowerModel
{
  public:
    /**
     * @param socket        Socket power model (both sockets identical).
     * @param sockets       Socket count (2 for the paper's blades).
     * @param components    Non-CPU component budget.
     * @param nominal_mem_clock Memory clock at which DIMM power is rated.
     */
    ServerPowerModel(SocketPowerModel socket, int sockets,
                     std::vector<ServerComponent> components,
                     GHz nominal_mem_clock = 2.4);

    /**
     * Compute the server power breakdown.
     *
     * @param op        Per-socket operating point.
     * @param cooling   Cooling system (decides fan presence and leakage).
     * @param mem_clock Memory clock [GHz] (DIMM power scales linearly).
     */
    ServerPowerBreakdown compute(const OperatingPoint &op,
                                 const thermal::CoolingSystem &cooling,
                                 GHz mem_clock = 2.4) const;

    /** @return the socket model. */
    const SocketPowerModel &socketModel() const { return socket; }

    /** @return number of sockets. */
    int socketCount() const { return socketsN; }

    /** The paper's 700 W Open Compute blade (Sec. III). */
    static ServerPowerModel openComputeBlade(GHz all_core_turbo = 2.7);

    /** Small-tank #1 workstation server (Xeon W-3175X, single socket). */
    static ServerPowerModel smallTank1Server();

  private:
    SocketPowerModel socket;
    int socketsN;
    std::vector<ServerComponent> components;
    GHz nominalMemClock;
};

} // namespace power
} // namespace imsim

#endif // IMSIM_POWER_SERVER_POWER_HH
