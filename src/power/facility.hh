/**
 * @file
 * Facility-level power accounting: PUE, and the per-server power savings
 * decomposition the paper derives in Sec. IV ("Power consumption"):
 * 2 x 11 W static, 42 W of fans, and 118 W of PUE overhead — about 182 W
 * per 700 W server when moving from evaporative air cooling to 2PIC.
 */

#ifndef IMSIM_POWER_FACILITY_HH
#define IMSIM_POWER_FACILITY_HH

#include "thermal/cooling.hh"
#include "util/units.hh"

namespace imsim {
namespace power {

/** Per-server savings from moving a server from air cooling to 2PIC. */
struct ImmersionSavings
{
    Watts staticPerSocket;  ///< Leakage saving per socket [W].
    Watts staticTotal;      ///< Leakage saving, all sockets [W].
    Watts fans;             ///< Fan power removed [W].
    Watts pueOverhead;      ///< Facility overhead saved via lower PUE [W].
    Watts total;            ///< Sum of the above [W].
};

/** Facility power accounting for one cooling technology. */
class Facility
{
  public:
    /** @param tech Cooling technology of the facility. */
    explicit Facility(thermal::CoolingTech tech);

    /** Facility power for @p it_power of IT load at peak PUE [W]. */
    Watts facilityPowerPeak(Watts it_power) const;

    /** Facility power for @p it_power of IT load at average PUE [W]. */
    Watts facilityPowerAverage(Watts it_power) const;

    /** Cooling + distribution overhead at peak PUE [W]. */
    Watts overheadPeak(Watts it_power) const;

    /** @return the technology spec (Table I row). */
    const thermal::CoolingTechSpec &spec() const { return techSpec; }

  private:
    thermal::CoolingTechSpec techSpec;
};

/**
 * Decompose the per-server power savings of switching @p server_power of
 * air-cooled IT (at air peak PUE) to 2PIC, as in Sec. IV.
 *
 * @param server_power      Rated server power under air [W].
 * @param fan_power         Fan power inside that server [W].
 * @param static_per_socket Leakage saved per socket from cooler junctions.
 * @param sockets           Socket count.
 * @param air               Air technology to compare against.
 */
ImmersionSavings immersionSavings(Watts server_power, Watts fan_power,
                                  Watts static_per_socket, int sockets,
                                  thermal::CoolingTech air =
                                      thermal::CoolingTech::DirectEvaporative);

} // namespace power
} // namespace imsim

#endif // IMSIM_POWER_FACILITY_HH
