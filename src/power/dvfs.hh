/**
 * @file
 * DVFS transition modelling.
 *
 * Sec. V's auto-scaling argument rests on the asymmetry the paper states
 * explicitly: "changing frequencies only takes tens of microseconds
 * [43], which is much faster than scaling out" (tens of seconds to
 * minutes). This module models the transition itself: per-step latency
 * (PLL relock plus voltage-ramp time when stepping up through the
 * regulator's slew rate), transition energy, and a small governor that
 * sequences multi-bin changes.
 */

#ifndef IMSIM_POWER_DVFS_HH
#define IMSIM_POWER_DVFS_HH

#include <vector>

#include "power/vf_curve.hh"
#include "util/units.hh"

namespace imsim {
namespace power {

/** One frequency transition's cost. */
struct DvfsTransition
{
    GHz from;
    GHz to;
    Seconds latency;   ///< Wall-clock time the change takes [s].
    double energyJ;    ///< Extra energy spent during the ramp [J].
    int steps;         ///< Frequency bins traversed.
};

/**
 * DVFS transition model for one voltage/frequency domain.
 */
class DvfsModel
{
  public:
    /**
     * @param curve          The domain's V-f curve (voltage targets).
     * @param bin            Frequency bin granularity [GHz].
     * @param pll_relock     PLL relock time per frequency step [s].
     * @param vr_slew        Voltage-regulator slew rate [V/s].
     * @param step_energy_j  Fixed energy overhead per step [J].
     */
    explicit DvfsModel(VfCurve curve, GHz bin = 0.1,
                       Seconds pll_relock = 5e-6,
                       double vr_slew = 5e-3 / 1e-6,
                       double step_energy_j = 2e-3);

    /**
     * Cost of moving the domain from @p from to @p to.
     *
     * Up-transitions ramp voltage first, then frequency (latency is the
     * sum); down-transitions drop frequency first and then relax the
     * voltage off the critical path, so only the PLL relocks are paid.
     */
    DvfsTransition transition(GHz from, GHz to) const;

    /**
     * Amortized overhead of an auto-scaler that re-evaluates frequency
     * every @p period seconds and changes it with probability
     * @p change_prob: fraction of time lost to transitions.
     */
    double dutyCycleOverhead(Seconds period, double change_prob,
                             GHz typical_step = 0.7) const;

    /** @return the frequency bin granularity. */
    GHz bin() const { return binSize; }

    /**
     * The headline comparison of Sec. V: ratio between the VM scale-out
     * latency and a full-range scale-up transition. With the paper's
     * numbers this is about six orders of magnitude.
     */
    double scaleOutToScaleUpRatio(Seconds scale_out_latency,
                                  GHz f_lo, GHz f_hi) const;

  private:
    VfCurve curve;
    GHz binSize;
    Seconds pllRelock;
    double vrSlew;
    double stepEnergyJ;
};

} // namespace power
} // namespace imsim

#endif // IMSIM_POWER_DVFS_HH
