/**
 * @file
 * Power capping: a RAPL-style per-socket capper and a datacenter power
 * hierarchy with oversubscription and priority-aware capping.
 *
 * Sec. IV ("Power consumption") warns that overclocking in oversubscribed
 * datacenters increases the chance of hitting delivery limits and
 * triggering capping mechanisms that rely on frequency reduction — which
 * can negate overclocking gains. The hierarchy here reproduces that
 * interaction: budgets at the (feed -> rack -> server) levels, capping
 * applied lowest-priority-first when breached (the workload-priority-based
 * schemes of [38], [62], [70]).
 */

#ifndef IMSIM_POWER_CAPPING_HH
#define IMSIM_POWER_CAPPING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hh"

namespace imsim {

namespace obs {
class Counter;
class MetricRegistry;
} // namespace obs

namespace power {

/**
 * RAPL-style power capper for one socket: clamps requested frequency so
 * that estimated package power stays under the running average limit.
 */
class RaplCapper
{
  public:
    /**
     * @param power_limit Package power limit [W].
     * @param f_min       Lowest frequency the capper may force [GHz].
     */
    RaplCapper(Watts power_limit, GHz f_min = 1.0);

    /**
     * Clamp a requested frequency.
     *
     * @param requested  Frequency the governor wants [GHz].
     * @param power_at   Callable: package power at a given frequency [W].
     * @return the highest frequency <= requested whose power fits the cap.
     */
    template <typename PowerFn>
    GHz
    clamp(GHz requested, PowerFn &&power_at) const
    {
        if (power_at(requested) <= limit)
            return requested;
        GHz lo = fMin;
        GHz hi = requested;
        if (power_at(lo) > limit)
            return lo; // Even the floor breaches; deliver the floor.
        for (int iter = 0; iter < 50; ++iter) {
            const GHz mid = 0.5 * (lo + hi);
            if (power_at(mid) <= limit)
                lo = mid;
            else
                hi = mid;
        }
        return lo;
    }

    /** @return the configured power limit [W]. */
    Watts powerLimit() const { return limit; }

    /** Change the power limit (e.g. to enable overclocking). */
    void setPowerLimit(Watts watts);

  private:
    Watts limit;
    GHz fMin;
};

/** A power consumer inside the hierarchy. */
struct PowerConsumer
{
    std::string name;
    Watts demand;      ///< Uncapped power demand [W].
    Watts minimum;     ///< Power floor when fully capped [W].
    int priority;      ///< Higher value = more critical, capped last.
};

/** Per-consumer allocation after capping. */
struct CapAllocation
{
    std::string name;
    Watts granted;     ///< Power the consumer may draw [W].
    bool capped;       ///< Whether it received less than its demand.
};

/**
 * Caller-owned scratch buffers for the allocation hot path: results are
 * written here (indexed like the consumer vector) and the internal
 * priority ordering reuses the index array, so a warm scratch makes
 * PowerBudget::allocate() allocation-free. Reuse one instance across
 * calls (e.g. across simulated minutes).
 */
struct AllocScratch
{
    /** Power granted to consumer i [W]. */
    std::vector<Watts> granted;
    /** Whether consumer i received less than its demand (0/1). */
    std::vector<std::uint8_t> capped;
    /** Internal: consumer indices ordered by (priority desc, index). */
    std::vector<std::size_t> order;
};

/**
 * One level of the datacenter power-delivery hierarchy (e.g. a rack PDU or
 * row feed) with an oversubscribed budget.
 */
class PowerBudget
{
  public:
    /**
     * @param capacity         Physical circuit capacity [W].
     * @param oversubscription Provisioned demand / capacity ratio >= 1;
     *                         e.g. 1.2 means 20 % oversubscribed.
     */
    explicit PowerBudget(Watts capacity, double oversubscription = 1.0);

    /** @return circuit capacity [W]. */
    Watts capacity() const { return cap; }

    /**
     * Change the circuit capacity [W], e.g. a feed derate while a
     * transformer or UPS leg is out (the power-feed fault). The
     * oversubscription ratio is kept, so provisionable() shrinks with
     * the cap; restore by setting the original capacity back.
     */
    void setCapacity(Watts capacity);

    /** @return demand providers are allowed to provision [W]. */
    Watts provisionable() const { return cap * oversub; }

    /**
     * Select how allocate() handles a brownout (total minima exceeding
     * capacity). By default it is fatal — with nominal capacity that is
     * a sizing error. Under fault injection a derated feed can make it
     * happen legitimately, so recoverable mode instead scales every
     * consumer's minimum uniformly by capacity / total-minimum and
     * counts the event in brownouts().
     */
    void setRecoverableBrownout(bool recoverable);

    /** @return brownout allocations survived in recoverable mode. */
    std::uint64_t brownouts() const { return brownoutCount; }

    /**
     * Allocate power across consumers, priority-aware:
     * if total demand fits the capacity everyone gets their demand;
     * otherwise lower-priority consumers are reduced toward their
     * minimum first (uniform scaling within a priority class), then the
     * next priority class, and so on.
     */
    std::vector<CapAllocation>
    allocate(const std::vector<PowerConsumer> &consumers) const;

    /**
     * Scratch-space overload of allocate(): identical grants (consumers
     * referred to by index, not name), written into @p scratch's
     * buffers. With a warm scratch the call performs no heap
     * allocation, which is what the datacenter minute loop runs on.
     *
     * @param validate Check per-consumer invariants (non-negative
     *        power, minimum <= demand) before allocating. Hot callers
     *        whose inputs hold structurally pass false to keep the
     *        checks off the per-minute path; the brownout fatal (total
     *        minimum exceeding capacity) fires regardless.
     */
    void allocate(const std::vector<PowerConsumer> &consumers,
                  AllocScratch &scratch, bool validate = true) const;

    /** @return true when @p consumers' total demand breaches capacity. */
    bool breached(const std::vector<PowerConsumer> &consumers) const;

    /**
     * Publish this budget into @p registry under @p prefix: counters
     * `<prefix>.allocations` (allocate() calls),
     * `<prefix>.breaches` (allocations where demand exceeded
     * capacity), `<prefix>.capped_consumers` (consumers granted less
     * than their demand), `<prefix>.brownouts` (recoverable-mode
     * brownout allocations). The registry must outlive the budget.
     */
    void attachMetrics(obs::MetricRegistry &registry,
                       const std::string &prefix = "feed");

  private:
    Watts cap;
    double oversub;
    bool recoverableBrownout = false;
    mutable std::uint64_t brownoutCount = 0;
    obs::Counter *allocationMetric = nullptr;
    obs::Counter *breachMetric = nullptr;
    obs::Counter *cappedMetric = nullptr;
    obs::Counter *brownoutMetric = nullptr;
};

} // namespace power
} // namespace imsim

#endif // IMSIM_POWER_CAPPING_HH
