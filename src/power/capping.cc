#include "power/capping.hh"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "util/logging.hh"

namespace imsim {
namespace power {

RaplCapper::RaplCapper(Watts power_limit, GHz f_min)
    : limit(power_limit), fMin(f_min)
{
    util::fatalIf(power_limit <= 0.0, "RaplCapper: limit must be positive");
    util::fatalIf(f_min <= 0.0, "RaplCapper: frequency floor must be > 0");
}

void
RaplCapper::setPowerLimit(Watts watts)
{
    util::fatalIf(watts <= 0.0, "RaplCapper: limit must be positive");
    limit = watts;
}

PowerBudget::PowerBudget(Watts capacity, double oversubscription)
    : cap(capacity), oversub(oversubscription)
{
    util::fatalIf(capacity <= 0.0, "PowerBudget: capacity must be positive");
    util::fatalIf(oversubscription < 1.0,
                  "PowerBudget: oversubscription ratio must be >= 1");
}

void
PowerBudget::setCapacity(Watts capacity)
{
    util::fatalIf(capacity <= 0.0, "PowerBudget: capacity must be positive");
    cap = capacity;
}

void
PowerBudget::setRecoverableBrownout(bool recoverable)
{
    recoverableBrownout = recoverable;
}

bool
PowerBudget::breached(const std::vector<PowerConsumer> &consumers) const
{
    Watts total = 0.0;
    for (const auto &c : consumers)
        total += c.demand;
    return total > cap;
}

void
PowerBudget::attachMetrics(obs::MetricRegistry &registry,
                           const std::string &prefix)
{
    allocationMetric = &registry.counter(prefix + ".allocations");
    breachMetric = &registry.counter(prefix + ".breaches");
    cappedMetric = &registry.counter(prefix + ".capped_consumers");
    brownoutMetric = &registry.counter(prefix + ".brownouts");
}

std::vector<CapAllocation>
PowerBudget::allocate(const std::vector<PowerConsumer> &consumers) const
{
    AllocScratch scratch;
    allocate(consumers, scratch, true);
    std::vector<CapAllocation> out;
    out.reserve(consumers.size());
    for (std::size_t i = 0; i < consumers.size(); ++i)
        out.push_back({consumers[i].name, scratch.granted[i],
                       scratch.capped[i] != 0});
    return out;
}

void
PowerBudget::allocate(const std::vector<PowerConsumer> &consumers,
                      AllocScratch &scratch, bool validate) const
{
    obs::ProfScope prof("power.allocate");
    const std::size_t n = consumers.size();

    // Input validation hoisted out of the allocation loops: one pass,
    // skippable by hot callers whose inputs hold by construction.
    if (validate) {
        for (const auto &c : consumers) {
            util::fatalIf(c.demand < 0.0 || c.minimum < 0.0,
                          "PowerBudget::allocate: negative power");
            util::fatalIf(c.minimum > c.demand,
                          "PowerBudget::allocate: minimum exceeds demand");
        }
    }

    Watts demand_total = 0.0;
    Watts minimum_total = 0.0;
    for (const auto &c : consumers) {
        demand_total += c.demand;
        minimum_total += c.minimum;
    }

    if (allocationMetric)
        allocationMetric->inc();

    scratch.granted.resize(n);
    scratch.capped.resize(n);

    if (demand_total <= cap) {
        for (std::size_t i = 0; i < n; ++i) {
            scratch.granted[i] = consumers[i].demand;
            scratch.capped[i] = 0;
        }
        return;
    }

    if (breachMetric)
        breachMetric->inc();

    if (minimum_total > cap) {
        // Even fully capped demand breaches the circuit. With nominal
        // capacity that is a sizing error and stays fatal; on a derated
        // feed (fault injection) recoverable mode sheds below the
        // floors instead, scaling every minimum uniformly so the draw
        // exactly fits the derated circuit.
        util::fatalIf(!recoverableBrownout,
                      "PowerBudget::allocate: even fully capped demand "
                      "breaches circuit capacity (brownout)");
        ++brownoutCount;
        if (brownoutMetric)
            brownoutMetric->inc();
        const double frac = cap / minimum_total;
        for (std::size_t i = 0; i < n; ++i) {
            scratch.granted[i] = consumers[i].minimum * frac;
            const bool was_capped =
                scratch.granted[i] + 1e-9 < consumers[i].demand;
            if (was_capped && cappedMetric)
                cappedMetric->inc();
            scratch.capped[i] = was_capped ? 1 : 0;
        }
        return;
    }

    // Shed demand lowest-priority-first: order the index array by
    // descending priority (ties by consumer index, so grants match the
    // old priority-map walk bit for bit); all classes before the
    // marginal class keep their demand, classes after drop to their
    // minimum, and the marginal class is scaled uniformly between
    // minimum and demand.
    scratch.order.resize(n);
    std::iota(scratch.order.begin(), scratch.order.end(), std::size_t{0});
    std::sort(scratch.order.begin(), scratch.order.end(),
              [&consumers](std::size_t a, std::size_t b) {
                  if (consumers[a].priority != consumers[b].priority)
                      return consumers[a].priority > consumers[b].priority;
                  return a < b;
              });

    for (std::size_t i = 0; i < n; ++i)
        scratch.granted[i] = consumers[i].minimum;
    Watts committed = minimum_total;

    // Restore demand to the highest-priority classes first.
    std::size_t begin = 0;
    while (begin < n) {
        const int prio = consumers[scratch.order[begin]].priority;
        std::size_t end = begin;
        Watts class_extra = 0.0;
        while (end < n && consumers[scratch.order[end]].priority == prio) {
            const auto &c = consumers[scratch.order[end]];
            class_extra += c.demand - c.minimum;
            ++end;
        }
        const Watts room = cap - committed;
        if (class_extra <= room) {
            for (std::size_t j = begin; j < end; ++j)
                scratch.granted[scratch.order[j]] =
                    consumers[scratch.order[j]].demand;
            committed += class_extra;
        } else {
            const double frac = class_extra > 0.0 ? room / class_extra : 0.0;
            for (std::size_t j = begin; j < end; ++j) {
                const auto &c = consumers[scratch.order[j]];
                scratch.granted[scratch.order[j]] =
                    c.minimum + frac * (c.demand - c.minimum);
            }
            committed = cap;
            break;
        }
        begin = end;
    }

    for (std::size_t i = 0; i < n; ++i) {
        const bool was_capped =
            scratch.granted[i] + 1e-9 < consumers[i].demand;
        if (was_capped && cappedMetric)
            cappedMetric->inc();
        scratch.capped[i] = was_capped ? 1 : 0;
    }
}

} // namespace power
} // namespace imsim
