#include "power/capping.hh"

#include <algorithm>
#include <map>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace imsim {
namespace power {

RaplCapper::RaplCapper(Watts power_limit, GHz f_min)
    : limit(power_limit), fMin(f_min)
{
    util::fatalIf(power_limit <= 0.0, "RaplCapper: limit must be positive");
    util::fatalIf(f_min <= 0.0, "RaplCapper: frequency floor must be > 0");
}

void
RaplCapper::setPowerLimit(Watts watts)
{
    util::fatalIf(watts <= 0.0, "RaplCapper: limit must be positive");
    limit = watts;
}

PowerBudget::PowerBudget(Watts capacity, double oversubscription)
    : cap(capacity), oversub(oversubscription)
{
    util::fatalIf(capacity <= 0.0, "PowerBudget: capacity must be positive");
    util::fatalIf(oversubscription < 1.0,
                  "PowerBudget: oversubscription ratio must be >= 1");
}

bool
PowerBudget::breached(const std::vector<PowerConsumer> &consumers) const
{
    Watts total = 0.0;
    for (const auto &c : consumers)
        total += c.demand;
    return total > cap;
}

void
PowerBudget::attachMetrics(obs::MetricRegistry &registry,
                           const std::string &prefix)
{
    allocationMetric = &registry.counter(prefix + ".allocations");
    breachMetric = &registry.counter(prefix + ".breaches");
    cappedMetric = &registry.counter(prefix + ".capped_consumers");
}

std::vector<CapAllocation>
PowerBudget::allocate(const std::vector<PowerConsumer> &consumers) const
{
    Watts demand_total = 0.0;
    Watts minimum_total = 0.0;
    for (const auto &c : consumers) {
        util::fatalIf(c.demand < 0.0 || c.minimum < 0.0,
                      "PowerBudget::allocate: negative power");
        util::fatalIf(c.minimum > c.demand,
                      "PowerBudget::allocate: minimum exceeds demand");
        demand_total += c.demand;
        minimum_total += c.minimum;
    }

    if (allocationMetric)
        allocationMetric->inc();

    std::vector<CapAllocation> out;
    out.reserve(consumers.size());

    if (demand_total <= cap) {
        for (const auto &c : consumers)
            out.push_back({c.name, c.demand, false});
        return out;
    }

    if (breachMetric)
        breachMetric->inc();

    util::fatalIf(minimum_total > cap,
                  "PowerBudget::allocate: even fully capped demand breaches "
                  "circuit capacity (brownout)");

    // Shed demand lowest-priority-first. Group consumers by priority; all
    // classes above the marginal class keep their demand, classes below
    // drop to their minimum, and the marginal class is scaled uniformly
    // between minimum and demand.
    std::map<int, std::vector<std::size_t>> by_prio;
    for (std::size_t i = 0; i < consumers.size(); ++i)
        by_prio[consumers[i].priority].push_back(i);

    std::vector<Watts> granted(consumers.size());
    for (std::size_t i = 0; i < consumers.size(); ++i)
        granted[i] = consumers[i].minimum;
    Watts committed = minimum_total;

    // Restore demand to the highest-priority classes first.
    for (auto it = by_prio.rbegin(); it != by_prio.rend(); ++it) {
        Watts class_extra = 0.0;
        for (std::size_t i : it->second)
            class_extra += consumers[i].demand - consumers[i].minimum;
        const Watts room = cap - committed;
        if (class_extra <= room) {
            for (std::size_t i : it->second)
                granted[i] = consumers[i].demand;
            committed += class_extra;
        } else {
            const double frac = class_extra > 0.0 ? room / class_extra : 0.0;
            for (std::size_t i : it->second) {
                granted[i] = consumers[i].minimum +
                             frac * (consumers[i].demand -
                                     consumers[i].minimum);
            }
            committed = cap;
            break;
        }
    }

    for (std::size_t i = 0; i < consumers.size(); ++i) {
        const bool was_capped = granted[i] + 1e-9 < consumers[i].demand;
        if (was_capped && cappedMetric)
            cappedMetric->inc();
        out.push_back({consumers[i].name, granted[i], was_capped});
    }
    return out;
}

} // namespace power
} // namespace imsim
