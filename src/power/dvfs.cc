#include "power/dvfs.hh"

#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace power {

DvfsModel::DvfsModel(VfCurve vf_curve, GHz bin, Seconds pll_relock,
                     double vr_slew, double step_energy_j)
    : curve(vf_curve), binSize(bin), pllRelock(pll_relock), vrSlew(vr_slew),
      stepEnergyJ(step_energy_j)
{
    util::fatalIf(bin <= 0.0, "DvfsModel: bin must be positive");
    util::fatalIf(pll_relock < 0.0, "DvfsModel: negative relock time");
    util::fatalIf(vr_slew <= 0.0, "DvfsModel: slew rate must be positive");
    util::fatalIf(step_energy_j < 0.0, "DvfsModel: negative step energy");
}

DvfsTransition
DvfsModel::transition(GHz from, GHz to) const
{
    util::fatalIf(from <= 0.0 || to <= 0.0,
                  "DvfsModel::transition: non-positive frequency");
    DvfsTransition out{};
    out.from = from;
    out.to = to;
    out.steps = static_cast<int>(
        std::ceil(std::abs(to - from) / binSize - 1e-9));
    if (out.steps == 0) {
        out.latency = 0.0;
        out.energyJ = 0.0;
        return out;
    }

    const Volts v_from = curve.voltageFor(from);
    const Volts v_to = curve.voltageFor(to);
    const Seconds relock = pllRelock * out.steps;
    if (to > from) {
        // Voltage must arrive before the clock: ramp then relock.
        const Seconds ramp = (v_to - v_from) / vrSlew;
        out.latency = ramp + relock;
    } else {
        // Clock drops immediately; voltage relaxes off-path.
        out.latency = relock;
    }
    out.energyJ = stepEnergyJ * out.steps;
    return out;
}

double
DvfsModel::dutyCycleOverhead(Seconds period, double change_prob,
                             GHz typical_step) const
{
    util::fatalIf(period <= 0.0, "dutyCycleOverhead: period must be > 0");
    util::fatalIf(change_prob < 0.0 || change_prob > 1.0,
                  "dutyCycleOverhead: probability out of [0,1]");
    const DvfsTransition up = transition(3.4, 3.4 + typical_step);
    return change_prob * up.latency / period;
}

double
DvfsModel::scaleOutToScaleUpRatio(Seconds scale_out_latency, GHz f_lo,
                                  GHz f_hi) const
{
    util::fatalIf(scale_out_latency <= 0.0,
                  "scaleOutToScaleUpRatio: latency must be positive");
    const DvfsTransition up = transition(f_lo, f_hi);
    util::panicIf(up.latency <= 0.0,
                  "scaleOutToScaleUpRatio: degenerate transition");
    return scale_out_latency / up.latency;
}

} // namespace power
} // namespace imsim
