#include "vm/provisioning.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"
#include "util/stats.hh"

namespace imsim {
namespace vm {

namespace {

void
validatePhase(const ProvisioningPhase &phase, const char *name)
{
    util::fatalIf(phase.mean <= 0.0,
                  std::string("ProvisioningModel: ") + name +
                      " mean must be positive");
    util::fatalIf(phase.cv <= 0.0,
                  std::string("ProvisioningModel: ") + name +
                      " cv must be positive");
    util::fatalIf(phase.floor < 0.0,
                  std::string("ProvisioningModel: ") + name +
                      " floor must be non-negative");
}

} // namespace

ProvisioningModel::ProvisioningModel()
    : ProvisioningModel({4.0, 0.8, 0.5},   // Placement.
                        {18.0, 0.9, 4.0},  // Image fetch.
                        {25.0, 0.4, 10.0}, // Guest boot.
                        {13.0, 0.7, 2.0})  // App warmup. ~60 s total.
{}

ProvisioningModel::ProvisioningModel(ProvisioningPhase placement,
                                     ProvisioningPhase image,
                                     ProvisioningPhase boot,
                                     ProvisioningPhase warmup)
    : placementPhase(placement), imagePhase(image), bootPhase(boot),
      warmupPhase(warmup)
{
    validatePhase(placement, "placement");
    validatePhase(image, "image");
    validatePhase(boot, "boot");
    validatePhase(warmup, "warmup");
}

Seconds
ProvisioningModel::drawPhase(util::Rng &rng, const ProvisioningPhase &p)
{
    return std::max(p.floor, rng.lognormalMeanCv(p.mean, p.cv));
}

ProvisioningSample
ProvisioningModel::sample(util::Rng &rng) const
{
    ProvisioningSample out;
    out.placement = drawPhase(rng, placementPhase);
    out.imageFetch = drawPhase(rng, imagePhase);
    out.guestBoot = drawPhase(rng, bootPhase);
    out.appWarmup = drawPhase(rng, warmupPhase);
    out.total =
        out.placement + out.imageFetch + out.guestBoot + out.appWarmup;
    return out;
}

Seconds
ProvisioningModel::meanTotal() const
{
    // Floors truncate only the deep left tail; the phase means dominate.
    return placementPhase.mean + imagePhase.mean + bootPhase.mean +
           warmupPhase.mean;
}

Seconds
ProvisioningModel::percentileTotal(util::Rng &rng, double p,
                                   int samples) const
{
    util::fatalIf(samples <= 0,
                  "ProvisioningModel: sample count must be positive");
    util::PercentileEstimator estimator;
    for (int i = 0; i < samples; ++i)
        estimator.add(sample(rng).total);
    return estimator.percentile(p);
}

} // namespace vm
} // namespace imsim
