/**
 * @file
 * VM provisioning-latency model.
 *
 * Sec. V: "scaling out is expensive today, as it may take tens of
 * seconds to even minutes to deploy new VMs [4]". The paper's testbed
 * pins this at 60 s; real deployments draw it from a distribution whose
 * phases (placement, image fetch, guest boot, application warmup) each
 * vary. This model composes those phases so experiments can study how
 * provisioning variability interacts with the overclocking bridge: the
 * slower the tail of VM creation, the more an OC-E/OC-A policy buys.
 */

#ifndef IMSIM_VM_PROVISIONING_HH
#define IMSIM_VM_PROVISIONING_HH

#include "util/random.hh"
#include "util/units.hh"

namespace imsim {
namespace vm {

/** Latency parameters of one provisioning phase. */
struct ProvisioningPhase
{
    Seconds mean;   ///< Mean duration [s].
    double cv;      ///< Coefficient of variation.
    Seconds floor;  ///< Hard minimum [s].
};

/** Phase breakdown of a provisioning request. */
struct ProvisioningSample
{
    Seconds placement;  ///< Scheduler/allocation decision.
    Seconds imageFetch; ///< Image pull / disk preparation.
    Seconds guestBoot;  ///< Guest OS boot.
    Seconds appWarmup;  ///< Application-level readiness.
    Seconds total;      ///< Sum of the phases.
};

/**
 * Provisioning-latency model: lognormal phases with hard floors.
 */
class ProvisioningModel
{
  public:
    /** Defaults calibrated to the paper's ~60 s emulated scale-out. */
    ProvisioningModel();

    /**
     * @param placement   Allocation phase.
     * @param image       Image-fetch phase.
     * @param boot        Guest-boot phase.
     * @param warmup      Application-warmup phase.
     */
    ProvisioningModel(ProvisioningPhase placement, ProvisioningPhase image,
                      ProvisioningPhase boot, ProvisioningPhase warmup);

    /** Sample one provisioning request. */
    ProvisioningSample sample(util::Rng &rng) const;

    /** Mean total latency [s]. */
    Seconds meanTotal() const;

    /**
     * Empirical percentile of the total latency via Monte Carlo.
     *
     * @param rng     Random stream.
     * @param p       Percentile in [0, 100].
     * @param samples Draw count.
     */
    Seconds percentileTotal(util::Rng &rng, double p,
                            int samples = 20000) const;

  private:
    ProvisioningPhase placementPhase;
    ProvisioningPhase imagePhase;
    ProvisioningPhase bootPhase;
    ProvisioningPhase warmupPhase;

    static Seconds drawPhase(util::Rng &rng, const ProvisioningPhase &p);
};

} // namespace vm
} // namespace imsim

#endif // IMSIM_VM_PROVISIONING_HH
