#include "vm/hypervisor.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "workload/perf.hh"
#include "workload/stream.hh"

namespace imsim {
namespace vm {

HypervisorSim::HypervisorSim(int pcores_in, hw::DomainClocks clocks_in,
                             util::Rng rng_in, Seconds step)
    : pcoreCount(pcores_in), clocks(clocks_in), rng(rng_in), dt(step)
{
    util::fatalIf(pcores_in <= 0, "HypervisorSim: need at least one pcore");
    util::fatalIf(step <= 0.0, "HypervisorSim: step must be positive");
    // Sustainable host bandwidth at the configured clocks, pro-rated to
    // the pcores the VMs may use (a 28-core socket's bandwidth serves
    // its whole package).
    const workload::StreamModel stream;
    hostBw = stream.bandwidth(workload::StreamKernel::Triad, clocks) *
             std::min(1.0, static_cast<double>(pcores_in) / 28.0 + 0.3);
}

namespace {

/**
 * Split @p profile's CPU-clocked work into per-domain relative-time
 * components at @p clocks, normalised to exclude the IO fraction (which
 * the scheduler models separately as non-runnable time).
 */
void
cpuRelativeComponents(const workload::AppProfile &profile,
                      const hw::DomainClocks &clocks, double &rel_core,
                      double &rel_llc, double &rel_mem)
{
    const workload::WorkVector &w = profile.work;
    const double cpu_frac = w.core + w.llc + w.mem;
    if (cpu_frac <= 0.0) {
        rel_core = 1.0;
        rel_llc = 0.0;
        rel_mem = 0.0;
        return;
    }
    const hw::DomainClocks ref = workload::referenceClocks();
    rel_core = w.core * (ref.core / clocks.core) / cpu_frac;
    rel_llc = w.llc * (ref.llc / clocks.llc) / cpu_frac;
    rel_mem = w.mem * (ref.memory / clocks.memory) / cpu_frac;
}

} // namespace

std::size_t
HypervisorSim::addLatencyVm(const workload::AppProfile &profile,
                            double arrival_qps)
{
    util::fatalIf(arrival_qps < 0.0, "addLatencyVm: negative arrival rate");
    util::fatalIf(profile.serviceMean <= 0.0,
                  "addLatencyVm: profile has no service-time model");
    VmState vm;
    vm.profile = profile;
    vm.isLatency = true;
    vm.arrivalQps = arrival_qps;
    cpuRelativeComponents(profile, clocks, vm.relCore, vm.relLlc,
                          vm.relMem);
    const double cpu_frac = profile.work.core + profile.work.llc +
                            profile.work.mem;
    vm.bwPerVcore = cpu_frac > 0.0
                        ? profile.work.mem / cpu_frac * kPerCoreBandwidth
                        : 0.0;
    vms.push_back(std::move(vm));
    return vms.size() - 1;
}

std::size_t
HypervisorSim::addBatchVm(const workload::AppProfile &profile)
{
    VmState vm;
    vm.profile = profile;
    vm.isLatency = false;
    cpuRelativeComponents(profile, clocks, vm.relCore, vm.relLlc,
                          vm.relMem);
    const double cpu_frac = profile.work.core + profile.work.llc +
                            profile.work.mem;
    vm.bwPerVcore = cpu_frac > 0.0
                        ? profile.work.mem / cpu_frac * kPerCoreBandwidth
                        : 0.0;
    vm.vcores.resize(static_cast<std::size_t>(profile.cores));
    for (auto &vcore : vm.vcores) {
        vcore.busy = true;
        vcore.remainingWork = rng.exponential(kBatchBurstWork);
    }
    vms.push_back(std::move(vm));
    return vms.size() - 1;
}

double
HypervisorSim::runnableVcores(const VmState &vm) const
{
    if (vm.isLatency)
        return static_cast<double>(vm.inService.size());
    double busy = 0.0;
    for (const auto &vcore : vm.vcores)
        if (vcore.busy)
            busy += 1.0;
    return busy;
}

void
HypervisorSim::step()
{
    // 1. Arrivals into latency VMs.
    for (auto &vm : vms) {
        if (!vm.isLatency || vm.arrivalQps <= 0.0)
            continue;
        const std::int64_t n = rng.poisson(vm.arrivalQps * dt);
        for (std::int64_t i = 0; i < n; ++i) {
            LatencyRequest req;
            req.arrival = now;
            req.remaining = rng.lognormalMeanCv(vm.profile.serviceMean,
                                                vm.profile.serviceCv);
            if (static_cast<int>(vm.inService.size()) < vm.profile.cores)
                vm.inService.push_back(req);
            else
                vm.queue.push_back(req);
        }
    }

    // 2. Generalized processor sharing across runnable vcores, plus the
    // shared memory-bandwidth constraint.
    double runnable = 0.0;
    double bw_demand = 0.0;
    for (const auto &vm : vms) {
        const double busy = runnableVcores(vm);
        runnable += busy;
        bw_demand += busy * vm.bwPerVcore;
    }
    const double share =
        runnable > static_cast<double>(pcoreCount)
            ? static_cast<double>(pcoreCount) / runnable
            : 1.0;
    // Busy vcores only stream at the scheduler share they receive.
    bw_demand *= share;
    const double bw_factor =
        bw_demand > hostBw ? hostBw / bw_demand : 1.0;
    bwFactorIntegral += bw_factor * dt;

    const double busy_pcores =
        std::min(runnable, static_cast<double>(pcoreCount));
    hostBusyIntegral += busy_pcores * dt;
    hostActivitySamples.add(busy_pcores / static_cast<double>(pcoreCount));

    // 3. Advance work. Memory-bound time stretches when the host's
    // bandwidth saturates.
    for (auto &vm : vms) {
        const double rel_time =
            vm.relCore + vm.relLlc + vm.relMem / bw_factor;
        const double progress = dt * share / rel_time;
        vm.busyIntegral += runnableVcores(vm) * dt;

        if (vm.isLatency) {
            for (std::size_t i = 0; i < vm.inService.size();) {
                vm.inService[i].remaining -= progress;
                if (vm.inService[i].remaining <= 0.0) {
                    vm.latencies.add(now + dt - vm.inService[i].arrival);
                    ++vm.completedRequests;
                    vm.inService.erase(vm.inService.begin() +
                                       static_cast<long>(i));
                } else {
                    ++i;
                }
            }
            while (!vm.queue.empty() &&
                   static_cast<int>(vm.inService.size()) <
                       vm.profile.cores) {
                vm.inService.push_back(vm.queue.front());
                vm.queue.pop_front();
            }
        } else {
            const double io_frac = vm.profile.work.io;
            const double io_mean =
                io_frac > 0.0
                    ? kBatchBurstWork * io_frac / (1.0 - io_frac)
                    : 0.0;
            for (auto &vcore : vm.vcores) {
                if (vcore.busy) {
                    vcore.remainingWork -= progress;
                    if (vcore.remainingWork <= 0.0) {
                        ++vm.completedCycles;
                        if (io_mean > 0.0) {
                            vcore.busy = false;
                            vcore.ioRemaining = rng.exponential(io_mean);
                        } else {
                            vcore.remainingWork =
                                rng.exponential(kBatchBurstWork);
                        }
                    }
                } else {
                    vcore.ioRemaining -= dt;
                    if (vcore.ioRemaining <= 0.0) {
                        vcore.busy = true;
                        vcore.remainingWork =
                            rng.exponential(kBatchBurstWork);
                    }
                }
            }
        }
    }

    now += dt;
}

void
HypervisorSim::run(Seconds duration)
{
    util::fatalIf(duration < 0.0, "HypervisorSim::run: negative duration");
    const auto steps = static_cast<std::uint64_t>(std::llround(duration / dt));
    for (std::uint64_t i = 0; i < steps; ++i)
        step();
}

void
HypervisorSim::resetStats()
{
    statsStart = now;
    hostBusyIntegral = 0.0;
    hostActivitySamples.reset();
    for (auto &vm : vms) {
        vm.latencies.reset();
        vm.completedRequests = 0;
        vm.completedCycles = 0;
        vm.busyIntegral = 0.0;
    }
}

std::vector<VmResult>
HypervisorSim::results() const
{
    const Seconds elapsed = now - statsStart;
    std::vector<VmResult> out;
    out.reserve(vms.size());
    for (const auto &vm : vms) {
        VmResult res;
        res.name = vm.profile.name;
        res.appName = vm.profile.name;
        res.metric = vm.profile.metric;
        if (vm.isLatency) {
            res.p95Latency = vm.latencies.p95();
            res.p99Latency = vm.latencies.p99();
            res.meanLatency = vm.latencies.mean();
            res.completed = vm.completedRequests;
        } else {
            res.throughput =
                elapsed > 0.0
                    ? static_cast<double>(vm.completedCycles) / elapsed
                    : 0.0;
            res.completed = vm.completedCycles;
        }
        res.busyFraction =
            elapsed > 0.0
                ? vm.busyIntegral /
                      (elapsed * static_cast<double>(vm.profile.cores))
                : 0.0;
        out.push_back(res);
    }
    return out;
}

int
HypervisorSim::totalVcores() const
{
    int total = 0;
    for (const auto &vm : vms)
        total += vm.profile.cores;
    return total;
}

double
HypervisorSim::hostActivity() const
{
    const Seconds elapsed = now - statsStart;
    if (elapsed <= 0.0)
        return 0.0;
    return hostBusyIntegral / (elapsed * static_cast<double>(pcoreCount));
}

double
HypervisorSim::hostActivityP99() const
{
    return hostActivitySamples.percentile(99.0);
}

double
HypervisorSim::meanBandwidthFactor() const
{
    if (now <= 0.0)
        return 1.0;
    return bwFactorIntegral / now;
}

} // namespace vm
} // namespace imsim
