/**
 * @file
 * Virtual machine and host descriptions used by the packing, buffer, and
 * oversubscription experiments.
 */

#ifndef IMSIM_VM_VM_HH
#define IMSIM_VM_VM_HH

#include <cstdint>
#include <string>

#include "util/units.hh"

namespace imsim {
namespace vm {

/** Identifier of a VM. */
using VmId = std::uint64_t;

/** Resource demand of one VM (the bin-packing dimensions). */
struct VmSpec
{
    VmId id = 0;
    std::string name;     ///< Display name (often the application).
    int vcores = 4;       ///< Virtual cores.
    double memoryGb = 16; ///< Memory demand [GB].
    std::string appName;  ///< Table IX application it runs ("" = none).
    bool latencySensitive = false; ///< Packing priority class.
};

/** Host (server) capacity for packing. */
struct HostSpec
{
    int pcores = 40;        ///< Physical cores (dual-socket Skylake).
    double memoryGb = 512;  ///< Installed memory [GB].
};

} // namespace vm
} // namespace imsim

#endif // IMSIM_VM_VM_HH
