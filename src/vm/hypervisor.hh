/**
 * @file
 * Hypervisor CPU scheduler simulation for core oversubscription.
 *
 * Models one host whose pcores are time-shared across VM vcores with
 * generalized processor sharing: when the runnable vcores exceed the
 * pcores, every runnable vcore runs at speed pcores/runnable. This is the
 * interference mechanism behind the Fig. 12 and Fig. 13 experiments, where
 * overclocking (Table VII OC3) compensates for the slowdown that
 * oversubscription induces.
 *
 * Two VM behaviours are modelled:
 *  - latency VMs serve an open Poisson request stream on their vcores
 *    (per-request sojourn times are collected);
 *  - batch VMs cycle each vcore through CPU bursts and IO waits and
 *    report completed-cycle throughput.
 *
 * The simulator advances in fixed steps (default 1 ms), which resolves
 * request service times of a few milliseconds while keeping the
 * processor-sharing arithmetic simple and robust.
 */

#ifndef IMSIM_VM_HYPERVISOR_HH
#define IMSIM_VM_HYPERVISOR_HH

#include <string>
#include <vector>

#include "hw/cpu.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/units.hh"
#include "workload/app.hh"

namespace imsim {
namespace vm {

/** Result metrics of one VM after a hypervisor simulation. */
struct VmResult
{
    std::string name;          ///< VM name.
    std::string appName;       ///< Application it ran.
    workload::Metric metric;   ///< Its metric of interest.
    double p95Latency = 0.0;   ///< [s], latency VMs only.
    double p99Latency = 0.0;   ///< [s], latency VMs only.
    double meanLatency = 0.0;  ///< [s], latency VMs only.
    double throughput = 0.0;   ///< Cycles/s, batch VMs only.
    std::uint64_t completed = 0; ///< Requests or cycles completed.
    double busyFraction = 0.0; ///< Average vcore busy fraction.
};

/**
 * Fixed-step processor-sharing hypervisor for one host.
 *
 * Besides time-sharing pcores, the host's memory bandwidth is a shared
 * resource: when the busy vcores' aggregate demand (each app's
 * memory-work fraction times a per-core streaming rate) exceeds the
 * host's sustainable bandwidth at the configured memory clock, every
 * VM's memory-bound work slows proportionally — the second interference
 * channel that memory overclocking (OC3) relieves.
 */
class HypervisorSim
{
  public:
    /**
     * @param pcores   Physical cores available to VMs.
     * @param clocks   Domain clocks the host runs at (B2, OC3, ...).
     * @param rng      Random stream.
     * @param step     Simulation step [s].
     */
    HypervisorSim(int pcores, hw::DomainClocks clocks, util::Rng rng,
                  Seconds step = 1e-3);

    /**
     * Add a latency-sensitive VM running @p profile.
     *
     * @param arrival_qps Poisson request rate into this VM.
     * @return VM index.
     */
    std::size_t addLatencyVm(const workload::AppProfile &profile,
                             double arrival_qps);

    /**
     * Add a batch VM running @p profile (every vcore alternates CPU
     * bursts with IO waits in the profile's proportions).
     * @return VM index.
     */
    std::size_t addBatchVm(const workload::AppProfile &profile);

    /** Run the simulation for @p duration seconds. */
    void run(Seconds duration);

    /** Discard statistics collected so far (warmup). */
    void resetStats();

    /** @return per-VM results. */
    std::vector<VmResult> results() const;

    /** @return total vcores across VMs. */
    int totalVcores() const;

    /** @return pcore count. */
    int pcores() const { return pcoreCount; }

    /** @return time-average host CPU activity (busy pcores / pcores). */
    double hostActivity() const;

    /** @return peak (P99 over steps) host activity. */
    double hostActivityP99() const;

    /** @return time-average memory-bandwidth contention factor in
     *  (0, 1]; 1 means the memory system never saturated. */
    double meanBandwidthFactor() const;

    /** @return the host's sustainable memory bandwidth [GB/s] at the
     *  configured clocks. */
    GBps hostBandwidth() const { return hostBw; }

  private:
    struct LatencyRequest
    {
        Seconds arrival;
        double remaining; ///< Remaining demand [B2-seconds].
    };

    struct VcoreState
    {
        bool busy = false;       ///< Batch vcore in a CPU burst.
        double remainingWork = 0;///< Burst work left [B2-seconds].
        Seconds ioRemaining = 0; ///< IO wait left [s].
    };

    struct VmState
    {
        workload::AppProfile profile;
        bool isLatency;
        double arrivalQps = 0.0;
        double relCore = 1.0;   ///< Core component of relative time.
        double relLlc = 0.0;    ///< Uncore component.
        double relMem = 0.0;    ///< Memory component (bandwidth-scaled).
        double bwPerVcore = 0.0;///< Bandwidth demand per busy vcore.
        // Latency state.
        std::vector<LatencyRequest> inService;
        std::deque<LatencyRequest> queue;
        util::PercentileEstimator latencies;
        std::uint64_t completedRequests = 0;
        // Batch state.
        std::vector<VcoreState> vcores;
        std::uint64_t completedCycles = 0;
        // Accounting.
        double busyIntegral = 0.0;
    };

    void step();
    double runnableVcores(const VmState &vm) const;

    int pcoreCount;
    hw::DomainClocks clocks;
    util::Rng rng;
    Seconds dt;
    Seconds now = 0.0;
    Seconds statsStart = 0.0;
    std::vector<VmState> vms;
    util::PercentileEstimator hostActivitySamples;
    double hostBusyIntegral = 0.0;
    GBps hostBw = 100.0;
    double bwFactorIntegral = 0.0;

    /** Mean CPU-burst work of a batch vcore [B2-seconds]. */
    static constexpr double kBatchBurstWork = 0.2;

    /** Streaming rate of a fully memory-bound vcore [GB/s]. */
    static constexpr double kPerCoreBandwidth = 7.0;
};

} // namespace vm
} // namespace imsim

#endif // IMSIM_VM_HYPERVISOR_HH
