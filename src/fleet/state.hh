/**
 * @file
 * Columnar (structure-of-arrays) fleet state.
 *
 * Per-server physics used to live behind per-object APIs —
 * thermal::ThermalNode, power::SocketPowerModel / power::VfCurve,
 * reliability::LifetimeModel / WearTracker — which scatters the
 * per-minute fleet update across the heap and caps how many servers a
 * run can afford. FleetState restructures that state as contiguous
 * columns (frequency level, utilization, dynamic/leakage power,
 * junction temperature, wear) over which the batched kernels in
 * fleet/kernels.hh iterate.
 *
 * FP-identity contract: the batched kernels evaluate *exactly* the
 * arithmetic of the scalar classes, in the same association order, so
 * a batched step is bit-for-bit equal to stepping one scalar object
 * per server (tests/test_fleet.cc holds this as an equivalence
 * oracle). Coefficients are therefore lifted from the scalar models by
 * SkuParams::fromModels, never re-derived, and anything hoisted out of
 * the per-server loop (V-f points, voltage-driven wear factors, the
 * thermal decay factor) is a pure value whose computation order
 * matches the scalar code.
 */

#ifndef IMSIM_FLEET_STATE_HH
#define IMSIM_FLEET_STATE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hh"

namespace imsim {

namespace obs {
class MetricRegistry;
struct FleetView;
} // namespace obs

namespace power {
class SocketPowerModel;
} // namespace power

namespace thermal {
class CoolingSystem;
class ImmersionTank;
} // namespace thermal

namespace fleet {

/** Frequency levels a server can run at (index into SkuParams::level). */
enum FreqLevel : std::uint8_t
{
    kNominal = 0,     ///< All-core turbo.
    kOverclocked = 1, ///< The SKU's overclock point.
};

/**
 * Derived constants for one (SKU, frequency level) operating point.
 *
 * Everything here is frequency-dependent but server-independent, so the
 * batched kernels hoist it out of their per-server loops. Each value is
 * computed once, with the same expression the scalar path evaluates
 * per call, which preserves FP identity (reusing a value never changes
 * rounding; recomputing it in a different order would).
 */
struct SkuLevelParams
{
    GHz frequency = 0.0;   ///< Core clock at this level.
    Volts voltage = 0.0;   ///< VfCurve::voltageFor(frequency).
    double vRatio = 0.0;   ///< voltage / curve nominal voltage.
    double fRatio = 0.0;   ///< frequency / curve nominal frequency.
    double freqRatio = 0.0;///< f / all-core turbo (EM current density).
    /// kOxideA * exp(kOxideGamma * (voltage - kVRef)): the voltage
    /// factor of reliability::gateOxideRate.
    double oxideVoltFactor = 0.0;
    /// kEmA * pow((voltage / kVRef) * freqRatio, kEmN): the
    /// current-density factor of reliability::electromigrationRate.
    double emBase = 0.0;
};

/**
 * Per-SKU physics coefficients, lifted from the scalar models.
 *
 * One SkuParams describes a server class: socket power coefficients
 * (power/socket_power), V-f points (power/vf_curve), the junction RC
 * (thermal/junction), the coolant reference (thermal/cooling), and the
 * reliability operating envelope (reliability/lifetime).
 */
struct SkuParams
{
    // --- power/socket_power.hh coefficients --------------------------
    Watts dynNominal = 0.0;  ///< Dynamic power at curve anchor, act 1.
    double sockets = 1.0;    ///< Socket count (double: matches the
                             ///< scalar cast in server aggregation).
    Watts leakRef = 0.0;     ///< Leakage at the reference junction.
    Celsius leakRefTj = 0.0; ///< Leakage reference junction temp.
    Celsius leakTheta = 0.0; ///< Exponential leakage scale.
    /// Non-CPU constant power per server (DIMMs at nominal memory
    /// clock, motherboard, FPGA, storage; fans per the cooling system).
    Watts constantPower = 0.0;

    // --- thermal/junction.hh + thermal/cooling.hh --------------------
    CelsiusPerWatt rth = 0.0; ///< Junction-to-coolant resistance.
    double thermalCap = 0.0;  ///< Lumped thermal capacitance [J/C].
    Celsius coolantRef = 0.0; ///< Cooling reference temperature.

    // --- reliability/lifetime.hh envelope ----------------------------
    Celsius tMin = 0.0;       ///< Thermal-cycle low temperature.
    Years designLife = 5.0;   ///< Wear-credit design budget.

    /// Operating points: [kNominal], [kOverclocked].
    SkuLevelParams level[2];

    /**
     * Lift the coefficients out of the scalar models.
     *
     * @param socket         Socket power model (curve + dyn/leakage).
     * @param sockets        Sockets per server.
     * @param constant_power Non-CPU constant power per server [W].
     * @param cooling        Cooling system (reference + resistance).
     * @param thermal_cap    Junction RC capacitance [J/C].
     * @param oc_ratio       Overclock frequency ratio (e.g. 1.23).
     * @param t_min          Thermal-cycle low temperature [C].
     * @param design_life    Wear-credit design life [years].
     */
    static SkuParams fromModels(const power::SocketPowerModel &socket,
                                int sockets, Watts constant_power,
                                const thermal::CoolingSystem &cooling,
                                double thermal_cap, double oc_ratio,
                                Celsius t_min, Years design_life = 5.0);
};

/**
 * Structure-of-arrays state for a fleet of servers.
 *
 * Column invariants (all vectors share size() entries, one per
 * server):
 *  - skuIndex[i] indexes the SkuParams table the kernels are given;
 *  - freqLevel[i] selects the operating point (FreqLevel);
 *  - utilization[i] is the activity factor in [0, 1];
 *  - dynamicPower/leakagePower are per *socket* [W] (the junction node
 *    is a socket, as in ServerPowerModel); totalPower is per server:
 *    (dynamic + leakage) * sockets + constantPower;
 *  - tj[i] is the hottest-socket junction temperature [C];
 *  - wearConsumed[i]/serviceYears[i] mirror reliability::WearTracker;
 *  - wantsOverclock/overclocked/capped are the per-step control flags;
 *  - overclockShare[i] is the share of the unit wanting an overclock
 *    this step (a whole server: 0 or 1; a rack-aggregate unit: the
 *    fractional share, where the datacenter loop negates the value to
 *    mark "wanted but withheld").
 *
 * Columns are public by design: the batched kernels (and tests) index
 * them directly, and any accessor layer would just be loop overhead.
 */
class FleetState
{
  public:
    FleetState() = default;

    /** Append @p count servers of SKU @p sku at temperature @p tj0. */
    void addServers(std::size_t count, std::uint32_t sku, Celsius tj0);

    /** @return number of servers. */
    std::size_t size() const { return skuIndex.size(); }

    /** @return whether the fleet is empty. */
    bool empty() const { return skuIndex.empty(); }

    /** Reserve capacity for @p n servers across all columns. */
    void reserve(std::size_t n);

    // ----- columns ---------------------------------------------------
    std::vector<std::uint32_t> skuIndex;
    std::vector<std::uint8_t> freqLevel;
    std::vector<std::uint8_t> wantsOverclock;
    std::vector<std::uint8_t> overclocked;
    std::vector<std::uint8_t> capped;
    std::vector<double> utilization;
    std::vector<double> overclockShare;
    std::vector<double> dynamicPower;
    std::vector<double> leakagePower;
    std::vector<double> totalPower;
    std::vector<double> tj;
    std::vector<double> wearConsumed;
    std::vector<double> serviceYears;

    // ----- aggregates (pure reads; what the gauges poll) -------------

    /** @return total server power across the fleet [W]. */
    Watts fleetPower() const;

    /** @return mean junction temperature [C] (0 when empty). */
    Celsius meanTj() const;

    /** @return max junction temperature [C] (0 when empty). */
    Celsius maxTj() const;

    /** @return mean consumed life fraction (0 when empty). */
    double meanWearConsumed() const;

    /**
     * @return mean lifetime credit (WearTracker::credit analogue):
     * service_years / design_life - consumed, averaged over servers.
     */
    double meanWearCredit(const std::vector<SkuParams> &skus) const;

    /** @return servers currently granted an overclock. */
    std::size_t overclockedCount() const;

    /** @return servers currently power-capped. */
    std::size_t cappedCount() const;

    // ----- control-plane attachment points ---------------------------

    /**
     * Publish this fleet into @p registry under @p prefix (the
     * ImmersionTank::attachMetrics idiom): polled gauges
     * `<prefix>.servers`, `<prefix>.power_w`, `<prefix>.mean_tj_c`,
     * `<prefix>.max_tj_c`, `<prefix>.mean_wear`,
     * `<prefix>.overclocked`, `<prefix>.capped`. The registry must
     * outlive this FleetState, and the state must not move afterwards
     * (the gauges capture `this`).
     */
    void attachMetrics(obs::MetricRegistry &registry,
                       const std::string &prefix = "fleet") const;

    /**
     * Clamp every server's operating point to frequencies at or below
     * @p ceiling — the fleet-layer counterpart of
     * autoscale::AutoScaler::setFrequencyCeiling, through which a
     * cooling-degradation controller pushes a fluid-level-derived cap.
     * @return number of servers demoted.
     */
    std::size_t applyFrequencyCeiling(const std::vector<SkuParams> &skus,
                                      GHz ceiling);

    /// Per-SKU scratch used by stepThermal (decay factors); sized on
    /// first use and stable afterwards so steady-state steps do not
    /// allocate.
    std::vector<double> thermalDecayScratch;
    /// Per-server scratch used by stepWear's split passes (gate-oxide
    /// temperature factor, EM Arrhenius factor); same lifecycle.
    std::vector<double> wearOxideScratch;
    std::vector<double> wearArrheniusScratch;
};

/**
 * Push per-server heat loads into an immersion tank: server
 * @p first_server + j feeds tank slot j. The tank's condenser headroom
 * and fluid telemetry then reflect the fleet step just taken.
 *
 * @return the number of slots written (min(tank slots, servers left)).
 */
std::size_t syncTankHeatLoads(const FleetState &state,
                              std::size_t first_server,
                              thermal::ImmersionTank &tank);

/**
 * Column-pointer view over @p state for obs::FleetAggregator::observe
 * — the bridge between the columnar fleet layer and the observability
 * library, which deliberately does not include fleet headers. The
 * view borrows the columns: it is invalidated by anything that
 * resizes the fleet.
 */
obs::FleetView fleetView(const FleetState &state);

} // namespace fleet
} // namespace imsim

#endif // IMSIM_FLEET_STATE_HH
