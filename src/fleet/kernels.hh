/**
 * @file
 * Batched physics kernels over FleetState columns.
 *
 * Each kernel advances one physical quantity for every server in a
 * contiguous loop, replacing N scalar-object calls:
 *
 *  - stepPower:   power::SocketPowerModel::dynamicPower +
 *                 leakagePower + the power::ServerPowerModel
 *                 aggregation (sockets + constant components);
 *  - stepThermal: thermal::ThermalNode::step (exact exponential RC
 *                 update against the SKU's coolant reference);
 *  - stepWear:    reliability::LifetimeModel::wearFraction (gate
 *                 oxide + electromigration + thermal cycling with the
 *                 duty-cycle idle floor), accumulated WearTracker-style
 *                 into wearConsumed/serviceYears.
 *
 * FP-identity contract (held by tests/test_fleet.cc): for identical
 * inputs, a kernel step is bit-for-bit equal to stepping the scalar
 * classes above one server at a time. The kernels win their speed from
 * layout and hoisting, never from reordered arithmetic: per-(SKU,
 * level) pure values (voltage ratios, voltage-driven wear factors, the
 * RC decay factor) are computed once instead of per server, and the
 * scalar paths' per-call argument validation runs once per kernel call.
 *
 * Steady-state calls are allocation-free: the only buffer (per-SKU
 * thermal decay factors) lives in FleetState::thermalDecayScratch and
 * stabilises after the first step.
 */

#ifndef IMSIM_FLEET_KERNELS_HH
#define IMSIM_FLEET_KERNELS_HH

#include <cstddef>
#include <vector>

#include "fleet/state.hh"
#include "util/units.hh"

namespace imsim {
namespace fleet {

/**
 * Recompute dynamicPower/leakagePower/totalPower for servers
 * [@p begin, @p end) from their frequency level, utilization, and
 * current junction temperature (explicit power<->temperature coupling:
 * leakage reads the Tj of the previous thermal step).
 */
void stepPower(FleetState &state, const std::vector<SkuParams> &skus,
               std::size_t begin, std::size_t end);

/** stepPower over the whole fleet. */
inline void
stepPower(FleetState &state, const std::vector<SkuParams> &skus)
{
    stepPower(state, skus, 0, state.size());
}

/**
 * Advance every junction temperature by @p dt seconds holding each
 * server's current socket power (dynamicPower + leakagePower)
 * constant, with the SKU's coolant reference — the exact exponential
 * ThermalNode::step update.
 */
void stepThermal(FleetState &state, const std::vector<SkuParams> &skus,
                 Seconds dt);

/**
 * Accrue @p duration years of wear on every server under its current
 * stress (level voltage/frequency ratio, junction temperature, and
 * utilization as the duty cycle; cycle floor at the SKU's tMin).
 * Requires tj >= tMin for every server, as the scalar model does.
 */
void stepWear(FleetState &state, const std::vector<SkuParams> &skus,
              Years duration);

/**
 * One fleet minute at full fidelity: power from the current operating
 * points, thermal advance by @p dt, wear accrual for the same
 * interval (dt converted to years).
 */
void stepAll(FleetState &state, const std::vector<SkuParams> &skus,
             Seconds dt);

/** @return @p dt seconds as years (the wear-accrual unit). */
constexpr Years
secondsToYears(Seconds dt)
{
    return dt / (units::kHoursPerYear * units::kSecondsPerHour);
}

} // namespace fleet
} // namespace imsim

#endif // IMSIM_FLEET_KERNELS_HH
