/**
 * @file
 * Batched physics kernels over FleetState columns.
 *
 * Each kernel advances one physical quantity for every server in a
 * contiguous loop, replacing N scalar-object calls:
 *
 *  - stepPower:   power::SocketPowerModel::dynamicPower +
 *                 leakagePower + the power::ServerPowerModel
 *                 aggregation (sockets + constant components);
 *  - stepThermal: thermal::ThermalNode::step (exact exponential RC
 *                 update against the SKU's coolant reference);
 *  - stepWear:    reliability::LifetimeModel::wearFraction (gate
 *                 oxide + electromigration + thermal cycling with the
 *                 duty-cycle idle floor), accumulated WearTracker-style
 *                 into wearConsumed/serviceYears.
 *
 * FP-identity contract (held by tests/test_fleet.cc): for identical
 * inputs, a kernel step is bit-for-bit equal to stepping the scalar
 * classes above one server at a time. The kernels win their speed from
 * layout and hoisting, never from reordered arithmetic: per-(SKU,
 * level) pure values (voltage ratios, voltage-driven wear factors, the
 * RC decay factor) are computed once instead of per server, and the
 * scalar paths' per-call argument validation runs once per kernel call.
 *
 * Steady-state calls are allocation-free: the only buffer (per-SKU
 * thermal decay factors) lives in FleetState::thermalDecayScratch and
 * stabilises after the first step.
 *
 * Sharding: every kernel also has a [begin, end) range overload whose
 * per-server arithmetic chain is identical to the whole-fleet loop —
 * each server's update reads and writes only index i (and shared
 * *read-only* SKU tables / pre-sized scratch), so running disjoint
 * ranges on different threads produces bit-identical columns in any
 * interleaving. The prepare*() helpers hoist the serial, shared-state
 * part (scratch sizing, per-SKU decay factors) out of the range calls;
 * callers must invoke them once per step before fanning ranges out.
 */

#ifndef IMSIM_FLEET_KERNELS_HH
#define IMSIM_FLEET_KERNELS_HH

#include <cstddef>
#include <vector>

#include "fleet/state.hh"
#include "util/shard.hh"
#include "util/units.hh"

namespace imsim {
namespace fleet {

/**
 * Recompute dynamicPower/leakagePower/totalPower for servers
 * [@p begin, @p end) from their frequency level, utilization, and
 * current junction temperature (explicit power<->temperature coupling:
 * leakage reads the Tj of the previous thermal step).
 */
void stepPower(FleetState &state, const std::vector<SkuParams> &skus,
               std::size_t begin, std::size_t end);

/** stepPower over the whole fleet. */
inline void
stepPower(FleetState &state, const std::vector<SkuParams> &skus)
{
    stepPower(state, skus, 0, state.size());
}

/**
 * Advance every junction temperature by @p dt seconds holding each
 * server's current socket power (dynamicPower + leakagePower)
 * constant, with the SKU's coolant reference — the exact exponential
 * ThermalNode::step update.
 */
void stepThermal(FleetState &state, const std::vector<SkuParams> &skus,
                 Seconds dt);

/**
 * Serial prologue for sharded thermal steps: compute the per-SKU decay
 * factors exp(-dt / (R*C)) into FleetState::thermalDecayScratch. Must
 * run (once per step, on one thread) before any range stepThermal of
 * the same dt.
 */
void prepareThermalStep(FleetState &state,
                        const std::vector<SkuParams> &skus, Seconds dt);

/**
 * stepThermal over servers [@p begin, @p end) using the decay factors
 * prepared by prepareThermalStep(). Elementwise in i — safe and
 * bit-identical under any disjoint-range threading.
 */
void stepThermal(FleetState &state, const std::vector<SkuParams> &skus,
                 Seconds dt, std::size_t begin, std::size_t end);

/**
 * Accrue @p duration years of wear on every server under its current
 * stress (level voltage/frequency ratio, junction temperature, and
 * utilization as the duty cycle; cycle floor at the SKU's tMin).
 * Requires tj >= tMin for every server, as the scalar model does.
 */
void stepWear(FleetState &state, const std::vector<SkuParams> &skus,
              Years duration);

/**
 * Serial prologue for sharded wear steps: size the oxide/Arrhenius
 * scratch columns to the fleet (the only allocating part of stepWear,
 * and only until the high-water mark stabilises). Must run before any
 * range stepWear.
 */
void prepareWearStep(FleetState &state);

/**
 * stepWear over servers [@p begin, @p end) using scratch sized by
 * prepareWearStep(). The three transcendental passes run over this
 * range only; every pass is elementwise in i, so disjoint ranges
 * thread safely and bit-identically.
 */
void stepWear(FleetState &state, const std::vector<SkuParams> &skus,
              Years duration, std::size_t begin, std::size_t end);

/**
 * One fleet minute at full fidelity: power from the current operating
 * points, thermal advance by @p dt, wear accrual for the same
 * interval (dt converted to years).
 */
void stepAll(FleetState &state, const std::vector<SkuParams> &skus,
             Seconds dt);

/**
 * Sharded stepAll: the same fleet minute fanned over @p runner's
 * threads, one fused power->thermal->wear pass per shard of @p plan
 * (all three kernels are elementwise in i, so no barrier is needed
 * *between* them within a minute — the conservative barrier sits at
 * the end of the call, before any cross-server reduction). Serial
 * prologues (scratch sizing, per-SKU decay) run on the calling thread
 * first. Bit-identical to the serial stepAll for any plan and any
 * thread count.
 */
void stepAll(FleetState &state, const std::vector<SkuParams> &skus,
             Seconds dt, const util::ShardPlan &plan,
             util::ShardRunner &runner);

/** @return @p dt seconds as years (the wear-accrual unit). */
constexpr Years
secondsToYears(Seconds dt)
{
    return dt / (units::kHoursPerYear * units::kSecondsPerHour);
}

} // namespace fleet
} // namespace imsim

#endif // IMSIM_FLEET_KERNELS_HH
