#include "fleet/state.hh"

#include <algorithm>
#include <cmath>

#include "obs/fleet_agg.hh"
#include "obs/metrics.hh"
#include "power/socket_power.hh"
#include "reliability/mechanisms.hh"
#include "thermal/cooling.hh"
#include "thermal/tank.hh"
#include "util/logging.hh"

namespace imsim {
namespace fleet {

namespace {

SkuLevelParams
levelAt(const power::VfCurve &vf, GHz frequency)
{
    SkuLevelParams lv;
    lv.frequency = frequency;
    lv.voltage = vf.voltageFor(frequency);
    // Same expressions SocketPowerModel::dynamicPower evaluates per
    // call (voltage/frequency ratios against the curve anchor).
    lv.vRatio = lv.voltage / vf.nominalVoltage();
    lv.fRatio = frequency / vf.nominalFrequency();
    // The curve anchor is the all-core turbo, so the electromigration
    // frequency ratio coincides with fRatio.
    lv.freqRatio = lv.fRatio;
    // Voltage-driven factors of the wear mechanisms, hoisted exactly as
    // reliability/mechanisms.cc computes them:
    //   gateOxideRate:  kOxideA * exp(kOxideGamma * (V - kVRef)) * ...
    //   electromigrationRate: kEmA * (j * j) * ...   (kEmN fixed at 2)
    using namespace reliability::constants;
    lv.oxideVoltFactor =
        kOxideA * std::exp(kOxideGamma * (lv.voltage - kVRef));
    const double j = (lv.voltage / kVRef) * lv.freqRatio;
    static_assert(kEmN == 2.0, "emBase below assumes kEmN == 2");
    lv.emBase = kEmA * (j * j);
    return lv;
}

} // namespace

SkuParams
SkuParams::fromModels(const power::SocketPowerModel &socket, int sockets,
                      Watts constant_power,
                      const thermal::CoolingSystem &cooling,
                      double thermal_cap, double oc_ratio, Celsius t_min,
                      Years design_life)
{
    util::fatalIf(sockets <= 0, "SkuParams: need at least 1 socket");
    util::fatalIf(thermal_cap <= 0.0,
                  "SkuParams: thermal capacitance must be positive");
    util::fatalIf(oc_ratio < 1.0, "SkuParams: overclock ratio below 1");
    util::fatalIf(design_life <= 0.0,
                  "SkuParams: design life must be positive");

    const power::VfCurve &vf = socket.curve();
    SkuParams p;
    // Lift the socket coefficients verbatim so they cannot drift from
    // power/socket_power.cc (the FP-identity contract forbids
    // re-deriving them).
    p.dynNominal = socket.dynamicNominal();
    p.sockets = static_cast<double>(sockets);
    p.leakRef = socket.leakageReference();
    p.leakRefTj = socket.leakageReferenceTj();
    p.leakTheta = socket.leakageTheta();
    p.constantPower = constant_power;

    p.rth = cooling.thermalResistance();
    p.thermalCap = thermal_cap;
    // Both cooling technologies expose a load-independent reference
    // (air: inlet + pre-heat; 2PIC: the boiling point).
    p.coolantRef = cooling.referenceTemperature(0.0);

    p.tMin = t_min;
    p.designLife = design_life;

    p.level[kNominal] = levelAt(vf, vf.nominalFrequency());
    p.level[kOverclocked] = levelAt(vf, vf.nominalFrequency() * oc_ratio);
    return p;
}

void
FleetState::reserve(std::size_t n)
{
    skuIndex.reserve(n);
    freqLevel.reserve(n);
    wantsOverclock.reserve(n);
    overclocked.reserve(n);
    capped.reserve(n);
    utilization.reserve(n);
    overclockShare.reserve(n);
    dynamicPower.reserve(n);
    leakagePower.reserve(n);
    totalPower.reserve(n);
    tj.reserve(n);
    wearConsumed.reserve(n);
    serviceYears.reserve(n);
}

void
FleetState::addServers(std::size_t count, std::uint32_t sku, Celsius tj0)
{
    const std::size_t n = size() + count;
    skuIndex.resize(n, sku);
    freqLevel.resize(n, kNominal);
    wantsOverclock.resize(n, 0);
    overclocked.resize(n, 0);
    capped.resize(n, 0);
    utilization.resize(n, 0.0);
    overclockShare.resize(n, 0.0);
    dynamicPower.resize(n, 0.0);
    leakagePower.resize(n, 0.0);
    totalPower.resize(n, 0.0);
    tj.resize(n, tj0);
    wearConsumed.resize(n, 0.0);
    serviceYears.resize(n, 0.0);
}

Watts
FleetState::fleetPower() const
{
    Watts total = 0.0;
    for (const double p : totalPower)
        total += p;
    return total;
}

Celsius
FleetState::meanTj() const
{
    if (tj.empty())
        return 0.0;
    double sum = 0.0;
    for (const double t : tj)
        sum += t;
    return sum / static_cast<double>(tj.size());
}

Celsius
FleetState::maxTj() const
{
    if (tj.empty())
        return 0.0;
    return *std::max_element(tj.begin(), tj.end());
}

double
FleetState::meanWearConsumed() const
{
    if (wearConsumed.empty())
        return 0.0;
    double sum = 0.0;
    for (const double w : wearConsumed)
        sum += w;
    return sum / static_cast<double>(wearConsumed.size());
}

double
FleetState::meanWearCredit(const std::vector<SkuParams> &skus) const
{
    if (empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < size(); ++i) {
        // WearTracker::credit: budgeted life fraction minus consumed.
        sum += serviceYears[i] / skus[skuIndex[i]].designLife -
               wearConsumed[i];
    }
    return sum / static_cast<double>(size());
}

std::size_t
FleetState::overclockedCount() const
{
    std::size_t n = 0;
    for (const std::uint8_t f : overclocked)
        n += f != 0 ? 1 : 0;
    return n;
}

std::size_t
FleetState::cappedCount() const
{
    std::size_t n = 0;
    for (const std::uint8_t f : capped)
        n += f != 0 ? 1 : 0;
    return n;
}

void
FleetState::attachMetrics(obs::MetricRegistry &registry,
                          const std::string &prefix) const
{
    registry.registerGauge(prefix + ".servers", [this] {
        return static_cast<double>(size());
    });
    registry.registerGauge(prefix + ".power_w",
                           [this] { return fleetPower(); });
    registry.registerGauge(prefix + ".mean_tj_c",
                           [this] { return meanTj(); });
    registry.registerGauge(prefix + ".max_tj_c",
                           [this] { return maxTj(); });
    registry.registerGauge(prefix + ".mean_wear",
                           [this] { return meanWearConsumed(); });
    registry.registerGauge(prefix + ".overclocked", [this] {
        return static_cast<double>(overclockedCount());
    });
    registry.registerGauge(prefix + ".capped", [this] {
        return static_cast<double>(cappedCount());
    });
}

std::size_t
FleetState::applyFrequencyCeiling(const std::vector<SkuParams> &skus,
                                  GHz ceiling)
{
    util::fatalIf(ceiling <= 0.0,
                  "applyFrequencyCeiling: ceiling must be positive");
    std::size_t demoted = 0;
    for (std::size_t i = 0; i < size(); ++i) {
        const SkuParams &p = skus[skuIndex[i]];
        while (freqLevel[i] > 0 &&
               p.level[freqLevel[i]].frequency > ceiling) {
            --freqLevel[i];
            ++demoted;
        }
    }
    return demoted;
}

std::size_t
syncTankHeatLoads(const FleetState &state, std::size_t first_server,
                  thermal::ImmersionTank &tank)
{
    util::fatalIf(first_server > state.size(),
                  "syncTankHeatLoads: first server out of range");
    const std::size_t n =
        std::min(tank.slots(), state.size() - first_server);
    for (std::size_t j = 0; j < n; ++j)
        tank.setHeatLoad(j, state.totalPower[first_server + j]);
    return n;
}

obs::FleetView
fleetView(const FleetState &state)
{
    obs::FleetView view;
    view.count = state.size();
    view.sku = state.skuIndex.data();
    view.utilization = state.utilization.data();
    view.totalPower = state.totalPower.data();
    view.tj = state.tj.data();
    view.wearConsumed = state.wearConsumed.data();
    return view;
}

} // namespace fleet
} // namespace imsim
