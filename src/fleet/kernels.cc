#include "fleet/kernels.hh"

#include <algorithm>
#include <cmath>

#include "reliability/lifetime.hh"
#include "reliability/mechanisms.hh"
#include "util/logging.hh"

namespace imsim {
namespace fleet {

void
stepPower(FleetState &state, const std::vector<SkuParams> &skus,
          std::size_t begin, std::size_t end)
{
    util::fatalIf(begin > end || end > state.size(),
                  "stepPower: bad server range");
    util::fatalIf(skus.empty(), "stepPower: no SKUs");
    for (std::size_t i = begin; i < end; ++i) {
        const SkuParams &p = skus[state.skuIndex[i]];
        const SkuLevelParams &lv = p.level[state.freqLevel[i]];
        // SocketPowerModel::dynamicPower: dynNominal * activity *
        // v_ratio^3 * f_ratio, multiplied left to right.
        const double dyn = p.dynNominal * state.utilization[i] *
                           lv.vRatio * lv.vRatio * lv.vRatio * lv.fRatio;
        // SocketPowerModel::leakagePower at the current junction
        // temperature (explicit coupling: Tj from the last thermal
        // step, the transient analogue of the scalar fixed point).
        const double leak =
            p.leakRef * std::exp((state.tj[i] - p.leakRefTj) / p.leakTheta);
        state.dynamicPower[i] = dyn;
        state.leakagePower[i] = leak;
        // ServerPowerModel aggregation: sockets plus the constant
        // component budget.
        state.totalPower[i] = (dyn + leak) * p.sockets + p.constantPower;
    }
}

void
prepareThermalStep(FleetState &state, const std::vector<SkuParams> &skus,
                   Seconds dt)
{
    util::fatalIf(dt < 0.0, "stepThermal: negative dt");
    util::fatalIf(skus.empty(), "stepThermal: no SKUs");
    // The decay factor exp(-dt / (R*C)) depends only on the SKU, so it
    // is computed once per SKU instead of once per server — the same
    // exp the scalar ThermalNode::step evaluates per call, reused.
    std::vector<double> &decay = state.thermalDecayScratch;
    decay.resize(skus.size());
    for (std::size_t s = 0; s < skus.size(); ++s)
        decay[s] = std::exp(-dt / (skus[s].rth * skus[s].thermalCap));
}

void
stepThermal(FleetState &state, const std::vector<SkuParams> &skus,
            Seconds dt, std::size_t begin, std::size_t end)
{
    util::fatalIf(begin > end || end > state.size(),
                  "stepThermal: bad server range");
    util::fatalIf(state.thermalDecayScratch.size() != skus.size(),
                  "stepThermal: prepareThermalStep() not run");
    (void)dt; // Folded into the prepared decay factors.
    const std::vector<double> &decay = state.thermalDecayScratch;
    for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t s = state.skuIndex[i];
        const SkuParams &p = skus[s];
        // ThermalNode::step: target = steadyState(power, ref) =
        // ref + rth * power; temp = target + (temp - target) * decay.
        const double node_power =
            state.dynamicPower[i] + state.leakagePower[i];
        const double target = p.coolantRef + p.rth * node_power;
        state.tj[i] = target + (state.tj[i] - target) * decay[s];
    }
}

void
stepThermal(FleetState &state, const std::vector<SkuParams> &skus,
            Seconds dt)
{
    prepareThermalStep(state, skus, dt);
    stepThermal(state, skus, dt, 0, state.size());
}

void
prepareWearStep(FleetState &state)
{
    // Scratch sizing is the only allocating (and thus only
    // non-thread-safe) part of stepWear; hoisted here so range calls
    // can fan out over pre-sized columns.
    const std::size_t n = state.size();
    state.wearOxideScratch.resize(n);
    state.wearArrheniusScratch.resize(n);
}

void
stepWear(FleetState &state, const std::vector<SkuParams> &skus,
         Years duration, std::size_t begin, std::size_t end)
{
    util::fatalIf(duration < 0.0, "stepWear: negative duration");
    util::fatalIf(skus.empty(), "stepWear: no SKUs");
    util::fatalIf(begin > end || end > state.size(),
                  "stepWear: bad server range");
    util::fatalIf(state.wearOxideScratch.size() != state.size() ||
                      state.wearArrheniusScratch.size() != state.size(),
                  "stepWear: prepareWearStep() not run");
    using namespace reliability::constants;
    // Loop-invariant pieces of the mechanism rates, written exactly as
    // reliability/mechanisms.cc computes them.
    const double vertex = -kOxideTempA / (2.0 * kOxideTempC);
    const double tref = units::toKelvin(kTjRef);
    // The wear update is split into per-transcendental passes: a tight
    // loop around a single libm call pipelines far better than one fat
    // body serialising three of them (each server's arithmetic chain is
    // unchanged, so FP identity is unaffected — only the program order
    // across servers moves, which is also why disjoint ranges of the
    // same passes thread safely). The intermediate factors land in
    // scratch columns that stabilise after the first call.
    std::vector<double> &oxide = state.wearOxideScratch;
    std::vector<double> &arrhenius = state.wearArrheniusScratch;

    // gateOxideRate's temperature factor: clamp at the quadratic's
    // low-temperature vertex, then exp(temp_term); the voltage factor
    // kOxideA * exp(volt_term) is hoisted into lv.oxideVoltFactor.
    for (std::size_t i = begin; i < end; ++i) {
        const double dtj = std::max(state.tj[i] - kTjRef, vertex);
        const double temp_term = kOxideTempA * dtj + kOxideTempC * dtj * dtj;
        oxide[i] = std::exp(temp_term);
    }

    // electromigrationRate's Arrhenius factor; kEmA * (j * j) is
    // hoisted into lv.emBase.
    for (std::size_t i = begin; i < end; ++i) {
        const double t = units::toKelvin(state.tj[i]);
        arrhenius[i] =
            std::exp(kEmEa / units::kBoltzmannEv * (1.0 / tref - 1.0 / t));
    }

    // Combine with the level factors, add thermalCyclingRate
    // (Coffin-Manson on the swing down to the SKU's cycle floor), and
    // accrue: LifetimeModel::wearFraction with dutyCycle = utilization
    // (voltage/current-driven wear scales with duty under an idle
    // floor; thermal cycling does not), accumulated WearTracker-style.
    for (std::size_t i = begin; i < end; ++i) {
        const SkuParams &p = skus[state.skuIndex[i]];
        const SkuLevelParams &lv = p.level[state.freqLevel[i]];
        const double gate_oxide = lv.oxideVoltFactor * oxide[i];
        const double em = lv.emBase * arrhenius[i];
        const double swing = state.tj[i] - p.tMin;
        util::fatalIf(swing < 0.0, "stepWear: junction below cycle floor");
        // thermalCyclingRate's r^2.5 as r*r*sqrt(r), exactly as
        // reliability/mechanisms.cc evaluates it.
        const double r = swing / kSwingRef;
        const double cycling =
            swing == 0.0 ? 0.0 : kTcA * (r * r * std::sqrt(r));
        const double duty = std::max(
            state.utilization[i], reliability::LifetimeModel::kIdleWearFloor);
        const double active_rate = (gate_oxide + em) * duty;
        state.wearConsumed[i] += (active_rate + cycling) * duration;
        state.serviceYears[i] += duration;
    }
}

void
stepWear(FleetState &state, const std::vector<SkuParams> &skus,
         Years duration)
{
    prepareWearStep(state);
    stepWear(state, skus, duration, 0, state.size());
}

void
stepAll(FleetState &state, const std::vector<SkuParams> &skus, Seconds dt)
{
    stepPower(state, skus);
    stepThermal(state, skus, dt);
    stepWear(state, skus, secondsToYears(dt));
}

void
stepAll(FleetState &state, const std::vector<SkuParams> &skus, Seconds dt,
        const util::ShardPlan &plan, util::ShardRunner &runner)
{
    util::fatalIf(plan.units() != state.size(),
                  "stepAll: shard plan does not cover the fleet");
    const Years duration = secondsToYears(dt);
    prepareThermalStep(state, skus, dt);
    prepareWearStep(state);
    runner.run(plan,
               [&](std::size_t, std::size_t begin, std::size_t end) {
                   stepPower(state, skus, begin, end);
                   stepThermal(state, skus, dt, begin, end);
                   stepWear(state, skus, duration, begin, end);
               });
}

} // namespace fleet
} // namespace imsim
