#include "workload/app.hh"

#include "util/logging.hh"

namespace imsim {
namespace workload {

std::string
metricName(Metric metric)
{
    switch (metric) {
      case Metric::P95Latency:
        return "P95 Lat";
      case Metric::P99Latency:
        return "P99 Lat";
      case Metric::Seconds:
        return "Seconds";
      case Metric::OpsPerSec:
        return "OPS/S";
      case Metric::MBps:
        return "MB/S";
    }
    util::panic("metricName: unhandled metric");
}

bool
lowerIsBetter(Metric metric)
{
    return metric == Metric::P95Latency || metric == Metric::P99Latency ||
           metric == Metric::Seconds;
}

double
WorkVector::scalableFraction()
    const
{
    const double on_core = core + llc + mem;
    if (on_core <= 0.0)
        return 0.0;
    return core / on_core;
}

const std::vector<AppProfile> &
appCatalog()
{
    // Work vectors calibrated to the paper's Fig. 9 observations:
    //  - SQL is memory-bound (memory overclocking helps significantly);
    //  - Training is prefetch-friendly (faster cache/memory barely help);
    //  - BI benefits only from core overclocking;
    //  - Pmbench and DiskSpeed respond to cache overclocking (OC2);
    //  - TeraSort and DiskSpeed are the exceptions where core
    //    overclocking (OC1) is not the biggest win (IO-heavy).
    static const std::vector<AppProfile> catalog{
        {"SQL", 4, "BenchCraft standard OLTP", true, Metric::P95Latency,
         {0.35, 0.15, 0.45, 0.05}, 0.45, 1.25, 4.0e-3, 1.4},
        {"Training", 4, "TensorFlow model CPU training", true,
         Metric::Seconds, {0.80, 0.07, 0.08, 0.05}, 0.60, 1.10},
        {"Key-Value", 8, "Distributed key-value store", true,
         Metric::P99Latency, {0.55, 0.20, 0.20, 0.05}, 0.50, 1.30,
         1.5e-3, 1.2},
        {"BI", 4, "Business intelligence", true, Metric::Seconds,
         {0.85, 0.05, 0.05, 0.05}, 0.55, 1.15},
        {"Client-Server", 4, "M/G/k queue application", true,
         Metric::P95Latency, {0.75, 0.10, 0.10, 0.05}, 0.50, 1.30,
         2.6e-3, 1.5},
        {"Pmbench", 2, "Paging performance", false, Metric::Seconds,
         {0.30, 0.40, 0.25, 0.05}, 0.35, 1.10},
        {"DiskSpeed", 2, "Microsoft's Disk IO bench", false,
         Metric::OpsPerSec, {0.20, 0.35, 0.15, 0.30}, 0.30, 1.20},
        {"SPECJBB", 4, "SpecJbb 2000", false, Metric::OpsPerSec,
         {0.60, 0.20, 0.15, 0.05}, 0.55, 1.20},
        {"TeraSort", 4, "Hadoop TeraSort", false, Metric::Seconds,
         {0.30, 0.15, 0.20, 0.35}, 0.40, 1.15},
    };
    return catalog;
}

const AppProfile &
app(const std::string &name)
{
    for (const auto &profile : appCatalog())
        if (profile.name == name)
            return profile;
    util::fatal("unknown application: " + name);
}

} // namespace workload
} // namespace imsim
