#include "workload/perf.hh"

#include "util/logging.hh"

namespace imsim {
namespace workload {

hw::DomainClocks
referenceClocks()
{
    return hw::DomainClocks{3.4, 2.4, 2.4};
}

double
relativeTime(const WorkVector &w, const hw::DomainClocks &clocks,
             const hw::DomainClocks &ref)
{
    util::fatalIf(clocks.core <= 0.0 || clocks.llc <= 0.0 ||
                      clocks.memory <= 0.0,
                  "relativeTime: non-positive clock");
    util::fatalIf(w.core < 0.0 || w.llc < 0.0 || w.mem < 0.0 || w.io < 0.0,
                  "relativeTime: negative work fraction");
    return w.core * (ref.core / clocks.core) +
           w.llc * (ref.llc / clocks.llc) +
           w.mem * (ref.memory / clocks.memory) + w.io;
}

double
speedup(const WorkVector &w, const hw::DomainClocks &clocks,
        const hw::DomainClocks &ref)
{
    return 1.0 / relativeTime(w, clocks, ref);
}

double
relativeMetric(const AppProfile &profile, const hw::DomainClocks &clocks,
               const hw::DomainClocks &ref)
{
    const double rel_time = relativeTime(profile.work, clocks, ref);
    return lowerIsBetter(profile.metric) ? rel_time : 1.0 / rel_time;
}

double
serviceTimeScale(double kappa, GHz f0, GHz f)
{
    util::fatalIf(kappa < 0.0 || kappa > 1.0,
                  "serviceTimeScale: kappa out of [0,1]");
    util::fatalIf(f0 <= 0.0 || f <= 0.0,
                  "serviceTimeScale: non-positive frequency");
    return kappa * f0 / f + (1.0 - kappa);
}

} // namespace workload
} // namespace imsim
