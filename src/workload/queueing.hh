/**
 * @file
 * M/G/k queueing cluster on the discrete-event kernel: the Client-Server
 * application of Table IX (Markovian arrivals, General service times, k
 * server VMs) behind the Fig. 15/16 and Table XI auto-scaling experiments
 * and the Fig. 12 latency sweeps.
 *
 * Each server VM has a fixed number of service threads (vcores) and a core
 * frequency; a least-loaded dispatcher (the load balancer of Fig. 14)
 * routes requests, and a global FIFO queue absorbs overload. Service times
 * scale with the core clock through the frequency-scalable fraction kappa,
 * the same quantity the Aperf/Pperf counters expose to Eq. 1.
 */

#ifndef IMSIM_WORKLOAD_QUEUEING_HH
#define IMSIM_WORKLOAD_QUEUEING_HH

#include <memory>
#include <vector>

#include "hw/counters.hh"
#include "sim/simulation.hh"
#include "util/random.hh"
#include "util/ring.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace imsim {
namespace workload {

/**
 * Cluster of server VMs fed by an open-loop Poisson arrival stream.
 */
class QueueingCluster
{
  public:
    /** Configuration of the cluster and its service process. */
    struct Params
    {
        Seconds serviceMean = 3.3e-3;  ///< Mean service demand at refFreq.
        double serviceCv = 1.5;        ///< Service-time CV ("General").
        double kappa = 0.9;            ///< Frequency-scalable fraction.
        GHz refFreq = 3.4;             ///< Frequency serviceMean refers to.
        int threadsPerServer = 4;      ///< vCores per server VM.
        Seconds utilWindow = 200.0;    ///< Utilization history retained.
    };

    /**
     * @param simulation Event kernel driving the cluster.
     * @param rng        Random stream (forked internally).
     * @param params     Cluster parameters.
     */
    QueueingCluster(sim::Simulation &simulation, util::Rng rng,
                    Params params);

    /**
     * Add one server VM running at @p freq.
     * @return the server's index (stable; removed servers keep theirs).
     */
    std::size_t addServer(GHz freq);

    /**
     * Deactivate the most recently added active server (scale-in). Its
     * in-flight requests drain; it accepts no new work.
     * @return the id of the server that was deactivated (so callers —
     *         e.g. the auto-scaler's counter bookkeeping — can drop
     *         per-server state for it).
     */
    std::size_t removeServer();

    /**
     * Fault-injection hook: kill server @p id instantly (must be
     * active). Unlike removeServer(), its in-flight requests do not
     * drain — their completions are cancelled and the requests are
     * requeued (original arrival timestamps kept, so the crash penalty
     * shows up in their latency) ahead of the already-queued backlog,
     * then redistributed to surviving free threads. The server's
     * utilization window records 0 from the crash instant on.
     */
    void crashServer(std::size_t id);

    /**
     * Fault-injection hook: bring a crashed server back (must be
     * crashed). It rejoins with zero busy threads, its utilization
     * window restarting from the repair instant (the dead gap reads as
     * zero utilization), and immediately absorbs queued work.
     */
    void repairServer(std::size_t id);

    /** @return whether server @p id is down due to crashServer(). */
    bool isCrashed(std::size_t id) const;

    /** @return number of servers currently down due to crashes. */
    std::size_t crashedServers() const;

    /** @return busy service threads of server @p id right now. */
    int busyThreads(std::size_t id) const;

    /** Set the core frequency of server @p id (scale-up/down). */
    void setFrequency(std::size_t id, GHz freq);

    /** Set the core frequency of every active server. */
    void setAllFrequencies(GHz freq);

    /** @return frequency of server @p id. */
    GHz frequency(std::size_t id) const;

    /** Set the arrival rate [requests/s]; 0 pauses arrivals. */
    void setArrivalRate(double qps);

    /** @return number of active servers. */
    std::size_t activeServers() const;

    /** @return total servers ever added (index bound). */
    std::size_t serverCount() const { return servers.size(); }

    /** @return whether server @p id is active. */
    bool isActive(std::size_t id) const;

    /**
     * Per-server CPU utilization averaged over the trailing
     * @p window seconds.
     */
    double utilization(std::size_t id, Seconds window) const;

    /** Average utilization across active servers over @p window. */
    double fleetUtilization(Seconds window) const;

    /** Counter sample of server @p id (advances counters to now). */
    hw::CounterSample counters(std::size_t id);

    /** @return latency statistics of all completed requests [s]. */
    const util::PercentileEstimator &latencies() const { return latencyStats; }

    /** Reset collected latency statistics (e.g. after warmup). */
    void resetLatencies() { latencyStats.reset(); }

    /**
     * Opt-in *windowed* tail-latency tracking for live SLO watchdogs:
     * completions also feed a ring of @p buckets quantile sketches
     * (util::QuantileSketch copies of @p prototype) rotated every
     * window/buckets seconds, so recentTailQuantile() reflects only
     * the trailing ~window seconds rather than the whole run. O(1)
     * per completion, allocation-free after this call, and — when
     * never enabled — completely free (one branch per completion), so
     * existing runs stay byte-identical.
     *
     * The default prototype's log-spaced bins cover 0.1 ms .. 100 s
     * at ~5% per-bin resolution.
     */
    void enableTailTracking(Seconds window, std::size_t buckets = 8);
    void enableTailTracking(Seconds window, std::size_t buckets,
                            const util::QuantileSketch &prototype);

    /** @return whether enableTailTracking() was called. */
    bool tailTrackingEnabled() const { return !tailBuckets.empty(); }

    /**
     * @param p Quantile in [0, 100].
     * @return the p-th latency percentile [s] over the trailing
     * window (sketch resolution; 0 when disabled or nothing
     * completed recently). Pure read — safe to poll from a watchdog
     * at any cadence. Buckets older than the window at the time of
     * the last completion are included until displaced; with a
     * 1 s-scale poll against the crisis bench's 15 s window the
     * staleness is negligible.
     */
    double recentTailQuantile(double p) const;

    /** @return completed request count. */
    std::uint64_t completed() const { return completedCount; }

    /** @return current global queue depth. */
    std::size_t queueDepth() const { return queue.size(); }

    /** @return integral of active servers over time [VM-hours]. */
    double vmHours() const;

    /** @return peak number of simultaneously active servers. */
    std::size_t maxServers() const { return maxActive; }

    /** @return time-average busy-thread fraction of server @p id since
     *  creation (for power accounting). */
    double lifetimeBusyFraction(std::size_t id) const;

    /** @return the cluster parameters. */
    const Params &params() const { return cfg; }

  private:
    struct Request
    {
        Seconds arrival;
        Seconds demand; ///< Service demand at refFreq [s].
    };

    struct Server
    {
        GHz freq;
        int threads;
        int busy = 0;
        bool active = true;
        bool crashed = false;
        Seconds createdAt = 0.0;
        Seconds busyIntegral = 0.0; ///< busy-thread-seconds accumulated.
        Seconds lastChange = 0.0;
        util::SlidingTimeWindow utilWindow;
        hw::CounterBlock counters;
        Seconds lastCounterAdvance = 0.0;

        explicit Server(Seconds window) : utilWindow(window) {}
    };

    /**
     * In-flight request record, pooled with a free list so the
     * completion callback captures only (this, slot) — 16 bytes, which
     * fits std::function's small-buffer storage. Dispatching a request
     * therefore performs no heap allocation once the pool is warm.
     * The record also keeps the request's demand and its completion
     * event handle so crashServer() can cancel and requeue it.
     */
    struct InFlight
    {
        Seconds arrival = 0.0;
        Seconds demand = 0.0; ///< Service demand at refFreq [s].
        sim::EventId completion = 0;
        std::uint32_t server = 0;
        std::uint32_t nextFree = kNoInFlight;
        bool live = false; ///< Slot holds a dispatched request.
    };

    static constexpr std::uint32_t kNoInFlight = ~std::uint32_t{0};

    void scheduleNextArrival();
    void onArrival();
    void dispatch(std::size_t id, Request req);
    void drainQueue();
    void complete(std::uint32_t slot);
    void onCompletion(std::size_t id);
    void recordBusyChange(Server &server);
    void advanceCounters(Server &server);
    int pickServer() const;
    std::uint32_t allocInFlight();

    sim::Simulation &sim;
    util::Rng rng;
    Params cfg;
    std::vector<std::unique_ptr<Server>> servers;
    /// Global FIFO backlog; a RingDeque so steady-state overload churn
    /// (push_back/pop_front cycles) never touches the allocator.
    util::RingDeque<Request> queue;
    std::vector<InFlight> inFlight;
    std::uint32_t inFlightFree = kNoInFlight;
    double arrivalRate = 0.0;
    sim::EventId arrivalEvent = 0;
    bool arrivalPending = false;
    util::PercentileEstimator latencyStats;
    std::uint64_t completedCount = 0;
    double vmSecondsIntegral = 0.0;
    Seconds lastVmAccounting = 0.0;
    std::size_t maxActive = 0;

    /// Windowed tail-latency ring (empty until enableTailTracking).
    std::vector<util::QuantileSketch> tailBuckets;
    Seconds tailBucketSpan = 0.0;
    Seconds tailBucketStart = 0.0;
    std::size_t tailBucketCur = 0;

    void recordTailLatency(Seconds latency);
    void accountVmTime();
};

} // namespace workload
} // namespace imsim

#endif // IMSIM_WORKLOAD_QUEUEING_HH
