/**
 * @file
 * Bottleneck performance model: maps a work vector and a set of domain
 * clocks to relative execution time / speedup versus the reference
 * configuration (Table VII B2). This is the model behind Fig. 9 and the
 * service-time scaling used by the queueing experiments.
 */

#ifndef IMSIM_WORKLOAD_PERF_HH
#define IMSIM_WORKLOAD_PERF_HH

#include "hw/cpu.hh"
#include "workload/app.hh"

namespace imsim {
namespace workload {

/** Reference clocks: Table VII config B2 (production default). */
hw::DomainClocks referenceClocks();

/**
 * Relative execution time of work @p w at clocks @p clocks versus the
 * reference clocks: sum over components of fraction * (ref_f / f), with
 * IO invariant. 1.0 at the reference; < 1 is faster.
 */
double relativeTime(const WorkVector &w, const hw::DomainClocks &clocks,
                    const hw::DomainClocks &ref = referenceClocks());

/** Speedup = 1 / relativeTime. */
double speedup(const WorkVector &w, const hw::DomainClocks &clocks,
               const hw::DomainClocks &ref = referenceClocks());

/**
 * Relative value of an application's *metric of interest*: for time/latency
 * metrics this equals relativeTime; for throughput metrics it is the
 * speedup. Normalised to 1.0 at the reference clocks.
 */
double relativeMetric(const AppProfile &profile,
                      const hw::DomainClocks &clocks,
                      const hw::DomainClocks &ref = referenceClocks());

/**
 * Service-time scale factor for a latency application running on a core
 * at frequency @p f relative to reference frequency @p f0, given the
 * frequency-scalable fraction @p kappa (= dPperf/dAperf):
 * scale = kappa * f0/f + (1 - kappa).
 *
 * This is the service-time dual of Eq. 1's utilization model.
 */
double serviceTimeScale(double kappa, GHz f0, GHz f);

} // namespace workload
} // namespace imsim

#endif // IMSIM_WORKLOAD_PERF_HH
