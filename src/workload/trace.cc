#include "workload/trace.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace workload {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kSecondsPerDay = 86400.0;
} // namespace

TraceGenerator::TraceGenerator(TraceParams params) : cfg(params)
{
    util::fatalIf(cfg.cores <= 0, "TraceGenerator: need cores");
    util::fatalIf(cfg.meanUtil < 0.0 || cfg.meanUtil > 1.0,
                  "TraceGenerator: mean utilization out of [0,1]");
    util::fatalIf(cfg.sampleInterval <= 0.0,
                  "TraceGenerator: sample interval must be positive");
    util::fatalIf(cfg.noisePhi < 0.0 || cfg.noisePhi >= 1.0,
                  "TraceGenerator: AR(1) phi out of [0,1)");
}

std::vector<TraceSample>
TraceGenerator::generate(util::Rng &rng, double days) const
{
    util::fatalIf(days <= 0.0, "TraceGenerator: days must be positive");
    // Round the sample count up so an interval that does not divide the
    // horizon keeps its final partial sample instead of silently
    // truncating it; the epsilon keeps exact multiples stable against
    // floating-point representation of days * seconds / interval.
    const double exact_samples =
        days * kSecondsPerDay / cfg.sampleInterval;
    const auto samples =
        static_cast<std::size_t>(std::ceil(exact_samples - 1e-9));
    std::vector<TraceSample> out;
    out.reserve(samples);

    double noise = 0.0;
    const double innovation =
        cfg.noiseSigma * std::sqrt(1.0 - cfg.noisePhi * cfg.noisePhi);
    for (std::size_t i = 0; i < samples; ++i) {
        const Seconds t = static_cast<double>(i) * cfg.sampleInterval;
        const double day_frac = std::fmod(t, kSecondsPerDay) /
                                kSecondsPerDay;
        const double day_index = t / kSecondsPerDay;
        // Diurnal: trough at 04:00, peak at 16:00 — the 5/12-day phase
        // puts the sine maximum at day fraction 2/3 (16:00) exactly.
        const double diurnal =
            cfg.diurnalAmplitude *
            std::sin(2.0 * kPi * (day_frac - 5.0 / 12.0));
        // Weekly: days 5 and 6 of each week dip.
        const bool weekend = std::fmod(day_index, 7.0) >= 5.0;
        const double weekly = weekend ? -cfg.weekendDip : 0.0;

        noise = cfg.noisePhi * noise + rng.normal(0.0, innovation);
        double util = cfg.meanUtil + diurnal + weekly + noise;
        if (rng.bernoulli(cfg.burstProb))
            util += cfg.burstBoost;
        util = std::clamp(util, 0.01, 1.0);

        TraceSample sample;
        sample.time = t;
        sample.utilization = util;
        sample.activeCores = std::clamp(
            static_cast<int>(std::lround(util * cfg.cores)), 1, cfg.cores);
        out.push_back(sample);
    }
    return out;
}

OpportunityReport
analyzeOpportunity(const hw::TurboGovernor &governor,
                   const power::SocketPowerModel &socket,
                   const thermal::CoolingSystem &cooling,
                   const std::vector<TraceSample> &trace)
{
    util::fatalIf(trace.empty(), "analyzeOpportunity: empty trace");
    OpportunityReport report;
    double freq_sum = 0.0;
    for (const auto &sample : trace) {
        // The *opportunity* is the frequency the package could sustain
        // within its power budget at this instant's active-core count
        // (each active core fully busy), independent of the turbo
        // table — then classified against the Fig. 4 domains.
        const double package_activity = std::clamp(
            static_cast<double>(sample.activeCores) /
                static_cast<double>(governor.cores()),
            0.05, 1.0);
        GHz f = socket.maxFrequencyAtPowerLimit(governor.tdp(), cooling,
                                                package_activity);
        f = std::min(f, governor.overclockBoundary());
        f = governor.snapToBin(f);
        freq_sum += f;
        switch (governor.classify(f, sample.activeCores)) {
          case hw::FrequencyDomain::Overclocking:
          case hw::FrequencyDomain::NonOperating:
            report.overclockShare += 1.0;
            break;
          case hw::FrequencyDomain::Turbo:
            report.turboShare += 1.0;
            break;
          case hw::FrequencyDomain::Guaranteed:
            report.guaranteedShare += 1.0;
            break;
        }
    }
    const double n = static_cast<double>(trace.size());
    report.turboShare /= n;
    report.overclockShare /= n;
    report.guaranteedShare /= n;
    report.meanSustainable = freq_sum / n;
    return report;
}

} // namespace workload
} // namespace imsim
