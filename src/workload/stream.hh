/**
 * @file
 * STREAM memory-bandwidth model (Fig. 10).
 *
 * Sustained bandwidth is modelled as a series-bottleneck (harmonic)
 * composition of core-issue, uncore-transport and DRAM-transfer stages:
 *   1/BW(f) = a/f_core + b/f_llc + c/f_mem     (normalised coefficients)
 * with (a, b, c) calibrated so the paper's observations hold: B4 gains
 * +17 % and OC3 +24 % over B1, and faster cores/uncore also lift peak
 * bandwidth because "memory requests are served faster".
 */

#ifndef IMSIM_WORKLOAD_STREAM_HH
#define IMSIM_WORKLOAD_STREAM_HH

#include <string>
#include <vector>

#include "hw/cpu.hh"
#include "util/units.hh"

namespace imsim {
namespace workload {

/** The four STREAM kernels. */
enum class StreamKernel
{
    Copy,
    Scale,
    Add,
    Triad,
};

/** @return a printable kernel name. */
std::string streamKernelName(StreamKernel kernel);

/** @return all four kernels in STREAM order. */
const std::vector<StreamKernel> &streamKernels();

/**
 * STREAM bandwidth model for a six-channel DDR4 Skylake-W system.
 */
class StreamModel
{
  public:
    StreamModel() = default;

    /**
     * Sustained bandwidth of @p kernel at the given domain clocks [GB/s].
     */
    GBps bandwidth(StreamKernel kernel, const hw::DomainClocks &clocks) const;

    /**
     * Bandwidth relative to the B1 configuration (Fig. 10's baseline).
     */
    double relativeToB1(StreamKernel kernel,
                        const hw::DomainClocks &clocks) const;

  private:
    /** Per-kernel peak bandwidth at the B1 clocks [GB/s]. */
    static GBps baseBandwidth(StreamKernel kernel);
};

} // namespace workload
} // namespace imsim

#endif // IMSIM_WORKLOAD_STREAM_HH
