#include "workload/stream.hh"

#include "util/logging.hh"

namespace imsim {
namespace workload {

namespace {

// Stage coefficients of the harmonic bottleneck model, calibrated so
// that, relative to B1 (3.1/2.4/2.4):
//   B4 (3.4/2.8/3.0)  -> +17 %
//   OC3 (4.1/2.8/3.0) -> +24 %
// (Sec. VI-B "Memory overclocking for streaming applications").
constexpr double kCoreStage = 0.9598;
constexpr double kUncoreStage = 0.8447;
constexpr double kMemStage = 0.8122;

// B1 reference clocks.
constexpr GHz kB1Core = 3.1;
constexpr GHz kB1Llc = 2.4;
constexpr GHz kB1Mem = 2.4;

double
inverseThroughput(const hw::DomainClocks &clocks)
{
    return kCoreStage / clocks.core + kUncoreStage / clocks.llc +
           kMemStage / clocks.memory;
}

} // namespace

std::string
streamKernelName(StreamKernel kernel)
{
    switch (kernel) {
      case StreamKernel::Copy:
        return "Copy";
      case StreamKernel::Scale:
        return "Scale";
      case StreamKernel::Add:
        return "Add";
      case StreamKernel::Triad:
        return "Triad";
    }
    util::panic("streamKernelName: unhandled kernel");
}

const std::vector<StreamKernel> &
streamKernels()
{
    static const std::vector<StreamKernel> kernels{
        StreamKernel::Copy, StreamKernel::Scale, StreamKernel::Add,
        StreamKernel::Triad};
    return kernels;
}

GBps
StreamModel::baseBandwidth(StreamKernel kernel)
{
    // Typical six-channel DDR4-2400 Skylake-W sustained numbers at B1;
    // Add/Triad run slightly higher than Copy/Scale (two loads + one
    // store amortise the write-allocate traffic better).
    switch (kernel) {
      case StreamKernel::Copy:
        return 88.0;
      case StreamKernel::Scale:
        return 87.0;
      case StreamKernel::Add:
        return 96.0;
      case StreamKernel::Triad:
        return 98.0;
    }
    util::panic("StreamModel: unhandled kernel");
}

GBps
StreamModel::bandwidth(StreamKernel kernel,
                       const hw::DomainClocks &clocks) const
{
    util::fatalIf(clocks.core <= 0.0 || clocks.llc <= 0.0 ||
                      clocks.memory <= 0.0,
                  "StreamModel::bandwidth: non-positive clock");
    const hw::DomainClocks b1{kB1Core, kB1Llc, kB1Mem};
    return baseBandwidth(kernel) * inverseThroughput(b1) /
           inverseThroughput(clocks);
}

double
StreamModel::relativeToB1(StreamKernel kernel,
                          const hw::DomainClocks &clocks) const
{
    const hw::DomainClocks b1{kB1Core, kB1Llc, kB1Mem};
    return bandwidth(kernel, clocks) / bandwidth(kernel, b1);
}

} // namespace workload
} // namespace imsim
