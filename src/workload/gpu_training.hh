/**
 * @file
 * GPU CNN-training model (Fig. 11): six VGG variants trained on a
 * Table VIII-configured GPU, with per-model SM/memory bottleneck splits.
 * The batch-optimised VGG16B is compute-dense, so memory overclocking
 * (OCG2 -> OCG3) buys it little — the paper's headline observation.
 */

#ifndef IMSIM_WORKLOAD_GPU_TRAINING_HH
#define IMSIM_WORKLOAD_GPU_TRAINING_HH

#include <string>
#include <vector>

#include "hw/gpu.hh"
#include "util/units.hh"

namespace imsim {
namespace workload {

/** One CNN training workload (a VGG variant). */
struct VggModel
{
    std::string name;  ///< e.g. "VGG16B" (B = batch-optimised).
    double smWork;     ///< Fraction of step time on the SM clock.
    double memWork;    ///< Fraction on the GPU memory clock.
    double fixedWork;  ///< Clock-invariant fraction (host, launch).
    double activity;   ///< GPU activity factor while training.
};

/** @return the six VGG variants evaluated in Fig. 11. */
const std::vector<VggModel> &vggCatalog();

/** Look up a VGG variant by name; FatalError when unknown. */
const VggModel &vggModel(const std::string &name);

/**
 * Training-time model.
 */
class GpuTrainingModel
{
  public:
    GpuTrainingModel() = default;

    /**
     * Execution time of one training run of @p model on @p gpu, relative
     * to the same model on the Table VIII "Base" configuration.
     */
    double relativeTime(const VggModel &model, const hw::GpuModel &gpu) const;

    /** Board power while training @p model on @p gpu [W]. */
    Watts trainingPower(const VggModel &model, const hw::GpuModel &gpu) const;

    /** P99 board power while training (burst factor on activity) [W]. */
    Watts trainingPowerP99(const VggModel &model,
                           const hw::GpuModel &gpu) const;
};

} // namespace workload
} // namespace imsim

#endif // IMSIM_WORKLOAD_GPU_TRAINING_HH
