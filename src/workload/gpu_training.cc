#include "workload/gpu_training.hh"

#include <algorithm>

#include "util/logging.hh"

namespace imsim {
namespace workload {

namespace {

/** Reference (Base config) clocks for normalisation. */
constexpr GHz kBaseTurbo = 1.950;
constexpr GHz kBaseMem = 6.8;

/** P99/average activity burst ratio during training. */
constexpr double kBurst = 1.15;

} // namespace

const std::vector<VggModel> &
vggCatalog()
{
    // SM/memory splits: deeper VGG variants are more compute-dense; the
    // batch-optimised variants (suffix B) keep activations resident and
    // are almost entirely SM-bound, so GPU-memory overclocking does not
    // help them (Fig. 11 discussion of VGG16B).
    static const std::vector<VggModel> catalog{
        {"VGG11", 0.58, 0.37, 0.05, 0.72},
        {"VGG13", 0.63, 0.32, 0.05, 0.74},
        {"VGG16", 0.68, 0.27, 0.05, 0.75},
        {"VGG19", 0.71, 0.24, 0.05, 0.76},
        {"VGG13B", 0.80, 0.15, 0.05, 0.78},
        {"VGG16B", 0.88, 0.07, 0.05, 0.80},
    };
    return catalog;
}

const VggModel &
vggModel(const std::string &name)
{
    for (const auto &model : vggCatalog())
        if (model.name == name)
            return model;
    util::fatal("unknown VGG model: " + name);
}

double
GpuTrainingModel::relativeTime(const VggModel &model,
                               const hw::GpuModel &gpu) const
{
    const GHz f_core = gpu.sustainedCoreClock(model.activity);
    const GHz f_mem = gpu.memoryClock();
    return model.smWork * (kBaseTurbo / f_core) +
           model.memWork * (kBaseMem / f_mem) + model.fixedWork;
}

Watts
GpuTrainingModel::trainingPower(const VggModel &model,
                                const hw::GpuModel &gpu) const
{
    return gpu.power(model.activity).total;
}

Watts
GpuTrainingModel::trainingPowerP99(const VggModel &model,
                                   const hw::GpuModel &gpu) const
{
    return gpu.power(std::min(1.0, model.activity * kBurst)).total;
}

} // namespace workload
} // namespace imsim
