/**
 * @file
 * Synthetic production-utilization traces and the overclocking
 * opportunity analysis.
 *
 * Sec. IV states: "Our analysis of Azure's production telemetry reveals
 * opportunities to operate processors at even higher frequencies ...
 * depending on the number of active cores and their utilizations.
 * However, such opportunities will diminish in future component
 * generations with higher TDP values." The real telemetry is
 * proprietary; this module substitutes a generator of realistic
 * server-utilization traces (diurnal base + weekly modulation +
 * autocorrelated noise + bursts) and the analysis that quantifies, for a
 * given cooling technology and TDP, what fraction of time a server could
 * have run in the turbo or overclocking domain.
 */

#ifndef IMSIM_WORKLOAD_TRACE_HH
#define IMSIM_WORKLOAD_TRACE_HH

#include <vector>

#include "hw/turbo.hh"
#include "power/socket_power.hh"
#include "thermal/cooling.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace imsim {
namespace workload {

/** One utilization sample. */
struct TraceSample
{
    Seconds time;       ///< Sample timestamp [s].
    double utilization; ///< Server CPU utilization [0, 1].
    int activeCores;    ///< Cores with runnable work.
};

/** Parameters of the synthetic trace generator. */
struct TraceParams
{
    int cores = 28;             ///< Cores on the server.
    double meanUtil = 0.45;     ///< Long-run average utilization.
    double diurnalAmplitude = 0.20; ///< Peak-to-mean diurnal swing.
    double weekendDip = 0.10;   ///< Utilization drop on weekends.
    double noiseSigma = 0.05;   ///< AR(1) noise magnitude.
    double noisePhi = 0.9;      ///< AR(1) autocorrelation per sample.
    double burstProb = 0.01;    ///< Per-sample probability of a burst.
    double burstBoost = 0.35;   ///< Burst utilization boost.
    Seconds sampleInterval = 300.0; ///< 5-minute samples.
};

/**
 * Generator of realistic long-running-workload utilization traces.
 */
class TraceGenerator
{
  public:
    explicit TraceGenerator(TraceParams params = {});

    /**
     * Generate @p days of samples.
     * @param rng Random stream.
     */
    std::vector<TraceSample> generate(util::Rng &rng, double days) const;

    /** @return the parameters. */
    const TraceParams &params() const { return cfg; }

  private:
    TraceParams cfg;
};

/** Outcome of the opportunity analysis over one trace. */
struct OpportunityReport
{
    double turboShare = 0.0;      ///< Time share where f > base fits.
    double overclockShare = 0.0;  ///< Time share where f > turbo fits.
    double guaranteedShare = 0.0; ///< Remainder.
    GHz meanSustainable = 0.0;    ///< Time-average sustainable frequency.
};

/**
 * For each trace sample, compute the highest frequency the part could
 * sustain under @p cooling within @p tdp (via the turbo governor) and
 * classify it against the Fig. 4 domains.
 *
 * @param governor Part's frequency-domain map.
 * @param socket   Power model.
 * @param cooling  Cooling system.
 * @param trace    Utilization trace.
 */
OpportunityReport
analyzeOpportunity(const hw::TurboGovernor &governor,
                   const power::SocketPowerModel &socket,
                   const thermal::CoolingSystem &cooling,
                   const std::vector<TraceSample> &trace);

} // namespace workload
} // namespace imsim

#endif // IMSIM_WORKLOAD_TRACE_HH
