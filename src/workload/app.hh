/**
 * @file
 * Application catalog (Table IX) and the bottleneck work vectors that
 * drive the performance model.
 *
 * Each application is characterised by how its execution time splits
 * across four resources at the reference configuration (Table VII B2):
 * core-clocked work, LLC/uncore-clocked work, memory-clocked work, and
 * clock-invariant IO. The per-app vectors are calibrated so the Fig. 9
 * qualitative results hold (see DESIGN.md section 4).
 */

#ifndef IMSIM_WORKLOAD_APP_HH
#define IMSIM_WORKLOAD_APP_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace imsim {
namespace workload {

/** Metric of interest for an application (Table IX). */
enum class Metric
{
    P95Latency, ///< 95th-percentile latency, lower is better.
    P99Latency, ///< 99th-percentile latency, lower is better.
    Seconds,    ///< Execution time, lower is better.
    OpsPerSec,  ///< Throughput, higher is better.
    MBps,       ///< Memory bandwidth, higher is better.
};

/** @return a printable name for a metric. */
std::string metricName(Metric metric);

/** @return whether lower values of @p metric are better. */
bool lowerIsBetter(Metric metric);

/**
 * Fractional split of execution time across resources at the reference
 * configuration. Fractions are non-negative and sum to 1.
 */
struct WorkVector
{
    double core = 1.0; ///< Scales with the core clock.
    double llc = 0.0;  ///< Scales with the uncore/LLC clock.
    double mem = 0.0;  ///< Scales with the memory clock.
    double io = 0.0;   ///< Clock-invariant (disk, network, fixed waits).

    /** @return the sum of the fractions (should be 1). */
    double sum() const { return core + llc + mem + io; }

    /**
     * Frequency-scalable fraction dPperf/dAperf the Eq. 1 counters see:
     * of the cycles the core is active, the fraction doing core-clocked
     * work rather than stalled on uncore/memory. IO does not occupy the
     * core at all.
     */
    double scalableFraction() const;
};

/** One row of Table IX. */
struct AppProfile
{
    std::string name;     ///< Application name.
    int cores;            ///< vCores the application needs.
    std::string description;
    bool inHouse;         ///< (I) in-house vs (P) public.
    Metric metric;        ///< Metric of interest.
    WorkVector work;      ///< Bottleneck decomposition at B2.
    double activity;      ///< CPU package activity factor when running.
    double burstiness;    ///< P99/average activity ratio (>= 1).

    /**
     * For latency-metric apps: open-loop service demand [s] at B2 and
     * the service-time coefficient of variation ("General" service
     * distribution).
     */
    Seconds serviceMean = 0.0;
    double serviceCv = 1.0;
};

/** @return the Table IX catalog (CPU/memory apps; VGG is in gpu_training). */
const std::vector<AppProfile> &appCatalog();

/** Look up an application by name; FatalError when unknown. */
const AppProfile &app(const std::string &name);

} // namespace workload
} // namespace imsim

#endif // IMSIM_WORKLOAD_APP_HH
