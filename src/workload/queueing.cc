#include "workload/queueing.hh"

#include <algorithm>

#include "obs/profiler.hh"
#include "util/logging.hh"
#include "workload/perf.hh"

namespace imsim {
namespace workload {

QueueingCluster::QueueingCluster(sim::Simulation &simulation,
                                 util::Rng rng_in, Params params)
    : sim(simulation), rng(rng_in), cfg(params)
{
    util::fatalIf(cfg.serviceMean <= 0.0,
                  "QueueingCluster: service mean must be positive");
    util::fatalIf(cfg.threadsPerServer <= 0,
                  "QueueingCluster: need at least one thread per server");
    util::fatalIf(cfg.kappa < 0.0 || cfg.kappa > 1.0,
                  "QueueingCluster: kappa out of [0,1]");
}

std::size_t
QueueingCluster::addServer(GHz freq)
{
    util::fatalIf(freq <= 0.0, "QueueingCluster::addServer: bad frequency");
    accountVmTime();
    auto server = std::make_unique<Server>(cfg.utilWindow);
    server->freq = freq;
    server->threads = cfg.threadsPerServer;
    server->createdAt = sim.now();
    server->lastChange = sim.now();
    server->lastCounterAdvance = sim.now();
    server->utilWindow.record(sim.now(), 0.0);
    servers.push_back(std::move(server));
    const std::size_t id = servers.size() - 1;
    maxActive = std::max(maxActive, activeServers());
    // A new server can immediately absorb queued work.
    while (!queue.empty() &&
           servers[id]->busy < servers[id]->threads) {
        Request req = queue.front();
        queue.pop_front();
        dispatch(id, req);
    }
    return id;
}

std::size_t
QueueingCluster::removeServer()
{
    accountVmTime();
    for (std::size_t id = servers.size(); id-- > 0;) {
        if (servers[id]->active) {
            servers[id]->active = false;
            return id;
        }
    }
    util::fatal("QueueingCluster::removeServer: no active server");
}

void
QueueingCluster::crashServer(std::size_t id)
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::crashServer: bad server id");
    Server &server = *servers[id];
    util::fatalIf(!server.active,
                  "QueueingCluster::crashServer: server not active");
    accountVmTime();
    // Advance the busy integral and counters up to the crash instant,
    // then zero the thread state: the interrupted work is not lost, it
    // goes back to the queue below.
    recordBusyChange(server);
    server.busy = 0;
    server.active = false;
    server.crashed = true;
    server.utilWindow.record(sim.now(), 0.0);

    // Cancel the in-flight completions and requeue their requests, in
    // arrival order (slot index breaks ties), ahead of the queued
    // backlog — they arrived before everything still waiting.
    std::vector<std::pair<Seconds, Seconds>> interrupted; // (arrival, demand)
    for (std::uint32_t slot = 0;
         slot < static_cast<std::uint32_t>(inFlight.size()); ++slot) {
        InFlight &rec = inFlight[slot];
        if (!rec.live || rec.server != id)
            continue;
        sim.cancel(rec.completion);
        interrupted.emplace_back(rec.arrival, rec.demand);
        rec.live = false;
        rec.nextFree = inFlightFree;
        inFlightFree = slot;
    }
    std::stable_sort(interrupted.begin(), interrupted.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (auto it = interrupted.rbegin(); it != interrupted.rend(); ++it)
        queue.push_front(Request{it->first, it->second});

    // Surviving servers with free threads absorb the displaced work.
    drainQueue();
}

void
QueueingCluster::repairServer(std::size_t id)
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::repairServer: bad server id");
    Server &server = *servers[id];
    util::fatalIf(!server.crashed,
                  "QueueingCluster::repairServer: server not crashed");
    accountVmTime();
    server.crashed = false;
    server.active = true;
    server.busy = 0;
    // Restart the piecewise-constant signals at the repair instant; the
    // dead gap reads as zero utilization and contributes no counter
    // cycles (callers invalidate their Aperf/Pperf deltas on crash).
    server.lastChange = sim.now();
    server.lastCounterAdvance = sim.now();
    server.utilWindow.record(sim.now(), 0.0);
    maxActive = std::max(maxActive, activeServers());
    // A repaired server can immediately absorb queued work.
    while (!queue.empty() && server.busy < server.threads) {
        Request req = queue.front();
        queue.pop_front();
        dispatch(id, req);
    }
}

bool
QueueingCluster::isCrashed(std::size_t id) const
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::isCrashed: bad server id");
    return servers[id]->crashed;
}

std::size_t
QueueingCluster::crashedServers() const
{
    std::size_t count = 0;
    for (const auto &server : servers)
        if (server->crashed)
            ++count;
    return count;
}

int
QueueingCluster::busyThreads(std::size_t id) const
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::busyThreads: bad server id");
    return servers[id]->busy;
}

void
QueueingCluster::drainQueue()
{
    int target;
    while (!queue.empty() && (target = pickServer()) >= 0) {
        Request req = queue.front();
        queue.pop_front();
        dispatch(static_cast<std::size_t>(target), req);
    }
}

void
QueueingCluster::setFrequency(std::size_t id, GHz freq)
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::setFrequency: bad server id");
    util::fatalIf(freq <= 0.0,
                  "QueueingCluster::setFrequency: bad frequency");
    advanceCounters(*servers[id]);
    servers[id]->freq = freq;
}

void
QueueingCluster::setAllFrequencies(GHz freq)
{
    for (std::size_t id = 0; id < servers.size(); ++id)
        if (servers[id]->active)
            setFrequency(id, freq);
}

GHz
QueueingCluster::frequency(std::size_t id) const
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::frequency: bad server id");
    return servers[id]->freq;
}

void
QueueingCluster::setArrivalRate(double qps)
{
    util::fatalIf(qps < 0.0, "QueueingCluster: negative arrival rate");
    arrivalRate = qps;
    if (arrivalPending) {
        sim.cancel(arrivalEvent);
        arrivalPending = false;
    }
    if (arrivalRate > 0.0)
        scheduleNextArrival();
}

void
QueueingCluster::scheduleNextArrival()
{
    const Seconds gap = rng.exponential(1.0 / arrivalRate);
    arrivalEvent = sim.after(gap, [this] {
        arrivalPending = false;
        onArrival();
    });
    arrivalPending = true;
}

void
QueueingCluster::onArrival()
{
    obs::ProfScope prof("workload.queueing.arrival");
    Request req;
    req.arrival = sim.now();
    req.demand = rng.lognormalMeanCv(cfg.serviceMean, cfg.serviceCv);

    const int target = pickServer();
    if (target >= 0)
        dispatch(static_cast<std::size_t>(target), req);
    else
        queue.push_back(req);

    if (arrivalRate > 0.0)
        scheduleNextArrival();
}

int
QueueingCluster::pickServer() const
{
    // Least-loaded active server with a free thread (the load balancer).
    int best = -1;
    double best_load = 2.0;
    for (std::size_t id = 0; id < servers.size(); ++id) {
        const Server &server = *servers[id];
        if (!server.active || server.busy >= server.threads)
            continue;
        const double load =
            static_cast<double>(server.busy) /
            static_cast<double>(server.threads);
        if (load < best_load) {
            best_load = load;
            best = static_cast<int>(id);
        }
    }
    return best;
}

void
QueueingCluster::dispatch(std::size_t id, Request req)
{
    Server &server = *servers[id];
    util::panicIf(server.busy >= server.threads,
                  "QueueingCluster::dispatch: server has no free thread");
    recordBusyChange(server);
    ++server.busy;
    server.utilWindow.record(
        sim.now(), static_cast<double>(server.busy) /
                       static_cast<double>(server.threads));

    const double scale =
        serviceTimeScale(cfg.kappa, cfg.refFreq, server.freq);
    const Seconds duration = req.demand * scale;
    const std::uint32_t slot = allocInFlight();
    InFlight &rec = inFlight[slot];
    rec.arrival = req.arrival;
    rec.demand = req.demand;
    rec.server = static_cast<std::uint32_t>(id);
    rec.live = true;
    rec.completion = sim.after(duration, [this, slot] { complete(slot); });
}

std::uint32_t
QueueingCluster::allocInFlight()
{
    if (inFlightFree != kNoInFlight) {
        const std::uint32_t slot = inFlightFree;
        inFlightFree = inFlight[slot].nextFree;
        inFlight[slot].nextFree = kNoInFlight;
        return slot;
    }
    inFlight.emplace_back();
    return static_cast<std::uint32_t>(inFlight.size() - 1);
}

void
QueueingCluster::complete(std::uint32_t slot)
{
    const InFlight rec = inFlight[slot];
    inFlight[slot].live = false;
    inFlight[slot].nextFree = inFlightFree;
    inFlightFree = slot;
    const Seconds latency = sim.now() - rec.arrival;
    latencyStats.add(latency);
    if (!tailBuckets.empty())
        recordTailLatency(latency);
    ++completedCount;
    onCompletion(rec.server);
}

void
QueueingCluster::onCompletion(std::size_t id)
{
    Server &server = *servers[id];
    recordBusyChange(server);
    --server.busy;
    util::panicIf(server.busy < 0,
                  "QueueingCluster::onCompletion: negative busy count");
    server.utilWindow.record(
        sim.now(), static_cast<double>(server.busy) /
                       static_cast<double>(server.threads));

    if (server.active && !queue.empty()) {
        Request req = queue.front();
        queue.pop_front();
        dispatch(id, req);
    }
}

void
QueueingCluster::recordBusyChange(Server &server)
{
    const Seconds dt = sim.now() - server.lastChange;
    server.busyIntegral += dt * static_cast<double>(server.busy);
    server.lastChange = sim.now();
    advanceCounters(server);
}

void
QueueingCluster::advanceCounters(Server &server)
{
    const Seconds dt = sim.now() - server.lastCounterAdvance;
    if (dt <= 0.0)
        return;
    const double busy_frac =
        static_cast<double>(server.busy) /
        static_cast<double>(server.threads);
    server.counters.advance(dt, server.freq, busy_frac, 1.0 - cfg.kappa);
    server.lastCounterAdvance = sim.now();
}

double
QueueingCluster::utilization(std::size_t id, Seconds window) const
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::utilization: bad server id");
    return servers[id]->utilWindow.average(sim.now(), window);
}

double
QueueingCluster::fleetUtilization(Seconds window) const
{
    double total = 0.0;
    std::size_t active = 0;
    for (std::size_t id = 0; id < servers.size(); ++id) {
        if (!servers[id]->active)
            continue;
        total += utilization(id, window);
        ++active;
    }
    return active ? total / static_cast<double>(active) : 0.0;
}

hw::CounterSample
QueueingCluster::counters(std::size_t id)
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::counters: bad server id");
    advanceCounters(*servers[id]);
    return servers[id]->counters.sample();
}

std::size_t
QueueingCluster::activeServers() const
{
    std::size_t count = 0;
    for (const auto &server : servers)
        if (server->active)
            ++count;
    return count;
}

bool
QueueingCluster::isActive(std::size_t id) const
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::isActive: bad server id");
    return servers[id]->active;
}

void
QueueingCluster::accountVmTime()
{
    const Seconds dt = sim.now() - lastVmAccounting;
    vmSecondsIntegral += dt * static_cast<double>(activeServers());
    lastVmAccounting = sim.now();
}

double
QueueingCluster::vmHours() const
{
    const Seconds dt = sim.now() - lastVmAccounting;
    return (vmSecondsIntegral + dt * static_cast<double>(activeServers())) /
           units::kSecondsPerHour;
}

double
QueueingCluster::lifetimeBusyFraction(std::size_t id) const
{
    util::fatalIf(id >= servers.size(),
                  "QueueingCluster::lifetimeBusyFraction: bad server id");
    const Server &server = *servers[id];
    const Seconds lived = sim.now() - server.createdAt;
    if (lived <= 0.0)
        return 0.0;
    const Seconds dt = sim.now() - server.lastChange;
    const double busy_seconds =
        server.busyIntegral + dt * static_cast<double>(server.busy);
    return busy_seconds /
           (lived * static_cast<double>(server.threads));
}

void
QueueingCluster::enableTailTracking(Seconds window, std::size_t buckets)
{
    // 0.1 ms .. 100 s log-spaced: ~5.5% per-bin resolution across the
    // six decades a crisis can stretch a latency distribution over.
    enableTailTracking(window, buckets,
                       util::QuantileSketch::logarithmic(1e-4, 100.0,
                                                         256));
}

void
QueueingCluster::enableTailTracking(Seconds window, std::size_t buckets,
                                    const util::QuantileSketch &prototype)
{
    util::fatalIf(window <= 0.0,
                  "enableTailTracking: window must be > 0");
    util::fatalIf(buckets == 0,
                  "enableTailTracking: need at least one bucket");
    util::fatalIf(prototype.bins() == 0,
                  "enableTailTracking: prototype sketch has no bins");
    tailBuckets.assign(buckets, prototype);
    for (util::QuantileSketch &bucket : tailBuckets)
        bucket.reset();
    tailBucketSpan = window / static_cast<double>(buckets);
    tailBucketCur = 0;
    tailBucketStart = sim.now();
}

void
QueueingCluster::recordTailLatency(Seconds latency)
{
    const Seconds now = sim.now();
    // Rotate the ring up to once around; a gap longer than the whole
    // window has already staled every bucket, so just restart there.
    std::size_t steps = 0;
    while (now - tailBucketStart >= tailBucketSpan &&
           steps < tailBuckets.size()) {
        tailBucketCur = (tailBucketCur + 1) % tailBuckets.size();
        tailBuckets[tailBucketCur].reset();
        tailBucketStart += tailBucketSpan;
        ++steps;
    }
    if (now - tailBucketStart >= tailBucketSpan)
        tailBucketStart = now;
    tailBuckets[tailBucketCur].add(latency);
}

double
QueueingCluster::recentTailQuantile(double p) const
{
    if (tailBuckets.empty())
        return 0.0;
    return util::QuantileSketch::mergedQuantile(tailBuckets, p);
}

} // namespace workload
} // namespace imsim
