#include "obs/log.hh"

#include <cstdio>
#include <mutex>
#include <vector>

namespace imsim {
namespace obs {

namespace {

std::mutex sinkMutex;
std::vector<Logger::Sink> sinks;

/** Mirrors util::inform()/warn(): warnings to stderr, rest to stdout. */
void
consoleSink(util::LogLevel level, const std::string &logger,
            const std::string &msg)
{
    std::FILE *stream = level >= util::LogLevel::Warn ? stderr : stdout;
    if (logger.empty()) {
        std::fprintf(stream, "%s: %s\n",
                     util::logLevelName(level).c_str(), msg.c_str());
    } else {
        std::fprintf(stream, "%s: [%s] %s\n",
                     util::logLevelName(level).c_str(), logger.c_str(),
                     msg.c_str());
    }
}

} // namespace

void
Logger::log(util::LogLevel level, const std::string &msg) const
{
    if (!util::logEnabled(level))
        return;
    std::lock_guard<std::mutex> lock(sinkMutex);
    if (sinks.empty()) {
        consoleSink(level, loggerName, msg);
        return;
    }
    for (const auto &sink : sinks)
        sink(level, loggerName, msg);
}

void
Logger::addSink(Sink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    sinks.push_back(std::move(sink));
}

void
Logger::clearSinks()
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    sinks.clear();
}

} // namespace obs
} // namespace imsim
