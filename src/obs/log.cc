#include "obs/log.hh"

#include <cstdio>
#include <mutex>
#include <vector>

namespace imsim {
namespace obs {

namespace {

std::mutex sinkMutex;
std::vector<Logger::Sink> sinks;

// Duplicate-suppression state (all guarded by sinkMutex).
std::size_t dedupLimit = 0;   ///< 0 = suppression off.
util::LogLevel lastLevel = util::LogLevel::Info;
std::string lastLogger;
std::string lastMsg;
bool haveLast = false;
std::size_t repeatCount = 0;     ///< Consecutive emissions of lastMsg.
std::size_t suppressedCount = 0; ///< Swallowed repeats not yet reported.

/** Mirrors util::inform()/warn(): warnings to stderr, rest to stdout. */
void
consoleSink(util::LogLevel level, const std::string &logger,
            const std::string &msg)
{
    std::FILE *stream = level >= util::LogLevel::Warn ? stderr : stdout;
    if (logger.empty()) {
        std::fprintf(stream, "%s: %s\n",
                     util::logLevelName(level).c_str(), msg.c_str());
    } else {
        std::fprintf(stream, "%s: [%s] %s\n",
                     util::logLevelName(level).c_str(), logger.c_str(),
                     msg.c_str());
    }
}

/** Deliver one record to the sinks (caller holds sinkMutex). */
void
emitLocked(util::LogLevel level, const std::string &logger,
           const std::string &msg)
{
    if (sinks.empty()) {
        consoleSink(level, logger, msg);
        return;
    }
    for (const auto &sink : sinks)
        sink(level, logger, msg);
}

/** Report pending suppressed repeats (caller holds sinkMutex). */
void
flushDedupLocked()
{
    if (suppressedCount == 0)
        return;
    emitLocked(lastLevel, lastLogger,
               "suppressed " + std::to_string(suppressedCount) +
                   " duplicates of: " + lastMsg);
    suppressedCount = 0;
}

} // namespace

void
Logger::log(util::LogLevel level, const std::string &msg) const
{
    if (!util::logEnabled(level))
        return;
    std::lock_guard<std::mutex> lock(sinkMutex);
    if (dedupLimit > 0) {
        const bool same = haveLast && level == lastLevel &&
                          loggerName == lastLogger && msg == lastMsg;
        if (same) {
            if (++repeatCount > dedupLimit) {
                ++suppressedCount;
                return;
            }
        } else {
            flushDedupLocked();
            lastLevel = level;
            lastLogger = loggerName;
            lastMsg = msg;
            haveLast = true;
            repeatCount = 1;
        }
    }
    emitLocked(level, loggerName, msg);
}

void
Logger::addSink(Sink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    sinks.push_back(std::move(sink));
}

void
Logger::clearSinks()
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    // Flush while the registered sinks can still observe the summary.
    flushDedupLocked();
    sinks.clear();
}

void
Logger::setDedupLimit(std::size_t limit)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    flushDedupLocked();
    dedupLimit = limit;
    haveLast = false;
    repeatCount = 0;
}

void
Logger::flushDedup()
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    flushDedupLocked();
    // Restart the run so the next repeat of the same message counts
    // from a fresh window.
    haveLast = false;
    repeatCount = 0;
}

} // namespace obs
} // namespace imsim
