#include "obs/blackbox.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "util/json.hh"
#include "util/logging.hh"

namespace imsim {
namespace obs {

namespace {

std::string
jsonNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

/**
 * The process-wide post-mortem registry. Function-local statics so the
 * registry outlives any static-storage recorder; one mutex guards the
 * sink, the armed list, and dump serialization.
 */
struct PostMortemRegistry
{
    std::mutex mutex;
    std::string path;
    std::string meta;
    std::vector<std::pair<std::string, FlightRecorder *>> armed;
    std::uint64_t dumps = 0;
};

PostMortemRegistry &
postMortemRegistry()
{
    static PostMortemRegistry registry;
    return registry;
}

/** util::ErrorHook trampoline: dump the armed recorders on fatal(). */
void
errorHookTrampoline(const char *what, void *)
{
    FlightRecorder::postMortem(what);
}

} // namespace

const char *
blackboxEventKindName(BlackboxEventKind kind)
{
    switch (kind) {
      case BlackboxEventKind::AlertRaise:
        return "alert_raise";
      case BlackboxEventKind::AlertClear:
        return "alert_clear";
      case BlackboxEventKind::Fault:
        return "fault";
      case BlackboxEventKind::Violation:
        return "violation";
      case BlackboxEventKind::Note:
      default:
        return "note";
    }
}

FlightRecorder::Config
FlightRecorder::Config::forCadence(Seconds tick)
{
    util::fatalIf(tick <= 0.0,
                  "FlightRecorder::Config::forCadence: tick must be > 0");
    Config config;
    config.tiers = {{tick, 3600},
                    {10.0 * tick, 1440},
                    {60.0 * tick, 1440}};
    return config;
}

FlightRecorder::FlightRecorder(Config config) : cfg(std::move(config))
{
    util::fatalIf(cfg.tiers.empty(),
                  "FlightRecorder: need at least one retention tier");
    util::fatalIf(cfg.eventCapacity == 0,
                  "FlightRecorder: event capacity must be > 0");
    tiers.reserve(cfg.tiers.size());
    for (const Tier &tier : cfg.tiers) {
        util::fatalIf(tier.resolution <= 0.0,
                      "FlightRecorder: tier resolution must be > 0");
        util::fatalIf(tier.capacity == 0,
                      "FlightRecorder: tier capacity must be > 0");
        TierStore store;
        store.resolution = tier.resolution;
        store.capacity = tier.capacity;
        tiers.push_back(std::move(store));
    }
    eventRing.resize(cfg.eventCapacity);
}

FlightRecorder::~FlightRecorder()
{
    disarmPostMortem();
}

std::size_t
FlightRecorder::addChannel(std::string name,
                           std::function<double()> signal)
{
    std::lock_guard<std::mutex> lock(mutex);
    util::fatalIf(sealed,
                  "FlightRecorder::addChannel: channels are frozen "
                  "after the first tick");
    util::fatalIf(!signal,
                  "FlightRecorder::addChannel: channel needs a signal");
    channels.push_back(Channel{std::move(name), std::move(signal)});
    return channels.size() - 1;
}

/** Size every tier's flat ring for the frozen channel set. */
void
FlightRecorder::sizeStorageLocked()
{
    const std::size_t width = channels.size() * 3;
    for (TierStore &tier : tiers) {
        tier.startT.assign(tier.capacity, 0.0);
        tier.samples.assign(tier.capacity, 0);
        tier.stats.assign(tier.capacity * width, 0.0);
    }
    sampleScratch.assign(channels.size(), 0.0);
    sealed = true;
}

/** Fold the current sampleScratch into @p tier's bin covering @p t. */
void
FlightRecorder::foldLocked(TierStore &tier, Seconds t)
{
    const std::size_t width = channels.size() * 3;
    const auto bin = static_cast<std::int64_t>(
        std::floor(t / tier.resolution + 1e-9));
    if (tier.rows == 0 || bin != tier.backBin) {
        if (tier.rows == tier.capacity) {
            // Ring full: the oldest bin falls off the back of the
            // retention window.
            tier.head = (tier.head + 1) % tier.capacity;
            --tier.rows;
        }
        const std::size_t slot = (tier.head + tier.rows) % tier.capacity;
        tier.startT[slot] =
            static_cast<double>(bin) * tier.resolution;
        tier.samples[slot] = 0;
        double *stats = tier.stats.data() + slot * width;
        for (std::size_t c = 0; c < channels.size(); ++c) {
            stats[c * 3 + 0] = std::numeric_limits<double>::infinity();
            stats[c * 3 + 1] = -std::numeric_limits<double>::infinity();
            stats[c * 3 + 2] = 0.0;
        }
        ++tier.rows;
        tier.backBin = bin;
    }
    const std::size_t slot =
        (tier.head + tier.rows - 1) % tier.capacity;
    ++tier.samples[slot];
    double *stats = tier.stats.data() + slot * width;
    for (std::size_t c = 0; c < channels.size(); ++c) {
        const double v = sampleScratch[c];
        stats[c * 3 + 0] = std::min(stats[c * 3 + 0], v);
        stats[c * 3 + 1] = std::max(stats[c * 3 + 1], v);
        stats[c * 3 + 2] += v;
    }
}

void
FlightRecorder::tick(Seconds t)
{
    std::lock_guard<std::mutex> lock(mutex);
    util::fatalIf(sealed && tickCount > 0 && t < lastTick,
                  "FlightRecorder::tick: time went backwards");
    if (!sealed)
        sizeStorageLocked();
    // Poll every channel once, then fold the same sample vector into
    // each tier — a bin's mean/min/max never mixes two polls of one
    // instant.
    for (std::size_t c = 0; c < channels.size(); ++c)
        sampleScratch[c] = channels[c].signal();
    for (TierStore &tier : tiers)
        foldLocked(tier, t);
    lastTick = t;
    ++tickCount;
}

void
FlightRecorder::pushEventLocked(Seconds t, BlackboxEventKind kind,
                                double value, const std::string &label)
{
    const std::size_t slot = (eventHead + eventLive) % eventRing.size();
    if (eventLive == eventRing.size())
        eventHead = (eventHead + 1) % eventRing.size();
    else
        ++eventLive;
    BlackboxEvent &event = eventRing[slot];
    event.t = t;
    event.kind = kind;
    event.value = value;
    event.label = label;
    ++eventTotal;
}

void
FlightRecorder::noteAlert(Seconds t, const std::string &rule,
                          double value, bool raised)
{
    std::lock_guard<std::mutex> lock(mutex);
    pushEventLocked(t,
                    raised ? BlackboxEventKind::AlertRaise
                           : BlackboxEventKind::AlertClear,
                    value, rule);
}

void
FlightRecorder::noteFault(Seconds t, const std::string &label)
{
    std::lock_guard<std::mutex> lock(mutex);
    pushEventLocked(t, BlackboxEventKind::Fault, 0.0, label);
}

void
FlightRecorder::noteViolation(Seconds t, const std::string &check)
{
    std::lock_guard<std::mutex> lock(mutex);
    pushEventLocked(t, BlackboxEventKind::Violation, 0.0, check);
}

void
FlightRecorder::note(Seconds t, const std::string &label)
{
    std::lock_guard<std::mutex> lock(mutex);
    pushEventLocked(t, BlackboxEventKind::Note, 0.0, label);
}

void
FlightRecorder::page(Seconds t, const std::string &rule, double value,
                     bool raised)
{
    noteAlert(t, rule, value, raised);
    if (raised && armed())
        postMortem("watchdog page: " + rule);
}

void
FlightRecorder::violation(Seconds t, const std::string &check)
{
    noteViolation(t, check);
    if (armed())
        postMortem("invariant violation: " + check);
}

void
FlightRecorder::armPostMortem(std::string label)
{
    PostMortemRegistry &registry = postMortemRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (auto &entry : registry.armed) {
        if (entry.second == this) {
            entry.first = std::move(label);
            return;
        }
    }
    registry.armed.emplace_back(std::move(label), this);
}

void
FlightRecorder::disarmPostMortem()
{
    PostMortemRegistry &registry = postMortemRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto &armed = registry.armed;
    armed.erase(std::remove_if(armed.begin(), armed.end(),
                               [this](const auto &entry) {
                                   return entry.second == this;
                               }),
                armed.end());
}

bool
FlightRecorder::armed() const
{
    PostMortemRegistry &registry = postMortemRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto &entry : registry.armed) {
        if (entry.second == this)
            return true;
    }
    return false;
}

void
FlightRecorder::setPostMortemSink(std::string path, std::string meta_json)
{
    util::fatalIf(path.empty(),
                  "FlightRecorder::setPostMortemSink: empty path");
    PostMortemRegistry &registry = postMortemRegistry();
    {
        std::lock_guard<std::mutex> lock(registry.mutex);
        registry.path = std::move(path);
        registry.meta = std::move(meta_json);
    }
    util::setErrorHook(&errorHookTrampoline, nullptr);
}

void
FlightRecorder::clearPostMortemSink()
{
    util::setErrorHook(nullptr, nullptr);
    PostMortemRegistry &registry = postMortemRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.path.clear();
    registry.meta.clear();
}

std::string
FlightRecorder::postMortem(const std::string &reason)
{
    PostMortemRegistry &registry = postMortemRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    if (registry.path.empty() || registry.armed.empty())
        return "";
    std::string doc = "{\n  \"schema\": \"";
    doc += kBlackboxSchema;
    doc += "\",\n  \"meta\": ";
    doc += registry.meta.empty() ? "{}" : registry.meta;
    // The trigger goes into the document, not the recorders' event
    // rings: recorders stay pure observers, so the explicit end-of-run
    // dump is byte-identical whether or not pages fired mid-run (and
    // at any sweep job count — trigger timing depends on scheduling).
    doc += ",\n  \"reason\": ";
    util::Json::appendEscaped(doc, reason);
    doc += ",\n  \"points\": [";
    for (std::size_t i = 0; i < registry.armed.size(); ++i) {
        FlightRecorder &recorder = *registry.armed[i].second;
        doc += i ? ",\n    " : "\n    ";
        doc += recorder.pointJson(registry.armed[i].first);
    }
    doc += registry.armed.empty() ? "]" : "\n  ]";
    doc += "\n}\n";
    // Best-effort: this runs inside fatal()/panic() paths, so a
    // failing write warns rather than raising a second error.
    std::ofstream out(registry.path);
    if (!out) {
        util::warn("FlightRecorder::postMortem: cannot open '" +
                   registry.path + "' for writing");
        return "";
    }
    out << doc;
    if (!out) {
        util::warn("FlightRecorder::postMortem: failed writing '" +
                   registry.path + "'");
        return "";
    }
    ++registry.dumps;
    return registry.path;
}

std::uint64_t
FlightRecorder::postMortemCount()
{
    PostMortemRegistry &registry = postMortemRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    return registry.dumps;
}

std::size_t
FlightRecorder::ticks() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return tickCount;
}

Seconds
FlightRecorder::tierResolution(std::size_t tier) const
{
    util::fatalIf(tier >= tiers.size(),
                  "FlightRecorder::tierResolution: tier out of range");
    return tiers[tier].resolution;
}

std::size_t
FlightRecorder::tierCapacity(std::size_t tier) const
{
    util::fatalIf(tier >= tiers.size(),
                  "FlightRecorder::tierCapacity: tier out of range");
    return tiers[tier].capacity;
}

std::size_t
FlightRecorder::tierRows(std::size_t tier) const
{
    util::fatalIf(tier >= tiers.size(),
                  "FlightRecorder::tierRows: tier out of range");
    std::lock_guard<std::mutex> lock(mutex);
    return tiers[tier].rows;
}

FlightRecorder::BinStats
FlightRecorder::bin(std::size_t tier, std::size_t row,
                    std::size_t channel) const
{
    util::fatalIf(tier >= tiers.size(),
                  "FlightRecorder::bin: tier out of range");
    util::fatalIf(channel >= channels.size(),
                  "FlightRecorder::bin: channel out of range");
    std::lock_guard<std::mutex> lock(mutex);
    const TierStore &store = tiers[tier];
    util::fatalIf(row >= store.rows,
                  "FlightRecorder::bin: row out of range");
    const std::size_t slot = (store.head + row) % store.capacity;
    const std::size_t width = channels.size() * 3;
    const double *stats = store.stats.data() + slot * width;
    BinStats out;
    out.t = store.startT[slot];
    out.samples = store.samples[slot];
    out.min = stats[channel * 3 + 0];
    out.max = stats[channel * 3 + 1];
    out.mean = out.samples
                   ? stats[channel * 3 + 2] /
                         static_cast<double>(out.samples)
                   : 0.0;
    return out;
}

std::vector<BlackboxEvent>
FlightRecorder::events() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<BlackboxEvent> out;
    out.reserve(eventLive);
    for (std::size_t i = 0; i < eventLive; ++i)
        out.push_back(eventRing[(eventHead + i) % eventRing.size()]);
    return out;
}

std::uint64_t
FlightRecorder::eventsNoted() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return eventTotal;
}

void
FlightRecorder::appendPointJsonLocked(std::string &out,
                                      const std::string &label) const
{
    out += "{\"label\": ";
    util::Json::appendEscaped(out, label);
    out += ",\n     \"ticks\": " + std::to_string(tickCount);
    out += ",\n     \"channels\": [";
    for (std::size_t c = 0; c < channels.size(); ++c) {
        if (c)
            out += ", ";
        util::Json::appendEscaped(out, channels[c].name);
    }
    out += "],\n     \"tiers\": [";
    const std::size_t width = channels.size() * 3;
    for (std::size_t ti = 0; ti < tiers.size(); ++ti) {
        const TierStore &tier = tiers[ti];
        out += ti ? ",\n       " : "\n       ";
        out += "{\"resolution_s\": " + jsonNumber(tier.resolution) +
               ", \"capacity\": " + std::to_string(tier.capacity) +
               ", \"rows\": [";
        for (std::size_t r = 0; r < tier.rows; ++r) {
            const std::size_t slot = (tier.head + r) % tier.capacity;
            const double *stats = tier.stats.data() + slot * width;
            out += r ? ",\n         " : "\n         ";
            out += "[" + jsonNumber(tier.startT[slot]) + ", " +
                   std::to_string(tier.samples[slot]);
            const auto n = static_cast<double>(tier.samples[slot]);
            for (std::size_t c = 0; c < channels.size(); ++c) {
                out += ", " + jsonNumber(stats[c * 3 + 0]) + ", " +
                       jsonNumber(n > 0.0 ? stats[c * 3 + 2] / n
                                          : 0.0) +
                       ", " + jsonNumber(stats[c * 3 + 1]);
            }
            out += "]";
        }
        out += tier.rows ? "\n       ]}" : "]}";
    }
    out += tiers.empty() ? "]" : "\n     ]";
    out += ",\n     \"events_noted\": " + std::to_string(eventTotal);
    out += ",\n     \"events\": [";
    for (std::size_t i = 0; i < eventLive; ++i) {
        const BlackboxEvent &event =
            eventRing[(eventHead + i) % eventRing.size()];
        out += i ? ",\n       " : "\n       ";
        out += "{\"t_s\": " + jsonNumber(event.t) + ", \"kind\": \"";
        out += blackboxEventKindName(event.kind);
        out += "\", \"value\": " + jsonNumber(event.value) +
               ", \"label\": ";
        util::Json::appendEscaped(out, event.label);
        out += "}";
    }
    out += eventLive ? "\n     ]}" : "]}";
}

std::string
FlightRecorder::pointJson(const std::string &label) const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::string out;
    appendPointJsonLocked(out, label);
    return out;
}

std::string
FlightRecorder::mergedJson(
    const std::vector<std::pair<std::string, const FlightRecorder *>>
        &points,
    const std::string &meta_json)
{
    std::string out = "{\n  \"schema\": \"";
    out += kBlackboxSchema;
    out += "\",\n  \"meta\": ";
    out += meta_json.empty() ? "{}" : meta_json;
    out += ",\n  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        std::string point;
        {
            std::lock_guard<std::mutex> lock(points[i].second->mutex);
            points[i].second->appendPointJsonLocked(point,
                                                    points[i].first);
        }
        out += point;
    }
    out += points.empty() ? "]" : "\n  ]";
    out += "\n}\n";
    return out;
}

std::string
FlightRecorder::toJson(const std::string &label,
                       const std::string &meta_json) const
{
    return mergedJson({{label, this}}, meta_json);
}

void
FlightRecorder::writeJsonFile(const std::string &path,
                              const std::string &label,
                              const std::string &meta_json) const
{
    std::ofstream out(path);
    util::fatalIf(!out, "FlightRecorder::writeJsonFile: cannot open '" +
                            path + "' for writing");
    out << toJson(label, meta_json);
    util::fatalIf(!out, "FlightRecorder::writeJsonFile: failed "
                        "writing '" + path + "'");
}

FleetBlackbox::FleetBlackbox(FleetAggregator::Config agg_cfg,
                             FlightRecorder::Config rec_cfg,
                             double fire_power_w, double clear_power_w)
    : aggregator(std::move(agg_cfg)), recorder(std::move(rec_cfg))
{
    recorder.addChannel("fleet_power_w", [this] {
        return aggregator.latest().fleetPower;
    });
    recorder.addChannel("tj_max_c", [this] {
        return aggregator.latest().overall[kChanTj].max;
    });
    recorder.addChannel("tj_p99_c", [this] {
        return aggregator.latest().overall[kChanTj].p99;
    });
    recorder.addChannel("util_mean", [this] {
        return aggregator.latest().overall[kChanUtilization].mean;
    });
    recorder.addChannel("wear_rate_p99", [this] {
        return aggregator.latest().overall[kChanWearRate].p99;
    });
    recorder.addChannel("alerts_firing", [this] {
        return static_cast<double>(watchdog.firingCount());
    });

    WatchdogRule rule;
    rule.name = "fleet_power";
    rule.kind = AlertKind::Brownout;
    rule.signal = [this] { return aggregator.latest().fleetPower; };
    rule.fireThreshold = fire_power_w;
    rule.clearThreshold = clear_power_w;
    watchdog.addRule(rule);
    watchdog.attachFlightRecorder(&recorder);
}

} // namespace obs
} // namespace imsim
