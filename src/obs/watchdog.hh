/**
 * @file
 * Declarative SLO watchdog: threshold rules with hysteresis and
 * debounce over any polled scalar signal (fleet aggregates, registry
 * metrics, model accessors), firing typed alerts when breached and
 * clearing them when the signal recovers past the clear threshold.
 *
 * This is the detection half the paper's operational story assumes —
 * overclocking is safe *because* someone is watching Tj, wear, and
 * tail latency and reacts before limits are crossed. The watchdog is a
 * pure observer: evaluate() only reads the rule signals, so attaching
 * one never perturbs a simulation trajectory (the byte-identity
 * contract of the committed bench outputs relies on this).
 *
 * Thread-safety: evaluate() and the accessors belong to the sim
 * thread, like the models the signals read.
 */

#ifndef IMSIM_OBS_WATCHDOG_HH
#define IMSIM_OBS_WATCHDOG_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "util/units.hh"

namespace imsim {
namespace obs {

class FlightRecorder;
class IncidentLog;
class MetricRegistry;

/** The alert taxonomy the paper's operating envelope cares about. */
enum class AlertKind : std::uint8_t
{
    TjCeiling,   ///< Junction temperature near the throttle ceiling.
    TailLatency, ///< SLA tail-latency breach.
    Brownout,    ///< Power feed over capacity / brownout event.
    FluidLevel,  ///< Immersion fluid level loss.
    WearRate,    ///< Wear consumption anomalously fast.
    Custom,      ///< Anything else (rule name carries the meaning).
};

/** @return stable snake_case name for @p kind ("tail_latency", ...). */
const char *alertKindName(AlertKind kind);

/**
 * One declarative rule. The signal is polled every evaluate(); the
 * rule fires when the signal sits on the breach side of fireThreshold
 * for at least debounce seconds, and clears when it crosses back past
 * clearThreshold (hysteresis: set it inside the fire threshold to
 * stop a signal hovering at the limit from flapping).
 */
struct WatchdogRule
{
    std::string name;                 ///< Unique-ish label ("sla_p99").
    AlertKind kind = AlertKind::Custom;
    std::function<double()> signal;   ///< Polled scalar (required).
    double fireThreshold = 0.0;
    /**
     * Recovery threshold. NaN (the default) means "same as
     * fireThreshold" — no hysteresis. Must be on the recovery side of
     * fireThreshold: <= it when fireAbove, >= it when firing below.
     */
    double clearThreshold = std::numeric_limits<double>::quiet_NaN();
    bool fireAbove = true;  ///< Breach = signal >= threshold (else <=).
    Seconds debounce = 0.0; ///< Breach must persist this long to fire.
};

/** A raise or clear transition emitted by the state machine. */
struct Alert
{
    Seconds t = 0.0;
    AlertKind kind = AlertKind::Custom;
    std::string rule;
    double value = 0.0;     ///< Signal value at the transition.
    double threshold = 0.0; ///< The threshold that was crossed.
    bool raised = true;     ///< true = raise, false = clear.
};

/**
 * The rule engine. Add rules up front, then poll evaluate(t) at the
 * cadence you want detection latency measured at (the crisis bench
 * uses 1 s). A non-finite signal sample changes no state.
 */
class Watchdog
{
  public:
    static constexpr std::size_t kNoRule = ~std::size_t{0};

    /**
     * Register @p rule. FatalError when the signal is missing or the
     * clear threshold sits on the breach side of the fire threshold.
     * @return the rule's index (stable; rules cannot be removed).
     */
    std::size_t addRule(WatchdogRule rule);

    /** Poll every rule's signal and run its state machine at time @p t. */
    void evaluate(Seconds t);

    /** @return number of registered rules. */
    std::size_t ruleCount() const { return rules.size(); }

    /** @return whether rule @p index is currently firing. */
    bool firing(std::size_t index) const;

    /** @return number of rules currently firing. */
    std::size_t firingCount() const;

    /** @return every raise/clear transition, in emission order. */
    const std::vector<Alert> &alerts() const { return transitions; }

    /** @return number of raise transitions so far. */
    std::size_t raisedCount() const { return raised; }

    /**
     * @return the time of the first raise at or after @p after
     * (@p kind restricts to one alert kind when given); -1 when none —
     * how the crisis bench turns alerts into a detection latency.
     */
    Seconds firstRaiseAfter(Seconds after) const;
    Seconds firstRaiseAfter(Seconds after, AlertKind kind) const;

    /**
     * Mirror transitions into @p log: a raise opens an incident, the
     * matching clear closes it, and the peak signal value while firing
     * is tracked. The log must outlive this watchdog.
     */
    void attachIncidentLog(IncidentLog *log) { incidents = log; }

    /**
     * Publish counters `<prefix>.raised` / `<prefix>.cleared` plus a
     * firing-count gauge `<prefix>.firing` into @p registry (which
     * must outlive this watchdog; the watchdog must not move).
     */
    void attachMetrics(MetricRegistry &registry,
                       const std::string &prefix = "watchdog");

    /**
     * Page @p recorder on every raise/clear: the transition lands in
     * its event ring, and a raise triggers a post-mortem dump when the
     * recorder is armed with a sink set. The recorder must outlive
     * this watchdog.
     */
    void attachFlightRecorder(FlightRecorder *recorder)
    {
        flightRecorder = recorder;
    }

    /** Emit a warn/info log line per raise/clear (off by default). */
    void setLogAlerts(bool on) { logAlerts = on; }

  private:
    struct RuleState
    {
        WatchdogRule rule;
        bool isFiring = false;
        Seconds breachSince = -1.0; ///< Debounce start; -1 = no breach.
        std::size_t incident = kNoRule;
    };

    void raise(RuleState &state, Seconds t, double value);
    void clear(RuleState &state, Seconds t, double value);

    std::vector<RuleState> rules;
    std::vector<Alert> transitions;
    std::size_t raised = 0;
    IncidentLog *incidents = nullptr;
    FlightRecorder *flightRecorder = nullptr;
    MetricRegistry *metrics = nullptr;
    std::string metricPrefix;
    bool logAlerts = false;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_WATCHDOG_HH
