#include "obs/metrics.hh"

namespace imsim {
namespace obs {

namespace {

/** Find-or-create in an ordered (name, unique_ptr) list. */
template <typename T>
T &
findOrCreate(std::vector<std::pair<std::string, std::unique_ptr<T>>> &list,
             const std::string &name)
{
    for (auto &entry : list)
        if (entry.first == name)
            return *entry.second;
    list.emplace_back(name, std::make_unique<T>());
    return *list.back().second;
}

} // namespace

Counter &
MetricRegistry::counter(const std::string &name)
{
    return findOrCreate(counterList, name);
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    return findOrCreate(gaugeList, name);
}

Gauge &
MetricRegistry::registerGauge(const std::string &name,
                              std::function<double()> fn)
{
    Gauge &g = gauge(name);
    g.setProvider(std::move(fn));
    return g;
}

HistogramMetric &
MetricRegistry::histogram(const std::string &name)
{
    return findOrCreate(histogramList, name);
}

std::size_t
MetricRegistry::size() const
{
    return counterList.size() + gaugeList.size() + histogramList.size();
}

std::vector<std::pair<std::string, double>>
MetricRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(counterList.size() + gaugeList.size() +
                histogramList.size() * 5);
    for (const auto &entry : counterList)
        out.emplace_back(entry.first,
                         static_cast<double>(entry.second->value()));
    for (const auto &entry : gaugeList)
        out.emplace_back(entry.first, entry.second->value());
    for (const auto &entry : histogramList) {
        const HistogramMetric &h = *entry.second;
        out.emplace_back(entry.first + ".count",
                         static_cast<double>(h.count()));
        out.emplace_back(entry.first + ".mean", h.mean());
        out.emplace_back(entry.first + ".p50", h.percentile(50.0));
        out.emplace_back(entry.first + ".p95", h.percentile(95.0));
        out.emplace_back(entry.first + ".p99", h.percentile(99.0));
    }
    return out;
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    for (const auto &entry : other.counterList)
        counter(entry.first).merge(*entry.second);
    for (const auto &entry : other.gaugeList)
        gauge(entry.first).set(entry.second->value());
    for (const auto &entry : other.histogramList)
        histogram(entry.first).merge(*entry.second);
}

} // namespace obs
} // namespace imsim
