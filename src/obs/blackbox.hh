/**
 * @file
 * Black-box flight recorder: an always-on, bounded-memory recorder of
 * selected scalar channels plus alert/fault/violation events, dumped
 * post-mortem (or on demand) as an `imsim.blackbox/1` JSON artifact.
 *
 * Full-resolution TimeSeries telemetry is unbounded at fleet scale and
 * aggregate snapshots keep no history; the recorder sits between the
 * two, RRD-style: each registered channel is folded into a stack of
 * fixed-size ring tiers of coarsening resolution (by default the last
 * 60 bins at 1-minute resolution, the last 24 h at 10-minute bins, and
 * 30 days at 1-hour bins), each bin holding the min/mean/max of the
 * samples that fell into it. Downsampling is deterministic — a pure
 * function of the (t, value) stream — so dumps are byte-identical for
 * identical runs at any sweep or shard parallelism.
 *
 * Steady-state tick() is allocation-free: all tier storage is sized at
 * the first tick (flat per-tier arrays, ring-evicted in place) and the
 * event ring reuses its slots. Noting an event may allocate its label
 * string — events are rare, off the per-tick contract that
 * bench_obs_overhead pins at 0 allocs/op.
 *
 * Post-mortem triggers: setPostMortemSink() installs a util error hook
 * so any fatal()/panic() dumps every armed recorder before the
 * exception propagates; Watchdog::attachFlightRecorder routes pages
 * through page() and fault::InvariantChecker violations through
 * violation(), both of which dump when this recorder is armed.
 *
 * Thread-safety: tick() and the note/dump entry points serialize on an
 * internal mutex, so one thread may dump (or a crashing thread may
 * post-mortem) while the sim thread is still recording. Channel
 * providers are polled under that mutex and must be pure reads that
 * never call back into the recorder.
 */

#ifndef IMSIM_OBS_BLACKBOX_HH
#define IMSIM_OBS_BLACKBOX_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/fleet_agg.hh"
#include "obs/watchdog.hh"
#include "util/units.hh"

namespace imsim {
namespace obs {

/** The `schema` stamp flight-recorder dumps carry. */
inline constexpr const char *kBlackboxSchema = "imsim.blackbox/1";

/** Event taxonomy of the recorder's bounded event ring. */
enum class BlackboxEventKind : std::uint8_t
{
    AlertRaise, ///< Watchdog rule raised.
    AlertClear, ///< Watchdog rule cleared.
    Fault,      ///< Injected (or external) fault.
    Violation,  ///< Invariant-checker violation.
    Note,       ///< Free-form annotation (e.g. the post-mortem reason).
};

/** @return stable snake_case name ("alert_raise", "fault", ...). */
const char *blackboxEventKindName(BlackboxEventKind kind);

/** One event in the bounded ring. */
struct BlackboxEvent
{
    Seconds t = 0.0;
    BlackboxEventKind kind = BlackboxEventKind::Note;
    double value = 0.0; ///< Signal value for alerts; 0 otherwise.
    std::string label;  ///< Rule / fault / check / note text.
};

/**
 * The recorder. Register channels up front, then tick(t) at the
 * cadence the run observes (the datacenter minute loop, the crisis
 * bench's 1 s watchdog poll); dump whenever — explicitly via
 * toJson()/writeJsonFile(), merged across sweep points via
 * mergedJson(), or automatically through the post-mortem triggers.
 */
class FlightRecorder
{
  public:
    /** One retention tier: a ring of @p capacity bins, each covering
     *  @p resolution seconds. */
    struct Tier
    {
        Seconds resolution = 60.0;
        std::size_t capacity = 60;
    };

    struct Config
    {
        /**
         * Finest-to-coarsest retention ladder. Defaults suit the
         * 1-minute fleet loop: the last hour at full (1-minute)
         * resolution, the last 24 h at 10-minute bins, and 30 days —
         * a full run — at 1-hour bins.
         */
        std::vector<Tier> tiers{{60.0, 60}, {600.0, 144}, {3600.0, 720}};
        /** Bounded event ring size (oldest events evicted). */
        std::size_t eventCapacity = 256;

        /**
         * Ladder scaled to a faster tick cadence: full resolution for
         * the last 3600 ticks, 10-tick bins for the next decade out,
         * 60-tick bins beyond — forCadence(1.0) is the crisis bench's
         * 1 s / 10 s / 1-minute stack.
         */
        static Config forCadence(Seconds tick);
    };

    /** One tier bin read back for tests / the dump writer. */
    struct BinStats
    {
        Seconds t = 0.0;            ///< Bin start time.
        std::uint32_t samples = 0;  ///< Ticks folded into the bin.
        double min = 0.0;
        double mean = 0.0;
        double max = 0.0;
    };

    FlightRecorder() : FlightRecorder(Config{}) {}
    explicit FlightRecorder(Config config);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Register a channel before the first tick (FatalError after).
     * @p signal is polled once per tick under the recorder mutex; it
     * must be a pure read and must outlive every tick (dumps never
     * poll, so a recorder may outlive its providers once ticking
     * stops). @return the channel's index.
     */
    std::size_t addChannel(std::string name,
                           std::function<double()> signal);

    /** @return number of registered channels. */
    std::size_t channelCount() const { return channels.size(); }

    /**
     * Record one sample of every channel at time @p t (must not go
     * backwards). The first tick sizes the tier storage; steady-state
     * ticks are allocation-free.
     */
    void tick(Seconds t);

    // ----- events (bounded ring; label assignment may allocate) -----

    /** Record a watchdog raise/clear transition. */
    void noteAlert(Seconds t, const std::string &rule, double value,
                   bool raised);
    /** Record an injected-fault event (FaultInjector wiring). */
    void noteFault(Seconds t, const std::string &label);
    /** Record an invariant violation (InvariantChecker wiring). */
    void noteViolation(Seconds t, const std::string &check);
    /** Record a free-form annotation. */
    void note(Seconds t, const std::string &label);

    /**
     * Watchdog page entry point: noteAlert(), then — for raises, when
     * this recorder is armed and a sink is set — trigger a post-mortem
     * dump ("the pager fired; persist what the black box saw").
     */
    void page(Seconds t, const std::string &rule, double value,
              bool raised);

    /** Invariant-violation entry point: noteViolation() + dump when
     *  armed. */
    void violation(Seconds t, const std::string &check);

    // ----- post-mortem ----------------------------------------------

    /**
     * Register this recorder (under @p label) with the process-wide
     * post-mortem registry: postMortem() — and thus any
     * fatal()/panic() once a sink is set — serializes every armed
     * recorder. Unregistered automatically on destruction.
     */
    void armPostMortem(std::string label);

    /** Remove this recorder from the post-mortem registry. */
    void disarmPostMortem();

    /** @return whether this recorder is currently armed. */
    bool armed() const;

    /**
     * Set the process-wide dump sink and install the util error hook:
     * from now on every fatal()/panic() (and every page()/violation()
     * on an armed recorder) writes the armed recorders, merged, to
     * @p path with @p meta_json embedded as "meta". Overwrites the
     * previous sink.
     */
    static void setPostMortemSink(std::string path,
                                  std::string meta_json = "");

    /** Clear the sink and uninstall the error hook. */
    static void clearPostMortemSink();

    /**
     * Dump every armed recorder to the sink now, recording @p reason
     * as the document's top-level "reason" member (never in the
     * recorders themselves — they stay pure, so later dumps are
     * unaffected by triggers). Best-effort by design (it runs inside
     * error paths): failures warn instead of throwing. @return the
     * sink path, or "" when no sink is set or nothing is armed.
     */
    static std::string postMortem(const std::string &reason);

    /** @return number of post-mortem dumps written so far. */
    static std::uint64_t postMortemCount();

    // ----- introspection --------------------------------------------

    /** @return ticks recorded so far. */
    std::size_t ticks() const;
    /** @return number of retention tiers. */
    std::size_t tierCount() const { return tiers.size(); }
    /** @return the tier's configured resolution [s]. */
    Seconds tierResolution(std::size_t tier) const;
    /** @return the tier's configured ring capacity [bins]. */
    std::size_t tierCapacity(std::size_t tier) const;
    /** @return live bins in @p tier. */
    std::size_t tierRows(std::size_t tier) const;
    /** @return bin @p row (0 = oldest) of @p channel in @p tier. */
    BinStats bin(std::size_t tier, std::size_t row,
                 std::size_t channel) const;
    /** @return live events, oldest first (a copy; the ring moves on). */
    std::vector<BlackboxEvent> events() const;
    /** @return total events noted (>= events().size() once evicting). */
    std::uint64_t eventsNoted() const;

    // ----- dump ------------------------------------------------------

    /**
     * Render as one point of an `imsim.blackbox/1` document: label,
     * tick count, channel names, per-tier bin rows ([t, samples, then
     * min/mean/max per channel]), and the event ring. Thread-safe.
     */
    std::string pointJson(const std::string &label) const;

    /**
     * The full document: {"schema": "imsim.blackbox/1", "meta": ...,
     * "points": [...]} in the given order — pass sweep points in index
     * order and the payload is byte-identical under any job count.
     */
    static std::string
    mergedJson(const std::vector<std::pair<std::string,
                                           const FlightRecorder *>> &points,
               const std::string &meta_json = "");

    /** Single-recorder convenience: mergedJson of {(label, this)}. */
    std::string toJson(const std::string &label = "run",
                       const std::string &meta_json = "") const;

    /** Write toJson() to @p path; FatalError when the write fails. */
    void writeJsonFile(const std::string &path,
                       const std::string &label = "run",
                       const std::string &meta_json = "") const;

  private:
    struct Channel
    {
        std::string name;
        std::function<double()> signal;
    };

    /**
     * Flat ring of bins: startT/samples per bin plus, per bin and
     * channel, a (min, max, sum) triple in stats — mean is derived at
     * read time. Updated in place; eviction advances head.
     */
    struct TierStore
    {
        Seconds resolution = 60.0;
        std::size_t capacity = 0;
        std::size_t head = 0;
        std::size_t rows = 0;
        std::int64_t backBin = 0; ///< Bin index of the newest row.
        std::vector<Seconds> startT;
        std::vector<std::uint32_t> samples;
        std::vector<double> stats; ///< [bin * channels * 3 + ...]
    };

    void sizeStorageLocked();
    void foldLocked(TierStore &tier, Seconds t);
    void pushEventLocked(Seconds t, BlackboxEventKind kind, double value,
                         const std::string &label);
    void appendPointJsonLocked(std::string &out,
                               const std::string &label) const;

    Config cfg;
    std::vector<Channel> channels;
    std::vector<TierStore> tiers;
    std::vector<double> sampleScratch; ///< Per-tick channel values.

    std::vector<BlackboxEvent> eventRing; ///< Fixed eventCapacity slots.
    std::size_t eventHead = 0;
    std::size_t eventLive = 0;
    std::uint64_t eventTotal = 0;

    bool sealed = false; ///< Channels frozen (first tick happened).
    std::size_t tickCount = 0;
    Seconds lastTick = 0.0;

    mutable std::mutex mutex;
};

/**
 * Standard fleet observability bundle: a FleetAggregator, a Watchdog
 * with a feed-draw rule, and a FlightRecorder wired with the headline
 * fleet channels (fleet power, max/p99 Tj, mean utilization, p99 wear
 * rate, firing alerts) reading the aggregator's latest sample. Attach
 * the three members via DatacenterPowerSim::attachObservability; the
 * bundle must outlive the run and must not move (the channel and rule
 * closures capture member addresses).
 */
class FleetBlackbox
{
  public:
    /**
     * @param agg_cfg        Aggregator configuration (record=false is
     *                       typical: the recorder *is* the history).
     * @param rec_cfg        Recorder tier/event configuration.
     * @param fire_power_w   Watchdog "fleet_power" raise threshold.
     * @param clear_power_w  Its hysteresis clear threshold.
     */
    FleetBlackbox(FleetAggregator::Config agg_cfg,
                  FlightRecorder::Config rec_cfg, double fire_power_w,
                  double clear_power_w);

    FleetBlackbox(const FleetBlackbox &) = delete;
    FleetBlackbox &operator=(const FleetBlackbox &) = delete;

    FleetAggregator aggregator;
    Watchdog watchdog;
    FlightRecorder recorder;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_BLACKBOX_HH
