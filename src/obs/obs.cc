#include "obs/obs.hh"

#include <ostream>

#include "util/cli.hh"

namespace imsim {
namespace obs {

bool
traceRequested(const util::Cli &cli)
{
    return !cli.traceFile().empty();
}

bool
telemetryRequested(const util::Cli &cli)
{
    return !cli.telemetryFile().empty();
}

void
maybeWriteTrace(const util::Cli &cli, const EventTracer &tracer,
                std::ostream &os)
{
    const std::string path = cli.traceFile();
    if (path.empty())
        return;
    tracer.writeJsonFile(path);
    os << "[trace] wrote " << tracer.size() << " events to " << path
       << " (load in chrome://tracing or ui.perfetto.dev)\n";
}

void
maybeWriteTelemetry(const util::Cli &cli, const TelemetryMerger &telemetry,
                    std::ostream &os)
{
    const std::string path = cli.telemetryFile();
    if (path.empty())
        return;
    telemetry.writeCsvFile(path);
    os << "[telemetry] wrote " << telemetry.filledCount()
       << " point series to " << path << "\n";
}

} // namespace obs
} // namespace imsim
