#include "obs/obs.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace imsim {
namespace obs {

bool
traceRequested(const util::Cli &cli)
{
    return !cli.traceFile().empty();
}

bool
telemetryRequested(const util::Cli &cli)
{
    return !cli.telemetryFile().empty();
}

bool
profileRequested(const util::Cli &cli)
{
    return cli.has("--profile");
}

void
maybeEnableProfiler(const util::Cli &cli)
{
    if (!profileRequested(cli))
        return;
    Profiler::reset();
    Profiler::setEnabled(true);
}

void
maybeWriteTrace(const util::Cli &cli, const EventTracer &tracer,
                std::ostream &os)
{
    const std::string path = cli.traceFile();
    if (path.empty())
        return;
    tracer.writeJsonFile(path);
    os << "[trace] wrote " << tracer.size() << " events to " << path
       << " (load in chrome://tracing or ui.perfetto.dev)\n";
}

void
maybeWriteTrace(const util::Cli &cli, const EventTracer &tracer,
                const RunManifest &manifest, std::ostream &os)
{
    const std::string path = cli.traceFile();
    if (path.empty())
        return;
    tracer.writeJsonFile(path, manifest.toJsonObject());
    os << "[trace] wrote " << tracer.size() << " events to " << path
       << " (load in chrome://tracing or ui.perfetto.dev)\n";
}

void
maybeWriteTelemetry(const util::Cli &cli, const TelemetryMerger &telemetry,
                    std::ostream &os)
{
    const std::string path = cli.telemetryFile();
    if (path.empty())
        return;
    std::ofstream out(path);
    util::fatalIf(!out, "maybeWriteTelemetry: cannot open '" + path +
                            "' for writing");
    out << "# schema: " << kTelemetrySchema << "\n";
    telemetry.writeCsv(out);
    util::fatalIf(!out,
                  "maybeWriteTelemetry: failed writing '" + path + "'");
    os << "[telemetry] wrote " << telemetry.filledCount()
       << " point series to " << path << "\n";
}

void
maybeWriteTelemetry(const util::Cli &cli, const TelemetryMerger &telemetry,
                    const RunManifest &manifest, std::ostream &os)
{
    const std::string path = cli.telemetryFile();
    if (path.empty())
        return;
    std::ofstream out(path);
    util::fatalIf(!out, "maybeWriteTelemetry: cannot open '" + path +
                            "' for writing");
    out << "# schema: " << kTelemetrySchema << "\n";
    manifest.writeCsvComments(out);
    telemetry.writeCsv(out);
    util::fatalIf(!out,
                  "maybeWriteTelemetry: failed writing '" + path + "'");
    os << "[telemetry] wrote " << telemetry.filledCount()
       << " point series to " << path << "\n";
}

bool
incidentsRequested(const util::Cli &cli)
{
    return !cli.watchdogFile().empty();
}

void
maybeWriteIncidents(
    const util::Cli &cli,
    const std::vector<std::pair<std::string, const IncidentLog *>> &points,
    const RunManifest &manifest, std::ostream &os)
{
    const std::string path = cli.watchdogFile();
    if (path.empty())
        return;
    std::ofstream out(path);
    util::fatalIf(!out, "maybeWriteIncidents: cannot open '" + path +
                            "' for writing");
    out << IncidentLog::mergedJson(points, manifest.toJsonObject());
    util::fatalIf(!out,
                  "maybeWriteIncidents: failed writing '" + path + "'");
    std::size_t incidents = 0;
    for (const auto &point : points)
        incidents += point.second->incidents().size();
    os << "[watchdog] wrote " << incidents << " incidents ("
       << points.size() << " points) to " << path << "\n";
}

bool
blackboxRequested(const util::Cli &cli)
{
    return !cli.blackboxFile().empty();
}

void
maybeWriteBlackbox(
    const util::Cli &cli,
    const std::vector<std::pair<std::string, const FlightRecorder *>>
        &points,
    const RunManifest &manifest, std::ostream &os)
{
    const std::string path = cli.blackboxFile();
    if (path.empty())
        return;
    std::ofstream out(path);
    util::fatalIf(!out, "maybeWriteBlackbox: cannot open '" + path +
                            "' for writing");
    out << FlightRecorder::mergedJson(points, manifest.toJsonObject());
    util::fatalIf(!out,
                  "maybeWriteBlackbox: failed writing '" + path + "'");
    std::size_t ticks = 0;
    for (const auto &point : points)
        ticks += point.second->ticks();
    os << "[blackbox] wrote " << points.size() << " flight recorders ("
       << ticks << " ticks) to " << path << "\n";
}

void
maybeWriteProfile(const util::Cli &cli, const RunManifest &manifest,
                  std::ostream &os)
{
    if (!profileRequested(cli))
        return;
    Profiler::setEnabled(false);
    const ProfileReport report = Profiler::report();
    os << "\n[profile] wall-clock scope times (" << report.entries().size()
       << " scope paths):\n";
    std::ostringstream table;
    report.toTable().print(table);
    os << table.str();
    const std::string path = cli.profileFile();
    if (!path.empty()) {
        report.writeJsonFile(path, manifest.toJsonObject());
        os << "[profile] wrote " << report.entries().size()
           << " scope paths to " << path << "\n";
    }
}

} // namespace obs
} // namespace imsim
