/**
 * @file
 * Incident timeline: open/close records created by Watchdog raises and
 * clears, correlated with the fault events that (probably) caused
 * them, exported as Chrome-trace duration events and as an
 * `imsim.incidents/1` JSON document that tools/imsim_report renders
 * as SVG timeline bands.
 *
 * Correlation is temporal, as in a real pager timeline: a fault noted
 * at time t attaches to every incident already open at t, and an
 * incident opening at t adopts faults from the trailing
 * correlationLead window (the cause precedes its detection).
 */

#ifndef IMSIM_OBS_INCIDENT_HH
#define IMSIM_OBS_INCIDENT_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "obs/watchdog.hh"
#include "util/units.hh"

namespace imsim {
namespace obs {

class EventTracer;

/** A fault-injection (or other external) event on the timeline. */
struct IncidentFault
{
    Seconds t = 0.0;
    std::string label; ///< e.g. "server_crash#3", "fluid_level_loss".
};

/** One alert's open -> close lifetime. */
struct Incident
{
    std::size_t id = 0;
    AlertKind kind = AlertKind::Custom;
    std::string rule;
    Seconds openedAt = 0.0;
    Seconds closedAt = -1.0; ///< -1 while still open.
    double openValue = 0.0;  ///< Signal value at the raise.
    double peakValue = 0.0;  ///< Worst signal value while open.
    double threshold = 0.0;
    std::vector<IncidentFault> faults; ///< Correlated fault events.

    bool open() const { return closedAt < 0.0; }
    /** @return duration; open incidents measure up to @p horizon. */
    Seconds duration(Seconds horizon) const
    {
        return (open() ? horizon : closedAt) - openedAt;
    }
};

/**
 * The timeline store. Copyable (plain vectors), so experiment
 * outcomes can carry one per sweep point and merge them afterwards.
 */
class IncidentLog
{
  public:
    static constexpr std::size_t kNone = ~std::size_t{0};

    /**
     * @param correlation_lead How far back of an opening incident to
     * adopt earlier faults from.
     */
    explicit IncidentLog(Seconds correlation_lead = 60.0)
        : lead(correlation_lead)
    {}

    /** Open an incident; @return its id. */
    std::size_t open(Seconds t, AlertKind kind, const std::string &rule,
                     double value, double threshold);

    /** Track the worst signal value while incident @p id is open. */
    void observeValue(std::size_t id, double value);

    /** Close incident @p id at time @p t. */
    void close(std::size_t id, Seconds t);

    /** Close every still-open incident at @p t (end of run). */
    void closeAll(Seconds t);

    /**
     * Note an external fault event (FaultInjector::attachIncidentLog
     * routes injections here): appended to the fault timeline and
     * attached to every currently-open incident.
     */
    void noteFault(Seconds t, const std::string &label);

    /** @return all incidents, in open order. */
    const std::vector<Incident> &incidents() const { return records; }

    /** @return all noted faults, in time order. */
    const std::vector<IncidentFault> &faults() const { return faultLog; }

    /** @return number of incidents still open. */
    std::size_t openCount() const;

    /**
     * Append the timeline to @p tracer: one complete ('X') event per
     * incident (category "incident", open ones extended to
     * @p horizon) so Perfetto shows the same bands as the HTML
     * report.
     */
    void exportTrace(EventTracer &tracer, Seconds horizon) const;

    /**
     * Render as one point of an `imsim.incidents/1` document (see
     * mergedJson for the envelope).
     */
    std::string pointJson(const std::string &label) const;

    /**
     * The full document: {"schema": "imsim.incidents/1", "meta":
     * <meta_json or {}>, "points": [...]} with one entry per labelled
     * log, in the given order (deterministic under any job count when
     * callers pass sweep points in index order).
     */
    static std::string
    mergedJson(const std::vector<std::pair<std::string,
                                           const IncidentLog *>> &points,
               const std::string &meta_json = "");

    /** Single-log convenience: mergedJson of {(label, this)}. */
    std::string toJson(const std::string &label = "run",
                       const std::string &meta_json = "") const;

  private:
    Seconds lead;
    std::vector<Incident> records;
    std::vector<IncidentFault> faultLog;
};

/** The `schema` stamp incident documents carry. */
inline constexpr const char *kIncidentSchema = "imsim.incidents/1";

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_INCIDENT_HH
