/**
 * @file
 * In-memory time-series storage for sampled telemetry, with CSV/JSON
 * export, plus the TelemetryMerger that collects one series per sweep
 * point under the experiment engine.
 *
 * Determinism contract: a TimeSeries' CSV rendering depends only on
 * the samples appended to it; TelemetryMerger stores series by point
 * index and writes them in index order, so the merged CSV is
 * byte-identical whether the sweep ran with --jobs 1 or --jobs N.
 */

#ifndef IMSIM_OBS_TIMESERIES_HH
#define IMSIM_OBS_TIMESERIES_HH

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hh"

namespace imsim {
namespace obs {

/**
 * A fixed-column time-series: a header of column names and rows of
 * (virtual time, values) samples in append order.
 */
class TimeSeries
{
  public:
    TimeSeries() = default;

    /** @param column_names Value column names (time is implicit). */
    explicit TimeSeries(std::vector<std::string> column_names)
        : cols(std::move(column_names))
    {}

    /** Set the value columns; only allowed while there are no rows. */
    void setColumns(std::vector<std::string> column_names);

    /** @return the value column names. */
    const std::vector<std::string> &columns() const { return cols; }

    /** Append one sample row; @p values must match the column count. */
    void append(Seconds t, std::vector<double> values);

    /** @return number of sample rows. */
    std::size_t rows() const { return data.size(); }

    /** @return whether no samples were recorded. */
    bool empty() const { return data.empty(); }

    /** @return timestamp of row @p i. */
    Seconds time(std::size_t i) const { return data[i].first; }

    /** @return values of row @p i (column order). */
    const std::vector<double> &row(std::size_t i) const
    {
        return data[i].second;
    }

    /**
     * Write as CSV: header `t,<columns...>`, one row per sample.
     * When @p label_column is non-empty a leading column with the
     * constant @p label is prepended (how merged per-point series
     * stay distinguishable in one file).
     */
    void writeCsv(std::ostream &os, const std::string &label_column = "",
                  const std::string &label = "") const;

    /**
     * Write as a JSON object {"columns": [...], "rows": [[t, ...]]}.
     * Non-finite values are emitted as null (parseJson maps them back
     * to NaN), keeping the document valid JSON.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Parse a plain `t,<columns...>` CSV as written by writeCsv()
     * with no label column. Leading `# key: value` comment lines are
     * skipped; "nan"/"inf" cells parse back to their doubles.
     * FatalError on ragged rows or a missing header.
     */
    static TimeSeries parseCsv(std::istream &is);

    /** Parse a writeJson() document (null values become NaN). */
    static TimeSeries parseJson(const std::string &json);

    /** Drop all rows (columns stay). */
    void clear() { data.clear(); }

  private:
    std::vector<std::string> cols;
    std::vector<std::pair<Seconds, std::vector<double>>> data;
};

/**
 * Collects one labelled TimeSeries per sweep point, thread-safely, and
 * renders them merged in point order.
 *
 * Workers running under exp::SweepRunner call add() concurrently (a
 * mutex guards the slots); the output order is fixed by the point
 * index, never by completion order.
 */
class TelemetryMerger
{
  public:
    /** @param points Number of sweep points that will report. */
    explicit TelemetryMerger(std::size_t points);

    /**
     * Store point @p index's series under @p label (e.g. the policy
     * name). Thread-safe; FatalError on out-of-range or duplicate
     * indices, or when the columns disagree with other points.
     */
    void add(std::size_t index, const std::string &label,
             TimeSeries series);

    /** @return number of slots filled so far (thread-safe). */
    std::size_t filledCount() const;

    /**
     * Write all filled series as one CSV with a leading "point"
     * label column, in point order. Unfilled slots are skipped.
     */
    void writeCsv(std::ostream &os) const;

    /** writeCsv() to file @p path; FatalError when unwritable. */
    void writeCsvFile(const std::string &path) const;

  private:
    mutable std::mutex mutex;
    std::vector<std::pair<std::string, TimeSeries>> slots;
    std::vector<bool> filled;
};

/** One labelled per-point series parsed back from a merged CSV. */
struct LabelledSeries
{
    std::string label;
    TimeSeries series;
};

/**
 * Parse a TelemetryMerger::writeCsv() artifact: leading `# key: value`
 * manifest comments are skipped, the `point,t,...` header names the
 * columns, and consecutive rows sharing a label fold into one series
 * per point, in file order. FatalError on malformed input.
 */
std::vector<LabelledSeries> parseTelemetryCsv(std::istream &is);

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_TIMESERIES_HH
