#include "obs/incident.hh"

#include <cstdio>
#include <sstream>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace imsim {
namespace obs {

namespace {

std::string
jsonNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

/** Escape for a JSON string literal (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendFaultJson(std::ostream &os, const IncidentFault &fault)
{
    os << "{\"t_s\": " << jsonNumber(fault.t) << ", \"label\": \""
       << jsonEscape(fault.label) << "\"}";
}

} // namespace

std::size_t
IncidentLog::open(Seconds t, AlertKind kind, const std::string &rule,
                  double value, double threshold)
{
    Incident incident;
    incident.id = records.size();
    incident.kind = kind;
    incident.rule = rule;
    incident.openedAt = t;
    incident.openValue = value;
    incident.peakValue = value;
    incident.threshold = threshold;
    // Adopt faults from the trailing lead window: the cause usually
    // precedes the alert that detects it.
    for (const IncidentFault &fault : faultLog) {
        if (fault.t >= t - lead && fault.t <= t)
            incident.faults.push_back(fault);
    }
    records.push_back(std::move(incident));
    return records.size() - 1;
}

void
IncidentLog::observeValue(std::size_t id, double value)
{
    util::fatalIf(id >= records.size(),
            "IncidentLog::observeValue: bad incident id");
    Incident &incident = records[id];
    const bool worse = incident.kind == AlertKind::FluidLevel
                           ? value < incident.peakValue
                           : value > incident.peakValue;
    if (worse)
        incident.peakValue = value;
}

void
IncidentLog::close(std::size_t id, Seconds t)
{
    util::fatalIf(id >= records.size(), "IncidentLog::close: bad incident id");
    util::fatalIf(!records[id].open(), "IncidentLog::close: already closed");
    records[id].closedAt = t;
}

void
IncidentLog::closeAll(Seconds t)
{
    for (Incident &incident : records) {
        if (incident.open())
            incident.closedAt = t;
    }
}

void
IncidentLog::noteFault(Seconds t, const std::string &label)
{
    faultLog.push_back(IncidentFault{t, label});
    for (Incident &incident : records) {
        if (incident.open())
            incident.faults.push_back(faultLog.back());
    }
}

std::size_t
IncidentLog::openCount() const
{
    std::size_t n = 0;
    for (const Incident &incident : records)
        n += incident.open() ? 1 : 0;
    return n;
}

void
IncidentLog::exportTrace(EventTracer &tracer, Seconds horizon) const
{
    for (const Incident &incident : records) {
        const Seconds end =
            incident.open() ? horizon : incident.closedAt;
        tracer.complete(incident.rule, "incident", incident.openedAt,
                        end);
    }
}

std::string
IncidentLog::pointJson(const std::string &label) const
{
    std::ostringstream os;
    os << "{\"label\": \"" << jsonEscape(label) << "\",\n"
       << "     \"incidents\": [";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const Incident &incident = records[i];
        os << (i ? ",\n       " : "\n       ");
        os << "{\"id\": " << incident.id << ", \"kind\": \""
           << alertKindName(incident.kind) << "\", \"rule\": \""
           << jsonEscape(incident.rule) << "\", \"opened_s\": "
           << jsonNumber(incident.openedAt) << ", \"closed_s\": "
           << jsonNumber(incident.closedAt) << ", \"open_value\": "
           << jsonNumber(incident.openValue) << ", \"peak_value\": "
           << jsonNumber(incident.peakValue) << ", \"threshold\": "
           << jsonNumber(incident.threshold) << ", \"faults\": [";
        for (std::size_t j = 0; j < incident.faults.size(); ++j) {
            if (j)
                os << ", ";
            appendFaultJson(os, incident.faults[j]);
        }
        os << "]}";
    }
    os << (records.empty() ? "]" : "\n     ]") << ",\n     \"faults\": [";
    for (std::size_t i = 0; i < faultLog.size(); ++i) {
        if (i)
            os << ", ";
        appendFaultJson(os, faultLog[i]);
    }
    os << "]}";
    return os.str();
}

std::string
IncidentLog::mergedJson(
    const std::vector<std::pair<std::string, const IncidentLog *>>
        &points,
    const std::string &meta_json)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"" << kIncidentSchema << "\",\n"
       << "  \"meta\": " << (meta_json.empty() ? "{}" : meta_json)
       << ",\n  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        os << points[i].second->pointJson(points[i].first);
    }
    os << (points.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

std::string
IncidentLog::toJson(const std::string &label,
                    const std::string &meta_json) const
{
    return mergedJson({{label, this}}, meta_json);
}

} // namespace obs
} // namespace imsim
