#include "obs/timeseries.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/logging.hh"

namespace imsim {
namespace obs {

namespace {

/**
 * Deterministic, near-lossless numeric rendering shared by the CSV and
 * JSON writers (12 significant digits cover the simulator's physical
 * ranges without the noise of full round-trip precision).
 */
std::string
formatNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

} // namespace

void
TimeSeries::setColumns(std::vector<std::string> column_names)
{
    util::fatalIf(!data.empty(),
                  "TimeSeries: cannot change columns after sampling");
    cols = std::move(column_names);
}

void
TimeSeries::append(Seconds t, std::vector<double> values)
{
    util::fatalIf(values.size() != cols.size(),
                  "TimeSeries: row width does not match columns");
    data.emplace_back(t, std::move(values));
}

void
TimeSeries::writeCsv(std::ostream &os, const std::string &label_column,
                     const std::string &label) const
{
    if (!label_column.empty())
        os << label_column << ',';
    os << 't';
    for (const auto &col : cols)
        os << ',' << col;
    os << '\n';
    for (const auto &sample : data) {
        if (!label_column.empty())
            os << label << ',';
        os << formatNumber(sample.first);
        for (double v : sample.second)
            os << ',' << formatNumber(v);
        os << '\n';
    }
}

void
TimeSeries::writeJson(std::ostream &os) const
{
    os << "{\"columns\": [\"t\"";
    for (const auto &col : cols)
        os << ", \"" << col << '"';
    os << "], \"rows\": [";
    for (std::size_t i = 0; i < data.size(); ++i) {
        os << (i ? ", [" : "[") << formatNumber(data[i].first);
        for (double v : data[i].second)
            os << ", " << formatNumber(v);
        os << ']';
    }
    os << "]}";
}

TelemetryMerger::TelemetryMerger(std::size_t points)
    : slots(points), filled(points, false)
{}

void
TelemetryMerger::add(std::size_t index, const std::string &label,
                     TimeSeries series)
{
    std::lock_guard<std::mutex> lock(mutex);
    util::fatalIf(index >= slots.size(),
                  "TelemetryMerger: point index out of range");
    util::fatalIf(filled[index],
                  "TelemetryMerger: point reported twice");
    for (std::size_t i = 0; i < slots.size(); ++i) {
        util::fatalIf(filled[i] &&
                          slots[i].second.columns() != series.columns(),
                      "TelemetryMerger: points disagree on columns");
    }
    slots[index] = {label, std::move(series)};
    filled[index] = true;
}

std::size_t
TelemetryMerger::filledCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t n = 0;
    for (bool f : filled)
        n += f ? 1 : 0;
    return n;
}

void
TelemetryMerger::writeCsv(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex);
    bool header = false;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!filled[i])
            continue;
        if (!header) {
            os << "point,t";
            for (const auto &col : slots[i].second.columns())
                os << ',' << col;
            os << '\n';
            header = true;
        }
        const auto &slot = slots[i];
        for (std::size_t r = 0; r < slot.second.rows(); ++r) {
            os << slot.first << ',' << formatNumber(slot.second.time(r));
            for (double v : slot.second.row(r))
                os << ',' << formatNumber(v);
            os << '\n';
        }
    }
}

void
TelemetryMerger::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    util::fatalIf(!out, "TelemetryMerger: cannot open '" + path +
                            "' for writing");
    writeCsv(out);
    util::fatalIf(!out, "TelemetryMerger: failed writing '" + path + "'");
}

} // namespace obs
} // namespace imsim
