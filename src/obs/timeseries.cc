#include "obs/timeseries.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace imsim {
namespace obs {

namespace {

/**
 * Deterministic, near-lossless numeric rendering shared by the CSV and
 * JSON writers (12 significant digits cover the simulator's physical
 * ranges without the noise of full round-trip precision).
 */
std::string
formatNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

} // namespace

void
TimeSeries::setColumns(std::vector<std::string> column_names)
{
    util::fatalIf(!data.empty(),
                  "TimeSeries: cannot change columns after sampling");
    cols = std::move(column_names);
}

void
TimeSeries::append(Seconds t, std::vector<double> values)
{
    util::fatalIf(values.size() != cols.size(),
                  "TimeSeries: row width does not match columns");
    data.emplace_back(t, std::move(values));
}

void
TimeSeries::writeCsv(std::ostream &os, const std::string &label_column,
                     const std::string &label) const
{
    if (!label_column.empty())
        os << label_column << ',';
    os << 't';
    for (const auto &col : cols)
        os << ',' << col;
    os << '\n';
    for (const auto &sample : data) {
        if (!label_column.empty())
            os << label << ',';
        os << formatNumber(sample.first);
        for (double v : sample.second)
            os << ',' << formatNumber(v);
        os << '\n';
    }
}

void
TimeSeries::writeJson(std::ostream &os) const
{
    const auto cell = [](double v) {
        return std::isfinite(v) ? formatNumber(v) : std::string("null");
    };
    os << "{\"schema\": \"imsim.timeseries/1\", \"columns\": [\"t\"";
    for (const auto &col : cols)
        os << ", \"" << col << '"';
    os << "], \"rows\": [";
    for (std::size_t i = 0; i < data.size(); ++i) {
        os << (i ? ", [" : "[") << cell(data[i].first);
        for (double v : data[i].second)
            os << ", " << cell(v);
        os << ']';
    }
    os << "]}";
}

namespace {

/** Split one CSV line on commas (the writers never quote cells). */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            cells.push_back(line.substr(start));
            return cells;
        }
        cells.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

double
parseCell(const std::string &cell)
{
    char *end = nullptr;
    const double value = std::strtod(cell.c_str(), &end);
    util::fatalIf(end == cell.c_str() || *end != '\0',
                  "TimeSeries: non-numeric CSV cell '" + cell + "'");
    return value;
}

/** @return the next non-comment, non-empty line; false at EOF. */
bool
nextDataLine(std::istream &is, std::string &line)
{
    while (std::getline(is, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        return true;
    }
    return false;
}

} // namespace

TimeSeries
TimeSeries::parseCsv(std::istream &is)
{
    std::string line;
    util::fatalIf(!nextDataLine(is, line),
                  "TimeSeries: CSV is missing its header line");
    std::vector<std::string> header = splitCsvLine(line);
    util::fatalIf(header.empty() || header[0] != "t",
                  "TimeSeries: CSV header must start with 't'");
    TimeSeries series(
        std::vector<std::string>(header.begin() + 1, header.end()));
    while (nextDataLine(is, line)) {
        const std::vector<std::string> cells = splitCsvLine(line);
        util::fatalIf(cells.size() != header.size(),
                      "TimeSeries: ragged CSV row");
        std::vector<double> values;
        values.reserve(cells.size() - 1);
        for (std::size_t i = 1; i < cells.size(); ++i)
            values.push_back(parseCell(cells[i]));
        series.append(parseCell(cells[0]), std::move(values));
    }
    return series;
}

TimeSeries
TimeSeries::parseJson(const std::string &json)
{
    const util::Json doc = util::Json::parse(json);
    util::fatalIf(!doc.isObject(), "TimeSeries: JSON is not an object");
    const auto &columns = doc.at("columns").array();
    util::fatalIf(columns.empty() || columns[0].str() != "t",
                  "TimeSeries: JSON columns must start with 't'");
    std::vector<std::string> names;
    for (std::size_t i = 1; i < columns.size(); ++i)
        names.push_back(columns[i].str());
    TimeSeries series(std::move(names));
    for (const auto &row : doc.at("rows").array()) {
        const auto &cells = row.array();
        util::fatalIf(cells.size() != columns.size(),
                      "TimeSeries: ragged JSON row");
        std::vector<double> values;
        values.reserve(cells.size() - 1);
        for (std::size_t i = 1; i < cells.size(); ++i)
            values.push_back(cells[i].number());
        series.append(cells[0].number(), std::move(values));
    }
    return series;
}

TelemetryMerger::TelemetryMerger(std::size_t points)
    : slots(points), filled(points, false)
{}

void
TelemetryMerger::add(std::size_t index, const std::string &label,
                     TimeSeries series)
{
    std::lock_guard<std::mutex> lock(mutex);
    util::fatalIf(index >= slots.size(),
                  "TelemetryMerger: point index out of range");
    util::fatalIf(filled[index],
                  "TelemetryMerger: point reported twice");
    for (std::size_t i = 0; i < slots.size(); ++i) {
        util::fatalIf(filled[i] &&
                          slots[i].second.columns() != series.columns(),
                      "TelemetryMerger: points disagree on columns");
    }
    slots[index] = {label, std::move(series)};
    filled[index] = true;
}

std::size_t
TelemetryMerger::filledCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t n = 0;
    for (bool f : filled)
        n += f ? 1 : 0;
    return n;
}

void
TelemetryMerger::writeCsv(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex);
    bool header = false;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!filled[i])
            continue;
        if (!header) {
            os << "point,t";
            for (const auto &col : slots[i].second.columns())
                os << ',' << col;
            os << '\n';
            header = true;
        }
        const auto &slot = slots[i];
        for (std::size_t r = 0; r < slot.second.rows(); ++r) {
            os << slot.first << ',' << formatNumber(slot.second.time(r));
            for (double v : slot.second.row(r))
                os << ',' << formatNumber(v);
            os << '\n';
        }
    }
}

void
TelemetryMerger::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    util::fatalIf(!out, "TelemetryMerger: cannot open '" + path +
                            "' for writing");
    writeCsv(out);
    util::fatalIf(!out, "TelemetryMerger: failed writing '" + path + "'");
}

std::vector<LabelledSeries>
parseTelemetryCsv(std::istream &is)
{
    std::string line;
    std::vector<LabelledSeries> out;
    if (!nextDataLine(is, line))
        return out; // Nothing but comments: no points reported.
    std::vector<std::string> header = splitCsvLine(line);
    util::fatalIf(header.size() < 2 || header[0] != "point" ||
                      header[1] != "t",
                  "parseTelemetryCsv: header must start with 'point,t'");
    const std::vector<std::string> columns(header.begin() + 2,
                                           header.end());
    while (nextDataLine(is, line)) {
        const std::vector<std::string> cells = splitCsvLine(line);
        util::fatalIf(cells.size() != header.size(),
                      "parseTelemetryCsv: ragged row");
        if (out.empty() || out.back().label != cells[0]) {
            out.push_back({cells[0], TimeSeries(columns)});
        }
        std::vector<double> values;
        values.reserve(cells.size() - 2);
        for (std::size_t i = 2; i < cells.size(); ++i)
            values.push_back(parseCell(cells[i]));
        out.back().series.append(parseCell(cells[1]),
                                 std::move(values));
    }
    return out;
}

} // namespace obs
} // namespace imsim
