/**
 * @file
 * Columnar fleet telemetry aggregation.
 *
 * Per-server TimeSeries sampling costs O(servers) rows per tick and
 * cannot scale to the 100k-server fleets the roadmap targets. The
 * FleetAggregator instead reduces the fleet columns once per tick into
 * O(channels x SKUs) summary statistics — min/mean/max plus
 * p50/p95/p99 from mergeable fixed-bin sketches (util::QuantileSketch)
 * — so the telemetry cost per tick is independent of fleet size
 * beyond the single reduction pass.
 *
 * The aggregator deliberately does not depend on fleet::FleetState
 * (imsim_fleet links imsim_obs, not the other way around): it consumes
 * a FleetView of raw column pointers, which fleet::fleetView() builds
 * from a FleetState and which benches/tests can populate from plain
 * vectors.
 *
 * Thread-safety: observe() and latest() belong to the sim thread.
 * Every observe() also publishes a copy of the sample under a mutex,
 * so any other thread may call snapshot() concurrently — the same
 * safe-point contract as metrics RegistryMirror.
 */

#ifndef IMSIM_OBS_FLEET_AGG_HH
#define IMSIM_OBS_FLEET_AGG_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/timeseries.hh"
#include "util/shard.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace imsim {
namespace obs {

class MetricRegistry;

/**
 * Raw column pointers over a fleet — the aggregator's input. All
 * non-null arrays have @p count entries. @p sku may be null (every
 * unit is SKU 0); any value column may be null (that channel reads
 * as 0 for every unit). In rack-aggregate fidelity a "unit" is a
 * rack, not a server; the aggregates are per-unit either way.
 */
struct FleetView
{
    std::size_t count = 0;
    const std::uint32_t *sku = nullptr;
    const double *utilization = nullptr;
    const double *totalPower = nullptr;
    const double *tj = nullptr;
    const double *wearConsumed = nullptr;
};

/** The value channels reduced every tick. */
enum FleetChannel : std::uint8_t
{
    kChanTj = 0,      ///< Junction temperature [C].
    kChanPower,       ///< Per-unit total power [W].
    kChanUtilization, ///< Activity factor [0, 1].
    kChanWearRate,    ///< Consumed life fraction per year.
    kFleetChannels,
};

/** @return stable lowercase name for @p channel ("tj", "power", ...). */
const char *fleetChannelName(FleetChannel channel);

/** Summary of one channel over one tick's population. */
struct ChannelStats
{
    std::size_t count = 0;
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** One tick's reduction: overall and per-SKU channel summaries. */
struct FleetSample
{
    Seconds t = 0.0;
    std::size_t units = 0;
    Watts fleetPower = 0.0; ///< Sum of the power column.
    ChannelStats overall[kFleetChannels];
    /** SKU-major: perSku[sku * kFleetChannels + channel]. */
    std::vector<ChannelStats> perSku;
};

/**
 * Allocation-free streaming reducer over fleet columns.
 *
 * Construction sizes every scratch structure (per-SKU accumulators and
 * sketches, the published sample) so steady-state observe() calls
 * perform zero heap allocations — bench_obs_overhead holds this as a
 * budget. Recording into the TimeSeries (Config::record) is the one
 * exception: the telemetry product itself grows one row per tick.
 */
class FleetAggregator
{
  public:
    struct Config
    {
        /** Number of SKUs (sku column values must be < skuCount). */
        std::size_t skuCount = 1;
        /** Sketch resolution per channel (bins per SKU per channel). */
        std::size_t sketchBins = 128;
        // Sketch value ranges; finite out-of-range samples clamp.
        double tjLo = 0.0, tjHi = 150.0;          ///< [C]
        double powerLo = 0.0, powerHi = 2000.0;   ///< [W] per unit
        double utilLo = 0.0, utilHi = 1.0;
        double wearRateLo = 0.0, wearRateHi = 2.0; ///< life/year
        /** Append one series row per tick (the telemetry product). */
        bool record = true;
        /** Also fold every tick into whole-run cumulative sketches. */
        bool cumulative = true;
    };

    /** Defaults: one SKU, 128 bins, recording + cumulative on. */
    FleetAggregator();
    explicit FleetAggregator(Config config);

    /**
     * Reduce one tick: @p t is the sample time, @p dt the time since
     * the previous tick (used to turn the wear column's deltas into a
     * per-year rate; the first tick reports rate 0). O(count) with no
     * allocations once the per-unit wear scratch has been sized.
     */
    void observe(Seconds t, const FleetView &view, Seconds dt);

    /**
     * Sharded observe: the sketch fills (the per-unit hot loop) fan
     * out over @p runner's threads, one private sketch set per shard
     * of @p plan, then reduce deterministically — per-shard sketches
     * merge in ascending shard order (integer bin counts, exact under
     * any grouping), and the order-sensitive floating-point min/max/sum
     * accumulators run in a serial pass in unit order. The published
     * sample, recorded series row, and cumulative sketches are
     * bit-identical to the serial observe() for any plan and any
     * thread count.
     *
     * @p plan must cover exactly view.count units. Steady-state calls
     * are allocation-free once the per-shard scratch has been sized
     * (re-sized only when the plan's shard count changes).
     */
    void observe(Seconds t, const FleetView &view, Seconds dt,
                 const util::ShardPlan &plan, util::ShardRunner &runner);

    /** @return the last tick's sample (sim thread; no lock). */
    const FleetSample &latest() const { return current; }

    /** @return a locked copy of the last published sample (any thread). */
    FleetSample snapshot() const;

    /** @return number of observe() calls so far. */
    std::size_t ticks() const { return tickCount; }

    /**
     * @return the recorded per-tick series (columns: for each channel
     * `fleet.<chan>.{min,mean,max,p50,p95,p99}` plus `fleet.units`
     * and `fleet.power_w`). Empty when Config::record is false.
     */
    const TimeSeries &series() const { return recorded; }

    /** Move the recorded series out (e.g. into a TelemetryMerger). */
    TimeSeries takeSeries();

    /**
     * @return the whole-run cumulative sketch for @p channel (all
     * ticks, all units). Zero-count when Config::cumulative is false.
     */
    const util::QuantileSketch &cumulative(FleetChannel channel) const;

    /**
     * Publish the latest sample's headline aggregates as polled gauges
     * `<prefix>.units` / `.power_w` / `.max_tj_c` / `.p99_tj_c` /
     * `.mean_util` / `.p99_wear_rate`. The registry must outlive this
     * aggregator, which must not move afterwards.
     */
    void attachMetrics(MetricRegistry &registry,
                       const std::string &prefix = "fleet_agg");

  private:
    /** Per-(SKU, channel) running accumulator for min/mean/max. */
    struct Accum
    {
        double min;
        double max;
        double sum;
        std::size_t n;
    };

    void reduceInto(FleetSample &sample, Seconds t);
    void finishTick(Seconds t);
    static void finishChannel(ChannelStats &stats, const Accum &acc,
                              const util::QuantileSketch &sketch);

    Config cfg;
    FleetSample current;

    /** SKU-major scratch, reset each tick: [sku*channels + chan]. */
    std::vector<Accum> accums;
    std::vector<util::QuantileSketch> sketches;
    /** Overall per-channel sketch = merge of the per-SKU ones. */
    std::vector<util::QuantileSketch> overallSketches;
    std::vector<util::QuantileSketch> cumulativeSketches;

    /** Previous tick's wear column (sized on first observe). */
    std::vector<double> prevWear;
    /** Per-unit wear-rate scratch for the sketch pass. */
    std::vector<double> wearRateScratch;
    /**
     * Shard-private sketch scratch for the sharded observe():
     * [shard * (skuCount * channels) + cell]; sized to the plan.
     */
    std::vector<util::QuantileSketch> shardSketches;

    std::size_t tickCount = 0;
    TimeSeries recorded;
    std::vector<double> rowScratch;

    mutable std::mutex publishMutex;
    FleetSample published;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_FLEET_AGG_HH
