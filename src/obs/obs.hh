/**
 * @file
 * Umbrella header for the observability library (imsim_obs): metric
 * registry, telemetry time-series + sampler, Chrome-trace event
 * tracer, run-provenance manifest, wall-clock profiler, and the
 * leveled structured Logger — plus the shared-flag glue (`--trace
 * FILE`, `--telemetry FILE`, `--profile FILE`) the bench and example
 * binaries use, mirroring exp::maybeWriteReport.
 */

#ifndef IMSIM_OBS_OBS_HH
#define IMSIM_OBS_OBS_HH

#include <iosfwd>

#include "obs/blackbox.hh"
#include "obs/fleet_agg.hh"
#include "obs/incident.hh"
#include "obs/log.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "obs/watchdog.hh"

namespace imsim {
namespace util {
class Cli;
} // namespace util

namespace obs {

/**
 * The `schema` stamp merged telemetry CSVs carry as their first
 * `# schema: ...` comment line — consumers (tools/imsim_report) use
 * it to refuse newer artifacts with a message instead of a crash.
 */
inline constexpr const char *kTelemetrySchema = "imsim.telemetry/1";

/** @return whether the Cli asked for a Chrome trace (`--trace FILE`). */
bool traceRequested(const util::Cli &cli);

/** @return whether the Cli asked for telemetry (`--telemetry FILE`). */
bool telemetryRequested(const util::Cli &cli);

/** @return whether the Cli asked for profiling (`--profile [FILE]`). */
bool profileRequested(const util::Cli &cli);

/**
 * Honor `--profile [FILE]`: when present, reset the profiler's
 * accumulated scopes and enable it. Call once at startup, before the
 * instrumented work runs. No-op (profiler stays disabled, near-zero
 * per-scope cost) when the flag is absent.
 */
void maybeEnableProfiler(const util::Cli &cli);

/**
 * Honor `--trace FILE`: when present, write @p tracer's Chrome-trace
 * JSON there and print a one-line confirmation to @p os. When a
 * @p manifest is given its JSON is embedded as the trace's top-level
 * "metadata" member.
 */
void maybeWriteTrace(const util::Cli &cli, const EventTracer &tracer,
                     std::ostream &os);
void maybeWriteTrace(const util::Cli &cli, const EventTracer &tracer,
                     const RunManifest &manifest, std::ostream &os);

/**
 * Honor `--telemetry FILE`: when present, write the merged per-point
 * telemetry CSV there and print a one-line confirmation to @p os.
 * When a @p manifest is given it is prepended as `# key: value`
 * comment lines (skipped by the parse-back helpers).
 */
void maybeWriteTelemetry(const util::Cli &cli,
                         const TelemetryMerger &telemetry,
                         std::ostream &os);
void maybeWriteTelemetry(const util::Cli &cli,
                         const TelemetryMerger &telemetry,
                         const RunManifest &manifest, std::ostream &os);

/** @return whether the Cli asked for incidents (`--watchdog FILE`). */
bool incidentsRequested(const util::Cli &cli);

/** @return whether the Cli asked for a dump (`--blackbox FILE`). */
bool blackboxRequested(const util::Cli &cli);

/**
 * Honor `--blackbox FILE`: when present, write the labelled flight
 * recorders as one `imsim.blackbox/1` document
 * (FlightRecorder::mergedJson, @p manifest embedded as "meta") and
 * print a one-line confirmation to @p os. Pass points in sweep-index
 * order so the artifact is deterministic under any job count.
 */
void maybeWriteBlackbox(
    const util::Cli &cli,
    const std::vector<std::pair<std::string, const FlightRecorder *>>
        &points,
    const RunManifest &manifest, std::ostream &os);

/**
 * Honor `--watchdog FILE`: when present, write the labelled incident
 * logs as one `imsim.incidents/1` document (IncidentLog::mergedJson,
 * @p manifest embedded as "meta") and print a one-line confirmation
 * to @p os. Pass points in sweep-index order so the artifact is
 * deterministic under any job count.
 */
void maybeWriteIncidents(
    const util::Cli &cli,
    const std::vector<std::pair<std::string, const IncidentLog *>> &points,
    const RunManifest &manifest, std::ostream &os);

/**
 * Honor `--profile [FILE]`: when the flag was given, collect the
 * profiler's report, print its self-time table to @p os (stderr by
 * convention — keeps stdout deterministic), and, when the flag names
 * a file, also write the mergeable imsim.profile/1 JSON there with
 * @p manifest embedded as "meta".
 *
 * Call only after worker threads have been joined (e.g. after
 * SweepRunner::map returns): collection walks every registered
 * thread's scope tree.
 */
void maybeWriteProfile(const util::Cli &cli, const RunManifest &manifest,
                       std::ostream &os);

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_OBS_HH
