/**
 * @file
 * Umbrella header for the observability library (imsim_obs): metric
 * registry, telemetry time-series + sampler, Chrome-trace event
 * tracer, and the leveled structured Logger — plus the shared-flag
 * glue (`--trace FILE`, `--telemetry FILE`) the bench and example
 * binaries use, mirroring exp::maybeWriteReport.
 */

#ifndef IMSIM_OBS_OBS_HH
#define IMSIM_OBS_OBS_HH

#include <iosfwd>

#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace imsim {
namespace util {
class Cli;
} // namespace util

namespace obs {

/** @return whether the Cli asked for a Chrome trace (`--trace FILE`). */
bool traceRequested(const util::Cli &cli);

/** @return whether the Cli asked for telemetry (`--telemetry FILE`). */
bool telemetryRequested(const util::Cli &cli);

/**
 * Honor `--trace FILE`: when present, write @p tracer's Chrome-trace
 * JSON there and print a one-line confirmation to @p os.
 */
void maybeWriteTrace(const util::Cli &cli, const EventTracer &tracer,
                     std::ostream &os);

/**
 * Honor `--telemetry FILE`: when present, write the merged per-point
 * telemetry CSV there and print a one-line confirmation to @p os.
 */
void maybeWriteTelemetry(const util::Cli &cli,
                         const TelemetryMerger &telemetry,
                         std::ostream &os);

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_OBS_HH
