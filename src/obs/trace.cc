#include "obs/trace.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/logging.hh"

namespace imsim {
namespace obs {

namespace {

std::string
formatNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

/** Chrome trace strings: escape quotes/backslashes/control chars. */
void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
EventTracer::enable(Clock clock_in)
{
    util::fatalIf(!clock_in, "EventTracer::enable: need a clock");
    clock = std::move(clock_in);
    on = true;
}

void
EventTracer::push(TraceEvent ev)
{
    ev.tid = track;
    log.push_back(std::move(ev));
}

void
EventTracer::complete(const std::string &name, const std::string &cat,
                      Seconds begin, Seconds end)
{
    if (!on)
        return;
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.phase = 'X';
    ev.tsUs = begin * 1e6;
    ev.durUs = (end - begin) * 1e6;
    push(std::move(ev));
}

void
EventTracer::instant(const std::string &name, const std::string &cat)
{
    if (!on)
        return;
    instantAt(name, cat, clock());
}

void
EventTracer::instantAt(const std::string &name, const std::string &cat,
                       Seconds t,
                       std::vector<std::pair<std::string, double>> args)
{
    if (!on)
        return;
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.phase = 'i';
    ev.tsUs = t * 1e6;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
EventTracer::counter(const std::string &name, double value)
{
    if (!on)
        return;
    counterAt(name, clock(), value);
}

void
EventTracer::counterAt(const std::string &name, Seconds t, double value)
{
    if (!on)
        return;
    TraceEvent ev;
    ev.name = name;
    ev.cat = "counter";
    ev.phase = 'C';
    ev.tsUs = t * 1e6;
    ev.args.emplace_back("value", value);
    push(std::move(ev));
}

void
EventTracer::nameTrack(std::uint32_t tid, const std::string &label)
{
    if (!on)
        return;
    TraceEvent ev;
    ev.name = "thread_name";
    ev.phase = 'M';
    ev.strArg = label;
    push(std::move(ev));
    log.back().tid = tid;
}

void
EventTracer::append(const EventTracer &other, std::uint32_t tid_override)
{
    for (TraceEvent ev : other.log) {
        ev.tid = tid_override;
        log.push_back(std::move(ev));
    }
}

std::string
EventTracer::toJson(const std::string &metadata_json) const
{
    std::string out =
        "{\"schema\": \"imsim.trace/1\",\n\"traceEvents\": [";
    for (std::size_t i = 0; i < log.size(); ++i) {
        const TraceEvent &ev = log[i];
        out += i ? ",\n  {" : "\n  {";
        out += "\"name\": ";
        appendEscaped(out, ev.name);
        if (!ev.cat.empty()) {
            out += ", \"cat\": ";
            appendEscaped(out, ev.cat);
        }
        out += ", \"ph\": \"";
        out += ev.phase;
        out += "\", \"pid\": 0, \"tid\": ";
        out += std::to_string(ev.tid);
        if (ev.phase != 'M') {
            out += ", \"ts\": ";
            out += formatNumber(ev.tsUs);
        }
        if (ev.phase == 'X') {
            out += ", \"dur\": ";
            out += formatNumber(ev.durUs);
        }
        if (ev.phase == 'i')
            out += ", \"s\": \"t\"";
        if (ev.phase == 'M') {
            out += ", \"args\": {\"name\": ";
            appendEscaped(out, ev.strArg);
            out += "}";
        } else if (!ev.args.empty()) {
            out += ", \"args\": {";
            for (std::size_t j = 0; j < ev.args.size(); ++j) {
                if (j)
                    out += ", ";
                appendEscaped(out, ev.args[j].first);
                out += ": ";
                out += std::isfinite(ev.args[j].second)
                           ? formatNumber(ev.args[j].second)
                           : "null";
            }
            out += "}";
        }
        out += "}";
    }
    out += log.empty() ? "]" : "\n]";
    if (!metadata_json.empty()) {
        out += ",\n\"metadata\": ";
        out += metadata_json;
    }
    out += "}\n";
    return out;
}

void
EventTracer::writeJson(std::ostream &os,
                       const std::string &metadata_json) const
{
    os << toJson(metadata_json);
}

void
EventTracer::writeJsonFile(const std::string &path,
                           const std::string &metadata_json) const
{
    std::ofstream out(path);
    util::fatalIf(!out, "EventTracer: cannot open '" + path +
                            "' for writing");
    writeJson(out, metadata_json);
    util::fatalIf(!out, "EventTracer: failed writing '" + path + "'");
}

KernelTracer::KernelTracer(EventTracer &tracer_in, sim::Simulation &sim_in)
    : tracer(tracer_in), sim(sim_in)
{
    util::fatalIf(sim.hooksAttached() != nullptr,
                  "KernelTracer: simulation already has hooks");
    if (!tracer.enabled())
        tracer.enable([this] { return sim.now(); });
    sim.setHooks(this);
}

KernelTracer::~KernelTracer()
{
    if (sim.hooksAttached() == this)
        sim.setHooks(nullptr);
}

void
KernelTracer::onSchedule(sim::EventId id, Seconds t, Seconds period)
{
    // Scheduling is traced only for one-shots: periodic re-arms would
    // double every firing's event count for no extra information.
    if (period <= 0.0) {
        tracer.instantAt("schedule", "sim", sim.now(),
                         {{"id", static_cast<double>(id)},
                          {"at", t}});
    }
}

void
KernelTracer::onCancel(sim::EventId id)
{
    tracer.instantAt("cancel", "sim", sim.now(),
                     {{"id", static_cast<double>(id)}});
}

void
KernelTracer::onFire(sim::EventId id, Seconds t)
{
    tracer.instantAt("fire", "sim", t,
                     {{"id", static_cast<double>(id)}});
    tracer.counterAt("pending_events", t,
                     static_cast<double>(sim.pendingEvents()));
}

} // namespace obs
} // namespace imsim
