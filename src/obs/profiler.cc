#include "obs/profiler.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace imsim {
namespace obs {

std::atomic<bool> Profiler::enabledFlag{false};

namespace {

/**
 * Registry of every thread's log. Entries are shared_ptrs so a dump
 * after a worker thread has exited (the usual bench flow: sweep joins
 * its pool, then main dumps) still sees that thread's data.
 */
struct Registry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<Profiler::ThreadLog>> logs;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

std::string
formatMs(double ms)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", ms);
    return buf;
}

} // namespace

Profiler::ThreadLog::ThreadLog()
{
    nodes.emplace_back(); // Node 0: the implicit root.
}

Profiler::ThreadLog &
Profiler::threadLog()
{
    thread_local std::shared_ptr<ThreadLog> local = [] {
        auto log = std::make_shared<ThreadLog>();
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.logs.push_back(log);
        return log;
    }();
    return *local;
}

void
Profiler::setEnabled(bool on)
{
    enabledFlag.store(on, std::memory_order_relaxed);
}

void
Profiler::reset()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &log : reg.logs) {
        log->nodes.clear();
        log->nodes.emplace_back();
        log->current = 0;
    }
}

ProfileReport
Profiler::report()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    ProfileReport out;
    for (const auto &log : reg.logs) {
        // Walk the tree depth-first, building each node's full path
        // and charging child time against the parent's self time.
        struct Frame
        {
            int node;
            std::string path;
        };
        std::vector<Frame> stack;
        for (int child : log->nodes[0].children)
            stack.push_back({child, log->nodes[child].name});
        while (!stack.empty()) {
            const Frame frame = stack.back();
            stack.pop_back();
            const Node &node = log->nodes[frame.node];
            std::uint64_t child_ns = 0;
            for (int child : node.children) {
                child_ns += log->nodes[child].totalNs;
                stack.push_back(
                    {child, frame.path + "/" + log->nodes[child].name});
            }
            ProfileEntry entry;
            entry.path = frame.path;
            entry.count = node.count;
            entry.totalMs = static_cast<double>(node.totalNs) * 1e-6;
            entry.selfMs =
                static_cast<double>(node.totalNs -
                                    std::min(child_ns, node.totalNs)) *
                1e-6;
            out.add(std::move(entry));
        }
    }
    return out;
}

void
ProfScope::open(const char *name)
{
    Profiler::ThreadLog &tl = Profiler::threadLog();
    const int parent = tl.current;
    int found = -1;
    for (int child : tl.nodes[parent].children) {
        const char *child_name = tl.nodes[child].name;
        if (child_name == name || std::strcmp(child_name, name) == 0) {
            found = child;
            break;
        }
    }
    if (found < 0) {
        found = static_cast<int>(tl.nodes.size());
        Profiler::Node fresh;
        fresh.name = name;
        fresh.parent = parent;
        tl.nodes.push_back(fresh);
        tl.nodes[parent].children.push_back(found);
    }
    tl.current = found;
    log = &tl;
    node = found;
    begin = std::chrono::steady_clock::now();
}

void
ProfScope::close()
{
    const auto end = std::chrono::steady_clock::now();
    Profiler::Node &n = log->nodes[node];
    n.count += 1;
    n.totalNs += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count());
    log->current = n.parent;
}

void
ProfileReport::add(ProfileEntry entry)
{
    for (auto &row : rows) {
        if (row.path == entry.path) {
            row.count += entry.count;
            row.totalMs += entry.totalMs;
            row.selfMs += entry.selfMs;
            return;
        }
    }
    rows.push_back(std::move(entry));
    sortByPath();
}

void
ProfileReport::merge(const ProfileReport &other)
{
    for (const auto &row : other.rows)
        add(row);
}

void
ProfileReport::sortByPath()
{
    std::sort(rows.begin(), rows.end(),
              [](const ProfileEntry &a, const ProfileEntry &b) {
                  return a.path < b.path;
              });
}

util::TableWriter
ProfileReport::toTable() const
{
    double total_self = 0.0;
    for (const auto &row : rows)
        total_self += row.selfMs;
    std::vector<const ProfileEntry *> by_self;
    by_self.reserve(rows.size());
    for (const auto &row : rows)
        by_self.push_back(&row);
    std::sort(by_self.begin(), by_self.end(),
              [](const ProfileEntry *a, const ProfileEntry *b) {
                  if (a->selfMs != b->selfMs)
                      return a->selfMs > b->selfMs;
                  return a->path < b->path;
              });
    util::TableWriter table(
        {"Scope path", "Count", "Total [ms]", "Self [ms]", "Self %"});
    for (const ProfileEntry *row : by_self) {
        table.addRow({row->path, util::fmt(row->count, 0),
                      util::fmt(row->totalMs, 3),
                      util::fmt(row->selfMs, 3),
                      total_self > 0.0
                          ? util::fmt(row->selfMs / total_self * 100.0, 1)
                          : "0.0"});
    }
    return table;
}

std::string
ProfileReport::toJson(const std::string &meta_json) const
{
    std::string out = "{\n  \"schema\": \"imsim.profile/1\",\n";
    if (!meta_json.empty()) {
        out += "  \"meta\": ";
        out += meta_json;
        out += ",\n";
    }
    out += "  \"scopes\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &row = rows[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"path\": ";
        util::Json::appendEscaped(out, row.path);
        out += ", \"count\": " + std::to_string(row.count);
        out += ", \"total_ms\": " + formatMs(row.totalMs);
        out += ", \"self_ms\": " + formatMs(row.selfMs) + "}";
    }
    out += rows.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

ProfileReport
ProfileReport::fromJson(const std::string &json)
{
    const util::Json doc = util::Json::parse(json);
    util::fatalIf(!doc.isObject() || !doc.has("schema") ||
                      doc.at("schema").str() != "imsim.profile/1",
                  "ProfileReport: not an imsim.profile/1 document");
    ProfileReport out;
    for (const auto &scope : doc.at("scopes").array()) {
        ProfileEntry entry;
        entry.path = scope.at("path").str();
        entry.count =
            static_cast<std::uint64_t>(scope.at("count").number());
        entry.totalMs = scope.at("total_ms").number();
        entry.selfMs = scope.at("self_ms").number();
        out.add(std::move(entry));
    }
    return out;
}

void
ProfileReport::writeJsonFile(const std::string &path,
                             const std::string &meta_json) const
{
    std::ofstream out(path);
    util::fatalIf(!out, "ProfileReport: cannot open '" + path +
                            "' for writing");
    out << toJson(meta_json);
    util::fatalIf(!out, "ProfileReport: failed writing '" + path + "'");
}

} // namespace obs
} // namespace imsim
