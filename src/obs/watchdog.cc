#include "obs/watchdog.hh"

#include <cmath>
#include <cstdio>

#include "obs/blackbox.hh"
#include "obs/incident.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"

namespace imsim {
namespace obs {

namespace {

const Logger watchdogLog("watchdog");

std::string
describeTransition(const char *verb, const WatchdogRule &rule,
                   double value)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s %s (%s): value %.6g %s %.6g",
                  verb, rule.name.c_str(), alertKindName(rule.kind),
                  value, rule.fireAbove ? ">=" : "<=",
                  rule.fireThreshold);
    return buf;
}

} // namespace

const char *
alertKindName(AlertKind kind)
{
    switch (kind) {
      case AlertKind::TjCeiling:
        return "tj_ceiling";
      case AlertKind::TailLatency:
        return "tail_latency";
      case AlertKind::Brownout:
        return "brownout";
      case AlertKind::FluidLevel:
        return "fluid_level";
      case AlertKind::WearRate:
        return "wear_rate";
      case AlertKind::Custom:
      default:
        return "custom";
    }
}

std::size_t
Watchdog::addRule(WatchdogRule rule)
{
    util::fatalIf(!rule.signal, "Watchdog::addRule: rule needs a signal");
    util::fatalIf(rule.debounce < 0.0,
            "Watchdog::addRule: debounce must be >= 0");
    if (std::isnan(rule.clearThreshold))
        rule.clearThreshold = rule.fireThreshold;
    // Hysteresis must not invert: the clear threshold sits on the
    // recovery side, or firing and clearing would both hold at once.
    util::fatalIf(rule.fireAbove ? rule.clearThreshold > rule.fireThreshold
                           : rule.clearThreshold < rule.fireThreshold,
            "Watchdog::addRule: clear threshold on the breach side");
    RuleState state;
    state.rule = std::move(rule);
    rules.push_back(std::move(state));
    return rules.size() - 1;
}

void
Watchdog::evaluate(Seconds t)
{
    for (RuleState &state : rules) {
        const WatchdogRule &rule = state.rule;
        const double v = rule.signal();
        if (!std::isfinite(v))
            continue; // A broken sample changes no state.
        const bool breach =
            rule.fireAbove ? v >= rule.fireThreshold
                           : v <= rule.fireThreshold;
        // A value exactly at the threshold is a breach for either
        // fireAbove sense, so it must never also count as recovered:
        // without hysteresis (clear == fire) the two would otherwise
        // both hold and a signal parked on the limit would flap
        // raise/clear every poll.
        const bool recovered =
            !breach && (rule.fireAbove ? v <= rule.clearThreshold
                                       : v >= rule.clearThreshold);
        if (!state.isFiring) {
            if (breach) {
                if (state.breachSince < 0.0)
                    state.breachSince = t;
                if (t - state.breachSince >= rule.debounce)
                    raise(state, t, v);
            } else {
                state.breachSince = -1.0;
            }
        } else {
            if (incidents && state.incident != IncidentLog::kNone)
                incidents->observeValue(state.incident, v);
            if (recovered)
                clear(state, t, v);
        }
    }
}

void
Watchdog::raise(RuleState &state, Seconds t, double value)
{
    state.isFiring = true;
    transitions.push_back(Alert{t, state.rule.kind, state.rule.name,
                                value, state.rule.fireThreshold, true});
    ++raised;
    if (incidents) {
        state.incident = incidents->open(t, state.rule.kind,
                                         state.rule.name, value,
                                         state.rule.fireThreshold);
    }
    if (metrics) {
        metrics->counter(metricPrefix + ".raised").inc();
        metrics->counter(metricPrefix + ".raised." +
                         alertKindName(state.rule.kind))
            .inc();
    }
    if (flightRecorder)
        flightRecorder->page(t, state.rule.name, value, true);
    if (logAlerts)
        watchdogLog.warn(describeTransition("ALERT", state.rule, value));
}

void
Watchdog::clear(RuleState &state, Seconds t, double value)
{
    state.isFiring = false;
    state.breachSince = -1.0;
    transitions.push_back(Alert{t, state.rule.kind, state.rule.name,
                                value, state.rule.clearThreshold,
                                false});
    if (incidents && state.incident != IncidentLog::kNone) {
        incidents->close(state.incident, t);
        state.incident = IncidentLog::kNone;
    }
    if (metrics)
        metrics->counter(metricPrefix + ".cleared").inc();
    if (flightRecorder)
        flightRecorder->page(t, state.rule.name, value, false);
    if (logAlerts)
        watchdogLog.info(describeTransition("clear", state.rule, value));
}

bool
Watchdog::firing(std::size_t index) const
{
    util::fatalIf(index >= rules.size(), "Watchdog::firing: rule out of range");
    return rules[index].isFiring;
}

std::size_t
Watchdog::firingCount() const
{
    std::size_t n = 0;
    for (const RuleState &state : rules)
        n += state.isFiring ? 1 : 0;
    return n;
}

Seconds
Watchdog::firstRaiseAfter(Seconds after) const
{
    for (const Alert &alert : transitions) {
        if (alert.raised && alert.t >= after)
            return alert.t;
    }
    return -1.0;
}

Seconds
Watchdog::firstRaiseAfter(Seconds after, AlertKind kind) const
{
    for (const Alert &alert : transitions) {
        if (alert.raised && alert.t >= after && alert.kind == kind)
            return alert.t;
    }
    return -1.0;
}

void
Watchdog::attachMetrics(MetricRegistry &registry,
                        const std::string &prefix)
{
    metrics = &registry;
    metricPrefix = prefix;
    registry.registerGauge(prefix + ".firing", [this] {
        return static_cast<double>(firingCount());
    });
    // Create every counter a raise/clear can touch now, not lazily at
    // the first alert: a TelemetrySampler snapshots the registry's
    // column set when it starts, and a metric appearing mid-run is a
    // fatal schema change. (Rules added after this call create their
    // per-kind counter lazily — add rules first.)
    registry.counter(prefix + ".raised");
    registry.counter(prefix + ".cleared");
    for (const RuleState &state : rules)
        registry.counter(prefix + ".raised." +
                         alertKindName(state.rule.kind));
}

} // namespace obs
} // namespace imsim
