#include "obs/sampler.hh"

#include "util/logging.hh"

namespace imsim {
namespace obs {

TelemetrySampler::TelemetrySampler(sim::Simulation &sim_in,
                                   MetricRegistry &registry_in,
                                   Seconds period_in)
    : sim(sim_in), registry(registry_in), samplePeriod(period_in)
{
    util::fatalIf(period_in <= 0.0,
                  "TelemetrySampler: period must be > 0");
}

TelemetrySampler::~TelemetrySampler()
{
    stop();
}

void
TelemetrySampler::start()
{
    util::fatalIf(running, "TelemetrySampler::start: already started");
    if (samples.columns().empty()) {
        std::vector<std::string> cols;
        for (const auto &entry : registry.gauges())
            cols.push_back(entry.first);
        for (const auto &entry : registry.counters())
            cols.push_back(entry.first);
        samples.setColumns(std::move(cols));
        gaugeCount = registry.gauges().size();
        counterCount = registry.counters().size();
    }
    running = true;
    sampleNow();
    tick = sim.every(samplePeriod, [this] { sampleNow(); });
}

void
TelemetrySampler::stop()
{
    if (!running)
        return;
    sim.cancel(tick);
    running = false;
}

void
TelemetrySampler::sampleNow()
{
    util::fatalIf(registry.gauges().size() != gaugeCount ||
                      registry.counters().size() != counterCount,
                  "TelemetrySampler: registry changed after start()");
    const Seconds now = sim.now();
    std::vector<double> row;
    row.reserve(gaugeCount + counterCount);
    for (const auto &entry : registry.gauges())
        row.push_back(entry.second->value());
    for (const auto &entry : registry.counters())
        row.push_back(static_cast<double>(entry.second->value()));
    if (tracer && tracer->enabled()) {
        for (std::size_t i = 0; i < row.size(); ++i)
            tracer->counterAt(samples.columns()[i], now, row[i]);
    }
    samples.append(now, std::move(row));
}

TimeSeries
TelemetrySampler::takeSeries()
{
    TimeSeries out = std::move(samples);
    samples = TimeSeries();
    return out;
}

} // namespace obs
} // namespace imsim
