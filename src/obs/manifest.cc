#include "obs/manifest.hh"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <ostream>

#include "obs/version.hh"
#include "util/cli.hh"
#include "util/json.hh"

namespace imsim {
namespace obs {

namespace {

/** Current wall clock as ISO 8601 UTC, e.g. "2026-08-05T14:03:22Z". */
std::string
wallClockIso()
{
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm utc{};
    gmtime_r(&now, &utc);
    // Sized for GCC's worst-case %d estimate (-Wformat-truncation in
    // the -Werror sanitizer builds), not the 21 bytes a real date needs.
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                  utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                  utc.tm_hour, utc.tm_min, utc.tm_sec);
    return buf;
}

} // namespace

RunManifest
RunManifest::capture(const util::Cli &cli, std::uint64_t seed,
                     std::size_t jobs)
{
    RunManifest manifest;
    manifest.set("git_sha", IMSIM_GIT_SHA);
    manifest.set("git_dirty", IMSIM_GIT_DIRTY ? "true" : "false");
    manifest.set("compiler", IMSIM_COMPILER);
    manifest.set("build_type", IMSIM_BUILD_TYPE);
    manifest.set("seed", std::to_string(seed));
    manifest.set("jobs", std::to_string(jobs));
    manifest.set("argv", cli.commandLine());
    manifest.set("started_at", wallClockIso());
    return manifest;
}

std::string
RunManifest::get(const std::string &key) const
{
    for (const auto &field : fields)
        if (field.first == key)
            return field.second;
    return "";
}

std::string
RunManifest::toJsonObject() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out += ", ";
        util::Json::appendEscaped(out, fields[i].first);
        out += ": ";
        util::Json::appendEscaped(out, fields[i].second);
    }
    out += "}";
    return out;
}

void
RunManifest::writeCsvComments(std::ostream &os) const
{
    for (const auto &field : fields)
        os << "# " << field.first << ": " << field.second << '\n';
}

void
RunManifest::set(const std::string &key, const std::string &value)
{
    for (auto &field : fields) {
        if (field.first == key) {
            field.second = value;
            return;
        }
    }
    fields.emplace_back(key, value);
}

} // namespace obs
} // namespace imsim
