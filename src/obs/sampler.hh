/**
 * @file
 * TelemetrySampler: periodically samples a MetricRegistry's gauges and
 * counters into a TimeSeries, driven by the simulation kernel's
 * periodic events — the production-telemetry feed the paper's control
 * loops (auto-scaler, overclocking manager, capping) consume.
 */

#ifndef IMSIM_OBS_SAMPLER_HH
#define IMSIM_OBS_SAMPLER_HH

#include <cstddef>

#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/simulation.hh"

namespace imsim {
namespace obs {

/**
 * Samples every gauge (polled) and counter of a registry into an
 * in-memory TimeSeries on a fixed virtual-time period.
 *
 * Alignment contract: start() takes one sample at the current virtual
 * time, then one every period via sim::Simulation::every(), i.e. at
 * exactly start + k*period. Under runUntil(h) no sample is taken past
 * h (the kernel does not fire events beyond the horizon).
 *
 * The sampled columns are frozen at start(): gauges first, then
 * counters, in registration order. Registering further metrics after
 * start() is a FatalError at the next sample.
 */
class TelemetrySampler
{
  public:
    /**
     * @param sim_in      Kernel that drives the sampling clock.
     * @param registry_in Metrics to sample; must outlive the sampler.
     * @param period_in   Sampling period [s] (> 0).
     */
    TelemetrySampler(sim::Simulation &sim_in, MetricRegistry &registry_in,
                     Seconds period_in);

    ~TelemetrySampler();

    TelemetrySampler(const TelemetrySampler &) = delete;
    TelemetrySampler &operator=(const TelemetrySampler &) = delete;

    /**
     * Freeze the column set, take the first sample now, and arm the
     * periodic sampling event. FatalError when already started.
     */
    void start();

    /** Cancel the periodic sampling event (series is kept). */
    void stop();

    /** Take one sample at the current virtual time. */
    void sampleNow();

    /**
     * Mirror every sample into @p tracer as counter events (one 'C'
     * track per column), so gauges show up as counter tracks in
     * Perfetto alongside the event trace. Optional; nullptr detaches.
     */
    void mirrorToTracer(EventTracer *tracer_in) { tracer = tracer_in; }

    /** @return the sampling period [s]. */
    Seconds period() const { return samplePeriod; }

    /** @return the collected series. */
    const TimeSeries &series() const { return samples; }

    /** @return the collected series, moved out (sampler keeps none). */
    TimeSeries takeSeries();

  private:
    sim::Simulation &sim;
    MetricRegistry &registry;
    Seconds samplePeriod;
    TimeSeries samples;
    EventTracer *tracer = nullptr;
    sim::EventId tick = 0;
    bool running = false;
    std::size_t gaugeCount = 0;
    std::size_t counterCount = 0;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_SAMPLER_HH
