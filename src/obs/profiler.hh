/**
 * @file
 * Wall-clock profiler: RAII scoped timers aggregated by call path.
 *
 * Each thread owns a private tree of profile nodes keyed by the scope
 * name literals; a ProfScope pushes onto the thread's current path on
 * entry and accumulates elapsed steady-clock time on exit, so nested
 * scopes (e.g. "datacenter.minute" -> "power.allocate") aggregate by
 * their full path and self time is total minus children. report()
 * merges the per-thread trees by path into one ProfileReport.
 *
 * Overhead contract: profiling is globally off by default; a ProfScope
 * on the disabled profiler costs one relaxed atomic load and a branch
 * (single-digit ns — see BM_ProfScopeDisabled in bench_obs_overhead),
 * so instrumentation stays compiled into the thermal, power, queueing,
 * datacenter, and autoscale hot paths permanently.
 *
 * Thread-safety: scopes only touch their own thread's tree, so
 * concurrent sweep workers never contend. report()/reset() take the
 * registry lock but must not run concurrently with *active* scopes on
 * other threads — dump after the sweep has joined its workers (the
 * bench flow), never mid-flight.
 *
 * Scope names must be string literals (the tree stores the pointers).
 */

#ifndef IMSIM_OBS_PROFILER_HH
#define IMSIM_OBS_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace imsim {
namespace util {
class TableWriter;
} // namespace util

namespace obs {

/** One aggregated call path in a profile dump. */
struct ProfileEntry
{
    std::string path;          ///< "/"-joined scope names, root first.
    std::uint64_t count = 0;   ///< Times the scope was entered.
    double totalMs = 0.0;      ///< Wall time inside the scope [ms].
    double selfMs = 0.0;       ///< totalMs minus child-scope time [ms].
};

/**
 * Aggregated profile: entries sorted by path, so two dumps of the
 * same run are comparable line by line, and merge() is well-defined.
 */
class ProfileReport
{
  public:
    /** @return aggregated entries, sorted by path. */
    const std::vector<ProfileEntry> &entries() const { return rows; }

    /** @return whether no scopes were recorded. */
    bool empty() const { return rows.empty(); }

    /** Sum @p other into this report, matching entries by path. */
    void merge(const ProfileReport &other);

    /**
     * @return a table (path, count, total ms, self ms, self %),
     *         sorted by self time descending.
     */
    util::TableWriter toTable() const;

    /**
     * Serialise as mergeable JSON (schema imsim.profile/1). When
     * @p meta_json is non-empty it is embedded verbatim as the
     * "meta" member (a RunManifest::toJsonObject() string).
     */
    std::string toJson(const std::string &meta_json = "") const;

    /** Parse a dump written by toJson(); the meta block is skipped. */
    static ProfileReport fromJson(const std::string &json);

    /** Write toJson() to @p path; FatalError when unwritable. */
    void writeJsonFile(const std::string &path,
                       const std::string &meta_json = "") const;

    /** Append one entry (normally only the profiler does this). */
    void add(ProfileEntry entry);

  private:
    void sortByPath();

    std::vector<ProfileEntry> rows;
};

/**
 * Process-wide profiler switch and per-thread scope trees.
 */
class Profiler
{
  public:
    /** @return whether scopes currently record (relaxed load). */
    static bool
    enabled()
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    /** Turn recording on or off (existing data is kept). */
    static void setEnabled(bool on);

    /** Drop all recorded data from every thread (keeps the switch). */
    static void reset();

    /**
     * Merge every thread's tree into one report. Call only while no
     * scope is active on another thread (i.e. after joining workers).
     */
    static ProfileReport report();

    /** One node of a thread's scope tree (implementation detail). */
    struct Node
    {
        const char *name = nullptr;
        int parent = -1;
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;
        std::vector<int> children;
    };

    /** Per-thread scope tree; node 0 is the implicit root. */
    struct ThreadLog
    {
        std::vector<Node> nodes;
        int current = 0;
        ThreadLog();
    };

  private:
    friend class ProfScope;

    /** @return the calling thread's log, registering it on first use. */
    static ThreadLog &threadLog();

    static std::atomic<bool> enabledFlag;
};

/**
 * RAII scoped timer. On the disabled profiler, construction is one
 * relaxed load + branch and destruction one branch.
 *
 * @code
 *   void PowerBudget::allocate(...) {
 *       obs::ProfScope prof("power.allocate");
 *       ...
 *   }
 * @endcode
 */
class ProfScope
{
  public:
    /** @param name Scope name; must be a string literal. */
    explicit ProfScope(const char *name)
    {
        if (Profiler::enabled())
            open(name);
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

    ~ProfScope()
    {
        if (log)
            close();
    }

  private:
    void open(const char *name);
    void close();

    Profiler::ThreadLog *log = nullptr;
    int node = 0;
    std::chrono::steady_clock::time_point begin;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_PROFILER_HH
