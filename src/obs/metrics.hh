/**
 * @file
 * Metric primitives for fleet telemetry: named counters, gauges, and
 * sample histograms collected in a MetricRegistry that any module can
 * cheaply publish into. The registry is the substrate the
 * TelemetrySampler polls and the run reports snapshot.
 *
 * Thread-safety: a registry (and the metrics it owns) is *not*
 * synchronised. The experiment engine's contract applies: one registry
 * per sweep point / replication, merged in point order afterwards
 * (merge()); never publish into one registry from two threads.
 */

#ifndef IMSIM_OBS_METRICS_HH
#define IMSIM_OBS_METRICS_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hh"

namespace imsim {
namespace obs {

/** Monotonically increasing event count (scale-outs, capping events). */
class Counter
{
  public:
    /** Add @p delta (default 1) to the count. */
    void inc(std::uint64_t delta = 1) { total += delta; }

    /** @return the accumulated count. */
    std::uint64_t value() const { return total; }

    /** Fold another counter's count into this one. */
    void merge(const Counter &other) { total += other.total; }

    /** Back to zero. */
    void reset() { total = 0; }

  private:
    std::uint64_t total = 0;
};

/**
 * Point-in-time scalar (tank temperature, fleet frequency, VM count).
 *
 * A gauge is either *set* (a module pushes values into it) or
 * *provided* (a callback pulls the value from the owning model when the
 * gauge is read — how the TelemetrySampler observes live state without
 * the model pushing every change).
 */
class Gauge
{
  public:
    /** Push a value; clears any provider. */
    void
    set(double v)
    {
        provider = nullptr;
        last = v;
    }

    /** Make the gauge pull its value from @p fn on every read. */
    void setProvider(std::function<double()> fn) { provider = std::move(fn); }

    /** @return the current value (polls the provider when set). */
    double value() const { return provider ? provider() : last; }

    /** @return whether a pull callback is attached. */
    bool provided() const { return static_cast<bool>(provider); }

  private:
    std::function<double()> provider;
    double last = 0.0;
};

/**
 * Sample distribution built on util::PercentileEstimator (the same
 * reservoir the experiment reports use): exact quantiles, merge by
 * sample union.
 */
class HistogramMetric
{
  public:
    /**
     * Record one sample. Non-finite values (NaN, +/-Inf) are diverted
     * into dropped() instead of the reservoir — the util::Histogram
     * guard applied here too, so a single bad sample cannot poison
     * every percentile of a metric.
     */
    void
    observe(double x)
    {
        if (!std::isfinite(x)) {
            ++droppedSamples;
            return;
        }
        reservoir.add(x);
    }

    /** @return number of samples observed. */
    std::size_t count() const { return reservoir.count(); }

    /** @return non-finite samples rejected by observe(). */
    std::size_t dropped() const { return droppedSamples; }

    /** @return arithmetic mean; 0 when empty. */
    double mean() const { return reservoir.mean(); }

    /** @return the p-th percentile (see PercentileEstimator). */
    double percentile(double p) const { return reservoir.percentile(p); }

    /** Absorb another histogram's samples (and dropped count). */
    void merge(const HistogramMetric &other)
    {
        reservoir.merge(other.reservoir);
        droppedSamples += other.droppedSamples;
    }

    /** @return the underlying reservoir. */
    const util::PercentileEstimator &estimator() const { return reservoir; }

  private:
    util::PercentileEstimator reservoir;
    std::size_t droppedSamples = 0;
};

/**
 * Registry of named metrics with stable insertion order.
 *
 * Accessors find-or-create, so publishing is one line:
 * @code
 *   registry.counter("autoscale.scale_outs").inc();
 *   registry.registerGauge("tank.heat_w", [&] { return tank.totalHeat(); });
 *   registry.histogram("latency_s").observe(lat);
 * @endcode
 * References returned by the accessors stay valid for the registry's
 * lifetime (metrics are heap-allocated and never move).
 */
class MetricRegistry
{
  public:
    /** Find or create counter @p name. */
    Counter &counter(const std::string &name);

    /** Find or create gauge @p name. */
    Gauge &gauge(const std::string &name);

    /** Find or create gauge @p name and attach pull callback @p fn. */
    Gauge &registerGauge(const std::string &name, std::function<double()> fn);

    /** Find or create histogram @p name. */
    HistogramMetric &histogram(const std::string &name);

    /** @return counters in registration order. */
    const std::vector<std::pair<std::string, std::unique_ptr<Counter>>> &
    counters() const
    {
        return counterList;
    }

    /** @return gauges in registration order. */
    const std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> &
    gauges() const
    {
        return gaugeList;
    }

    /** @return histograms in registration order. */
    const std::vector<
        std::pair<std::string, std::unique_ptr<HistogramMetric>>> &
    histograms() const
    {
        return histogramList;
    }

    /** @return total number of registered metrics. */
    std::size_t size() const;

    /**
     * Flatten to ordered (name, value) pairs: counters first, then
     * gauges (polled), then histograms as
     * `<name>.count/.mean/.p50/.p95/.p99`.
     */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /**
     * Fold @p other into this registry, matching by name (missing
     * metrics are created): counters sum, histograms union their
     * samples, gauges take @p other's current value (last-merged
     * wins; providers are polled, not copied). Merging replications in
     * point order keeps the result independent of worker scheduling.
     */
    void merge(const MetricRegistry &other);

  private:
    std::vector<std::pair<std::string, std::unique_ptr<Counter>>>
        counterList;
    std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gaugeList;
    std::vector<std::pair<std::string, std::unique_ptr<HistogramMetric>>>
        histogramList;
};

/**
 * Thread-safe read side for an (unsynchronised) MetricRegistry.
 *
 * The registry contract forbids touching one from two threads; the
 * mirror turns that into a safe-point protocol: the owning (sim)
 * thread calls update() at points where no metric is mid-mutation,
 * and any other thread reads the last published snapshot through
 * values()/value(). A watchdog UI thread, a progress reporter, or the
 * concurrency tests can then poll live metrics without racing the
 * simulation.
 */
class RegistryMirror
{
  public:
    /** Publish a fresh registry snapshot (owning thread only). */
    void
    update(const MetricRegistry &registry)
    {
        std::vector<std::pair<std::string, double>> fresh =
            registry.snapshot();
        std::lock_guard<std::mutex> lock(mutex);
        latest.swap(fresh);
        ++updateCount;
    }

    /** @return a copy of the last published snapshot (any thread). */
    std::vector<std::pair<std::string, double>>
    values() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return latest;
    }

    /** @return the last published value of @p name, or @p fallback. */
    double
    value(const std::string &name, double fallback = 0.0) const
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (const auto &entry : latest) {
            if (entry.first == name)
                return entry.second;
        }
        return fallback;
    }

    /** @return number of update() publications so far (any thread). */
    std::size_t
    updates() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return updateCount;
    }

  private:
    mutable std::mutex mutex;
    std::vector<std::pair<std::string, double>> latest;
    std::size_t updateCount = 0;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_METRICS_HH
