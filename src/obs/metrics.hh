/**
 * @file
 * Metric primitives for fleet telemetry: named counters, gauges, and
 * sample histograms collected in a MetricRegistry that any module can
 * cheaply publish into. The registry is the substrate the
 * TelemetrySampler polls and the run reports snapshot.
 *
 * Thread-safety: a registry (and the metrics it owns) is *not*
 * synchronised. The experiment engine's contract applies: one registry
 * per sweep point / replication, merged in point order afterwards
 * (merge()); never publish into one registry from two threads.
 */

#ifndef IMSIM_OBS_METRICS_HH
#define IMSIM_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hh"

namespace imsim {
namespace obs {

/** Monotonically increasing event count (scale-outs, capping events). */
class Counter
{
  public:
    /** Add @p delta (default 1) to the count. */
    void inc(std::uint64_t delta = 1) { total += delta; }

    /** @return the accumulated count. */
    std::uint64_t value() const { return total; }

    /** Fold another counter's count into this one. */
    void merge(const Counter &other) { total += other.total; }

    /** Back to zero. */
    void reset() { total = 0; }

  private:
    std::uint64_t total = 0;
};

/**
 * Point-in-time scalar (tank temperature, fleet frequency, VM count).
 *
 * A gauge is either *set* (a module pushes values into it) or
 * *provided* (a callback pulls the value from the owning model when the
 * gauge is read — how the TelemetrySampler observes live state without
 * the model pushing every change).
 */
class Gauge
{
  public:
    /** Push a value; clears any provider. */
    void
    set(double v)
    {
        provider = nullptr;
        last = v;
    }

    /** Make the gauge pull its value from @p fn on every read. */
    void setProvider(std::function<double()> fn) { provider = std::move(fn); }

    /** @return the current value (polls the provider when set). */
    double value() const { return provider ? provider() : last; }

    /** @return whether a pull callback is attached. */
    bool provided() const { return static_cast<bool>(provider); }

  private:
    std::function<double()> provider;
    double last = 0.0;
};

/**
 * Sample distribution built on util::PercentileEstimator (the same
 * reservoir the experiment reports use): exact quantiles, merge by
 * sample union.
 */
class HistogramMetric
{
  public:
    /** Record one sample. */
    void observe(double x) { reservoir.add(x); }

    /** @return number of samples observed. */
    std::size_t count() const { return reservoir.count(); }

    /** @return arithmetic mean; 0 when empty. */
    double mean() const { return reservoir.mean(); }

    /** @return the p-th percentile (see PercentileEstimator). */
    double percentile(double p) const { return reservoir.percentile(p); }

    /** Absorb another histogram's samples. */
    void merge(const HistogramMetric &other)
    {
        reservoir.merge(other.reservoir);
    }

    /** @return the underlying reservoir. */
    const util::PercentileEstimator &estimator() const { return reservoir; }

  private:
    util::PercentileEstimator reservoir;
};

/**
 * Registry of named metrics with stable insertion order.
 *
 * Accessors find-or-create, so publishing is one line:
 * @code
 *   registry.counter("autoscale.scale_outs").inc();
 *   registry.registerGauge("tank.heat_w", [&] { return tank.totalHeat(); });
 *   registry.histogram("latency_s").observe(lat);
 * @endcode
 * References returned by the accessors stay valid for the registry's
 * lifetime (metrics are heap-allocated and never move).
 */
class MetricRegistry
{
  public:
    /** Find or create counter @p name. */
    Counter &counter(const std::string &name);

    /** Find or create gauge @p name. */
    Gauge &gauge(const std::string &name);

    /** Find or create gauge @p name and attach pull callback @p fn. */
    Gauge &registerGauge(const std::string &name, std::function<double()> fn);

    /** Find or create histogram @p name. */
    HistogramMetric &histogram(const std::string &name);

    /** @return counters in registration order. */
    const std::vector<std::pair<std::string, std::unique_ptr<Counter>>> &
    counters() const
    {
        return counterList;
    }

    /** @return gauges in registration order. */
    const std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> &
    gauges() const
    {
        return gaugeList;
    }

    /** @return histograms in registration order. */
    const std::vector<
        std::pair<std::string, std::unique_ptr<HistogramMetric>>> &
    histograms() const
    {
        return histogramList;
    }

    /** @return total number of registered metrics. */
    std::size_t size() const;

    /**
     * Flatten to ordered (name, value) pairs: counters first, then
     * gauges (polled), then histograms as
     * `<name>.count/.mean/.p50/.p95/.p99`.
     */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /**
     * Fold @p other into this registry, matching by name (missing
     * metrics are created): counters sum, histograms union their
     * samples, gauges take @p other's current value (last-merged
     * wins; providers are polled, not copied). Merging replications in
     * point order keeps the result independent of worker scheduling.
     */
    void merge(const MetricRegistry &other);

  private:
    std::vector<std::pair<std::string, std::unique_ptr<Counter>>>
        counterList;
    std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gaugeList;
    std::vector<std::pair<std::string, std::unique_ptr<HistogramMetric>>>
        histogramList;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_METRICS_HH
