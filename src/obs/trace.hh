/**
 * @file
 * Event tracing in Chrome trace_event format: an in-memory tracer with
 * RAII scopes, instant/complete/counter events on the *virtual*
 * timeline, and a KernelTracer adapter that observes the simulation
 * kernel through sim::KernelHooks. The JSON output loads directly into
 * chrome://tracing or https://ui.perfetto.dev.
 *
 * Overhead contract: a default-constructed tracer is disabled and
 * every emit method returns after a single branch (`if (!on) return`),
 * so instrumentation can stay compiled into hot paths; see
 * bench_obs_overhead and the disabled-drift test in tests/test_obs.cc.
 *
 * Thread-safety: a tracer is not synchronised — use one per sweep
 * point / replication and append() them in point order afterwards.
 */

#ifndef IMSIM_OBS_TRACE_HH
#define IMSIM_OBS_TRACE_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.hh"
#include "util/units.hh"

namespace imsim {
namespace obs {

/** One Chrome trace_event record. */
struct TraceEvent
{
    std::string name;
    std::string cat;     ///< Comma-separable category tag.
    char phase = 'i';    ///< 'X' complete, 'i' instant, 'C' counter,
                         ///< 'M' metadata.
    double tsUs = 0.0;   ///< Timestamp [us] on the virtual timeline.
    double durUs = 0.0;  ///< Duration [us]; 'X' events only.
    std::uint32_t tid = 0;
    /** Numeric args ({"value": v} for counters, {"id": n} for fires). */
    std::vector<std::pair<std::string, double>> args;
    /** String arg for 'M' metadata events (thread names). */
    std::string strArg;
};

/**
 * In-memory collector of trace events on a virtual-time clock.
 *
 * Timestamps come from the clock callback handed to enable() —
 * typically `[&sim] { return sim.now(); }` — so the trace timeline is
 * the simulated one and re-runs produce identical traces.
 */
class EventTracer
{
  public:
    /** Virtual-time source [s]. */
    using Clock = std::function<Seconds()>;

    /** Disabled tracer: every emit method is a single-branch no-op. */
    EventTracer() = default;

    /** Start collecting, with timestamps drawn from @p clock. */
    void enable(Clock clock);

    /** Stop collecting (already-collected events are kept). */
    void disable() { on = false; }

    /** @return whether events are being collected. */
    bool enabled() const { return on; }

    /** @return the clock's current virtual time [s]; 0 when disabled. */
    Seconds now() const { return on ? clock() : 0.0; }

    /** Thread-track id stamped on subsequently emitted events. */
    void setTid(std::uint32_t tid) { track = tid; }

    /** @return the current thread-track id. */
    std::uint32_t tid() const { return track; }

    /** Emit a complete ('X') event spanning [begin, end] seconds. */
    void complete(const std::string &name, const std::string &cat,
                  Seconds begin, Seconds end);

    /** Emit an instant ('i') event at the clock's current time. */
    void instant(const std::string &name, const std::string &cat);

    /** Emit an instant ('i') event at @p t with one numeric arg. */
    void instantAt(const std::string &name, const std::string &cat,
                   Seconds t,
                   std::vector<std::pair<std::string, double>> args = {});

    /** Emit a counter ('C') sample at the clock's current time. */
    void counter(const std::string &name, double value);

    /** Emit a counter ('C') sample at @p t. */
    void counterAt(const std::string &name, Seconds t, double value);

    /** Name the track @p tid (an 'M' thread_name metadata event). */
    void nameTrack(std::uint32_t tid, const std::string &label);

    /** @return events collected so far. */
    const std::vector<TraceEvent> &events() const { return log; }

    /** @return number of events collected. */
    std::size_t size() const { return log.size(); }

    /**
     * Append @p other's events, restamped onto track @p tid_override
     * (how per-point tracers from a parallel sweep combine into one
     * multi-track trace, in point order). Works on disabled tracers.
     */
    void append(const EventTracer &other, std::uint32_t tid_override);

    /**
     * Render as Chrome trace JSON ({"traceEvents": [...]}). When
     * @p metadata_json is non-empty it is embedded verbatim as the
     * top-level "metadata" member (chrome://tracing shows it under
     * Metadata) — pass a RunManifest::toJsonObject() string to stamp
     * the trace with its run's provenance.
     */
    std::string toJson(const std::string &metadata_json = "") const;

    /** Write toJson() to @p os. */
    void writeJson(std::ostream &os,
                   const std::string &metadata_json = "") const;

    /** Write toJson() to file @p path; FatalError when unwritable. */
    void writeJsonFile(const std::string &path,
                       const std::string &metadata_json = "") const;

    /** Drop all collected events. */
    void clear() { log.clear(); }

  private:
    void push(TraceEvent ev);

    bool on = false;
    Clock clock;
    std::uint32_t track = 0;
    std::vector<TraceEvent> log;
};

/**
 * RAII scope: emits one complete ('X') event covering the scope's
 * virtual-time extent. Construction on a disabled tracer costs one
 * branch and the destructor is free.
 *
 * @code
 *   void Autoscaler::decide() {
 *       obs::TraceScope scope(tracer, "decide", "autoscale");
 *       ...
 *   }
 * @endcode
 */
class TraceScope
{
  public:
    TraceScope(EventTracer &tracer_in, std::string name_in,
               std::string cat_in = "scope")
        : tracer(tracer_in.enabled() ? &tracer_in : nullptr)
    {
        if (tracer) {
            name = std::move(name_in);
            cat = std::move(cat_in);
            begin = tracer->now();
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    ~TraceScope()
    {
        if (tracer)
            tracer->complete(name, cat, begin, tracer->now());
    }

  private:
    EventTracer *tracer;
    std::string name;
    std::string cat;
    Seconds begin = 0.0;
};

/**
 * sim::KernelHooks adapter: traces every kernel event execution as an
 * instant event (args: event id) and tracks the live pending-event
 * count as a counter series. Attaches itself to the simulation on
 * construction and detaches on destruction.
 *
 * The tracer is enabled with the simulation's clock if it was not
 * enabled already, so `KernelTracer kt(tracer, sim);` is all a bench
 * needs before running.
 */
class KernelTracer : public sim::KernelHooks
{
  public:
    /**
     * @param tracer_in Destination tracer (enabled onto @p sim's clock
     *                  when not already enabled).
     * @param sim_in    Kernel to observe; must outlive this object.
     */
    KernelTracer(EventTracer &tracer_in, sim::Simulation &sim_in);

    ~KernelTracer() override;

    KernelTracer(const KernelTracer &) = delete;
    KernelTracer &operator=(const KernelTracer &) = delete;

    void onSchedule(sim::EventId id, Seconds t, Seconds period) override;
    void onCancel(sim::EventId id) override;
    void onFire(sim::EventId id, Seconds t) override;

  private:
    EventTracer &tracer;
    sim::Simulation &sim;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_TRACE_HH
