/**
 * @file
 * Run provenance: obs::RunManifest records which build produced an
 * artifact (git SHA + dirty flag from the configure-time version
 * header, compiler, build type) and how it was invoked (root seed,
 * worker count, full argv, wall-clock start). Every machine-readable
 * artifact a bench writes — RunReport JSON, merged telemetry CSV,
 * Chrome traces, profiler dumps, BENCH_hotpaths.json — embeds the
 * same manifest so a finished sweep can be traced back to the exact
 * build and command that produced it.
 *
 * The manifest is ordered (key, value) string pairs, so embedding it
 * is a one-liner for any format: a JSON object of strings, or
 * `# key: value` comment lines atop a CSV.
 */

#ifndef IMSIM_OBS_MANIFEST_HH
#define IMSIM_OBS_MANIFEST_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace imsim {
namespace util {
class Cli;
} // namespace util

namespace obs {

/**
 * Provenance record of one binary invocation.
 *
 * Keys (in order): git_sha, git_dirty, compiler, build_type, seed,
 * jobs, argv, started_at (ISO 8601 UTC, wall clock). All values are
 * strings; the wall-clock field is the only one that differs between
 * two otherwise-identical runs.
 */
class RunManifest
{
  public:
    /**
     * Capture the manifest for this invocation: build constants from
     * the generated version header, @p seed and @p jobs from the
     * run's configuration, argv from @p cli, and the current wall
     * clock.
     */
    static RunManifest capture(const util::Cli &cli, std::uint64_t seed,
                               std::size_t jobs);

    /** @return the ordered (key, value) fields. */
    const std::vector<std::pair<std::string, std::string>> &
    entries() const
    {
        return fields;
    }

    /** @return value of @p key, or "" when absent. */
    std::string get(const std::string &key) const;

    /** @return the fields as one JSON object, e.g. {"git_sha": ...}. */
    std::string toJsonObject() const;

    /** Write the fields as `# key: value` CSV comment lines. */
    void writeCsvComments(std::ostream &os) const;

    /** Append one (key, value) field (kept for tests/extensions). */
    void set(const std::string &key, const std::string &value);

  private:
    std::vector<std::pair<std::string, std::string>> fields;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_MANIFEST_HH
