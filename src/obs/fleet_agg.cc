#include "obs/fleet_agg.hh"

#include <limits>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace imsim {
namespace obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

const char *
fleetChannelName(FleetChannel channel)
{
    switch (channel) {
      case kChanTj:
        return "tj";
      case kChanPower:
        return "power";
      case kChanUtilization:
        return "util";
      case kChanWearRate:
        return "wear_rate";
      default:
        return "unknown";
    }
}

FleetAggregator::FleetAggregator() : FleetAggregator(Config{}) {}

FleetAggregator::FleetAggregator(Config config) : cfg(config)
{
    util::fatalIf(cfg.skuCount == 0, "FleetAggregator: skuCount must be > 0");
    util::fatalIf(cfg.sketchBins == 0,
            "FleetAggregator: sketchBins must be > 0");

    const std::size_t cells = cfg.skuCount * kFleetChannels;
    accums.resize(cells);
    sketches.reserve(cells);
    overallSketches.reserve(kFleetChannels);
    cumulativeSketches.reserve(kFleetChannels);
    for (std::size_t sku = 0; sku < cfg.skuCount; ++sku) {
        for (std::size_t ch = 0; ch < kFleetChannels; ++ch) {
            double lo = 0.0;
            double hi = 1.0;
            switch (static_cast<FleetChannel>(ch)) {
              case kChanTj:
                lo = cfg.tjLo;
                hi = cfg.tjHi;
                break;
              case kChanPower:
                lo = cfg.powerLo;
                hi = cfg.powerHi;
                break;
              case kChanUtilization:
                lo = cfg.utilLo;
                hi = cfg.utilHi;
                break;
              case kChanWearRate:
                lo = cfg.wearRateLo;
                hi = cfg.wearRateHi;
                break;
              default:
                break;
            }
            util::QuantileSketch sketch =
                util::QuantileSketch::linear(lo, hi, cfg.sketchBins);
            if (sku == 0) {
                overallSketches.push_back(sketch);
                cumulativeSketches.push_back(sketch);
            }
            sketches.push_back(std::move(sketch));
        }
    }

    current.perSku.resize(cells);
    published.perSku.resize(cells);

    if (cfg.record) {
        std::vector<std::string> columns;
        columns.push_back("fleet.units");
        columns.push_back("fleet.power_w");
        static const char *const kStatNames[] = {"min", "mean", "max",
                                                 "p50", "p95", "p99"};
        for (std::size_t ch = 0; ch < kFleetChannels; ++ch) {
            const std::string base =
                std::string("fleet.") +
                fleetChannelName(static_cast<FleetChannel>(ch));
            for (const char *stat : kStatNames)
                columns.push_back(base + "." + stat);
        }
        recorded.setColumns(columns);
        rowScratch.reserve(columns.size());
    }
}

void
FleetAggregator::observe(Seconds t, const FleetView &view, Seconds dt)
{
    const std::size_t n = view.count;

    // Wear rate: finite-difference of the wear column against the
    // previous tick, in consumed-life-per-year. The first tick (or a
    // fleet resize) has no baseline and reports 0 for every unit.
    const double dt_years =
        dt > 0.0 ? dt / (units::kSecondsPerHour * units::kHoursPerYear)
                 : 0.0;
    const bool have_wear = view.wearConsumed != nullptr && n > 0;
    if (have_wear) {
        if (prevWear.size() != n) {
            prevWear.assign(view.wearConsumed, view.wearConsumed + n);
            wearRateScratch.assign(n, 0.0);
        } else {
            const double inv_years =
                dt_years > 0.0 ? 1.0 / dt_years : 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                wearRateScratch[i] =
                    (view.wearConsumed[i] - prevWear[i]) * inv_years;
                prevWear[i] = view.wearConsumed[i];
            }
        }
    }

    // Reset per-tick scratch (geometry retained: allocation-free).
    for (Accum &acc : accums)
        acc = Accum{kInf, -kInf, 0.0, 0};
    for (util::QuantileSketch &sketch : sketches)
        sketch.reset();

    // The single per-unit reduction pass.
    const std::size_t sku_count = cfg.skuCount;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t sku = view.sku ? view.sku[i] : 0;
        util::fatalIf(sku >= sku_count,
                "FleetAggregator::observe: sku out of range");
        const std::size_t base = sku * kFleetChannels;
        const double values[kFleetChannels] = {
            view.tj ? view.tj[i] : 0.0,
            view.totalPower ? view.totalPower[i] : 0.0,
            view.utilization ? view.utilization[i] : 0.0,
            have_wear ? wearRateScratch[i] : 0.0,
        };
        for (std::size_t ch = 0; ch < kFleetChannels; ++ch) {
            const double v = values[ch];
            Accum &acc = accums[base + ch];
            acc.min = v < acc.min ? v : acc.min;
            acc.max = v > acc.max ? v : acc.max;
            acc.sum += v;
            ++acc.n;
            sketches[base + ch].add(v);
        }
    }

    finishTick(t);
}

void
FleetAggregator::observe(Seconds t, const FleetView &view, Seconds dt,
                         const util::ShardPlan &plan,
                         util::ShardRunner &runner)
{
    const std::size_t n = view.count;
    util::fatalIf(plan.units() != n,
                  "FleetAggregator::observe: plan does not cover the view");

    // (Re)build the shard-private sketch scratch when the plan shape
    // changes; geometry clones of the per-SKU sketches. Stable plans
    // (the minute loop's case) hit this once.
    const std::size_t cells = cfg.skuCount * kFleetChannels;
    const std::size_t shards = plan.shards();
    if (shardSketches.size() != shards * cells) {
        shardSketches.clear();
        shardSketches.reserve(shards * cells);
        for (std::size_t s = 0; s < shards; ++s)
            for (std::size_t cell = 0; cell < cells; ++cell)
                shardSketches.push_back(sketches[cell]);
    }

    // Wear-rate scratch sizing stays serial (it allocates on the first
    // tick / fleet resize); the per-unit fills run inside the shards.
    const double dt_years =
        dt > 0.0 ? dt / (units::kSecondsPerHour * units::kHoursPerYear)
                 : 0.0;
    const bool have_wear = view.wearConsumed != nullptr && n > 0;
    bool first_wear_tick = false;
    if (have_wear && prevWear.size() != n) {
        prevWear.resize(n);
        wearRateScratch.resize(n);
        first_wear_tick = true;
    }
    const double inv_years = dt_years > 0.0 ? 1.0 / dt_years : 0.0;

    for (Accum &acc : accums)
        acc = Accum{kInf, -kInf, 0.0, 0};
    for (util::QuantileSketch &sketch : sketches)
        sketch.reset();

    // Validate the sku column on the caller's thread: a fatal inside
    // the parallel body would unwind through a pool worker instead of
    // reaching the caller.
    const std::size_t sku_count = cfg.skuCount;
    if (view.sku != nullptr) {
        for (std::size_t i = 0; i < n; ++i)
            util::fatalIf(view.sku[i] >= sku_count,
                          "FleetAggregator::observe: sku out of range");
    }

    // Parallel phase: wear-rate fills (elementwise) and sketch fills
    // (shard-private bins). Nothing here is FP-order-sensitive.
    runner.run(plan, [&](std::size_t s, std::size_t begin,
                         std::size_t end) {
        if (have_wear) {
            if (first_wear_tick) {
                for (std::size_t i = begin; i < end; ++i) {
                    wearRateScratch[i] = 0.0;
                    prevWear[i] = view.wearConsumed[i];
                }
            } else {
                for (std::size_t i = begin; i < end; ++i) {
                    wearRateScratch[i] =
                        (view.wearConsumed[i] - prevWear[i]) * inv_years;
                    prevWear[i] = view.wearConsumed[i];
                }
            }
        }
        util::QuantileSketch *mine = &shardSketches[s * cells];
        for (std::size_t cell = 0; cell < cells; ++cell)
            mine[cell].reset();
        for (std::size_t i = begin; i < end; ++i) {
            const std::uint32_t sku = view.sku ? view.sku[i] : 0;
            const std::size_t base = sku * kFleetChannels;
            const double values[kFleetChannels] = {
                view.tj ? view.tj[i] : 0.0,
                view.totalPower ? view.totalPower[i] : 0.0,
                view.utilization ? view.utilization[i] : 0.0,
                have_wear ? wearRateScratch[i] : 0.0,
            };
            for (std::size_t ch = 0; ch < kFleetChannels; ++ch)
                mine[base + ch].add(values[ch]);
        }
    });

    // Deterministic reduction. The min/max/sum accumulators are the
    // FP-order-sensitive part, so they run serially in unit order —
    // the exact loop (minus sketch fills) the serial observe() runs.
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t sku = view.sku ? view.sku[i] : 0;
        const std::size_t base = sku * kFleetChannels;
        const double values[kFleetChannels] = {
            view.tj ? view.tj[i] : 0.0,
            view.totalPower ? view.totalPower[i] : 0.0,
            view.utilization ? view.utilization[i] : 0.0,
            have_wear ? wearRateScratch[i] : 0.0,
        };
        for (std::size_t ch = 0; ch < kFleetChannels; ++ch) {
            const double v = values[ch];
            Accum &acc = accums[base + ch];
            acc.min = v < acc.min ? v : acc.min;
            acc.max = v > acc.max ? v : acc.max;
            acc.sum += v;
            ++acc.n;
        }
    }
    // Shard sketches merge in ascending shard order; bin counts are
    // integers, so the merged counts equal the serial fill exactly.
    for (std::size_t s = 0; s < shards; ++s)
        for (std::size_t cell = 0; cell < cells; ++cell)
            sketches[cell].merge(shardSketches[s * cells + cell]);

    finishTick(t);
}

/**
 * Shared epilogue of both observe() paths: fold the per-(SKU, channel)
 * accumulators and sketches into the current sample, advance the tick
 * count, update the cumulative sketches, record the series row, and
 * publish for cross-thread snapshot() readers.
 */
void
FleetAggregator::finishTick(Seconds t)
{
    reduceInto(current, t);
    ++tickCount;

    if (cfg.cumulative) {
        for (std::size_t ch = 0; ch < kFleetChannels; ++ch)
            cumulativeSketches[ch].merge(overallSketches[ch]);
    }

    if (cfg.record) {
        rowScratch.clear();
        rowScratch.push_back(static_cast<double>(current.units));
        rowScratch.push_back(current.fleetPower);
        for (std::size_t ch = 0; ch < kFleetChannels; ++ch) {
            const ChannelStats &stats = current.overall[ch];
            rowScratch.push_back(stats.min);
            rowScratch.push_back(stats.mean);
            rowScratch.push_back(stats.max);
            rowScratch.push_back(stats.p50);
            rowScratch.push_back(stats.p95);
            rowScratch.push_back(stats.p99);
        }
        recorded.append(t, rowScratch);
    }

    // Publish for cross-thread snapshot() readers. The published
    // sample's perSku vector keeps its size, so the assignment reuses
    // its storage.
    {
        std::lock_guard<std::mutex> lock(publishMutex);
        published.t = current.t;
        published.units = current.units;
        published.fleetPower = current.fleetPower;
        for (std::size_t ch = 0; ch < kFleetChannels; ++ch)
            published.overall[ch] = current.overall[ch];
        published.perSku = current.perSku;
    }
}

void
FleetAggregator::finishChannel(ChannelStats &stats, const Accum &acc,
                               const util::QuantileSketch &sketch)
{
    stats.count = acc.n;
    if (acc.n == 0) {
        stats.min = stats.mean = stats.max = 0.0;
        stats.p50 = stats.p95 = stats.p99 = 0.0;
        return;
    }
    stats.min = acc.min;
    stats.max = acc.max;
    stats.mean = acc.sum / static_cast<double>(acc.n);
    stats.p50 = sketch.quantile(50.0);
    stats.p95 = sketch.quantile(95.0);
    stats.p99 = sketch.quantile(99.0);
}

void
FleetAggregator::reduceInto(FleetSample &sample, Seconds t)
{
    sample.t = t;

    for (std::size_t ch = 0; ch < kFleetChannels; ++ch) {
        // Overall = merge of the per-SKU accumulators and sketches
        // (the mergeable-sketch property: no second pass over units).
        Accum overall{kInf, -kInf, 0.0, 0};
        util::QuantileSketch &sketch = overallSketches[ch];
        sketch.reset();
        for (std::size_t sku = 0; sku < cfg.skuCount; ++sku) {
            const std::size_t cell = sku * kFleetChannels + ch;
            const Accum &acc = accums[cell];
            if (acc.n > 0) {
                overall.min = std::min(overall.min, acc.min);
                overall.max = std::max(overall.max, acc.max);
                overall.sum += acc.sum;
                overall.n += acc.n;
            }
            sketch.merge(sketches[cell]);
            finishChannel(sample.perSku[cell], acc, sketches[cell]);
        }
        finishChannel(sample.overall[ch], overall, sketch);
        if (ch == kChanPower) {
            sample.units = overall.n;
            sample.fleetPower = overall.sum;
        }
    }
}

FleetSample
FleetAggregator::snapshot() const
{
    std::lock_guard<std::mutex> lock(publishMutex);
    return published;
}

TimeSeries
FleetAggregator::takeSeries()
{
    TimeSeries out = std::move(recorded);
    recorded = TimeSeries(out.columns());
    return out;
}

const util::QuantileSketch &
FleetAggregator::cumulative(FleetChannel channel) const
{
    util::fatalIf(channel >= kFleetChannels,
            "FleetAggregator::cumulative: bad channel");
    return cumulativeSketches[channel];
}

void
FleetAggregator::attachMetrics(MetricRegistry &registry,
                               const std::string &prefix)
{
    // Polled on the sim thread (TelemetrySampler), so latest() reads
    // are safe without the publish lock.
    registry.registerGauge(prefix + ".units", [this] {
        return static_cast<double>(latest().units);
    });
    registry.registerGauge(prefix + ".power_w",
                           [this] { return latest().fleetPower; });
    registry.registerGauge(prefix + ".max_tj_c", [this] {
        return latest().overall[kChanTj].max;
    });
    registry.registerGauge(prefix + ".p99_tj_c", [this] {
        return latest().overall[kChanTj].p99;
    });
    registry.registerGauge(prefix + ".mean_util", [this] {
        return latest().overall[kChanUtilization].mean;
    });
    registry.registerGauge(prefix + ".p99_wear_rate", [this] {
        return latest().overall[kChanWearRate].p99;
    });
}

} // namespace obs
} // namespace imsim
