/**
 * @file
 * Leveled structured logging front-end, subsuming util::inform():
 * named loggers, trace/debug/info/warn levels against the process-wide
 * util::LogLevel threshold (set by `--log-level` / `--verbose` /
 * util::setVerbose), and pluggable sinks so tests and tools can
 * capture the stream instead of printing it.
 *
 * Disabled-path cost: one relaxed atomic load and a compare per call
 * site — message strings are only built when the level is enabled
 * (use `if (log.enabled(...))` around expensive formatting).
 *
 * Sink emission is serialised by a global mutex, so logging from
 * exp::SweepRunner workers is safe (and TSan-clean); the registered
 * sinks themselves must not re-enter the logger.
 */

#ifndef IMSIM_OBS_LOG_HH
#define IMSIM_OBS_LOG_HH

#include <cstddef>
#include <functional>
#include <string>

#include "util/logging.hh"

namespace imsim {
namespace obs {

/**
 * A named logging front-end. Cheap to construct and copy; the name
 * (usually a module, e.g. "autoscale") is prepended to every message.
 */
class Logger
{
  public:
    /**
     * A log-record consumer: (level, logger name, message). Invoked
     * under the global sink mutex, only for enabled levels.
     */
    using Sink = std::function<void(util::LogLevel,
                                    const std::string &logger,
                                    const std::string &msg)>;

    /** @param name_in Logger name shown in every record. */
    explicit Logger(std::string name_in = "") : loggerName(std::move(name_in))
    {}

    /** @return the logger name. */
    const std::string &name() const { return loggerName; }

    /** @return whether records at @p level currently reach the sinks. */
    bool enabled(util::LogLevel level) const
    {
        return util::logEnabled(level);
    }

    /** Emit @p msg at @p level (dropped when the level is disabled). */
    void log(util::LogLevel level, const std::string &msg) const;

    /** Emit at Trace level. */
    void trace(const std::string &msg) const
    {
        log(util::LogLevel::Trace, msg);
    }

    /** Emit at Debug level. */
    void debug(const std::string &msg) const
    {
        log(util::LogLevel::Debug, msg);
    }

    /** Emit at Info level. */
    void info(const std::string &msg) const
    {
        log(util::LogLevel::Info, msg);
    }

    /** Emit at Warn level. */
    void warn(const std::string &msg) const
    {
        log(util::LogLevel::Warn, msg);
    }

    /**
     * Register an additional sink. While any sink is registered the
     * default console sink is bypassed.
     */
    static void addSink(Sink sink);

    /** Drop all registered sinks (console output resumes). */
    static void clearSinks();

    /**
     * Duplicate suppression for alert storms: once the same
     * (level, logger, message) record has been emitted @p limit times
     * in a row, further repeats are swallowed and counted instead of
     * reaching the sinks. The count is surfaced as one
     * "suppressed N duplicates of: <msg>" record when a different
     * message arrives, flushDedup() is called, or suppression is
     * reconfigured. @p limit = 0 (the default) disables suppression.
     */
    static void setDedupLimit(std::size_t limit);

    /** Emit any pending suppressed-duplicates record now. */
    static void flushDedup();

  private:
    std::string loggerName;
};

} // namespace obs
} // namespace imsim

#endif // IMSIM_OBS_LOG_HH
