/**
 * @file
 * Umbrella header: pulls in the whole ImmerSim public API. Individual
 * module headers are preferred in library code; this is a convenience
 * for examples, experiments, and downstream prototyping.
 */

#ifndef IMSIM_IMSIM_HH
#define IMSIM_IMSIM_HH

// Foundation.
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/units.hh"

#include "sim/simulation.hh"

// Experiment engine (parallel sweeps + structured reports).
#include "exp/report.hh"
#include "exp/sweep.hh"

// Observability (metrics, telemetry time-series, tracing, logging).
#include "obs/obs.hh"

// Physical substrates.
#include "thermal/cooling.hh"
#include "thermal/environment.hh"
#include "thermal/fluid.hh"
#include "thermal/junction.hh"
#include "thermal/liquid_loops.hh"
#include "thermal/network.hh"
#include "thermal/tank.hh"
#include "thermal/weather.hh"

#include "power/capping.hh"
#include "power/dvfs.hh"
#include "power/facility.hh"
#include "power/server_power.hh"
#include "power/socket_power.hh"
#include "power/vf_curve.hh"

#include "reliability/calibration.hh"
#include "reliability/lifetime.hh"
#include "reliability/mechanisms.hh"
#include "reliability/stability.hh"

// Hardware.
#include "hw/configs.hh"
#include "hw/counters.hh"
#include "hw/cpu.hh"
#include "hw/gpu.hh"
#include "hw/turbo.hh"

// Workloads.
#include "workload/app.hh"
#include "workload/gpu_training.hh"
#include "workload/perf.hh"
#include "workload/queueing.hh"
#include "workload/stream.hh"
#include "workload/trace.hh"

// Virtualization and cluster.
#include "vm/hypervisor.hh"
#include "vm/provisioning.hh"
#include "vm/vm.hh"

#include "fleet/kernels.hh"
#include "fleet/state.hh"

#include "cluster/buffers.hh"
#include "cluster/capacity.hh"
#include "cluster/datacenter.hh"
#include "cluster/migration.hh"
#include "cluster/packing.hh"

// Control plane.
#include "autoscale/autoscaler.hh"
#include "autoscale/experiment.hh"
#include "autoscale/model.hh"
#include "autoscale/predictive.hh"

#include "tco/tco.hh"

#include "core/bottleneck.hh"
#include "core/controller.hh"
#include "core/credit.hh"
#include "core/gpu_planner.hh"
#include "core/sku.hh"
#include "core/usecases.hh"

#endif // IMSIM_IMSIM_HH
