/**
 * @file
 * Canned auto-scaling experiments (Sec. VI-D):
 *  - the model-validation run of Fig. 15 (scale-up/down only, 3 VMs,
 *    load steps 1000/2000/500/3000/1000 QPS every 5 minutes);
 *  - the full experiment of Fig. 16 / Table XI (start at 1 VM, load
 *    staircase 500 -> 4000 QPS in steps of 500 every 5 minutes, compare
 *    Baseline / OC-E / OC-A).
 */

#ifndef IMSIM_AUTOSCALE_EXPERIMENT_HH
#define IMSIM_AUTOSCALE_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "autoscale/autoscaler.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "util/units.hh"

namespace imsim {
namespace autoscale {

/**
 * Observability capture for one experiment run. Point
 * ExperimentParams::obs at one of these (one per run — the members
 * are not synchronised) and the run fills it in:
 *  - @ref registry holds the auto-scaler's counters and gauges;
 *  - @ref telemetry holds the periodic gauge/counter samples
 *    (period @ref telemetryPeriod, first sample at the scaler start);
 *  - @ref tracer holds scale/frequency instants on the virtual
 *    timeline, plus kernel events when @ref traceKernel is set.
 *
 * When the run returns, provider-backed gauges are frozen to their
 * final values (the scaler they poll is gone), so the capture is safe
 * to snapshot and merge afterwards.
 *
 * The capture adds sampling events to the simulation, so runs with a
 * capture attached execute more kernel events than runs without —
 * but the *model* trajectory (latencies, VM counts, power) is
 * unchanged, and captures from replicated runs are deterministic.
 */
struct ObsCapture
{
    obs::MetricRegistry registry;
    obs::TimeSeries telemetry;
    obs::EventTracer tracer;
    Seconds telemetryPeriod = 60.0; ///< Telemetry sampling period [s].
    bool traceKernel = false;       ///< Also trace raw kernel events.
};

/** Outcome of one full auto-scaling run (a Table XI row). */
struct AutoScaleOutcome
{
    Policy policy;
    double p95Latency = 0.0;   ///< [s].
    double meanLatency = 0.0;  ///< [s].
    std::size_t maxVms = 0;    ///< Peak simultaneous VMs.
    double vmHours = 0.0;      ///< VM-hours consumed.
    double avgFrequency = 0.0; ///< Time-average fleet frequency [GHz].
    double avgPowerPerVm = 0.0;///< Average per-VM power draw [W].
    std::uint64_t requests = 0;///< Requests completed.
    std::vector<TracePoint> trace;
};

/** Parameters shared by the canned experiments. */
struct ExperimentParams
{
    std::uint64_t seed = 42;
    Seconds stepDuration = 300.0;   ///< 5 minutes per load level.
    double kappa = 0.9;             ///< Client-Server scalable fraction.
    Seconds serviceMean = 2.6e-3;   ///< At 3.4 GHz.
    double serviceCv = 1.5;         ///< General service distribution.
    int threadsPerVm = 4;           ///< Client-Server needs 4 cores.
    std::size_t maxVms = 6;         ///< Deployment size cap (paper: 6).
    ObsCapture *obs = nullptr;      ///< Optional telemetry capture.
};

/**
 * Run the full auto-scaler experiment for one policy.
 *
 * @param policy  Baseline, OC-E, or OC-A.
 * @param params  Experiment parameters.
 */
AutoScaleOutcome runFullExperiment(Policy policy,
                                   const ExperimentParams &params = {});

/**
 * Run the Fig. 15 model-validation experiment: 3 VMs, scale-up/down only
 * (no scale-out/in), the paper's load sequence. When @p frequency_scaling
 * is false the run is the flat-frequency baseline curve of Fig. 15.
 */
AutoScaleOutcome runValidationExperiment(bool frequency_scaling,
                                         const ExperimentParams &params = {});

/**
 * Run a custom load schedule: @p qps_levels are applied in order, one
 * per @p params.stepDuration, starting from @p initial_vms server VMs.
 * The building block behind the canned experiments; exposed so users
 * can evaluate their own load shapes (down-ramps, spikes, diurnal).
 */
AutoScaleOutcome runCustomExperiment(Policy policy,
                                     const std::vector<double> &qps_levels,
                                     std::size_t initial_vms,
                                     const ExperimentParams &params = {},
                                     bool scale_out_enabled = true);

} // namespace autoscale
} // namespace imsim

#endif // IMSIM_AUTOSCALE_EXPERIMENT_HH
