#include "autoscale/autoscaler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace imsim {
namespace autoscale {

std::string
policyName(Policy policy)
{
    switch (policy) {
      case Policy::Baseline:
        return "Baseline";
      case Policy::OcE:
        return "OC-E";
      case Policy::OcA:
        return "OC-A";
    }
    util::panic("policyName: unhandled policy");
}

AutoScaler::AutoScaler(sim::Simulation &simulation,
                       workload::QueueingCluster &cluster_in,
                       AutoScalerConfig config)
    : sim(simulation), cluster(cluster_in), cfg(config),
      grid(config.baseFrequency, config.maxFrequency, config.frequencyBins),
      fleetFreq(config.baseFrequency)
{
    util::fatalIf(cfg.decisionPeriod <= 0.0,
                  "AutoScaler: decision period must be positive");
    util::fatalIf(cfg.minVms == 0, "AutoScaler: minVms must be >= 1");
    util::fatalIf(cfg.minVms > cfg.maxVms,
                  "AutoScaler: minVms exceeds maxVms");
    util::fatalIf(cfg.scaleInThreshold >= cfg.scaleOutThreshold,
                  "AutoScaler: scale-in threshold must be below scale-out");
}

void
AutoScaler::start()
{
    util::fatalIf(running, "AutoScaler::start: already running");
    running = true;
    startTime = sim.now();
    lastFreqChange = sim.now();
    loopEvent = sim.every(cfg.decisionPeriod, [this] { decide(); });
}

void
AutoScaler::stop()
{
    if (!running)
        return;
    sim.cancel(loopEvent);
    running = false;
}

void
AutoScaler::applyFrequency(GHz f)
{
    freqIntegral += fleetFreq * (sim.now() - lastFreqChange);
    lastFreqChange = sim.now();
    fleetFreq = f;
    cluster.setAllFrequencies(f);
}

double
AutoScaler::averageFrequency() const
{
    const Seconds elapsed = sim.now() - startTime;
    if (elapsed <= 0.0)
        return fleetFreq;
    const double integral =
        freqIntegral + fleetFreq * (sim.now() - lastFreqChange);
    return integral / elapsed;
}

double
AutoScaler::measureScalableFraction()
{
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t id = 0; id < cluster.serverCount(); ++id) {
        if (!cluster.isActive(id))
            continue;
        const hw::CounterSample now_sample = cluster.counters(id);
        const auto it = lastCounters.find(id);
        if (it != lastCounters.end()) {
            total += now_sample.scalableFraction(it->second);
            ++counted;
        }
        lastCounters[id] = now_sample;
    }
    // Before first deltas exist, assume fully scalable work.
    return counted ? total / static_cast<double>(counted) : 1.0;
}

void
AutoScaler::triggerScaleOut()
{
    scaleOutPending = true;
    ++scaleOutCount;
    sim.after(cfg.scaleOutLatency, [this] {
        cluster.addServer(fleetFreq);
        scaleOutPending = false;
        if (cfg.policy == Policy::OcE) {
            // Fig. 8(a): the scale-out completed; drop back to base.
            applyFrequency(cfg.baseFrequency);
        }
    });
}

void
AutoScaler::decide()
{
    const Seconds now = sim.now();
    const double util_short =
        cluster.fleetUtilization(cfg.shortWindow);
    const double util_long = cluster.fleetUtilization(cfg.longWindow);
    const double p_over_a = measureScalableFraction();
    const std::size_t vms = cluster.activeServers();

    // --- Scale-up/down (OC-A only): every tick, pick the minimum
    // sufficient frequency for the short-window utilization.
    if (cfg.policy == Policy::OcA) {
        if (util_short > cfg.scaleUpThreshold) {
            const GHz f = minimumSufficientFrequency(
                grid, util_short, p_over_a, fleetFreq,
                cfg.scaleUpThreshold);
            if (f > fleetFreq + 1e-9)
                applyFrequency(f);
        } else if (util_short < cfg.scaleDownThreshold &&
                   fleetFreq > cfg.baseFrequency + 1e-9) {
            // Load dropped: lowest frequency that still keeps the
            // predicted utilization under the scale-up threshold.
            const GHz f = minimumSufficientFrequency(
                grid, util_short, p_over_a, fleetFreq,
                cfg.scaleUpThreshold);
            if (f < fleetFreq - 1e-9)
                applyFrequency(f);
        }
    }

    // --- Scale-out/in on the long window, one VM at a time.
    if (cfg.scaleOutEnabled && !scaleOutPending) {
        if (util_long > cfg.scaleOutThreshold && vms < cfg.maxVms) {
            if (cfg.policy == Policy::OcE)
                applyFrequency(cfg.maxFrequency); // Hide the latency.
            triggerScaleOut();
        } else if (util_long < cfg.scaleInThreshold && vms > cfg.minVms) {
            cluster.removeServer();
            ++scaleInCount;
            if (cfg.policy == Policy::OcA &&
                fleetFreq > cfg.baseFrequency + 1e-9) {
                applyFrequency(cfg.baseFrequency);
            }
        }
    }

    traceLog.push_back(TracePoint{now, util_short, util_long, fleetFreq,
                                  cluster.activeServers(),
                                  scaleOutPending});
}

} // namespace autoscale
} // namespace imsim
