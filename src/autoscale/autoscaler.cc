#include "autoscale/autoscaler.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace imsim {
namespace autoscale {

std::string
policyName(Policy policy)
{
    switch (policy) {
      case Policy::Baseline:
        return "Baseline";
      case Policy::OcE:
        return "OC-E";
      case Policy::OcA:
        return "OC-A";
    }
    util::panic("policyName: unhandled policy");
}

AutoScaler::AutoScaler(sim::Simulation &simulation,
                       workload::QueueingCluster &cluster_in,
                       AutoScalerConfig config)
    : sim(simulation), cluster(cluster_in), cfg(config),
      grid(config.baseFrequency, config.maxFrequency, config.frequencyBins),
      fleetFreq(config.baseFrequency), freqCeiling(config.maxFrequency)
{
    util::fatalIf(cfg.decisionPeriod <= 0.0,
                  "AutoScaler: decision period must be positive");
    util::fatalIf(cfg.minVms == 0, "AutoScaler: minVms must be >= 1");
    util::fatalIf(cfg.minVms > cfg.maxVms,
                  "AutoScaler: minVms exceeds maxVms");
    util::fatalIf(cfg.scaleInThreshold >= cfg.scaleOutThreshold,
                  "AutoScaler: scale-in threshold must be below scale-out");
}

void
AutoScaler::attachTelemetry(obs::MetricRegistry *registry,
                            obs::EventTracer *tracer_in)
{
    util::fatalIf(running,
                  "AutoScaler::attachTelemetry: call before start()");
    tracer = tracer_in;
    if (!registry)
        return;
    scaleOutMetric = &registry->counter("autoscaler.scale_outs");
    scaleInMetric = &registry->counter("autoscaler.scale_ins");
    freqChangeMetric = &registry->counter("autoscaler.freq_changes");
    registry->registerGauge("autoscaler.vms", [this] {
        return static_cast<double>(cluster.activeServers());
    });
    registry->registerGauge("autoscaler.frequency_ghz",
                            [this] { return fleetFreq; });
    registry->registerGauge("autoscaler.util30", [this] {
        return cluster.fleetUtilization(cfg.shortWindow);
    });
    registry->registerGauge("autoscaler.util180", [this] {
        return cluster.fleetUtilization(cfg.longWindow);
    });
    registry->registerGauge("autoscaler.queue_depth", [this] {
        return static_cast<double>(cluster.queueDepth());
    });
}

void
AutoScaler::start()
{
    util::fatalIf(running, "AutoScaler::start: already running");
    running = true;
    startTime = sim.now();
    lastFreqChange = sim.now();
    loopEvent = sim.every(cfg.decisionPeriod, [this] { decide(); });
}

void
AutoScaler::stop()
{
    if (!running)
        return;
    sim.cancel(loopEvent);
    running = false;
}

void
AutoScaler::setFrequencyCeiling(GHz f)
{
    util::fatalIf(f < cfg.baseFrequency - 1e-9,
                  "AutoScaler::setFrequencyCeiling: ceiling below base "
                  "frequency");
    freqCeiling = std::min(f, cfg.maxFrequency);
    if (fleetFreq > freqCeiling + 1e-9)
        applyFrequency(freqCeiling);
}

void
AutoScaler::applyFrequency(GHz f)
{
    f = std::min(f, freqCeiling);
    if (f == fleetFreq)
        return;
    freqIntegral += fleetFreq * (sim.now() - lastFreqChange);
    lastFreqChange = sim.now();
    fleetFreq = f;
    cluster.setAllFrequencies(f);
    if (freqChangeMetric)
        freqChangeMetric->inc();
    if (tracer) {
        tracer->instantAt("freq_change", "autoscale", sim.now(),
                          {{"ghz", f}});
    }
    if (log.enabled(util::LogLevel::Debug)) {
        log.debug("t=" + std::to_string(sim.now()) + " fleet frequency -> " +
                  std::to_string(f) + " GHz");
    }
}

double
AutoScaler::averageFrequency() const
{
    const Seconds elapsed = sim.now() - startTime;
    if (elapsed <= 0.0)
        return fleetFreq;
    const double integral =
        freqIntegral + fleetFreq * (sim.now() - lastFreqChange);
    return integral / elapsed;
}

double
AutoScaler::measureScalableFraction()
{
    // Prune baselines of servers that left the fleet (scale-in, crash):
    // a stale entry would make the first delta after a re-activation
    // span the inactive gap, and churn would grow the map unboundedly.
    for (auto it = lastCounters.begin(); it != lastCounters.end();) {
        if (it->first >= cluster.serverCount() ||
            !cluster.isActive(it->first)) {
            it = lastCounters.erase(it);
        } else {
            ++it;
        }
    }
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t id = 0; id < cluster.serverCount(); ++id) {
        if (!cluster.isActive(id))
            continue;
        const hw::CounterSample now_sample = cluster.counters(id);
        const auto it = lastCounters.find(id);
        if (it != lastCounters.end()) {
            total += now_sample.scalableFraction(it->second);
            ++counted;
        }
        lastCounters[id] = now_sample;
    }
    // Before first deltas exist, assume fully scalable work.
    return counted ? total / static_cast<double>(counted) : 1.0;
}

void
AutoScaler::invalidateServerCounters(std::size_t id)
{
    lastCounters.erase(id);
}

void
AutoScaler::triggerScaleOut()
{
    scaleOutPending = true;
    ++scaleOutCount;
    if (scaleOutMetric)
        scaleOutMetric->inc();
    if (tracer) {
        tracer->instantAt(
            "scale_out", "autoscale", sim.now(),
            {{"vms", static_cast<double>(cluster.activeServers())}});
    }
    if (log.enabled(util::LogLevel::Debug)) {
        log.debug("t=" + std::to_string(sim.now()) + " scale-out from " +
                  std::to_string(cluster.activeServers()) + " VMs");
    }
    sim.after(cfg.scaleOutLatency, [this] {
        cluster.addServer(fleetFreq);
        scaleOutPending = false;
        if (cfg.policy == Policy::OcE) {
            // Fig. 8(a): the scale-out completed; drop back to base.
            applyFrequency(cfg.baseFrequency);
        }
    });
}

void
AutoScaler::decide()
{
    obs::ProfScope prof("autoscale.decide");
    const Seconds now = sim.now();
    const double util_short =
        cluster.fleetUtilization(cfg.shortWindow);
    const double util_long = cluster.fleetUtilization(cfg.longWindow);
    const double p_over_a = measureScalableFraction();
    const std::size_t vms = cluster.activeServers();

    // --- Scale-up/down (OC-A only): every tick, pick the minimum
    // sufficient frequency for the short-window utilization.
    if (cfg.policy == Policy::OcA) {
        if (util_short > cfg.scaleUpThreshold) {
            const GHz f = minimumSufficientFrequency(
                grid, util_short, p_over_a, fleetFreq,
                cfg.scaleUpThreshold);
            if (f > fleetFreq + 1e-9)
                applyFrequency(f);
        } else if (util_short < cfg.scaleDownThreshold &&
                   fleetFreq > cfg.baseFrequency + 1e-9) {
            // Load dropped: lowest frequency that still keeps the
            // predicted utilization under the scale-up threshold.
            const GHz f = minimumSufficientFrequency(
                grid, util_short, p_over_a, fleetFreq,
                cfg.scaleUpThreshold);
            if (f < fleetFreq - 1e-9)
                applyFrequency(f);
        }
    }

    // --- Scale-out/in on the long window, one VM at a time.
    if (cfg.scaleOutEnabled && !scaleOutPending) {
        if (util_long > cfg.scaleOutThreshold && vms < cfg.maxVms) {
            if (cfg.policy == Policy::OcE)
                applyFrequency(cfg.maxFrequency); // Hide the latency.
            triggerScaleOut();
        } else if (util_long < cfg.scaleInThreshold && vms > cfg.minVms) {
            cluster.removeServer();
            ++scaleInCount;
            if (scaleInMetric)
                scaleInMetric->inc();
            if (tracer) {
                tracer->instantAt(
                    "scale_in", "autoscale", now,
                    {{"vms",
                      static_cast<double>(cluster.activeServers())}});
            }
            if (log.enabled(util::LogLevel::Debug)) {
                log.debug("t=" + std::to_string(now) + " scale-in to " +
                          std::to_string(cluster.activeServers()) +
                          " VMs");
            }
            if (cfg.policy == Policy::OcA &&
                fleetFreq > cfg.baseFrequency + 1e-9) {
                applyFrequency(cfg.baseFrequency);
            }
        }
    }

    traceLog.push_back(TracePoint{now, util_short, util_long, fleetFreq,
                                  cluster.activeServers(),
                                  scaleOutPending});
}

} // namespace autoscale
} // namespace imsim
