/**
 * @file
 * The overclocking-enhanced auto-scaler (ASC) of Fig. 14 and Sec. VI-D.
 *
 * Every 3 seconds the ASC reads telemetry (Aperf, Pperf, utilization)
 * from the server VMs and decides:
 *  - scale-out/in on the 3-minute average utilization (thresholds 50 % /
 *    20 %), one VM at a time, with a 60 s VM-creation latency;
 *  - scale-up/down on the 30-second average utilization (thresholds 40 % /
 *    20 %) by picking the minimum sufficient frequency from 8 bins in
 *    [3.4, 4.1] GHz via Eq. 1.
 *
 * Three policies are supported:
 *  - Baseline: scale-out/in only, frequency pinned at B2 (3.4 GHz);
 *  - OC-E: overclock to the maximum while a scale-out is in flight,
 *    hiding the creation latency (Fig. 8a);
 *  - OC-A: scale up first to postpone/avoid scale-out ("scale up and
 *    then out", Fig. 8b).
 */

#ifndef IMSIM_AUTOSCALE_AUTOSCALER_HH
#define IMSIM_AUTOSCALE_AUTOSCALER_HH

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "autoscale/model.hh"
#include "hw/counters.hh"
#include "obs/log.hh"
#include "sim/simulation.hh"
#include "workload/queueing.hh"

namespace imsim {

namespace obs {
class Counter;
class EventTracer;
class MetricRegistry;
} // namespace obs

namespace autoscale {

/** Auto-scaler policy (Table XI rows). */
enum class Policy
{
    Baseline, ///< Scale-out/in only.
    OcE,      ///< Overclock while scaling out.
    OcA,      ///< Overclock before scaling out ("scale up then out").
};

/** @return a printable policy name. */
std::string policyName(Policy policy);

/** Auto-scaler configuration (defaults follow Sec. VI-D exactly). */
struct AutoScalerConfig
{
    Policy policy = Policy::Baseline;
    double scaleOutThreshold = 0.50; ///< On the 3-minute window.
    double scaleInThreshold = 0.20;  ///< On the 3-minute window.
    double scaleUpThreshold = 0.40;  ///< On the 30-second window.
    double scaleDownThreshold = 0.20;///< On the 30-second window.
    Seconds longWindow = 180.0;      ///< Scale-out/in window.
    Seconds shortWindow = 30.0;      ///< Scale-up/down window.
    Seconds decisionPeriod = 3.0;    ///< Decision loop period.
    Seconds scaleOutLatency = 60.0;  ///< VM creation latency.
    GHz baseFrequency = 3.4;         ///< B2.
    GHz maxFrequency = 4.1;          ///< OC1.
    int frequencyBins = 8;           ///< Bins between base and max.
    std::size_t minVms = 1;
    std::size_t maxVms = 16;
    bool scaleOutEnabled = true;     ///< Fig. 15 validation disables this.
};

/** One decision-tick trace sample (Figs. 15 and 16). */
struct TracePoint
{
    Seconds time;
    double util30;    ///< 30 s average utilization.
    double util180;   ///< 3 min average utilization.
    GHz frequency;    ///< Fleet frequency after the decision.
    std::size_t vms;  ///< Active VMs.
    bool scaleOutPending;
};

/**
 * The auto-scaler, driving a QueueingCluster on a Simulation.
 */
class AutoScaler
{
  public:
    /**
     * @param simulation Event kernel.
     * @param cluster    Cluster of server VMs to manage.
     * @param config     Policy and thresholds.
     */
    AutoScaler(sim::Simulation &simulation,
               workload::QueueingCluster &cluster, AutoScalerConfig config);

    /**
     * Attach observability. Either pointer may be null.
     *
     * With a registry, registers counters `autoscaler.scale_outs`,
     * `autoscaler.scale_ins`, `autoscaler.freq_changes` and gauges
     * `autoscaler.vms`, `autoscaler.frequency_ghz`,
     * `autoscaler.util30`, `autoscaler.util180`,
     * `autoscaler.queue_depth` (polled from the cluster, so a
     * TelemetrySampler sees live values). With a tracer, emits
     * instant events for scale-out/in and frequency changes. Both
     * must outlive the scaler. Call before start().
     */
    void attachTelemetry(obs::MetricRegistry *registry,
                         obs::EventTracer *tracer);

    /** Arm the decision loop (first decision after one period). */
    void start();

    /** Stop the decision loop. */
    void stop();

    /** @return the recorded decision trace. */
    const std::vector<TracePoint> &trace() const { return traceLog; }

    /** @return scale-out invocations issued. */
    std::size_t scaleOuts() const { return scaleOutCount; }

    /** @return scale-in invocations issued. */
    std::size_t scaleIns() const { return scaleInCount; }

    /** @return current fleet frequency [GHz]. */
    GHz fleetFrequency() const { return fleetFreq; }

    /** @return the configuration. */
    const AutoScalerConfig &config() const { return cfg; }

    /**
     * Time-average fleet frequency since start [GHz], for power
     * accounting.
     */
    double averageFrequency() const;

    /**
     * Fleet-average dPperf/dAperf since the previous measurement.
     *
     * Reads and advances the per-server counter deltas (the decision
     * loop calls this every tick); entries belonging to servers that
     * are no longer active are pruned, so the tracked set never grows
     * past the live fleet. Returns 1.0 (fully scalable) before first
     * deltas exist.
     */
    double measureScalableFraction();

    /**
     * Drop the stored counter baseline for server @p id. Called on
     * scale-in, and by fault injection when a server crashes — a
     * repaired server would otherwise have its first Aperf/Pperf delta
     * span the dead gap and skew the scalable fraction.
     */
    void invalidateServerCounters(std::size_t id);

    /** @return servers with a stored counter baseline (observability). */
    std::size_t trackedCounterServers() const { return lastCounters.size(); }

    /**
     * Cap the frequency the scaler may run the fleet at (cooling
     * degradation derates through this; see fault::FaultInjector). If
     * the fleet currently runs above the new ceiling it is brought
     * down immediately. Resetting to config().maxFrequency lifts the
     * derate.
     */
    void setFrequencyCeiling(GHz f);

    /** @return the active frequency ceiling [GHz]. */
    GHz frequencyCeiling() const { return freqCeiling; }

  private:
    void decide();
    void triggerScaleOut();
    void applyFrequency(GHz f);

    sim::Simulation &sim;
    workload::QueueingCluster &cluster;
    AutoScalerConfig cfg;
    FrequencyGrid grid;
    sim::EventId loopEvent = 0;
    bool running = false;
    bool scaleOutPending = false;
    GHz fleetFreq;
    GHz freqCeiling;
    std::vector<TracePoint> traceLog;
    std::size_t scaleOutCount = 0;
    std::size_t scaleInCount = 0;
    std::unordered_map<std::size_t, hw::CounterSample> lastCounters;
    double freqIntegral = 0.0;
    Seconds lastFreqChange = 0.0;
    Seconds startTime = 0.0;

    obs::Logger log{"autoscaler"};
    obs::EventTracer *tracer = nullptr;
    obs::Counter *scaleOutMetric = nullptr;
    obs::Counter *scaleInMetric = nullptr;
    obs::Counter *freqChangeMetric = nullptr;
};

} // namespace autoscale
} // namespace imsim

#endif // IMSIM_AUTOSCALE_AUTOSCALER_HH
