/**
 * @file
 * Frequency-selection model of the overclocking-enhanced auto-scaler
 * (Sec. VI-D): given the current utilization, the Aperf/Pperf scalable
 * fraction, and a discrete frequency grid, find the minimum frequency
 * whose Eq. 1-predicted utilization lands below a target threshold.
 */

#ifndef IMSIM_AUTOSCALE_MODEL_HH
#define IMSIM_AUTOSCALE_MODEL_HH

#include <vector>

#include "hw/counters.hh"
#include "util/units.hh"

namespace imsim {
namespace autoscale {

/**
 * Discrete frequency grid the scale-up/down knob moves on: the paper
 * divides [3.4 GHz (B2), 4.1 GHz (OC1)] into 8 bins.
 */
class FrequencyGrid
{
  public:
    /**
     * @param f_lo  Lowest frequency [GHz].
     * @param f_hi  Highest frequency [GHz].
     * @param bins  Number of bins (grid has bins + 1 points).
     */
    FrequencyGrid(GHz f_lo, GHz f_hi, int bins);

    /** @return all grid frequencies, ascending. */
    const std::vector<GHz> &frequencies() const { return grid; }

    /** @return lowest frequency. */
    GHz low() const { return grid.front(); }

    /** @return highest frequency. */
    GHz high() const { return grid.back(); }

    /** Fraction of the grid span that @p f represents (Fig. 15's
     *  secondary axis: 0 at B2, 1 at OC1). */
    double spanFraction(GHz f) const;

  private:
    std::vector<GHz> grid;
};

/**
 * Minimum frequency on @p grid whose Eq. 1 prediction from
 * (@p util, @p p_over_a, @p f_current) is at most @p target utilization.
 * Falls back to the grid maximum when no frequency suffices.
 */
GHz minimumSufficientFrequency(const FrequencyGrid &grid, double util,
                               double p_over_a, GHz f_current,
                               double target);

} // namespace autoscale
} // namespace imsim

#endif // IMSIM_AUTOSCALE_MODEL_HH
