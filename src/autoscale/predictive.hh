/**
 * @file
 * Predictive load forecasting for proactive scale-out.
 *
 * Sec. V notes that "providers have started predicting surges in load
 * and scaling out proactively [8], but the time required for scaling out
 * can still impact application performance" — i.e. prediction and
 * overclocking are complementary. This module provides a double-
 * exponential (Holt) forecaster over the utilization telemetry and a
 * planner that converts a forecast into a proactive scale-out lead time,
 * so the OC policies can be composed with prediction.
 */

#ifndef IMSIM_AUTOSCALE_PREDICTIVE_HH
#define IMSIM_AUTOSCALE_PREDICTIVE_HH

#include <cstddef>

#include "util/units.hh"

namespace imsim {
namespace autoscale {

/**
 * Holt double-exponential smoother: tracks level and trend of a sampled
 * signal and extrapolates linearly.
 */
class HoltForecaster
{
  public:
    /**
     * @param alpha Level smoothing factor in (0, 1].
     * @param beta  Trend smoothing factor in (0, 1].
     */
    explicit HoltForecaster(double alpha = 0.4, double beta = 0.2);

    /** Feed one observation taken at time @p t. */
    void observe(Seconds t, double value);

    /** Forecast the signal @p horizon seconds past the last sample. */
    double forecast(Seconds horizon) const;

    /** @return current level estimate. */
    double level() const { return levelEst; }

    /** @return current per-second trend estimate. */
    double trend() const { return trendEst; }

    /** @return number of observations consumed. */
    std::size_t observations() const { return count; }

  private:
    double alpha;
    double beta;
    double levelEst = 0.0;
    double trendEst = 0.0;
    Seconds lastTime = 0.0;
    std::size_t count = 0;
};

/** Decision of the proactive planner. */
struct ProactiveDecision
{
    bool scaleOutNow = false;  ///< Start a VM creation immediately.
    bool overclockBridge = false; ///< Overclock to cover the lead time.
    Seconds predictedBreach = -1.0; ///< When util crosses the threshold
                                    ///< (< 0: not within horizon).
};

/**
 * Proactive scale-out planner: starts the (slow) scale-out early enough
 * that the VM lands before the predicted threshold breach, and flags an
 * overclock bridge when the breach will arrive sooner than the VM can.
 *
 * @param forecaster        Trained forecaster.
 * @param threshold         Utilization threshold to protect.
 * @param scale_out_latency VM creation latency [s].
 * @param horizon           How far ahead to look [s].
 */
ProactiveDecision planProactive(const HoltForecaster &forecaster,
                                double threshold,
                                Seconds scale_out_latency,
                                Seconds horizon);

} // namespace autoscale
} // namespace imsim

#endif // IMSIM_AUTOSCALE_PREDICTIVE_HH
