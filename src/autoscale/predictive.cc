#include "autoscale/predictive.hh"

#include "util/logging.hh"

namespace imsim {
namespace autoscale {

namespace {
/// Shortest sample spacing the trend estimate is updated across [s].
constexpr Seconds kMinTrendDt = 1e-6;
} // namespace

HoltForecaster::HoltForecaster(double alpha_in, double beta_in)
    : alpha(alpha_in), beta(beta_in)
{
    util::fatalIf(alpha <= 0.0 || alpha > 1.0,
                  "HoltForecaster: alpha out of (0,1]");
    util::fatalIf(beta <= 0.0 || beta > 1.0,
                  "HoltForecaster: beta out of (0,1]");
}

void
HoltForecaster::observe(Seconds t, double value)
{
    util::fatalIf(count > 0 && t <= lastTime,
                  "HoltForecaster::observe: non-increasing time");
    if (count == 0) {
        levelEst = value;
        trendEst = 0.0;
    } else {
        const Seconds dt = t - lastTime;
        const double prev_level = levelEst;
        // Standard Holt update with the trend expressed per second so
        // irregular sampling works.
        levelEst = alpha * value +
                   (1.0 - alpha) * (levelEst + trendEst * dt);
        // Below kMinTrendDt the per-second slope (level delta / dt)
        // amplifies sampling jitter into an arbitrarily large trend
        // spike, so near-coincident samples refresh the level only.
        if (dt >= kMinTrendDt) {
            trendEst = beta * ((levelEst - prev_level) / dt) +
                       (1.0 - beta) * trendEst;
        }
    }
    lastTime = t;
    ++count;
}

double
HoltForecaster::forecast(Seconds horizon) const
{
    util::fatalIf(horizon < 0.0, "HoltForecaster: negative horizon");
    if (count == 0)
        return 0.0;
    return levelEst + trendEst * horizon;
}

ProactiveDecision
planProactive(const HoltForecaster &forecaster, double threshold,
              Seconds scale_out_latency, Seconds horizon)
{
    util::fatalIf(threshold <= 0.0, "planProactive: bad threshold");
    util::fatalIf(scale_out_latency < 0.0 || horizon <= 0.0,
                  "planProactive: bad latencies");
    ProactiveDecision decision;
    if (forecaster.observations() < 2)
        return decision;

    // When does the linear forecast cross the threshold?
    const double level = forecaster.level();
    const double trend = forecaster.trend();
    if (level >= threshold) {
        decision.predictedBreach = 0.0;
    } else if (trend > 1e-12) {
        const Seconds eta = (threshold - level) / trend;
        if (eta <= horizon)
            decision.predictedBreach = eta;
    }
    if (decision.predictedBreach < 0.0)
        return decision;

    // Start the scale-out so it lands at (or before) the breach; when
    // the breach arrives no later than the VM-creation latency the VM
    // lands with zero (or negative) slack, so the same boundary also
    // raises the overclock bridge — a breach predicted *exactly* at
    // the scale-out latency is covered, not left to race the VM.
    decision.scaleOutNow =
        decision.predictedBreach <= scale_out_latency;
    decision.overclockBridge =
        decision.predictedBreach <= scale_out_latency;
    return decision;
}

} // namespace autoscale
} // namespace imsim
