#include "autoscale/experiment.hh"

#include <memory>
#include <optional>

#include "hw/cpu.hh"
#include "obs/sampler.hh"
#include "thermal/cooling.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/queueing.hh"

namespace imsim {
namespace autoscale {

namespace {

/**
 * Per-VM power attribution: the server VMs share small tank #1's Xeon
 * W-3175X (28 cores); each 4-vcore VM owns a 4/28 share of the package
 * power evaluated at its utilization and the fleet frequency.
 */
double
perVmPower(GHz freq, double utilization)
{
    static const thermal::TwoPhaseImmersionCooling cooling(
        thermal::hfe7000());
    hw::CpuModel cpu = hw::CpuModel::xeonW3175x();
    hw::DomainClocks clocks;
    clocks.core = freq;
    clocks.llc = 2.4;
    clocks.memory = 2.4;
    cpu.setClocks(clocks);
    if (freq > 3.4 + 1e-9)
        cpu.setVoltageOffset(50.0);
    const double package_share = 4.0 / 28.0;
    const auto breakdown =
        cpu.power(cooling, std::clamp(utilization, 0.0, 1.0));
    return breakdown.total * package_share;
}

workload::QueueingCluster::Params
clusterParams(const ExperimentParams &params)
{
    workload::QueueingCluster::Params cp;
    cp.serviceMean = params.serviceMean;
    cp.serviceCv = params.serviceCv;
    cp.kappa = params.kappa;
    cp.refFreq = 3.4;
    cp.threadsPerServer = params.threadsPerVm;
    return cp;
}

/** Run a load schedule and collect the outcome. */
AutoScaleOutcome
runSchedule(Policy policy, const ExperimentParams &params,
            const std::vector<double> &qps_levels, std::size_t initial_vms,
            bool scale_out_enabled)
{
    sim::Simulation sim;
    util::Rng rng(params.seed);
    workload::QueueingCluster cluster(sim, rng.child(),
                                      clusterParams(params));

    AutoScalerConfig cfg;
    cfg.policy = policy;
    cfg.scaleOutEnabled = scale_out_enabled;
    cfg.maxVms = params.maxVms;
    for (std::size_t i = 0; i < initial_vms; ++i)
        cluster.addServer(cfg.baseFrequency);

    AutoScaler scaler(sim, cluster, cfg);

    // Optional observability capture: enable the tracer on the
    // virtual clock, attach the scaler's metrics, and arm the
    // telemetry sampler before the run starts.
    ObsCapture *capture = params.obs;
    std::unique_ptr<obs::KernelTracer> kernel_tracer;
    std::optional<obs::TelemetrySampler> sampler;
    if (capture) {
        if (!capture->tracer.enabled())
            capture->tracer.enable([&sim] { return sim.now(); });
        scaler.attachTelemetry(&capture->registry, &capture->tracer);
        if (capture->traceKernel) {
            kernel_tracer = std::make_unique<obs::KernelTracer>(
                capture->tracer, sim);
        }
        sampler.emplace(sim, capture->registry, capture->telemetryPeriod);
        sampler->mirrorToTracer(&capture->tracer);
        sampler->start();
    }

    scaler.start();

    // Program the load staircase.
    for (std::size_t i = 0; i < qps_levels.size(); ++i) {
        const double qps = qps_levels[i];
        const Seconds when = params.stepDuration * static_cast<double>(i);
        if (when == 0.0)
            cluster.setArrivalRate(qps);
        else
            sim.at(when, [&cluster, qps] { cluster.setArrivalRate(qps); });
    }

    // Power accounting: sample per-VM power each decision period.
    util::OnlineStats power_stats;
    sim.every(cfg.decisionPeriod, [&] {
        const double util = cluster.fleetUtilization(cfg.shortWindow);
        power_stats.add(perVmPower(scaler.fleetFrequency(), util));
    });

    const Seconds horizon =
        params.stepDuration * static_cast<double>(qps_levels.size());
    sim.runUntil(horizon);
    cluster.setArrivalRate(0.0);

    if (capture) {
        sampler->stop();
        capture->telemetry = sampler->takeSeries();
        kernel_tracer.reset();
        capture->tracer.disable();
        // The provider gauges capture the scaler and cluster, which die
        // with this frame; freeze them to their final values so the
        // capture stays safe to read (and merge) after the run.
        for (const auto &entry : capture->registry.gauges()) {
            if (entry.second->provided())
                entry.second->set(entry.second->value());
        }
    }

    AutoScaleOutcome out;
    out.policy = policy;
    out.p95Latency = cluster.latencies().p95();
    out.meanLatency = cluster.latencies().mean();
    out.maxVms = cluster.maxServers();
    out.vmHours = cluster.vmHours();
    out.avgFrequency = scaler.averageFrequency();
    out.avgPowerPerVm = power_stats.mean();
    out.requests = cluster.completed();
    out.trace = scaler.trace();
    return out;
}

} // namespace

AutoScaleOutcome
runFullExperiment(Policy policy, const ExperimentParams &params)
{
    // 500 -> 4000 QPS in steps of 500 every 5 minutes (Sec. VI-D).
    std::vector<double> levels;
    for (double qps = 500.0; qps <= 4000.0; qps += 500.0)
        levels.push_back(qps);
    return runSchedule(policy, params, levels, 1, true);
}

AutoScaleOutcome
runValidationExperiment(bool frequency_scaling,
                        const ExperimentParams &params)
{
    // Fig. 15: 3 server VMs, client load 1000/2000/500/3000/1000 QPS.
    const std::vector<double> levels{1000.0, 2000.0, 500.0, 3000.0, 1000.0};
    const Policy policy =
        frequency_scaling ? Policy::OcA : Policy::Baseline;
    return runSchedule(policy, params, levels, 3, false);
}

AutoScaleOutcome
runCustomExperiment(Policy policy, const std::vector<double> &qps_levels,
                    std::size_t initial_vms, const ExperimentParams &params,
                    bool scale_out_enabled)
{
    util::fatalIf(qps_levels.empty(),
                  "runCustomExperiment: need at least one load level");
    util::fatalIf(initial_vms == 0,
                  "runCustomExperiment: need at least one initial VM");
    return runSchedule(policy, params, qps_levels, initial_vms,
                       scale_out_enabled);
}

} // namespace autoscale
} // namespace imsim
