#include "autoscale/model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace imsim {
namespace autoscale {

FrequencyGrid::FrequencyGrid(GHz f_lo, GHz f_hi, int bins)
{
    util::fatalIf(f_lo <= 0.0 || f_hi <= f_lo,
                  "FrequencyGrid: need 0 < f_lo < f_hi");
    util::fatalIf(bins <= 0, "FrequencyGrid: need at least one bin");
    const GHz step = (f_hi - f_lo) / static_cast<double>(bins);
    for (int i = 0; i <= bins; ++i)
        grid.push_back(f_lo + step * static_cast<double>(i));
}

double
FrequencyGrid::spanFraction(GHz f) const
{
    const GHz lo = grid.front();
    const GHz hi = grid.back();
    return std::clamp((f - lo) / (hi - lo), 0.0, 1.0);
}

GHz
minimumSufficientFrequency(const FrequencyGrid &grid, double util,
                           double p_over_a, GHz f_current, double target)
{
    util::fatalIf(target <= 0.0,
                  "minimumSufficientFrequency: target must be positive");
    for (GHz f : grid.frequencies()) {
        const double predicted =
            hw::predictedUtilization(util, p_over_a, f_current, f);
        if (predicted <= target)
            return f;
    }
    return grid.high();
}

} // namespace autoscale
} // namespace imsim
