#include "exp/sweep.hh"

namespace imsim {
namespace exp {

SweepRunner::SweepRunner(SweepOptions opts)
    : workerCount(opts.jobs == 0 ? util::ThreadPool::defaultWorkers()
                                 : opts.jobs),
      rootSeed(opts.seed), monitor(opts.progress)
{}

void
SweepRunner::parallelFor(
    std::size_t n,
    const std::function<void(std::size_t, util::Rng &)> &fn) const
{
    map<bool>(n, [&fn](std::size_t i, util::Rng &rng) {
        fn(i, rng);
        return true;
    });
}

RunReport
SweepRunner::run(const std::string &name, const std::vector<Params> &grid,
                 const std::function<void(const Params &, std::size_t,
                                          util::Rng &, MetricsRegistry &)>
                     &fn) const
{
    std::vector<RunRecord> records = map<RunRecord>(
        grid.size(), [&grid, &fn](std::size_t i, util::Rng &rng) {
            MetricsRegistry registry;
            fn(grid[i], i, rng, registry);
            return RunRecord{grid[i], registry.snapshot()};
        });
    RunReport report(name);
    for (auto &record : records)
        report.add(std::move(record));
    if (monitor)
        report.setTiming(monitor->runTiming());
    return report;
}

std::vector<Params>
paramGrid(const std::string &first_key,
          const std::vector<std::string> &first,
          const std::string &second_key,
          const std::vector<std::string> &second)
{
    std::vector<Params> grid;
    grid.reserve(first.size() * second.size());
    for (const auto &a : first)
        for (const auto &b : second)
            grid.push_back(Params{{first_key, a}, {second_key, b}});
    return grid;
}

} // namespace exp
} // namespace imsim
