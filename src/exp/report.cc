#include "exp/report.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace imsim {
namespace exp {

void
MetricSet::set(const std::string &name, double value)
{
    for (auto &entry : values) {
        if (entry.first == name) {
            entry.second = value;
            return;
        }
    }
    values.emplace_back(name, value);
}

bool
MetricSet::has(const std::string &name) const
{
    for (const auto &entry : values)
        if (entry.first == name)
            return true;
    return false;
}

double
MetricSet::get(const std::string &name) const
{
    for (const auto &entry : values)
        if (entry.first == name)
            return entry.second;
    util::fatal("MetricSet: no metric named '" + name + "'");
}

void
MetricsRegistry::scalar(const std::string &name, double value)
{
    scalars.set(name, value);
}

void
MetricsRegistry::sample(const std::string &name, double value)
{
    for (auto &dist : dists) {
        if (dist.first == name) {
            dist.second.add(value);
            return;
        }
    }
    dists.emplace_back(name, util::PercentileEstimator());
    dists.back().second.add(value);
}

MetricSet
MetricsRegistry::snapshot() const
{
    MetricSet out = scalars;
    for (const auto &dist : dists) {
        out.set(dist.first + ".mean", dist.second.mean());
        out.set(dist.first + ".p50", dist.second.p50());
        out.set(dist.first + ".p95", dist.second.p95());
        out.set(dist.first + ".p99", dist.second.p99());
    }
    return out;
}

void
RunReport::add(RunRecord record)
{
    points.push_back(std::move(record));
}

namespace {

/** Union of names across records, in first-seen order. */
template <typename Entries, typename GetName>
void
collectNames(std::vector<std::string> &out, const Entries &entries,
             GetName get_name)
{
    for (const auto &entry : entries) {
        const std::string &name = get_name(entry);
        bool known = false;
        for (const auto &existing : out)
            if (existing == name) {
                known = true;
                break;
            }
        if (!known)
            out.push_back(name);
    }
}

std::string
formatNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Minimal recursive-descent parser for the JSON subset toJson() emits
 * (objects, arrays, strings, numbers, null). Not a general JSON
 * library; FatalError on anything malformed.
 */
class JsonCursor
{
  public:
    explicit JsonCursor(const std::string &text) : text(text) {}

    void
    expect(char c)
    {
        skipWs();
        util::fatalIf(pos >= text.size() || text[pos] != c,
                      std::string("RunReport::fromJson: expected '") + c +
                          "' at offset " + std::to_string(pos));
        ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                util::fatalIf(pos >= text.size(),
                              "RunReport::fromJson: dangling escape");
                const char esc = text[pos++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'u': {
                    util::fatalIf(pos + 4 > text.size(),
                                  "RunReport::fromJson: bad \\u escape");
                    const unsigned code = static_cast<unsigned>(
                        std::stoul(text.substr(pos, 4), nullptr, 16));
                    util::fatalIf(code > 0x7f,
                                  "RunReport::fromJson: non-ASCII \\u "
                                  "escape unsupported");
                    out += static_cast<char>(code);
                    pos += 4;
                    break;
                  }
                  default:
                    util::fatal("RunReport::fromJson: unknown escape");
                }
            } else {
                out += c;
            }
        }
        expect('"');
        return out;
    }

    double
    parseNumber()
    {
        skipWs();
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            return std::nan("");
        }
        std::size_t used = 0;
        double value = 0.0;
        try {
            value = std::stod(text.substr(pos), &used);
        } catch (const std::exception &) {
            util::fatal("RunReport::fromJson: expected a number at offset " +
                        std::to_string(pos));
        }
        pos += used;
        return value;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n' ||
                text[pos] == '\t' || text[pos] == '\r'))
            ++pos;
    }

  private:
    const std::string &text;
    std::size_t pos = 0;
};

} // namespace

util::TableWriter
RunReport::toTable() const
{
    std::vector<std::string> param_names;
    std::vector<std::string> metric_names;
    for (const auto &record : points) {
        collectNames(param_names, record.params,
                     [](const auto &e) -> const std::string & {
                         return e.first;
                     });
        collectNames(metric_names, record.metrics.entries(),
                     [](const auto &e) -> const std::string & {
                         return e.first;
                     });
    }
    std::vector<std::string> header = param_names;
    header.insert(header.end(), metric_names.begin(), metric_names.end());
    util::TableWriter table(header);
    for (const auto &record : points) {
        std::vector<std::string> row;
        for (const auto &name : param_names) {
            std::string cell;
            for (const auto &param : record.params)
                if (param.first == name)
                    cell = param.second;
            row.push_back(cell);
        }
        for (const auto &name : metric_names)
            row.push_back(record.metrics.has(name)
                              ? util::fmt(record.metrics.get(name), 4)
                              : "");
        table.addRow(row);
    }
    return table;
}

std::string
RunReport::toJson() const
{
    std::string out = "{\n  \"name\": ";
    appendEscaped(out, reportName);
    out += ",\n  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &record = points[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"params\": {";
        for (std::size_t j = 0; j < record.params.size(); ++j) {
            if (j)
                out += ", ";
            appendEscaped(out, record.params[j].first);
            out += ": ";
            appendEscaped(out, record.params[j].second);
        }
        out += "}, \"metrics\": {";
        const auto &metrics = record.metrics.entries();
        for (std::size_t j = 0; j < metrics.size(); ++j) {
            if (j)
                out += ", ";
            appendEscaped(out, metrics[j].first);
            out += ": ";
            out += std::isfinite(metrics[j].second)
                       ? formatNumber(metrics[j].second)
                       : "null";
        }
        out += "}}";
    }
    out += points.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

RunReport
RunReport::fromJson(const std::string &json)
{
    JsonCursor cur(json);
    cur.expect('{');
    util::fatalIf(cur.parseString() != "name",
                  "RunReport::fromJson: expected \"name\" first");
    cur.expect(':');
    RunReport report(cur.parseString());
    cur.expect(',');
    util::fatalIf(cur.parseString() != "points",
                  "RunReport::fromJson: expected \"points\"");
    cur.expect(':');
    cur.expect('[');
    if (!cur.consume(']')) {
        do {
            cur.expect('{');
            RunRecord record;
            util::fatalIf(cur.parseString() != "params",
                          "RunReport::fromJson: expected \"params\"");
            cur.expect(':');
            cur.expect('{');
            if (!cur.consume('}')) {
                do {
                    std::string key = cur.parseString();
                    cur.expect(':');
                    record.params.emplace_back(std::move(key),
                                               cur.parseString());
                } while (cur.consume(','));
                cur.expect('}');
            }
            cur.expect(',');
            util::fatalIf(cur.parseString() != "metrics",
                          "RunReport::fromJson: expected \"metrics\"");
            cur.expect(':');
            cur.expect('{');
            if (!cur.consume('}')) {
                do {
                    std::string key = cur.parseString();
                    cur.expect(':');
                    record.metrics.set(key, cur.parseNumber());
                } while (cur.consume(','));
                cur.expect('}');
            }
            cur.expect('}');
            report.add(std::move(record));
        } while (cur.consume(','));
        cur.expect(']');
    }
    cur.expect('}');
    return report;
}

void
RunReport::writeCsv(std::ostream &os) const
{
    toTable().printCsv(os);
}

void
RunReport::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    util::fatalIf(!out, "RunReport: cannot open '" + path +
                            "' for writing");
    out << toJson();
    util::fatalIf(!out, "RunReport: failed writing '" + path + "'");
}

void
maybeWriteReport(const util::Cli &cli, const RunReport &report,
                 std::ostream &os)
{
    const std::string path = cli.get("--report");
    if (path.empty())
        return;
    report.writeJsonFile(path);
    os << "[report] wrote " << report.records().size()
       << " sweep points to " << path << "\n";
}

} // namespace exp
} // namespace imsim
