#include "exp/report.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/cli.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace imsim {
namespace exp {

void
MetricSet::set(const std::string &name, double value)
{
    for (auto &entry : values) {
        if (entry.first == name) {
            entry.second = value;
            return;
        }
    }
    values.emplace_back(name, value);
}

bool
MetricSet::has(const std::string &name) const
{
    for (const auto &entry : values)
        if (entry.first == name)
            return true;
    return false;
}

double
MetricSet::get(const std::string &name) const
{
    for (const auto &entry : values)
        if (entry.first == name)
            return entry.second;
    util::fatal("MetricSet: no metric named '" + name + "'");
}

void
MetricsRegistry::scalar(const std::string &name, double value)
{
    scalars.set(name, value);
}

void
MetricsRegistry::sample(const std::string &name, double value)
{
    for (auto &dist : dists) {
        if (dist.first == name) {
            dist.second.add(value);
            return;
        }
    }
    dists.emplace_back(name, util::PercentileEstimator());
    dists.back().second.add(value);
}

MetricSet
MetricsRegistry::snapshot() const
{
    MetricSet out = scalars;
    for (const auto &dist : dists) {
        out.set(dist.first + ".mean", dist.second.mean());
        out.set(dist.first + ".p50", dist.second.p50());
        out.set(dist.first + ".p95", dist.second.p95());
        out.set(dist.first + ".p99", dist.second.p99());
    }
    return out;
}

void
RunReport::add(RunRecord record)
{
    points.push_back(std::move(record));
}

void
RunReport::setMeta(std::vector<std::pair<std::string, std::string>> meta)
{
    metaFields = std::move(meta);
}

void
RunReport::setTiming(RunTiming timing)
{
    runTiming = std::move(timing);
    timingSet = true;
}

namespace {

/** Union of names across records, in first-seen order. */
template <typename Entries, typename GetName>
void
collectNames(std::vector<std::string> &out, const Entries &entries,
             GetName get_name)
{
    for (const auto &entry : entries) {
        const std::string &name = get_name(entry);
        bool known = false;
        for (const auto &existing : out)
            if (existing == name) {
                known = true;
                break;
            }
        if (!known)
            out.push_back(name);
    }
}

std::string
formatNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    util::Json::appendEscaped(out, s);
}

} // namespace

util::TableWriter
RunReport::toTable() const
{
    std::vector<std::string> param_names;
    std::vector<std::string> metric_names;
    for (const auto &record : points) {
        collectNames(param_names, record.params,
                     [](const auto &e) -> const std::string & {
                         return e.first;
                     });
        collectNames(metric_names, record.metrics.entries(),
                     [](const auto &e) -> const std::string & {
                         return e.first;
                     });
    }
    std::vector<std::string> header = param_names;
    header.insert(header.end(), metric_names.begin(), metric_names.end());
    util::TableWriter table(header);
    for (const auto &record : points) {
        std::vector<std::string> row;
        for (const auto &name : param_names) {
            std::string cell;
            for (const auto &param : record.params)
                if (param.first == name)
                    cell = param.second;
            row.push_back(cell);
        }
        for (const auto &name : metric_names)
            row.push_back(record.metrics.has(name)
                              ? util::fmt(record.metrics.get(name), 4)
                              : "");
        table.addRow(row);
    }
    return table;
}

std::string
RunReport::toJson() const
{
    std::string out = "{\n  \"schema\": \"imsim.report/1\",\n  \"name\": ";
    appendEscaped(out, reportName);
    if (hasMeta()) {
        out += ",\n  \"meta\": {";
        for (std::size_t i = 0; i < metaFields.size(); ++i) {
            if (i)
                out += ", ";
            appendEscaped(out, metaFields[i].first);
            out += ": ";
            appendEscaped(out, metaFields[i].second);
        }
        out += "}";
    }
    if (hasTiming()) {
        out += ",\n  \"timing\": {\"total_wall_ms\": ";
        out += formatNumber(runTiming.totalWallMs);
        out += ", \"points\": [";
        for (std::size_t i = 0; i < runTiming.points.size(); ++i) {
            const PointTiming &pt = runTiming.points[i];
            out += i ? ",\n    {" : "\n    {";
            out += "\"index\": " + std::to_string(pt.index);
            out += ", \"queue_ms\": " + formatNumber(pt.queueMs);
            out += ", \"wall_ms\": " + formatNumber(pt.wallMs);
            out += ", \"worker\": " + std::to_string(pt.worker) + "}";
        }
        out += runTiming.points.empty() ? "]}" : "\n  ]}";
    }
    out += ",\n  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &record = points[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"params\": {";
        for (std::size_t j = 0; j < record.params.size(); ++j) {
            if (j)
                out += ", ";
            appendEscaped(out, record.params[j].first);
            out += ": ";
            appendEscaped(out, record.params[j].second);
        }
        out += "}, \"metrics\": {";
        const auto &metrics = record.metrics.entries();
        for (std::size_t j = 0; j < metrics.size(); ++j) {
            if (j)
                out += ", ";
            appendEscaped(out, metrics[j].first);
            out += ": ";
            out += std::isfinite(metrics[j].second)
                       ? formatNumber(metrics[j].second)
                       : "null";
        }
        out += "}}";
    }
    out += points.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

RunReport
RunReport::fromJson(const std::string &json)
{
    const util::Json doc = util::Json::parse(json);
    util::fatalIf(!doc.isObject(),
                  "RunReport::fromJson: document is not an object");
    // Reports written before the schema stamp have no "schema" member;
    // accept those, but refuse anything stamped with a different (i.e.
    // newer) schema rather than misparse it.
    if (const util::Json *schema = doc.find("schema")) {
        util::fatalIf(schema->str() != "imsim.report/1",
                      "RunReport::fromJson: unsupported schema '" +
                          schema->str() +
                          "' (this build reads imsim.report/1)");
    }
    RunReport report(doc.at("name").str());
    if (const util::Json *meta = doc.find("meta")) {
        std::vector<std::pair<std::string, std::string>> fields;
        for (const auto &member : meta->object())
            fields.emplace_back(member.first, member.second.str());
        report.setMeta(std::move(fields));
    }
    if (const util::Json *timing = doc.find("timing")) {
        RunTiming parsed;
        parsed.totalWallMs = timing->at("total_wall_ms").number();
        for (const auto &row : timing->at("points").array()) {
            PointTiming pt;
            pt.index =
                static_cast<std::size_t>(row.at("index").number());
            pt.queueMs = row.at("queue_ms").number();
            pt.wallMs = row.at("wall_ms").number();
            pt.worker = static_cast<int>(row.at("worker").number());
            parsed.points.push_back(pt);
        }
        report.setTiming(std::move(parsed));
    }
    for (const auto &point : doc.at("points").array()) {
        RunRecord record;
        for (const auto &param : point.at("params").object())
            record.params.emplace_back(param.first, param.second.str());
        for (const auto &metric : point.at("metrics").object())
            record.metrics.set(metric.first, metric.second.number());
        report.add(std::move(record));
    }
    return report;
}

void
RunReport::writeCsv(std::ostream &os) const
{
    toTable().printCsv(os);
}

void
RunReport::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    util::fatalIf(!out, "RunReport: cannot open '" + path +
                            "' for writing");
    out << toJson();
    util::fatalIf(!out, "RunReport: failed writing '" + path + "'");
}

void
maybeWriteReport(const util::Cli &cli, const RunReport &report,
                 std::ostream &os)
{
    const std::string path = cli.get("--report");
    if (path.empty())
        return;
    report.writeJsonFile(path);
    os << "[report] wrote " << report.records().size()
       << " sweep points to " << path << "\n";
}

} // namespace exp
} // namespace imsim
