/**
 * @file
 * Parallel experiment engine: fans parameter-grid points and
 * Monte-Carlo seed replications across a util::ThreadPool.
 *
 * Determinism contract: every sweep point i receives the substream
 * Rng(seed).split(i), which depends only on (seed, i) — never on
 * worker scheduling — and results are collected in point order. A
 * sweep therefore produces bit-identical output with --jobs 1 and
 * --jobs N, provided the point body itself is a pure function of
 * (point, rng).
 */

#ifndef IMSIM_EXP_SWEEP_HH
#define IMSIM_EXP_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "exp/report.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace imsim {
namespace exp {

/** Knobs shared by every sweep (typically filled from the CLI). */
struct SweepOptions
{
    std::size_t jobs = 0;    ///< Worker threads; 0 = hardware concurrency.
    std::uint64_t seed = 0x1ce5eedULL; ///< Root seed for Rng::split.
};

/**
 * Runs experiment bodies over index ranges or parameter grids, in
 * parallel, with per-point deterministic substreams.
 *
 * jobs == 1 executes on the calling thread with no pool at all, which
 * is the byte-for-byte serial reference path.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /** @return worker count the runner fans across. */
    std::size_t jobs() const { return workerCount; }

    /** @return the root seed points are split from. */
    std::uint64_t seed() const { return rootSeed; }

    /**
     * Run @p fn(i, rng) for every i in [0, n) and return the results
     * in index order. @p fn must not touch shared mutable state.
     */
    template <typename T>
    std::vector<T>
    map(std::size_t n,
        const std::function<T(std::size_t, util::Rng &)> &fn) const
    {
        std::vector<T> results;
        results.reserve(n);
        if (workerCount == 1 || n <= 1) {
            for (std::size_t i = 0; i < n; ++i) {
                util::Rng rng = substream(i);
                results.push_back(fn(i, rng));
            }
            return results;
        }
        util::ThreadPool pool(workerCount);
        std::vector<std::future<T>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            futures.push_back(pool.submit([this, i, &fn]() {
                util::Rng rng = substream(i);
                return fn(i, rng);
            }));
        }
        for (auto &future : futures)
            results.push_back(future.get());
        return results;
    }

    /** map() for bodies with side-effect-free void results. */
    void parallelFor(
        std::size_t n,
        const std::function<void(std::size_t, util::Rng &)> &fn) const;

    /**
     * Sweep a parameter grid and collect a structured report.
     *
     * @p fn fills one MetricsRegistry per point; the report holds one
     * record per grid point, in grid order.
     */
    RunReport
    run(const std::string &name, const std::vector<Params> &grid,
        const std::function<void(const Params &, std::size_t, util::Rng &,
                                 MetricsRegistry &)> &fn) const;

    /** @return the deterministic substream for point @p index. */
    util::Rng
    substream(std::size_t index) const
    {
        return util::Rng(rootSeed).split(index);
    }

  private:
    std::size_t workerCount;
    std::uint64_t rootSeed;
};

/**
 * Cartesian product helper: one Params row per combination of
 * @p first x @p second, labelled with the given keys.
 */
std::vector<Params> paramGrid(const std::string &first_key,
                              const std::vector<std::string> &first,
                              const std::string &second_key,
                              const std::vector<std::string> &second);

} // namespace exp
} // namespace imsim

#endif // IMSIM_EXP_SWEEP_HH
