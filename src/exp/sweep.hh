/**
 * @file
 * Parallel experiment engine: fans parameter-grid points and
 * Monte-Carlo seed replications across a util::ThreadPool.
 *
 * Determinism contract: every sweep point i receives the substream
 * Rng(seed).split(i), which depends only on (seed, i) — never on
 * worker scheduling — and results are collected in point order. A
 * sweep therefore produces bit-identical output with --jobs 1 and
 * --jobs N, provided the point body itself is a pure function of
 * (point, rng).
 */

#ifndef IMSIM_EXP_SWEEP_HH
#define IMSIM_EXP_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "exp/progress.hh"
#include "exp/report.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace imsim {
namespace exp {

/** Knobs shared by every sweep (typically filled from the CLI). */
struct SweepOptions
{
    std::size_t jobs = 0;    ///< Worker threads; 0 = hardware concurrency.
    std::uint64_t seed = 0x1ce5eedULL; ///< Root seed for Rng::split.
    /** Optional observer (not owned); see progressFromCli. */
    ProgressMonitor *progress = nullptr;
};

/**
 * Raised when a sweep point's body throws: carries the *lowest* failed
 * point index and the original message, composed identically whether
 * the sweep ran serially or across a pool — so failure reports do not
 * depend on --jobs.
 */
class SweepPointError : public FatalError
{
  public:
    SweepPointError(std::size_t index, const std::string &what_arg)
        : FatalError("SweepRunner: point " + std::to_string(index) +
                     " failed: " + what_arg),
          failedIndex(index)
    {}

    /** @return the failed sweep-point index. */
    std::size_t index() const { return failedIndex; }

  private:
    std::size_t failedIndex;
};

/**
 * Runs experiment bodies over index ranges or parameter grids, in
 * parallel, with per-point deterministic substreams.
 *
 * jobs == 1 executes on the calling thread with no pool at all, which
 * is the byte-for-byte serial reference path.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /** @return worker count the runner fans across. */
    std::size_t jobs() const { return workerCount; }

    /** @return the root seed points are split from. */
    std::uint64_t seed() const { return rootSeed; }

    /**
     * Run @p fn(i, rng) for every i in [0, n) and return the results
     * in index order. @p fn must not touch shared mutable state.
     *
     * Failure semantics: when a body throws, the call raises a
     * SweepPointError for the lowest failed index, with the same
     * message under --jobs 1 and --jobs N (the parallel path still
     * joins every in-flight point before throwing).
     *
     * When options.progress is set, the monitor sees begin/queued/
     * started/finished/end events; results are unaffected.
     */
    template <typename T>
    std::vector<T>
    map(std::size_t n,
        const std::function<T(std::size_t, util::Rng &)> &fn) const
    {
        ProgressMonitor *mon = monitor;
        if (mon)
            mon->begin(n);
        std::vector<T> results;
        results.reserve(n);
        if (workerCount == 1 || n <= 1) {
            for (std::size_t i = 0; i < n; ++i) {
                if (mon) {
                    mon->pointQueued(i);
                    mon->pointStarted(i);
                }
                util::Rng rng = substream(i);
                try {
                    results.push_back(fn(i, rng));
                } catch (const std::exception &e) {
                    if (mon)
                        mon->end();
                    throw SweepPointError(i, e.what());
                }
                if (mon)
                    mon->pointFinished(i);
            }
            if (mon)
                mon->end();
            return results;
        }
        util::ThreadPool pool(workerCount);
        std::vector<std::future<T>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (mon)
                mon->pointQueued(i);
            futures.push_back(pool.submit([this, i, &fn, mon]() {
                if (mon)
                    mon->pointStarted(i);
                util::Rng rng = substream(i);
                T result = fn(i, rng);
                if (mon)
                    mon->pointFinished(i);
                return result;
            }));
        }
        // Collect in index order, so the exception that surfaces is the
        // lowest failed index's — matching the serial path exactly.
        for (std::size_t i = 0; i < n; ++i) {
            try {
                results.push_back(futures[i].get());
            } catch (const std::exception &e) {
                for (std::size_t j = i + 1; j < n; ++j)
                    futures[j].wait();
                if (mon)
                    mon->end();
                throw SweepPointError(i, e.what());
            }
        }
        if (mon)
            mon->end();
        return results;
    }

    /** map() for bodies with side-effect-free void results. */
    void parallelFor(
        std::size_t n,
        const std::function<void(std::size_t, util::Rng &)> &fn) const;

    /**
     * Sweep a parameter grid and collect a structured report.
     *
     * @p fn fills one MetricsRegistry per point; the report holds one
     * record per grid point, in grid order. When a progress monitor is
     * attached, its wall-clock timing snapshot is stored as the
     * report's "timing" section (outside the result payload).
     */
    RunReport
    run(const std::string &name, const std::vector<Params> &grid,
        const std::function<void(const Params &, std::size_t, util::Rng &,
                                 MetricsRegistry &)> &fn) const;

    /** @return the deterministic substream for point @p index. */
    util::Rng
    substream(std::size_t index) const
    {
        return util::Rng(rootSeed).split(index);
    }

  private:
    std::size_t workerCount;
    std::uint64_t rootSeed;
    ProgressMonitor *monitor;
};

/**
 * Cartesian product helper: one Params row per combination of
 * @p first x @p second, labelled with the given keys.
 */
std::vector<Params> paramGrid(const std::string &first_key,
                              const std::vector<std::string> &first,
                              const std::string &second_key,
                              const std::vector<std::string> &second);

} // namespace exp
} // namespace imsim

#endif // IMSIM_EXP_SWEEP_HH
