#include "exp/progress.hh"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "util/cli.hh"
#include "util/json.hh"
#include "util/logging.hh"

#ifdef __unix__
#include <unistd.h>
#endif

namespace imsim {
namespace exp {

namespace {

std::string
formatMs(double ms)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", ms);
    return buf;
}

std::string
formatRate(double per_s)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.1f", per_s);
    return buf;
}

/** Render an ETA as "Ns" / "NmSSs" — coarse on purpose. */
std::string
formatEta(double eta_s)
{
    char buf[48];
    if (eta_s < 60.0) {
        std::snprintf(buf, sizeof(buf), "%.0fs", eta_s);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0fm%02.0fs", eta_s / 60.0,
                      eta_s - 60.0 * static_cast<int>(eta_s / 60.0));
    }
    return buf;
}

} // namespace

ProgressMonitor::ProgressMonitor(std::string label, Options opts)
    : sweepLabel(std::move(label)), options(std::move(opts))
{
    if (!options.heartbeatPath.empty()) {
        heartbeat.open(options.heartbeatPath);
        util::fatalIf(!heartbeat, "ProgressMonitor: cannot open '" +
                                      options.heartbeatPath +
                                      "' for writing");
    }
}

double
ProgressMonitor::seconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

void
ProgressMonitor::begin(std::size_t total_in)
{
    std::lock_guard<std::mutex> lock(mutex);
    total = total_in;
    doneCount = 0;
    beganAt = Clock::now();
    endedAt = beganAt;
    ended = false;
    lastStatusAt = beganAt;
    statusEverPainted = false;
    lastStatusLen = 0;
    pointStates.assign(total, PointState{});
    workerIds.clear();
    if (heartbeat.is_open()) {
        std::string line = "{\"event\": \"begin\", \"label\": ";
        util::Json::appendEscaped(line, sweepLabel);
        line += ", \"total\": " + std::to_string(total) + "}";
        heartbeatLocked(line);
    }
}

int
ProgressMonitor::workerIdLocked()
{
    const std::thread::id self = std::this_thread::get_id();
    for (const auto &entry : workerIds)
        if (entry.first == self)
            return entry.second;
    const int fresh = static_cast<int>(workerIds.size());
    workerIds.emplace_back(self, fresh);
    return fresh;
}

void
ProgressMonitor::pointQueued(std::size_t index)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (index >= pointStates.size())
        return;
    pointStates[index].queued = Clock::now();
}

void
ProgressMonitor::pointStarted(std::size_t index)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (index >= pointStates.size())
        return;
    pointStates[index].started = Clock::now();
    pointStates[index].worker = workerIdLocked();
}

void
ProgressMonitor::pointFinished(std::size_t index)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (index >= pointStates.size())
        return;
    PointState &pt = pointStates[index];
    pt.finished = Clock::now();
    pt.done = true;
    ++doneCount;
    if (heartbeat.is_open()) {
        std::string line =
            "{\"event\": \"point\", \"index\": " + std::to_string(index);
        line += ", \"worker\": " + std::to_string(pt.worker);
        line +=
            ", \"queue_ms\": " + formatMs(seconds(pt.queued, pt.started) *
                                          1e3);
        line += ", \"wall_ms\": " +
                formatMs(seconds(pt.started, pt.finished) * 1e3);
        line += ", \"done\": " + std::to_string(doneCount);
        line += ", \"total\": " + std::to_string(total) + "}";
        heartbeatLocked(line);
    }
    statusLocked(doneCount == total);
}

void
ProgressMonitor::end()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (ended)
        return;
    ended = true;
    endedAt = Clock::now();
    statusLocked(true);
    if (options.status && options.statusIsTty && statusEverPainted)
        *options.status << '\n' << std::flush;
    if (heartbeat.is_open()) {
        std::string line = "{\"event\": \"end\", \"done\": " +
                           std::to_string(doneCount);
        line += ", \"total\": " + std::to_string(total);
        line += ", \"total_wall_ms\": " +
                formatMs(seconds(beganAt, endedAt) * 1e3) + "}";
        heartbeatLocked(line);
    }
}

void
ProgressMonitor::statusLocked(bool force)
{
    if (!options.status)
        return;
    const Clock::time_point now = Clock::now();
    if (!force && statusEverPainted &&
        seconds(lastStatusAt, now) < options.minStatusIntervalS)
        return;
    lastStatusAt = now;
    statusEverPainted = true;
    const double elapsed_s = std::max(seconds(beganAt, now), 1e-9);
    const double rate = static_cast<double>(doneCount) / elapsed_s;
    std::string line = "[sweep] " + sweepLabel + ": " +
                       std::to_string(doneCount) + "/" +
                       std::to_string(total) + " points";
    if (doneCount > 0) {
        line += ", " + formatRate(rate) + " pt/s";
        if (doneCount < total && rate > 0.0) {
            line += ", ETA " +
                    formatEta(static_cast<double>(total - doneCount) /
                              rate);
        }
    }
    std::ostream &os = *options.status;
    if (options.statusIsTty) {
        // Repaint in place; pad over the previous, possibly longer line.
        std::string padded = line;
        if (padded.size() < lastStatusLen)
            padded.append(lastStatusLen - padded.size(), ' ');
        lastStatusLen = line.size();
        os << '\r' << padded << std::flush;
    } else {
        os << line << '\n' << std::flush;
    }
}

void
ProgressMonitor::heartbeatLocked(const std::string &line)
{
    heartbeat << line << '\n' << std::flush;
}

RunTiming
ProgressMonitor::runTiming() const
{
    std::lock_guard<std::mutex> lock(mutex);
    RunTiming timing;
    timing.totalWallMs =
        seconds(beganAt, ended ? endedAt : Clock::now()) * 1e3;
    for (std::size_t i = 0; i < pointStates.size(); ++i) {
        const PointState &pt = pointStates[i];
        if (!pt.done)
            continue;
        PointTiming row;
        row.index = i;
        row.queueMs = seconds(pt.queued, pt.started) * 1e3;
        row.wallMs = seconds(pt.started, pt.finished) * 1e3;
        row.worker = pt.worker;
        timing.points.push_back(row);
    }
    return timing;
}

std::unique_ptr<ProgressMonitor>
progressFromCli(const util::Cli &cli, const std::string &label)
{
    if (!cli.progressRequested())
        return nullptr;
    ProgressMonitor::Options opts;
    opts.status = &std::cerr;
#ifdef __unix__
    opts.statusIsTty = isatty(2) != 0;
#endif
    opts.heartbeatPath = cli.progressFile();
    return std::make_unique<ProgressMonitor>(label, std::move(opts));
}

} // namespace exp
} // namespace imsim
