/**
 * @file
 * Live sweep progress: exp::ProgressMonitor observes a SweepRunner
 * (per-point queue/start/finish events), renders a rate-limited status
 * line with throughput and ETA to stderr, optionally appends a
 * machine-readable JSONL heartbeat (`--progress FILE`), and snapshots
 * per-point wall-clock timing for the report's "timing" section.
 *
 * Determinism contract: the monitor only *observes* — it never feeds
 * anything back into point bodies, all output goes to the status
 * stream (stderr) or the heartbeat file, and the report sections it
 * fills (meta/timing) sit outside the deterministic result payload.
 * A sweep's results are byte-identical with the monitor on or off.
 *
 * Thread-safety: all event methods take one internal mutex, so sweep
 * workers may call them concurrently.
 */

#ifndef IMSIM_EXP_PROGRESS_HH
#define IMSIM_EXP_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/report.hh"

namespace imsim {
namespace util {
class Cli;
} // namespace util

namespace exp {

/**
 * Collects per-point wall-clock events from a sweep and renders
 * human status plus an optional JSONL heartbeat.
 *
 * Reusable: begin() resets the per-point state, so one monitor can
 * observe several consecutive map() calls (snapshot runTiming()
 * between them); the heartbeat file accumulates all of them.
 */
class ProgressMonitor
{
  public:
    /** Presentation knobs (the Cli glue fills these in). */
    struct Options
    {
        /** Status sink; nullptr disables the status line. */
        std::ostream *status = nullptr;
        /** Whether @c status is a terminal (use \r-updates). */
        bool statusIsTty = false;
        /** JSONL heartbeat path; empty disables the heartbeat. */
        std::string heartbeatPath;
        /** Minimum seconds between status repaints. */
        double minStatusIntervalS = 0.25;
    };

    /** Monitor with no sinks (timing capture only). */
    explicit ProgressMonitor(std::string label)
        : ProgressMonitor(std::move(label), Options())
    {}

    ProgressMonitor(std::string label, Options opts);

    /** Start observing a sweep of @p total points (resets state). */
    void begin(std::size_t total);

    /** Point @p index was submitted to the pool (or serial loop). */
    void pointQueued(std::size_t index);

    /** Point @p index started executing on the calling thread. */
    void pointStarted(std::size_t index);

    /** Point @p index finished; updates status line and heartbeat. */
    void pointFinished(std::size_t index);

    /** Sweep done (or aborted): final status repaint + newline. */
    void end();

    /** @return wall-clock timing of the last begin()..end() window. */
    RunTiming runTiming() const;

    /** @return the label shown in status lines. */
    const std::string &label() const { return sweepLabel; }

  private:
    using Clock = std::chrono::steady_clock;

    struct PointState
    {
        Clock::time_point queued;
        Clock::time_point started;
        Clock::time_point finished;
        int worker = 0;
        bool done = false;
    };

    /** @return seconds from @p from to @p to. */
    static double seconds(Clock::time_point from, Clock::time_point to);

    /** Small dense id for the calling thread (locked). */
    int workerIdLocked();

    /** Repaint the status line when due (locked). */
    void statusLocked(bool force);

    /** Append one JSONL heartbeat record (locked). */
    void heartbeatLocked(const std::string &line);

    mutable std::mutex mutex;
    std::string sweepLabel;
    Options options;
    std::ofstream heartbeat;

    std::size_t total = 0;
    std::size_t doneCount = 0;
    Clock::time_point beganAt;
    Clock::time_point endedAt;
    bool ended = false;
    Clock::time_point lastStatusAt;
    bool statusEverPainted = false;
    std::size_t lastStatusLen = 0;
    std::vector<PointState> pointStates;
    std::vector<std::pair<std::thread::id, int>> workerIds;
};

/**
 * Honor the shared `--progress [FILE]` flag: when present, build a
 * monitor labelled @p label (status line to stderr, TTY-aware;
 * heartbeat JSONL when the flag names a file). @return nullptr when
 * the flag is absent — hand the raw pointer to SweepOptions::progress.
 */
std::unique_ptr<ProgressMonitor>
progressFromCli(const util::Cli &cli, const std::string &label);

} // namespace exp
} // namespace imsim

#endif // IMSIM_EXP_PROGRESS_HH
