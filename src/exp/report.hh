/**
 * @file
 * Structured results for the experiment engine: named per-point metrics
 * (scalars and percentile summaries), aligned console tables, and
 * machine-readable JSON/CSV artifacts for the bench binaries'
 * "--report out.json" flag.
 */

#ifndef IMSIM_EXP_REPORT_HH
#define IMSIM_EXP_REPORT_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hh"

namespace imsim {
namespace util {
class Cli;
class TableWriter;
} // namespace util

namespace exp {

/** Ordered (name, value) labels identifying one sweep point. */
using Params = std::vector<std::pair<std::string, std::string>>;

/**
 * Ordered named scalar metrics for one sweep point.
 *
 * Insertion order is preserved so tables and JSON come out in the order
 * the experiment recorded them.
 */
class MetricSet
{
  public:
    /** Set (or overwrite) metric @p name. */
    void set(const std::string &name, double value);

    /** @return whether metric @p name was recorded. */
    bool has(const std::string &name) const;

    /** @return metric @p name; FatalError when absent. */
    double get(const std::string &name) const;

    /** @return metrics in insertion order. */
    const std::vector<std::pair<std::string, double>> &
    entries() const
    {
        return values;
    }

  private:
    std::vector<std::pair<std::string, double>> values;
};

/**
 * Per-sweep-point metric collector handed to experiment bodies.
 *
 * Scalars are recorded directly; sample distributions accumulate into a
 * named PercentileEstimator and flatten to <name>.mean/.p50/.p95/.p99
 * in snapshot(). One registry belongs to one sweep point (one worker),
 * so no synchronisation is needed.
 */
class MetricsRegistry
{
  public:
    /** Record scalar metric @p name. */
    void scalar(const std::string &name, double value);

    /** Add one sample to distribution @p name. */
    void sample(const std::string &name, double value);

    /** @return scalars plus flattened distribution summaries. */
    MetricSet snapshot() const;

  private:
    MetricSet scalars;
    std::vector<std::pair<std::string, util::PercentileEstimator>> dists;
};

/** One sweep point: identifying params plus its collected metrics. */
struct RunRecord
{
    Params params;
    MetricSet metrics;
};

/**
 * Structured result of one experiment run (one record per sweep point).
 *
 * Deliberately omits worker count and wall-clock time from the payload:
 * a report is bit-identical whether the sweep ran with --jobs 1 or N,
 * which is how the determinism tests compare runs.
 */
class RunReport
{
  public:
    explicit RunReport(std::string name = "") : reportName(std::move(name))
    {}

    /** @return the experiment name. */
    const std::string &name() const { return reportName; }

    /** Append one sweep-point record. */
    void add(RunRecord record);

    /** @return records in sweep order. */
    const std::vector<RunRecord> &records() const { return points; }

    /**
     * @return an aligned table: one column per param, then one per
     *         metric (union across records, first-seen order).
     */
    util::TableWriter toTable() const;

    /** Serialise to JSON (round-trips through fromJson()). */
    std::string toJson() const;

    /** Parse a report previously produced by toJson(). */
    static RunReport fromJson(const std::string &json);

    /** Write the toTable() CSV rendering to @p os. */
    void writeCsv(std::ostream &os) const;

    /** Write toJson() to file @p path; FatalError when unwritable. */
    void writeJsonFile(const std::string &path) const;

  private:
    std::string reportName;
    std::vector<RunRecord> points;
};

/**
 * Honor the shared "--report out.json" flag: when present, write the
 * report there and print a one-line confirmation to @p os.
 */
void maybeWriteReport(const util::Cli &cli, const RunReport &report,
                      std::ostream &os);

} // namespace exp
} // namespace imsim

#endif // IMSIM_EXP_REPORT_HH
