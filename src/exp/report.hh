/**
 * @file
 * Structured results for the experiment engine: named per-point metrics
 * (scalars and percentile summaries), aligned console tables, and
 * machine-readable JSON/CSV artifacts for the bench binaries'
 * "--report out.json" flag. Reports optionally carry a provenance
 * "meta" block (see obs::RunManifest) and a wall-clock "timing"
 * section — both outside the deterministic result payload.
 */

#ifndef IMSIM_EXP_REPORT_HH
#define IMSIM_EXP_REPORT_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hh"

namespace imsim {
namespace util {
class Cli;
class TableWriter;
} // namespace util

namespace exp {

/** Ordered (name, value) labels identifying one sweep point. */
using Params = std::vector<std::pair<std::string, std::string>>;

/**
 * Ordered named scalar metrics for one sweep point.
 *
 * Insertion order is preserved so tables and JSON come out in the order
 * the experiment recorded them.
 */
class MetricSet
{
  public:
    /** Set (or overwrite) metric @p name. */
    void set(const std::string &name, double value);

    /** @return whether metric @p name was recorded. */
    bool has(const std::string &name) const;

    /** @return metric @p name; FatalError when absent. */
    double get(const std::string &name) const;

    /** @return metrics in insertion order. */
    const std::vector<std::pair<std::string, double>> &
    entries() const
    {
        return values;
    }

  private:
    std::vector<std::pair<std::string, double>> values;
};

/**
 * Per-sweep-point metric collector handed to experiment bodies.
 *
 * Scalars are recorded directly; sample distributions accumulate into a
 * named PercentileEstimator and flatten to <name>.mean/.p50/.p95/.p99
 * in snapshot(). One registry belongs to one sweep point (one worker),
 * so no synchronisation is needed.
 */
class MetricsRegistry
{
  public:
    /** Record scalar metric @p name. */
    void scalar(const std::string &name, double value);

    /** Add one sample to distribution @p name. */
    void sample(const std::string &name, double value);

    /** @return scalars plus flattened distribution summaries. */
    MetricSet snapshot() const;

  private:
    MetricSet scalars;
    std::vector<std::pair<std::string, util::PercentileEstimator>> dists;
};

/** One sweep point: identifying params plus its collected metrics. */
struct RunRecord
{
    Params params;
    MetricSet metrics;
};

/**
 * Wall-clock timing of one sweep point, recorded by ProgressMonitor.
 * Observability only: lives in the report's "timing" section, never in
 * the result payload, because it legitimately varies run to run.
 */
struct PointTiming
{
    std::size_t index = 0; ///< Sweep point index.
    double queueMs = 0.0;  ///< Submission-to-start queue wait.
    double wallMs = 0.0;   ///< Point body wall time.
    int worker = 0;        ///< Worker slot that ran the point.
};

/** Wall-clock timing of one whole sweep. */
struct RunTiming
{
    double totalWallMs = 0.0;         ///< First submit to last finish.
    std::vector<PointTiming> points;  ///< Per-point rows, index order.
};

/**
 * Structured result of one experiment run (one record per sweep point).
 *
 * The *result payload* (name + points) deliberately omits worker count
 * and wall-clock time: it is bit-identical whether the sweep ran with
 * --jobs 1 or N, which is how the determinism tests compare runs. Run
 * provenance and wall-clock timing live in the separate optional
 * "meta" and "timing" sections, which are only emitted when set and
 * are the only sections allowed to differ between job counts.
 */
class RunReport
{
  public:
    explicit RunReport(std::string name = "") : reportName(std::move(name))
    {}

    /** @return the experiment name. */
    const std::string &name() const { return reportName; }

    /** Append one sweep-point record. */
    void add(RunRecord record);

    /** @return records in sweep order. */
    const std::vector<RunRecord> &records() const { return points; }

    /**
     * Attach run provenance, e.g. obs::RunManifest::entries(). Emitted
     * as the JSON "meta" object (string values, given order).
     */
    void setMeta(std::vector<std::pair<std::string, std::string>> meta);

    /** @return the provenance fields (empty when none attached). */
    const std::vector<std::pair<std::string, std::string>> &meta() const
    {
        return metaFields;
    }

    /** @return whether provenance was attached. */
    bool hasMeta() const { return !metaFields.empty(); }

    /** Attach wall-clock timing (the JSON "timing" section). */
    void setTiming(RunTiming timing);

    /** @return the timing section (valid only when hasTiming()). */
    const RunTiming &timing() const { return runTiming; }

    /** @return whether a timing section was attached. */
    bool hasTiming() const { return timingSet; }

    /**
     * @return an aligned table: one column per param, then one per
     *         metric (union across records, first-seen order).
     */
    util::TableWriter toTable() const;

    /** Serialise to JSON (round-trips through fromJson()). */
    std::string toJson() const;

    /** Parse a report previously produced by toJson(). */
    static RunReport fromJson(const std::string &json);

    /** Write the toTable() CSV rendering to @p os. */
    void writeCsv(std::ostream &os) const;

    /** Write toJson() to file @p path; FatalError when unwritable. */
    void writeJsonFile(const std::string &path) const;

  private:
    std::string reportName;
    std::vector<RunRecord> points;
    std::vector<std::pair<std::string, std::string>> metaFields;
    RunTiming runTiming;
    bool timingSet = false;
};

/**
 * Honor the shared "--report out.json" flag: when present, write the
 * report there and print a one-line confirmation to @p os.
 */
void maybeWriteReport(const util::Cli &cli, const RunReport &report,
                      std::ostream &os);

} // namespace exp
} // namespace imsim

#endif // IMSIM_EXP_REPORT_HH
