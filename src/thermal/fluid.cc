#include "thermal/fluid.hh"

#include "util/logging.hh"

namespace imsim {
namespace thermal {

double
DielectricFluid::vaporMassFlow(Watts heat) const
{
    util::fatalIf(heat < 0.0, "vaporMassFlow: negative heat");
    return heat / latentHeatJPerG;
}

const DielectricFluid &
fc3284()
{
    static const DielectricFluid fluid{"3M FC-3284", 50.0, 1.86, 105.0, 30.0};
    return fluid;
}

const DielectricFluid &
hfe7000()
{
    static const DielectricFluid fluid{"3M HFE-7000", 34.0, 7.4, 142.0, 30.0};
    return fluid;
}

const std::vector<DielectricFluid> &
fluidCatalog()
{
    static const std::vector<DielectricFluid> fluids{fc3284(), hfe7000()};
    return fluids;
}

const DielectricFluid &
fluidByName(const std::string &name)
{
    for (const auto &fluid : fluidCatalog())
        if (fluid.name == name)
            return fluid;
    util::fatal("unknown dielectric fluid: " + name);
}

CelsiusPerWatt
BoilingInterface::thermalResistance() const
{
    switch (coating) {
      case Coating::DirectIhs:
        return 0.08; // Table III, Skylake 8180 blade.
      case Coating::CopperPlate:
        return 0.12; // Table III, Skylake 8168 blade.
      case Coating::None:
        // BEC improves boiling performance by 2x over uncoated surfaces
        // (Sec. II), so an uncoated IHS has twice the DirectIhs resistance.
        return 0.16;
    }
    util::panic("BoilingInterface: unhandled coating");
}

double
BoilingInterface::criticalHeatFlux() const
{
    // Un-coated smooth surfaces handle ~10 W/cm^2 before requiring BEC
    // (Sec. II); the L-20227 coating doubles boiling performance.
    switch (coating) {
      case Coating::None:
        return 10.0;
      case Coating::CopperPlate:
        return 20.0;
      case Coating::DirectIhs:
        return 20.0;
    }
    util::panic("BoilingInterface: unhandled coating");
}

bool
BoilingInterface::sustainsNucleateBoiling(Watts heat, double area) const
{
    util::fatalIf(area <= 0.0, "sustainsNucleateBoiling: non-positive area");
    return heat / area <= criticalHeatFlux();
}

} // namespace thermal
} // namespace imsim
