#include "thermal/weather.hh"

#include <cmath>

#include "thermal/fluid.hh"
#include "util/logging.hh"

namespace imsim {
namespace thermal {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerYear = 365.0 * kSecondsPerDay;
} // namespace

WeatherModel::WeatherModel(SiteClimate site, Celsius approach)
    : climate(site), appr(approach)
{
    util::fatalIf(approach <= 0.0,
                  "WeatherModel: approach must be positive");
    util::fatalIf(site.seasonalAmplitude < 0.0 ||
                      site.diurnalAmplitude < 0.0 ||
                      site.weatherNoise < 0.0,
                  "WeatherModel: negative amplitude");
}

Celsius
WeatherModel::ambient(Seconds t) const
{
    util::fatalIf(t < 0.0, "WeatherModel: negative time");
    // Season peaks mid-year (day ~200); day peaks mid-afternoon.
    const double year_frac = std::fmod(t, kSecondsPerYear) /
                             kSecondsPerYear;
    const double day_frac = std::fmod(t, kSecondsPerDay) / kSecondsPerDay;
    return climate.annualMean +
           climate.seasonalAmplitude *
               std::sin(2.0 * kPi * (year_frac - 0.3)) +
           climate.diurnalAmplitude *
               std::sin(2.0 * kPi * (day_frac - 0.375));
}

Celsius
WeatherModel::ambient(Seconds t, util::Rng &rng) const
{
    return ambient(t) + rng.normal(0.0, climate.weatherNoise);
}

Celsius
WeatherModel::annualPeakAmbient() const
{
    return climate.annualMean + climate.seasonalAmplitude +
           climate.diurnalAmplitude;
}

Celsius
WeatherModel::subcoolingMargin(const DielectricFluid &fluid,
                               Seconds t) const
{
    return fluid.boilingPoint - coolantSupply(t);
}

} // namespace thermal
} // namespace imsim
