/**
 * @file
 * Junction temperature models: the steady-state resistance model behind
 * Table III and a first-order thermal RC for transients (the temperature
 * swing component DTj of the lifetime model, Table V).
 */

#ifndef IMSIM_THERMAL_JUNCTION_HH
#define IMSIM_THERMAL_JUNCTION_HH

#include "thermal/cooling.hh"
#include "util/units.hh"

namespace imsim {
namespace thermal {

/**
 * First-order thermal RC node.
 *
 * dT/dt = (P - (T - Tref)/R) / C. Used to track the junction temperature
 * of a component whose power varies over time, which drives both thermal
 * throttling and the thermal-cycling term of the lifetime model.
 */
class ThermalNode
{
  public:
    /**
     * @param resistance   Junction-to-coolant resistance [C/W].
     * @param capacitance  Lumped thermal capacitance [J/C].
     * @param initial      Initial temperature [C].
     */
    ThermalNode(CelsiusPerWatt resistance, double capacitance,
                Celsius initial);

    /**
     * Advance the node by @p dt seconds with constant power @p power and
     * coolant reference @p ref. Uses the exact exponential solution of the
     * linear ODE, so large steps remain stable.
     */
    void step(Seconds dt, Watts power, Celsius ref);

    /** @return current junction temperature [C]. */
    Celsius temperature() const { return temp; }

    /** Steady-state temperature for constant power and reference. */
    Celsius steadyState(Watts power, Celsius ref) const;

    /** @return thermal time constant R*C [s]. */
    Seconds timeConstant() const { return rth * cap; }

    /** Reset the node to a given temperature. */
    void reset(Celsius t) { temp = t; }

    /** @return minimum temperature seen since construction/resetExtremes. */
    Celsius minSeen() const { return minTemp; }

    /** @return maximum temperature seen since construction/resetExtremes. */
    Celsius maxSeen() const { return maxTemp; }

    /** Restart min/max tracking from the current temperature. */
    void resetExtremes();

  private:
    CelsiusPerWatt rth;
    double cap;
    Celsius temp;
    Celsius minTemp;
    Celsius maxTemp;
};

/**
 * Observed junction statistics for one (processor, cooling) configuration;
 * the quantities Table III reports.
 */
struct JunctionReport
{
    Celsius tjMax;              ///< Observed max junction temperature.
    Watts power;                ///< Package power at that point.
    CelsiusPerWatt resistance;  ///< Effective thermal resistance.
    Celsius reference;          ///< Coolant reference temperature.
};

/**
 * Compute the steady-state junction report for a component dissipating
 * @p power under @p cooling.
 */
JunctionReport junctionReport(const CoolingSystem &cooling, Watts power);

} // namespace thermal
} // namespace imsim

#endif // IMSIM_THERMAL_JUNCTION_HH
