/**
 * @file
 * Weather model for the heat-rejection loop.
 *
 * The 2PIC tank's condenser ultimately rejects heat through a dry cooler
 * against outdoor air (Sec. II), so the coolant-loop temperature — and
 * through it the fluid subcooling margin and junction temperatures —
 * follows the weather. This model produces seasonal + diurnal ambient
 * temperatures and the resulting dry-cooler supply temperature, letting
 * experiments ask: does the overclocking budget survive a heat wave?
 */

#ifndef IMSIM_THERMAL_WEATHER_HH
#define IMSIM_THERMAL_WEATHER_HH

#include "util/random.hh"
#include "util/units.hh"

namespace imsim {
namespace thermal {

/** Climate parameters of a datacenter site. */
struct SiteClimate
{
    Celsius annualMean = 15.0;      ///< Mean outdoor temperature.
    Celsius seasonalAmplitude = 10.0; ///< Summer/winter half-swing.
    Celsius diurnalAmplitude = 5.0; ///< Day/night half-swing.
    double weatherNoise = 1.5;      ///< Random day-to-day deviation [C].
};

/**
 * Weather-driven heat-rejection loop.
 */
class WeatherModel
{
  public:
    /**
     * @param climate   Site climate.
     * @param approach  Dry-cooler approach temperature: coolant supply
     *                  sits this far above the ambient [C].
     */
    explicit WeatherModel(SiteClimate climate = {}, Celsius approach = 8.0);

    /**
     * Outdoor temperature at @p t seconds into the year (deterministic
     * seasonal + diurnal components).
     */
    Celsius ambient(Seconds t) const;

    /** Ambient with day-to-day noise drawn from @p rng. */
    Celsius ambient(Seconds t, util::Rng &rng) const;

    /** Coolant supply temperature at @p t [C]. */
    Celsius coolantSupply(Seconds t) const { return ambient(t) + appr; }

    /** Hottest deterministic ambient of the year [C]. */
    Celsius annualPeakAmbient() const;

    /**
     * Fluid subcooling margin for a tank at @p t: how far the coolant
     * supply sits below the fluid's boiling point. A non-positive margin
     * means the condenser can no longer condense — the overclocking
     * budget (indeed the tank) fails.
     */
    Celsius subcoolingMargin(const struct DielectricFluid &fluid,
                             Seconds t) const;

    /** @return the configured approach temperature. */
    Celsius approach() const { return appr; }

  private:
    SiteClimate climate;
    Celsius appr;
};

} // namespace thermal
} // namespace imsim

#endif // IMSIM_THERMAL_WEATHER_HH
