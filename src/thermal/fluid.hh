/**
 * @file
 * Dielectric fluid catalog for two-phase immersion cooling.
 *
 * Encodes Table II of the paper: 3M FC-3284 and 3M HFE-7000 (Novec 7000)
 * properties, plus the boiling-enhancement-coating (BEC) behaviour from
 * Sec. II ("improves boiling performance by 2x compared to un-coated
 * smooth surfaces").
 */

#ifndef IMSIM_THERMAL_FLUID_HH
#define IMSIM_THERMAL_FLUID_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace imsim {
namespace thermal {

/** Engineered dielectric fluid for immersion cooling (Table II). */
struct DielectricFluid
{
    std::string name;          ///< Commercial name, e.g. "3M FC-3284".
    Celsius boilingPoint;      ///< Boiling point at 1 atm.
    double dielectricConstant; ///< Relative permittivity.
    double latentHeatJPerG;    ///< Latent heat of vaporization [J/g].
    Years usefulLife;          ///< Fluid useful life [years].

    /**
     * Vapor mass flow required to carry @p heat away [g/s].
     * Pure phase-change transport: m_dot = Q / h_fg.
     */
    double vaporMassFlow(Watts heat) const;
};

/** @return 3M FC-3284 (Fluorinert family), boiling at 50 C. */
const DielectricFluid &fc3284();

/** @return 3M HFE-7000 (Novec 7000), boiling at 34 C. */
const DielectricFluid &hfe7000();

/** @return all catalogued fluids (Table II rows). */
const std::vector<DielectricFluid> &fluidCatalog();

/** Look up a fluid by name; raises FatalError when unknown. */
const DielectricFluid &fluidByName(const std::string &name);

/**
 * Boiling interface between a heat source and the fluid.
 *
 * Nucleate-boiling heat removal is characterised here by an effective
 * junction-to-fluid thermal resistance. The paper measured 0.12 C/W with
 * BEC on a copper plate and 0.08 C/W with BEC directly on the CPU
 * integrated heat spreader (Table III); an uncoated smooth surface has
 * twice the BEC resistance (Sec. II).
 */
struct BoilingInterface
{
    /** Where the boiling-enhancement coating is applied. */
    enum class Coating
    {
        None,        ///< Smooth surface, no BEC.
        CopperPlate, ///< BEC on a copper boiler plate atop the IHS.
        DirectIhs,   ///< BEC directly on the integrated heat spreader.
    };

    Coating coating = Coating::DirectIhs;

    /** Effective junction-to-fluid thermal resistance [C/W]. */
    CelsiusPerWatt thermalResistance() const;

    /**
     * Critical heat flux guard. Surfaces above ~10 W/cm^2 need BEC
     * (Sec. II); beyond the critical flux the boiling regime transitions
     * to film boiling and the interface can no longer remove the heat.
     *
     * @param heat Power through the interface [W].
     * @param area Wetted surface area [cm^2].
     * @return true when the interface can sustain nucleate boiling.
     */
    bool sustainsNucleateBoiling(Watts heat, double area) const;

    /** Maximum sustainable heat flux for this coating [W/cm^2]. */
    double criticalHeatFlux() const;
};

} // namespace thermal
} // namespace imsim

#endif // IMSIM_THERMAL_FLUID_HH
