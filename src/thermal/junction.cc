#include "thermal/junction.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace thermal {

ThermalNode::ThermalNode(CelsiusPerWatt resistance, double capacitance,
                         Celsius initial)
    : rth(resistance), cap(capacitance), temp(initial), minTemp(initial),
      maxTemp(initial)
{
    util::fatalIf(resistance <= 0.0, "ThermalNode: resistance must be > 0");
    util::fatalIf(capacitance <= 0.0, "ThermalNode: capacitance must be > 0");
}

void
ThermalNode::step(Seconds dt, Watts power, Celsius ref)
{
    util::fatalIf(dt < 0.0, "ThermalNode::step: negative dt");
    const Celsius target = steadyState(power, ref);
    const double decay = std::exp(-dt / timeConstant());
    temp = target + (temp - target) * decay;
    minTemp = std::min(minTemp, temp);
    maxTemp = std::max(maxTemp, temp);
}

Celsius
ThermalNode::steadyState(Watts power, Celsius ref) const
{
    return ref + rth * power;
}

void
ThermalNode::resetExtremes()
{
    minTemp = temp;
    maxTemp = temp;
}

JunctionReport
junctionReport(const CoolingSystem &cooling, Watts power)
{
    JunctionReport report;
    report.power = power;
    report.reference = cooling.referenceTemperature(power);
    report.resistance = cooling.thermalResistance();
    report.tjMax = cooling.junctionTemperature(power);
    return report;
}

} // namespace thermal
} // namespace imsim
