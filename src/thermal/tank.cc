#include "thermal/tank.hh"

#include <numeric>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace imsim {
namespace thermal {

ImmersionTank::ImmersionTank(std::string name, const DielectricFluid &fluid_in,
                             std::size_t slots, Watts condenser_cap,
                             BoilingInterface interface)
    : tankName(std::move(name)), fluid(fluid_in), heatLoads(slots, 0.0),
      condenserCap(condenser_cap), cooling(fluid_in, interface)
{
    util::fatalIf(slots == 0, "ImmersionTank: need at least one slot");
    util::fatalIf(condenser_cap <= 0.0,
                  "ImmersionTank: condenser capacity must be positive");
}

void
ImmersionTank::setHeatLoad(std::size_t slot, Watts power)
{
    util::fatalIf(slot >= heatLoads.size(),
                  "ImmersionTank::setHeatLoad: slot out of range");
    util::fatalIf(power < 0.0, "ImmersionTank::setHeatLoad: negative power");
    heatLoads[slot] = power;
}

Watts
ImmersionTank::heatLoad(std::size_t slot) const
{
    util::fatalIf(slot >= heatLoads.size(),
                  "ImmersionTank::heatLoad: slot out of range");
    return heatLoads[slot];
}

void
ImmersionTank::setFluidLevel(double level)
{
    // Below ~5% the servers would no longer be submerged; treat that as a
    // modelling error rather than a recoverable degradation.
    util::fatalIf(level < 0.05 || level > 1.0,
                  "ImmersionTank::setFluidLevel: level out of [0.05, 1]");
    fluidLevelFrac = level;
}

Watts
ImmersionTank::totalHeat() const
{
    return std::accumulate(heatLoads.begin(), heatLoads.end(), 0.0);
}

Celsius
ImmersionTank::fluidTemperature() const
{
    // While the condenser keeps up, boiling pins the bulk fluid at its
    // saturation temperature.
    return fluid.boilingPoint;
}

double
ImmersionTank::recordServiceEvent()
{
    // Opening the sealed tank vents the vapor blanket; a rough estimate of
    // 50 g per service event, mitigated by the mechanical/chemical vapor
    // traps the paper describes.
    const double grams = 50.0;
    vaporLoss += grams;
    if (serviceEventMetric)
        serviceEventMetric->inc();
    return grams;
}

void
ImmersionTank::attachMetrics(obs::MetricRegistry &registry,
                             const std::string &prefix)
{
    registry.registerGauge(prefix + ".total_heat_w",
                           [this] { return totalHeat(); });
    registry.registerGauge(prefix + ".headroom_w",
                           [this] { return headroom(); });
    registry.registerGauge(prefix + ".fluid_temp_c",
                           [this] { return fluidTemperature(); });
    registry.registerGauge(prefix + ".fluid_level",
                           [this] { return fluidLevel(); });
    registry.registerGauge(prefix + ".vapor_loss_g",
                           [this] { return vaporLossGrams(); });
    serviceEventMetric = &registry.counter(prefix + ".service_events");
}

ImmersionTank
makeSmallTank1()
{
    // 2 slots, HFE-7000, BEC directly on the IHS; generously sized
    // condenser for overclocking experiments.
    return ImmersionTank("small tank #1", hfe7000(), 2, 3000.0,
                         BoilingInterface{BoilingInterface::Coating::DirectIhs});
}

ImmersionTank
makeSmallTank2()
{
    return ImmersionTank("small tank #2", fc3284(), 2, 3000.0,
                         BoilingInterface{BoilingInterface::Coating::DirectIhs});
}

ImmersionTank
makeLargeTank()
{
    // 36 Open Compute blades at up to 700 W each = 25.2 kW IT load.
    return ImmersionTank(
        "large tank", fc3284(), 36, 36 * 700.0,
        BoilingInterface{BoilingInterface::Coating::CopperPlate});
}

} // namespace thermal
} // namespace imsim
