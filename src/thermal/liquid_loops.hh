/**
 * @file
 * The remaining Table I liquid technologies as usable cooling systems:
 * CPU cold plates (pumped liquid through per-component plates; Sec. II
 * notes their engineering overhead but strong thermals) and single-phase
 * immersion (1PIC: pumped dielectric liquid, no phase change — the
 * Alibaba deployment [74]).
 *
 * Both complete the CoolingSystem family so every Table I row can feed
 * the junction/power/lifetime models; the paper's conclusions "apply to
 * 1PIC and cold plates as well" (Sec. II).
 */

#ifndef IMSIM_THERMAL_LIQUID_LOOPS_HH
#define IMSIM_THERMAL_LIQUID_LOOPS_HH

#include "thermal/cooling.hh"

namespace imsim {
namespace thermal {

/**
 * CPU cold plate: facility water through a microchannel plate mounted on
 * the package. Reference temperature is the loop supply plus the
 * coolant's caloric rise; resistance is the plate's junction-to-liquid
 * path. Non-plated components still see air.
 */
class ColdPlateCooling : public CoolingSystem
{
  public:
    /**
     * @param supply_temp   Loop supply temperature [C].
     * @param plate_rth     Junction-to-liquid resistance [C/W].
     * @param flow_lpm      Loop flow per plate [liters/minute].
     */
    explicit ColdPlateCooling(Celsius supply_temp = 30.0,
                              CelsiusPerWatt plate_rth = 0.045,
                              double flow_lpm = 1.5);

    std::string name() const override;
    CoolingTech tech() const override { return CoolingTech::CpuColdPlate; }
    Celsius referenceTemperature(Watts component_power) const override;
    CelsiusPerWatt thermalResistance() const override { return rth; }

  private:
    Celsius supply;
    CelsiusPerWatt rth;
    double flowLpm;
};

/**
 * Single-phase immersion (1PIC): the tank liquid absorbs heat and is
 * pumped through a heat exchanger. Unlike 2PIC's boiling-pinned
 * reference, the bulk liquid temperature rises with the tank load, so
 * the reference is load-dependent.
 */
class SinglePhaseImmersionCooling : public CoolingSystem
{
  public:
    /**
     * @param inlet_temp    Liquid temperature entering the tank [C].
     * @param rth           Junction-to-liquid resistance [C/W] (no
     *                      boiling enhancement; forced convection).
     * @param tank_load     Total tank heat load [W] (sets the bulk rise).
     * @param pump_flow_kgs Pumped mass flow [kg/s].
     */
    explicit SinglePhaseImmersionCooling(Celsius inlet_temp = 35.0,
                                         CelsiusPerWatt rth = 0.14,
                                         Watts tank_load = 10000.0,
                                         double pump_flow_kgs = 2.0);

    std::string name() const override;
    CoolingTech tech() const override { return CoolingTech::Immersion1P; }
    Celsius referenceTemperature(Watts component_power) const override;
    CelsiusPerWatt thermalResistance() const override { return rth; }

    /** Bulk liquid temperature at the current tank load [C]. */
    Celsius bulkTemperature() const;

    /** Update the total tank heat load [W]. */
    void setTankLoad(Watts watts);

  private:
    Celsius inlet;
    CelsiusPerWatt rth;
    Watts tankLoad;
    double pumpFlowKgs;

    /** Specific heat of the dielectric liquid [J/(kg C)]. */
    static constexpr double kCp = 1100.0;
};

} // namespace thermal
} // namespace imsim

#endif // IMSIM_THERMAL_LIQUID_LOOPS_HH
