#include "thermal/network.hh"

#include <algorithm>
#include <cmath>

#include "obs/profiler.hh"
#include "util/logging.hh"

namespace imsim {
namespace thermal {

ThermalNetwork::NodeId
ThermalNetwork::addNode(std::string name, double capacitance,
                        Celsius initial)
{
    util::fatalIf(capacitance <= 0.0,
                  "ThermalNetwork::addNode: capacitance must be positive");
    nodes.push_back(Node{std::move(name), capacitance, initial, 0.0,
                         initial, initial});
    return nodes.size() - 1;
}

ThermalNetwork::NodeId
ThermalNetwork::addAmbient(std::string name, Celsius temperature)
{
    nodes.push_back(Node{std::move(name), 0.0, temperature, 0.0,
                         temperature, temperature});
    return nodes.size() - 1;
}

void
ThermalNetwork::checkNode(NodeId node) const
{
    util::fatalIf(node >= nodes.size(), "ThermalNetwork: bad node id");
}

void
ThermalNetwork::couple(NodeId a, NodeId b, CelsiusPerWatt resistance)
{
    checkNode(a);
    checkNode(b);
    util::fatalIf(a == b, "ThermalNetwork::couple: self-coupling");
    util::fatalIf(resistance <= 0.0,
                  "ThermalNetwork::couple: resistance must be positive");
    edges.push_back(Edge{a, b, 1.0 / resistance});
}

void
ThermalNetwork::inject(NodeId node, Watts power)
{
    checkNode(node);
    util::fatalIf(power < 0.0, "ThermalNetwork::inject: negative power");
    nodes[node].injected = power;
}

Watts
ThermalNetwork::netInflow(NodeId node) const
{
    Watts flow = nodes[node].injected;
    for (const auto &edge : edges) {
        if (edge.a == node)
            flow += edge.conductance *
                    (nodes[edge.b].temp - nodes[edge.a].temp);
        else if (edge.b == node)
            flow += edge.conductance *
                    (nodes[edge.a].temp - nodes[edge.b].temp);
    }
    return flow;
}

void
ThermalNetwork::step(Seconds dt)
{
    obs::ProfScope prof("thermal.network.step");
    util::fatalIf(dt < 0.0, "ThermalNetwork::step: negative dt");
    if (dt == 0.0 || nodes.empty())
        return;

    // Stability bound for explicit Euler: dt_sub < C_i / G_i for every
    // capacitive node (G_i = total conductance attached). Use half that.
    double min_tau = 1e30;
    for (NodeId i = 0; i < nodes.size(); ++i) {
        if (nodes[i].capacitance <= 0.0)
            continue;
        double conductance = 0.0;
        for (const auto &edge : edges)
            if (edge.a == i || edge.b == i)
                conductance += edge.conductance;
        if (conductance > 0.0)
            min_tau = std::min(min_tau, nodes[i].capacitance / conductance);
    }
    const Seconds max_sub = min_tau < 1e30 ? 0.5 * min_tau : dt;
    const auto substeps =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       std::ceil(dt / max_sub)));
    const Seconds sub_dt = dt / static_cast<double>(substeps);

    std::vector<Celsius> next(nodes.size());
    for (std::uint64_t s = 0; s < substeps; ++s) {
        for (NodeId i = 0; i < nodes.size(); ++i) {
            if (nodes[i].capacitance <= 0.0) {
                next[i] = nodes[i].temp; // Ambient: fixed.
            } else {
                next[i] = nodes[i].temp +
                          sub_dt * netInflow(i) / nodes[i].capacitance;
            }
        }
        for (NodeId i = 0; i < nodes.size(); ++i) {
            nodes[i].temp = next[i];
            nodes[i].minTemp = std::min(nodes[i].minTemp, next[i]);
            nodes[i].maxTemp = std::max(nodes[i].maxTemp, next[i]);
        }
    }
}

void
ThermalNetwork::settle()
{
    // Gauss-Seidel: each capacitive node relaxes to the
    // conductance-weighted mean of its neighbours plus injection.
    for (int iter = 0; iter < 20000; ++iter) {
        double worst = 0.0;
        for (NodeId i = 0; i < nodes.size(); ++i) {
            if (nodes[i].capacitance <= 0.0)
                continue;
            double conductance = 0.0;
            double weighted = nodes[i].injected;
            for (const auto &edge : edges) {
                if (edge.a == i) {
                    conductance += edge.conductance;
                    weighted += edge.conductance * nodes[edge.b].temp;
                } else if (edge.b == i) {
                    conductance += edge.conductance;
                    weighted += edge.conductance * nodes[edge.a].temp;
                }
            }
            if (conductance <= 0.0)
                continue;
            const Celsius target = weighted / conductance;
            worst = std::max(worst, std::abs(target - nodes[i].temp));
            nodes[i].temp = target;
        }
        if (worst < 1e-9)
            break;
    }
    for (auto &node : nodes) {
        node.minTemp = std::min(node.minTemp, node.temp);
        node.maxTemp = std::max(node.maxTemp, node.temp);
    }
}

Celsius
ThermalNetwork::temperature(NodeId node) const
{
    checkNode(node);
    return nodes[node].temp;
}

const std::string &
ThermalNetwork::name(NodeId node) const
{
    checkNode(node);
    return nodes[node].label;
}

Celsius
ThermalNetwork::minSeen(NodeId node) const
{
    checkNode(node);
    return nodes[node].minTemp;
}

Celsius
ThermalNetwork::maxSeen(NodeId node) const
{
    checkNode(node);
    return nodes[node].maxTemp;
}

void
ThermalNetwork::resetExtremes()
{
    for (auto &node : nodes) {
        node.minTemp = node.temp;
        node.maxTemp = node.temp;
    }
}

ImmersedCpuNetwork
makeImmersedCpuNetwork(const DielectricFluid &fluid,
                       BoilingInterface interface, double fluid_mass_kg,
                       CelsiusPerWatt condenser_resistance,
                       Celsius coolant_temp, Watts background_load_w)
{
    util::fatalIf(fluid_mass_kg <= 0.0,
                  "makeImmersedCpuNetwork: fluid mass must be positive");
    if (background_load_w < 0.0) {
        // Default: the rest of the tank dissipates enough that the
        // shared fluid sits right at its saturation temperature with
        // the modelled CPU near idle.
        background_load_w = std::max(
            0.0, (fluid.boilingPoint - coolant_temp) /
                     condenser_resistance - 200.0);
    }
    ImmersedCpuNetwork out;
    // Die: tiny capacitance (silicon + package), fast response.
    out.die = out.network.addNode("die", 20.0, fluid.boilingPoint);
    // Integrated heat spreader / boiler plate.
    out.spreader =
        out.network.addNode("spreader", 150.0, fluid.boilingPoint);
    // Tank fluid: ~1100 J/(kg C) specific heat for fluorinated fluids.
    out.fluid = out.network.addNode("fluid", fluid_mass_kg * 1100.0,
                                    fluid.boilingPoint);
    out.coolant = out.network.addAmbient("coolant", coolant_temp);

    // The other servers' heat keeps the fluid at temperature.
    out.network.inject(out.fluid, background_load_w);

    // Junction-to-case resistance inside the package.
    out.network.couple(out.die, out.spreader, 0.02);
    // Boiling interface: the Table III resistances minus the package
    // share already counted above.
    const CelsiusPerWatt boil =
        std::max(0.01, interface.thermalResistance() - 0.02);
    out.network.couple(out.spreader, out.fluid, boil);
    // Condenser loop.
    out.network.couple(out.fluid, out.coolant, condenser_resistance);
    return out;
}

} // namespace thermal
} // namespace imsim
