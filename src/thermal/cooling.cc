#include "thermal/cooling.hh"

#include "util/logging.hh"

namespace imsim {
namespace thermal {

const std::vector<CoolingTechSpec> &
coolingTechCatalog()
{
    // Table I: average PUE, peak PUE, server fan overhead, max cooling.
    static const std::vector<CoolingTechSpec> catalog{
        {CoolingTech::Chiller, "Chillers", 1.70, 2.00, 0.05, 700.0},
        {CoolingTech::WaterSide, "Water-side", 1.19, 1.25, 0.06, 700.0},
        {CoolingTech::DirectEvaporative, "Direct evaporative", 1.12, 1.20,
         0.06, 700.0},
        {CoolingTech::CpuColdPlate, "CPU cold plates", 1.08, 1.13, 0.03,
         2000.0},
        {CoolingTech::Immersion1P, "1PIC", 1.05, 1.07, 0.00, 2000.0},
        {CoolingTech::Immersion2P, "2PIC", 1.02, 1.03, 0.00, 4000.0},
    };
    return catalog;
}

const CoolingTechSpec &
coolingTechSpec(CoolingTech tech)
{
    for (const auto &spec : coolingTechCatalog())
        if (spec.tech == tech)
            return spec;
    util::panic("coolingTechSpec: unknown technology");
}

bool
CoolingSystem::supports(Watts server_power) const
{
    util::fatalIf(server_power < 0.0, "CoolingSystem: negative power");
    return server_power <= spec().maxServerCooling;
}

Celsius
CoolingSystem::junctionTemperature(Watts component_power) const
{
    util::fatalIf(component_power < 0.0,
                  "junctionTemperature: negative power");
    return referenceTemperature(component_power) +
           thermalResistance() * component_power;
}

AirCooling::AirCooling(CoolingTech tech_class, Celsius inlet_temp,
                       CelsiusPerWatt rth_ja, Celsius preheat_delta)
    : techClass(tech_class), inlet(inlet_temp), rth(rth_ja),
      preheat(preheat_delta)
{
    util::fatalIf(tech_class == CoolingTech::Immersion1P ||
                      tech_class == CoolingTech::Immersion2P ||
                      tech_class == CoolingTech::CpuColdPlate,
                  "AirCooling: technology class must be an air technology");
    util::fatalIf(rth_ja <= 0.0, "AirCooling: resistance must be positive");
}

std::string
AirCooling::name() const
{
    return "Air (" + coolingTechSpec(techClass).name + ")";
}

Celsius
AirCooling::referenceTemperature(Watts component_power) const
{
    util::fatalIf(component_power < 0.0,
                  "AirCooling: negative component power");
    // The local ambient at the CPU is the inlet air heated by upstream
    // components; the pre-heat is approximately load-independent at the
    // fixed 110 CFM airflow of the paper's thermal chamber.
    return inlet + preheat;
}

TwoPhaseImmersionCooling::TwoPhaseImmersionCooling(
    const DielectricFluid &fluid, BoilingInterface boil_interface)
    : tankFluid(fluid), interface(boil_interface)
{}

std::string
TwoPhaseImmersionCooling::name() const
{
    return "2PIC (" + tankFluid.name + ")";
}

Celsius
TwoPhaseImmersionCooling::referenceTemperature(Watts) const
{
    // While boiling, the fluid pins the reference at its saturation
    // temperature regardless of load (Fig. 1).
    return tankFluid.boilingPoint;
}

CelsiusPerWatt
TwoPhaseImmersionCooling::thermalResistance() const
{
    return interface.thermalResistance();
}

bool
TwoPhaseImmersionCooling::supports(Watts server_power) const
{
    util::fatalIf(server_power < 0.0, "2PIC: negative power");
    // Per-CPU critical-heat-flux guard: assume a ~7 cm^2 die/IHS wetted
    // area per 350 W of package power as the limiting surface.
    const double ihs_area_cm2 = 20.0;
    return server_power <= spec().maxServerCooling &&
           interface.sustainsNucleateBoiling(
               std::min(server_power, 400.0), ihs_area_cm2);
}

} // namespace thermal
} // namespace imsim
