#include "thermal/environment.hh"

#include "util/logging.hh"

namespace imsim {
namespace thermal {

EnvironmentModel::EnvironmentModel(EnvironmentParams params) : cfg(params)
{
    util::fatalIf(cfg.gridCarbonKgPerKwh < 0.0,
                  "EnvironmentModel: negative carbon intensity");
    util::fatalIf(cfg.renewableFraction < 0.0 ||
                      cfg.renewableFraction > 1.0,
                  "EnvironmentModel: renewable fraction out of [0,1]");
    util::fatalIf(cfg.vaporTrapEfficiency < 0.0 ||
                      cfg.vaporTrapEfficiency > 1.0,
                  "EnvironmentModel: trap efficiency out of [0,1]");
}

double
EnvironmentModel::waterUsageEffectiveness(CoolingTech tech)
{
    // Liters per IT kWh. Direct evaporative cooling consumes the most;
    // chillers reject through cooling towers; the paper projects 2PIC
    // (dry cooler + evaporative assist on hot days) at par with
    // evaporative facilities.
    switch (tech) {
      case CoolingTech::Chiller:
        return 1.2;
      case CoolingTech::WaterSide:
        return 1.5;
      case CoolingTech::DirectEvaporative:
        return 1.8;
      case CoolingTech::CpuColdPlate:
        return 1.0;
      case CoolingTech::Immersion1P:
        return 1.7;
      case CoolingTech::Immersion2P:
        return 1.8; // Paper: "WUE will be at par with evaporative".
    }
    util::panic("waterUsageEffectiveness: unhandled technology");
}

EnvironmentalFootprint
EnvironmentModel::footprint(CoolingTech tech, Watts avg_server_power,
                            double vapor_loss_g_per_year) const
{
    util::fatalIf(avg_server_power < 0.0,
                  "EnvironmentModel: negative power");
    util::fatalIf(vapor_loss_g_per_year < 0.0,
                  "EnvironmentModel: negative vapor loss");
    const CoolingTechSpec &spec = coolingTechSpec(tech);

    EnvironmentalFootprint out{};
    const double it_kwh =
        avg_server_power / 1000.0 * units::kHoursPerYear;
    out.energyKwh = it_kwh * spec.avgPue;
    out.co2EnergyKg = out.energyKwh * cfg.gridCarbonKgPerKwh *
                      (1.0 - cfg.renewableFraction);
    out.wue = waterUsageEffectiveness(tech);
    out.waterLiters = it_kwh * out.wue;
    out.vaporLossKg = vapor_loss_g_per_year / 1000.0 *
                      (1.0 - cfg.vaporTrapEfficiency);
    out.co2VaporKg = out.vaporLossKg * cfg.fluidGwp;
    out.co2TotalKg = out.co2EnergyKg + out.co2VaporKg;
    return out;
}

} // namespace thermal
} // namespace imsim
