/**
 * @file
 * Immersion tank model: a vessel of dielectric fluid hosting servers, with
 * a condenser that returns vapor to liquid (Fig. 1). Mirrors the paper's
 * prototypes (Sec. III): two small 2-server tanks and one 36-blade large
 * tank.
 */

#ifndef IMSIM_THERMAL_TANK_HH
#define IMSIM_THERMAL_TANK_HH

#include <string>
#include <vector>

#include "thermal/cooling.hh"
#include "thermal/fluid.hh"
#include "util/units.hh"

namespace imsim {

namespace obs {
class Counter;
class MetricRegistry;
} // namespace obs

namespace thermal {

/**
 * A two-phase immersion tank.
 *
 * Tracks per-slot heat loads, checks condenser headroom, and exposes the
 * cooling system view (reference temperature, thermal resistance) that the
 * immersed components see. Vapor containment follows Sec. IV's
 * "Environmental impact" discussion: sealed tanks lose a small fraction of
 * vapor on service events.
 */
class ImmersionTank
{
  public:
    /**
     * @param name           Tank label, e.g. "small tank #1".
     * @param fluid          Dielectric fluid filling the tank.
     * @param slots          Number of server slots.
     * @param condenser_cap  Maximum heat the condenser rejects [W].
     * @param interface      Boiling interface used by immersed CPUs.
     */
    ImmersionTank(std::string name, const DielectricFluid &fluid,
                  std::size_t slots, Watts condenser_cap,
                  BoilingInterface interface = {});

    /** @return the tank label. */
    const std::string &name() const { return tankName; }

    /** @return the number of server slots. */
    std::size_t slots() const { return heatLoads.size(); }

    /** Set the heat load of slot @p slot to @p power [W]. */
    void setHeatLoad(std::size_t slot, Watts power);

    /** @return the heat load of slot @p slot. */
    Watts heatLoad(std::size_t slot) const;

    /** @return total heat currently dissipated into the tank [W]. */
    Watts totalHeat() const;

    /** @return nominal condenser capacity [W] (full fluid level). */
    Watts condenserCapacity() const { return condenserCap; }

    /**
     * Set the fluid level as a fraction of the nominal fill in [0.05, 1].
     * Fluid loss (leaks, un-trapped vapor escape — the cooling-degradation
     * fault) lowers the liquid/vapor interface and with it the wetted
     * condenser area, so rejection capacity scales with the level. 1.0
     * restores nominal capacity.
     */
    void setFluidLevel(double level);

    /** @return the current fluid level fraction (1.0 = nominal fill). */
    double fluidLevel() const { return fluidLevelFrac; }

    /** @return condenser capacity at the current fluid level [W]. */
    Watts effectiveCondenserCapacity() const
    {
        return condenserCap * fluidLevelFrac;
    }

    /** @return remaining condenser headroom [W] (can be negative). */
    Watts headroom() const
    {
        return effectiveCondenserCapacity() - totalHeat();
    }

    /**
     * @return whether the condenser keeps up with the current load; when
     * it does not, tank pressure and fluid temperature would rise and the
     * operator must shed load.
     */
    bool condenserKeepsUp() const
    {
        return totalHeat() <= effectiveCondenserCapacity();
    }

    /** @return the cooling-system view for immersed components. */
    const TwoPhaseImmersionCooling &coolingSystem() const { return cooling; }

    /** @return fluid temperature [C]: boiling point while boiling. */
    Celsius fluidTemperature() const;

    /**
     * Record a service event (a server lifted out of the tank), which
     * vents vapor. @return grams of fluid vapor lost for accounting.
     */
    double recordServiceEvent();

    /** @return cumulative vapor loss [g] across service events. */
    double vaporLossGrams() const { return vaporLoss; }

    /**
     * Publish this tank into @p registry under @p prefix: polled
     * gauges `<prefix>.total_heat_w`, `<prefix>.headroom_w`,
     * `<prefix>.fluid_temp_c`, `<prefix>.fluid_level`,
     * `<prefix>.vapor_loss_g` and counter
     * `<prefix>.service_events` (incremented by
     * recordServiceEvent()). The registry must outlive the tank, and
     * the tank must not move afterwards (the gauges capture `this`).
     */
    void attachMetrics(obs::MetricRegistry &registry,
                       const std::string &prefix = "tank");

  private:
    std::string tankName;
    DielectricFluid fluid;
    std::vector<Watts> heatLoads;
    Watts condenserCap;
    TwoPhaseImmersionCooling cooling;
    double fluidLevelFrac = 1.0;
    double vaporLoss = 0.0;
    obs::Counter *serviceEventMetric = nullptr;
};

/** Build the paper's small tank #1 (Xeon W-3175X in HFE-7000). */
ImmersionTank makeSmallTank1();

/** Build the paper's small tank #2 (i9900k + RTX 2080ti in FC-3284). */
ImmersionTank makeSmallTank2();

/** Build the paper's 36-blade large tank (FC-3284, 700 W servers). */
ImmersionTank makeLargeTank();

} // namespace thermal
} // namespace imsim

#endif // IMSIM_THERMAL_TANK_HH
