#include "thermal/liquid_loops.hh"

#include "util/logging.hh"

namespace imsim {
namespace thermal {

ColdPlateCooling::ColdPlateCooling(Celsius supply_temp,
                                   CelsiusPerWatt plate_rth,
                                   double flow_lpm)
    : supply(supply_temp), rth(plate_rth), flowLpm(flow_lpm)
{
    util::fatalIf(plate_rth <= 0.0,
                  "ColdPlateCooling: resistance must be positive");
    util::fatalIf(flow_lpm <= 0.0,
                  "ColdPlateCooling: flow must be positive");
}

std::string
ColdPlateCooling::name() const
{
    return "CPU cold plate";
}

Celsius
ColdPlateCooling::referenceTemperature(Watts component_power) const
{
    util::fatalIf(component_power < 0.0,
                  "ColdPlateCooling: negative power");
    // Caloric rise of the water across the plate:
    // dT = P / (m_dot * cp), water cp ~4186 J/(kg C), 1 L/min ~ 1/60 kg/s.
    const double mdot = flowLpm / 60.0;
    const double rise = component_power / (mdot * 4186.0);
    // The component sees roughly the mean of inlet and outlet.
    return supply + 0.5 * rise;
}

SinglePhaseImmersionCooling::SinglePhaseImmersionCooling(
    Celsius inlet_temp, CelsiusPerWatt rth_jl, Watts tank_load,
    double pump_flow_kgs)
    : inlet(inlet_temp), rth(rth_jl), tankLoad(tank_load),
      pumpFlowKgs(pump_flow_kgs)
{
    util::fatalIf(rth_jl <= 0.0,
                  "SinglePhaseImmersionCooling: resistance must be > 0");
    util::fatalIf(tank_load < 0.0,
                  "SinglePhaseImmersionCooling: negative tank load");
    util::fatalIf(pump_flow_kgs <= 0.0,
                  "SinglePhaseImmersionCooling: flow must be positive");
}

std::string
SinglePhaseImmersionCooling::name() const
{
    return "1PIC (pumped dielectric)";
}

Celsius
SinglePhaseImmersionCooling::bulkTemperature() const
{
    // Mean liquid temperature: inlet plus half the loop's caloric rise
    // at the current tank load.
    const double rise = tankLoad / (pumpFlowKgs * kCp);
    return inlet + 0.5 * rise;
}

Celsius
SinglePhaseImmersionCooling::referenceTemperature(Watts component_power)
    const
{
    util::fatalIf(component_power < 0.0,
                  "SinglePhaseImmersionCooling: negative power");
    return bulkTemperature();
}

void
SinglePhaseImmersionCooling::setTankLoad(Watts watts)
{
    util::fatalIf(watts < 0.0,
                  "SinglePhaseImmersionCooling: negative tank load");
    tankLoad = watts;
}

} // namespace thermal
} // namespace imsim
