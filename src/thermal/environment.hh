/**
 * @file
 * Environmental accounting (Sec. IV "Environmental impact"): Water Usage
 * Effectiveness (WUE), carbon intensity of the (partly renewable) energy
 * mix, and the global-warming-potential cost of fluid vapor losses with
 * and without the tank/facility vapor traps the paper describes.
 */

#ifndef IMSIM_THERMAL_ENVIRONMENT_HH
#define IMSIM_THERMAL_ENVIRONMENT_HH

#include "thermal/cooling.hh"
#include "util/units.hh"

namespace imsim {
namespace thermal {

/** Environmental model parameters. */
struct EnvironmentParams
{
    /** Grid carbon intensity [kg CO2e per kWh]. */
    double gridCarbonKgPerKwh = 0.35;
    /** Fraction of energy from renewables (zero-carbon). */
    double renewableFraction = 0.7;
    /** Fluid global warming potential [kg CO2e per kg of vapor lost]. */
    double fluidGwp = 5000.0;
    /** Fraction of vapor the mechanical/chemical traps recover. */
    double vaporTrapEfficiency = 0.95;
};

/** Annual environmental footprint of one server. */
struct EnvironmentalFootprint
{
    double energyKwh;       ///< Facility energy per year.
    double co2EnergyKg;     ///< CO2e from energy.
    double waterLiters;     ///< Water evaporated per year.
    double wue;             ///< Liters per IT kWh.
    double vaporLossKg;     ///< Fluid lost to the atmosphere per year.
    double co2VaporKg;      ///< CO2e from fluid loss.
    double co2TotalKg;      ///< Total CO2e per year.
};

/**
 * Environmental accounting for one cooling technology.
 */
class EnvironmentModel
{
  public:
    explicit EnvironmentModel(EnvironmentParams params = {});

    /**
     * Annual footprint of a server drawing @p avg_server_power under
     * @p tech.
     *
     * Water: evaporative technologies consume roughly 1.8 L per IT kWh
     * (direct evaporation); chiller/water-side less; immersion rejects
     * heat through a dry cooler but the paper projects WUE "at par with
     * evaporative-cooled datacenters" once the condenser loop's
     * evaporative assist is counted — we use that projection.
     *
     * @param vapor_loss_g_per_year Untrapped tank vapor loss [g/year]
     *        (immersion only; see ImmersionTank::vaporLossGrams).
     */
    EnvironmentalFootprint footprint(CoolingTech tech,
                                     Watts avg_server_power,
                                     double vapor_loss_g_per_year = 0.0)
        const;

    /** @return the parameters. */
    const EnvironmentParams &params() const { return cfg; }

    /** Liters of water per IT kWh for a technology (WUE). */
    static double waterUsageEffectiveness(CoolingTech tech);

  private:
    EnvironmentParams cfg;
};

} // namespace thermal
} // namespace imsim

#endif // IMSIM_THERMAL_ENVIRONMENT_HH
