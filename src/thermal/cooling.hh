/**
 * @file
 * Datacenter cooling technology models.
 *
 * Encodes Table I (PUE, server fan overhead, max server cooling per
 * technology) and provides CoolingSystem implementations that compute the
 * processor junction reference conditions consumed by the junction model:
 * air cooling (thermal-chamber baseline, Sec. III) and two-phase immersion
 * (the tank prototypes).
 */

#ifndef IMSIM_THERMAL_COOLING_HH
#define IMSIM_THERMAL_COOLING_HH

#include <memory>
#include <string>
#include <vector>

#include "thermal/fluid.hh"
#include "util/units.hh"

namespace imsim {
namespace thermal {

/** The cooling technologies compared in Table I. */
enum class CoolingTech
{
    Chiller,
    WaterSide,
    DirectEvaporative,
    CpuColdPlate,
    Immersion1P,
    Immersion2P,
};

/** Published characteristics of one cooling technology (Table I). */
struct CoolingTechSpec
{
    CoolingTech tech;
    std::string name;
    double avgPue;              ///< Average facility PUE.
    double peakPue;             ///< Peak facility PUE.
    double fanOverheadFraction; ///< Server fan power / server power.
    Watts maxServerCooling;     ///< Max heat removable per server [W].
};

/** @return the Table I catalog, in the table's row order. */
const std::vector<CoolingTechSpec> &coolingTechCatalog();

/** @return the spec for one technology. */
const CoolingTechSpec &coolingTechSpec(CoolingTech tech);

/**
 * Abstract cooling system: turns a heat load into the reference temperature
 * and thermal resistance the junction model needs.
 */
class CoolingSystem
{
  public:
    virtual ~CoolingSystem() = default;

    /** @return human-readable name. */
    virtual std::string name() const = 0;

    /** @return the technology class this system implements. */
    virtual CoolingTech tech() const = 0;

    /**
     * Reference temperature seen by a component sinking @p component_power:
     * the local coolant temperature at the component (air: inlet plus case
     * pre-heat; 2PIC: fluid boiling point).
     */
    virtual Celsius referenceTemperature(Watts component_power) const = 0;

    /** Junction-to-coolant thermal resistance [C/W]. */
    virtual CelsiusPerWatt thermalResistance() const = 0;

    /** Whether this system can remove @p server_power from one server. */
    virtual bool supports(Watts server_power) const;

    /** Steady-state junction temperature for @p component_power. */
    Celsius junctionTemperature(Watts component_power) const;

    /** Spec (PUE, fan overhead, limits) of the underlying technology. */
    const CoolingTechSpec &spec() const { return coolingTechSpec(tech()); }
};

/**
 * Air cooling through a heat sink in a server chassis.
 *
 * Matches the paper's air baseline: a thermal chamber supplying 35 C air
 * at 110 CFM (Sec. III), with the junction-to-air resistance observed in
 * Table III (0.21-0.22 C/W) and an internal case pre-heat that accounts
 * for the difference between inlet air and the local ambient at the CPU.
 */
class AirCooling : public CoolingSystem
{
  public:
    /**
     * @param tech_class  Air technology variant (chiller / water-side /
     *                    direct evaporative); sets PUE and limits.
     * @param inlet       Chamber/inlet air temperature [C].
     * @param rth         Junction-to-air thermal resistance [C/W].
     * @param preheat     Case-internal air pre-heat at the CPU [C].
     */
    explicit AirCooling(CoolingTech tech_class = CoolingTech::DirectEvaporative,
                        Celsius inlet = 35.0,
                        CelsiusPerWatt rth = 0.22,
                        Celsius preheat = 12.0);

    std::string name() const override;
    CoolingTech tech() const override { return techClass; }
    Celsius referenceTemperature(Watts component_power) const override;
    CelsiusPerWatt thermalResistance() const override { return rth; }

    /** @return the chamber inlet temperature. */
    Celsius inletTemperature() const { return inlet; }

  private:
    CoolingTech techClass;
    Celsius inlet;
    CelsiusPerWatt rth;
    Celsius preheat;
};

/**
 * Two-phase immersion cooling: the component boils dielectric fluid
 * through a (possibly BEC-coated) interface; the reference temperature is
 * the fluid's boiling point, independent of load while the condenser keeps
 * up (Fig. 1).
 */
class TwoPhaseImmersionCooling : public CoolingSystem
{
  public:
    /**
     * @param fluid      Dielectric fluid in the tank.
     * @param interface  Boiling interface (BEC placement).
     */
    TwoPhaseImmersionCooling(const DielectricFluid &fluid,
                             BoilingInterface boil_interface = {});

    std::string name() const override;
    CoolingTech tech() const override { return CoolingTech::Immersion2P; }
    Celsius referenceTemperature(Watts component_power) const override;
    CelsiusPerWatt thermalResistance() const override;
    bool supports(Watts server_power) const override;

    /** @return the fluid this system uses. */
    const DielectricFluid &fluid() const { return tankFluid; }

    /** @return the boiling interface configuration. */
    const BoilingInterface &boilingInterface() const { return interface; }

  private:
    DielectricFluid tankFluid;
    BoilingInterface interface;
};

} // namespace thermal
} // namespace imsim

#endif // IMSIM_THERMAL_COOLING_HH
