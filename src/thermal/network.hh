/**
 * @file
 * Lumped thermal RC network: multiple capacitive nodes joined by thermal
 * resistances, with fixed-temperature ambient nodes and per-node heat
 * injection. Generalises the single ThermalNode to the real heat path of
 * an immersed server — die -> heat spreader -> BEC/boiling film ->
 * tank fluid -> condenser -> facility coolant — so transients (load
 * bursts, condenser failures) and the thermal-cycling amplitudes feeding
 * the lifetime model can be simulated rather than assumed.
 */

#ifndef IMSIM_THERMAL_NETWORK_HH
#define IMSIM_THERMAL_NETWORK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "thermal/fluid.hh"
#include "util/units.hh"

namespace imsim {
namespace thermal {

/**
 * General lumped-parameter thermal network.
 */
class ThermalNetwork
{
  public:
    /** Handle to a node. */
    using NodeId = std::size_t;

    ThermalNetwork() = default;

    /**
     * Add a capacitive node.
     *
     * @param name        Label for reports.
     * @param capacitance Thermal capacitance [J/C] (> 0).
     * @param initial     Initial temperature [C].
     */
    NodeId addNode(std::string name, double capacitance, Celsius initial);

    /**
     * Add an ambient (fixed-temperature) node, e.g. the facility coolant
     * loop or the boiling-pinned fluid interface.
     */
    NodeId addAmbient(std::string name, Celsius temperature);

    /** Connect two nodes with a thermal resistance [C/W] (> 0). */
    void couple(NodeId a, NodeId b, CelsiusPerWatt resistance);

    /** Set the heat injected into a node [W] (ambient nodes reject it). */
    void inject(NodeId node, Watts power);

    /**
     * Advance the network by @p dt seconds (explicit integration with
     * automatic sub-stepping for stability).
     */
    void step(Seconds dt);

    /** Relax the network to its steady state (Gauss-Seidel). */
    void settle();

    /** @return current temperature of @p node [C]. */
    Celsius temperature(NodeId node) const;

    /** @return node label. */
    const std::string &name(NodeId node) const;

    /** @return number of nodes (capacitive + ambient). */
    std::size_t size() const { return nodes.size(); }

    /** @return min/max temperature seen by @p node since construction
     *  or the last resetExtremes(). */
    Celsius minSeen(NodeId node) const;
    Celsius maxSeen(NodeId node) const;

    /** Restart extreme tracking from current temperatures. */
    void resetExtremes();

  private:
    struct Node
    {
        std::string label;
        double capacitance; ///< 0 marks an ambient node.
        Celsius temp;
        Watts injected = 0.0;
        Celsius minTemp;
        Celsius maxTemp;
    };

    struct Edge
    {
        NodeId a;
        NodeId b;
        double conductance; ///< [W/C].
    };

    void checkNode(NodeId node) const;
    /** Net heat flowing into @p node at current temperatures [W]. */
    Watts netInflow(NodeId node) const;

    std::vector<Node> nodes;
    std::vector<Edge> edges;
};

/** Handles into the canned immersed-CPU network. */
struct ImmersedCpuNetwork
{
    ThermalNetwork network;
    ThermalNetwork::NodeId die;
    ThermalNetwork::NodeId spreader;
    ThermalNetwork::NodeId fluid;
    ThermalNetwork::NodeId coolant;
};

/**
 * Build the heat path of one immersed CPU: a low-capacitance die coupled
 * through the package to the heat spreader, the spreader boiling into
 * the (large-capacitance) tank fluid through the BEC interface, and the
 * fluid condensing against the facility coolant loop.
 *
 * @param fluid       Tank fluid (sets the fluid node's initial/target
 *                    temperature at its boiling point).
 * @param interface   BEC boiling interface (spreader->fluid resistance).
 * @param fluid_mass_kg Tank fluid inventory [kg] (sets its capacitance).
 * @param condenser_resistance Fluid->coolant loop resistance [C/W].
 * @param coolant_temp Facility coolant temperature [C].
 * @param background_load_w Heat from the tank's other servers [W];
 *        sized so the shared fluid sits at its saturation temperature
 *        (one CPU alone would leave a large tank subcooled).
 */
ImmersedCpuNetwork
makeImmersedCpuNetwork(const DielectricFluid &fluid,
                       BoilingInterface interface = {},
                       double fluid_mass_kg = 100.0,
                       CelsiusPerWatt condenser_resistance = 0.004,
                       Celsius coolant_temp = 28.0,
                       Watts background_load_w = -1.0);

} // namespace thermal
} // namespace imsim

#endif // IMSIM_THERMAL_NETWORK_HH
