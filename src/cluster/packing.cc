#include "cluster/packing.hh"

#include <algorithm>

#include "util/logging.hh"

namespace imsim {
namespace cluster {

BinPacker::BinPacker(vm::HostSpec host_spec, std::size_t count,
                     double cpu_oversub)
    : oversub(cpu_oversub)
{
    util::fatalIf(count == 0, "BinPacker: need at least one host");
    util::fatalIf(cpu_oversub < 1.0,
                  "BinPacker: oversubscription ratio must be >= 1");
    util::fatalIf(host_spec.pcores <= 0 || host_spec.memoryGb <= 0.0,
                  "BinPacker: invalid host spec");
    fleet.resize(count);
    for (auto &host : fleet)
        host.spec = host_spec;
}

bool
BinPacker::fits(const PackedHost &host, const vm::VmSpec &vm) const
{
    const double vcore_cap =
        static_cast<double>(host.spec.pcores) * oversub;
    return static_cast<double>(host.vcoresUsed + vm.vcores) <=
               vcore_cap + 1e-9 &&
           host.memoryUsedGb + vm.memoryGb <= host.spec.memoryGb + 1e-9;
}

double
BinPacker::slack(const PackedHost &host) const
{
    const double vcore_cap =
        static_cast<double>(host.spec.pcores) * oversub;
    const double cpu_slack =
        (vcore_cap - static_cast<double>(host.vcoresUsed)) / vcore_cap;
    const double mem_slack =
        (host.spec.memoryGb - host.memoryUsedGb) / host.spec.memoryGb;
    return cpu_slack + mem_slack;
}

std::optional<std::size_t>
BinPacker::place(const vm::VmSpec &vm)
{
    util::fatalIf(vm.vcores <= 0, "BinPacker::place: VM needs vcores");
    // Best fit: the non-empty host with the least remaining slack that
    // still fits; fall back to opening an empty host.
    std::optional<std::size_t> best;
    double best_slack = 1e18;
    std::optional<std::size_t> empty;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        if (!fits(fleet[i], vm))
            continue;
        if (fleet[i].vms.empty()) {
            if (!empty)
                empty = i;
            continue;
        }
        const double s = slack(fleet[i]);
        if (s < best_slack) {
            best_slack = s;
            best = i;
        }
    }
    if (!best)
        best = empty;
    if (!best) {
        ++failedCount;
        return std::nullopt;
    }
    PackedHost &host = fleet[*best];
    host.vcoresUsed += vm.vcores;
    host.memoryUsedGb += vm.memoryGb;
    host.vms.push_back(vm);
    return best;
}

std::size_t
BinPacker::placeAll(std::vector<vm::VmSpec> vms)
{
    std::sort(vms.begin(), vms.end(),
              [](const vm::VmSpec &a, const vm::VmSpec &b) {
                  if (a.vcores != b.vcores)
                      return a.vcores > b.vcores;
                  return a.memoryGb > b.memoryGb;
              });
    std::size_t placed = 0;
    for (const auto &vm_spec : vms)
        if (place(vm_spec))
            ++placed;
    return placed;
}

std::vector<vm::VmSpec>
BinPacker::evictHost(std::size_t host)
{
    util::fatalIf(host >= fleet.size(), "BinPacker::evictHost: bad host");
    std::vector<vm::VmSpec> evicted = std::move(fleet[host].vms);
    fleet[host].vms.clear();
    fleet[host].vcoresUsed = 0;
    fleet[host].memoryUsedGb = 0.0;
    return evicted;
}

PackingStats
BinPacker::stats() const
{
    PackingStats out;
    out.hostsTotal = fleet.size();
    out.failed = failedCount;
    for (const auto &host : fleet) {
        if (host.vms.empty())
            continue;
        ++out.hostsUsed;
        out.vcoresPlaced += host.vcoresUsed;
        out.pcoresUsed += host.spec.pcores;
    }
    out.density = out.pcoresUsed > 0
                      ? static_cast<double>(out.vcoresPlaced) /
                            static_cast<double>(out.pcoresUsed)
                      : 0.0;
    return out;
}

} // namespace cluster
} // namespace imsim
