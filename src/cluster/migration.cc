#include "cluster/migration.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace cluster {

MigrationModel::MigrationModel(MigrationParams params) : cfg(params)
{
    util::fatalIf(cfg.memoryGb <= 0.0, "MigrationModel: bad memory size");
    util::fatalIf(cfg.bandwidthGbps <= 0.0,
                  "MigrationModel: bad bandwidth");
    util::fatalIf(cfg.dirtyRateGbps < 0.0,
                  "MigrationModel: negative dirty rate");
    util::fatalIf(cfg.stopCopyThresholdGb <= 0.0,
                  "MigrationModel: bad stop-copy threshold");
    util::fatalIf(cfg.maxRounds <= 0, "MigrationModel: bad round limit");
}

MigrationEstimate
MigrationModel::estimate() const
{
    // Bandwidth here is GB/s of effective copy rate; inputs are Gbps.
    const double bw = cfg.bandwidthGbps / 8.0;
    const double dirty = cfg.dirtyRateGbps / 8.0;

    MigrationEstimate out{};
    out.converged = dirty < bw;

    double remaining = cfg.memoryGb;
    Seconds elapsed = 0.0;
    double copied = 0.0;
    int round = 0;
    while (round < cfg.maxRounds && remaining > cfg.stopCopyThresholdGb) {
        const Seconds round_time = remaining / bw;
        copied += remaining;
        elapsed += round_time;
        // Pages redirtied while this round copied become next round's
        // work; a non-converging guest plateaus at dirty/bw of memory.
        remaining = std::min(cfg.memoryGb, dirty * round_time);
        ++round;
        if (!out.converged && round >= 3)
            break; // Plateaued; force stop-and-copy.
    }
    out.rounds = round;
    out.downtime = remaining / bw;
    out.dataCopiedGb = copied + remaining;
    out.totalTime = elapsed + out.downtime;
    return out;
}

HotspotOutcome
evaluateHotspot(HotspotResponse response, double slowdown,
                double oc_speedup, Seconds hotspot_duration,
                const MigrationModel &migration, double oc_wear_per_hour)
{
    util::fatalIf(slowdown <= 0.0 || slowdown > 1.0,
                  "evaluateHotspot: slowdown out of (0,1]");
    util::fatalIf(oc_speedup < 1.0,
                  "evaluateHotspot: overclock speedup must be >= 1");
    util::fatalIf(hotspot_duration < 0.0,
                  "evaluateHotspot: negative duration");
    util::fatalIf(oc_wear_per_hour < 0.0,
                  "evaluateHotspot: negative wear rate");

    HotspotOutcome out{};
    out.response = response;
    const double loss_rate = 1.0 - slowdown;
    // Overclocking restores contended speed toward (and beyond) parity;
    // residual loss is clipped at zero — excess speedup is headroom, not
    // negative degradation.
    const double oc_loss_rate =
        std::max(0.0, 1.0 - slowdown * oc_speedup);
    const MigrationEstimate mig = migration.estimate();

    switch (response) {
      case HotspotResponse::Endure:
        out.degradationSeconds = loss_rate * hotspot_duration;
        break;
      case HotspotResponse::MigrateOnly: {
        // Suffer (plus migration CPU overhead) until the move lands.
        const Seconds exposed =
            std::min(hotspot_duration, mig.totalTime);
        out.degradationSeconds =
            (loss_rate + migration.params().cpuOverhead) * exposed +
            mig.downtime;
        out.migrationTime = mig.totalTime;
        break;
      }
      case HotspotResponse::OverclockStopGap: {
        const Seconds exposed =
            std::min(hotspot_duration, mig.totalTime);
        out.degradationSeconds =
            (oc_loss_rate + migration.params().cpuOverhead) * exposed +
            mig.downtime;
        out.migrationTime = mig.totalTime;
        out.overclockedTime = exposed;
        out.wearFractionSpent =
            oc_wear_per_hour * exposed / units::kSecondsPerHour;
        break;
      }
      case HotspotResponse::OverclockOnly:
        out.degradationSeconds = oc_loss_rate * hotspot_duration;
        out.overclockedTime = hotspot_duration;
        out.wearFractionSpent =
            oc_wear_per_hour * hotspot_duration / units::kSecondsPerHour;
        break;
    }
    return out;
}

} // namespace cluster
} // namespace imsim
