/**
 * @file
 * Datacenter-scale power simulation: overclocking under power
 * oversubscription.
 *
 * Sec. IV ("Power consumption") warns that overclocking in power-
 * oversubscribed datacenters "increases the chance of hitting limits and
 * triggering power capping mechanisms", whose frequency reductions "might
 * offset any performance gains from overclocking" — and recommends
 * overclocking "during periods of power underutilization due to workload
 * variability and diurnal patterns" with priority-aware capping as the
 * safety net. This simulator reproduces that trade-off: a feed with an
 * oversubscribed budget, racks of servers following diurnal utilization
 * traces, and three overclocking policies whose capping exposure and
 * delivered speedup are measured.
 */

#ifndef IMSIM_CLUSTER_DATACENTER_HH
#define IMSIM_CLUSTER_DATACENTER_HH

#include <cstddef>
#include <vector>

#include "power/capping.hh"
#include "util/random.hh"
#include "util/units.hh"
#include "workload/trace.hh"

namespace imsim {

namespace obs {
class MetricRegistry;
class TimeSeries;
} // namespace obs

namespace cluster {

/** When servers are allowed to overclock. */
enum class OverclockPolicy
{
    Never,       ///< Plain fleet, no overclocking.
    Always,      ///< Overclock whenever a server wants speed.
    PowerAware,  ///< Overclock only while the feed has headroom.
};

/** One rack of identical servers. */
struct RackConfig
{
    std::size_t servers = 24;
    Watts idlePower = 200.0;       ///< Per-server power at zero load.
    Watts nominalPeak = 700.0;     ///< Per-server power at full load.
    Watts overclockExtra = 200.0;  ///< Extra power while overclocked.
    int priority = 1;              ///< Capping priority (higher = later).
    double overclockDemand = 0.5;  ///< Fraction of busy time the rack's
                                   ///< tenants want overclocking.
};

/** Aggregate outcome of one simulated horizon. */
struct DatacenterOutcome
{
    OverclockPolicy policy;
    double energyMwh = 0.0;           ///< IT energy consumed.
    double meanFeedUtilization = 0.0; ///< Average feed draw / capacity.
    double cappingMinutesShare = 0.0; ///< Fraction of time capping fired.
    double overclockShare = 0.0;      ///< Server-minutes overclocked /
                                      ///< server-minutes wanting it.
    double cappedOverclockShare = 0.0;///< Overclocked minutes that were
                                      ///< then capped (wasted).
    double speedupDelivered = 0.0;    ///< Mean delivered speedup across
                                      ///< overclock-demanding minutes.
};

/**
 * Fixed-step (1-minute) datacenter power simulator.
 */
class DatacenterPowerSim
{
  public:
    /**
     * @param racks            Rack configurations.
     * @param feed_capacity    Feed circuit capacity [W].
     * @param oversubscription Provisioned/capacity ratio (>= 1).
     * @param oc_speedup       Speedup overclocking delivers when not
     *                         capped (e.g. 1.2).
     */
    DatacenterPowerSim(std::vector<RackConfig> racks, Watts feed_capacity,
                       double oversubscription = 1.2,
                       double oc_speedup = 1.2);

    /**
     * Simulate @p days of operation under @p policy.
     *
     * @param rng Random stream (drives the per-rack diurnal traces).
     */
    DatacenterOutcome run(OverclockPolicy policy, util::Rng &rng,
                          double days) const;

    /**
     * As run(), also recording per-minute telemetry and counters.
     *
     * @param telemetry When non-null, receives one row per simulated
     *                  minute with columns `feed_draw_w`,
     *                  `feed_utilization`, `capped`,
     *                  `oc_server_minutes` (fresh series; any prior
     *                  contents are replaced).
     * @param metrics   When non-null, gains counters
     *                  `datacenter.minutes`,
     *                  `datacenter.capping_minutes`,
     *                  `datacenter.capped_rack_minutes` and histogram
     *                  `datacenter.feed_utilization`.
     */
    DatacenterOutcome run(OverclockPolicy policy, util::Rng &rng,
                          double days, obs::TimeSeries *telemetry,
                          obs::MetricRegistry *metrics) const;

    /** @return total nominal peak power across racks [W]. */
    Watts fleetNominalPeak() const;

  private:
    std::vector<RackConfig> racks;
    Watts feedCapacity;
    double oversub;
    double ocSpeedup;
};

} // namespace cluster
} // namespace imsim

#endif // IMSIM_CLUSTER_DATACENTER_HH
