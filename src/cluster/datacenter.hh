/**
 * @file
 * Datacenter-scale power simulation: overclocking under power
 * oversubscription.
 *
 * Sec. IV ("Power consumption") warns that overclocking in power-
 * oversubscribed datacenters "increases the chance of hitting limits and
 * triggering power capping mechanisms", whose frequency reductions "might
 * offset any performance gains from overclocking" — and recommends
 * overclocking "during periods of power underutilization due to workload
 * variability and diurnal patterns" with priority-aware capping as the
 * safety net. This simulator reproduces that trade-off: a feed with an
 * oversubscribed budget, racks of servers following diurnal utilization
 * traces, and three overclocking policies whose capping exposure and
 * delivered speedup are measured.
 */

#ifndef IMSIM_CLUSTER_DATACENTER_HH
#define IMSIM_CLUSTER_DATACENTER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/state.hh"
#include "power/capping.hh"
#include "util/random.hh"
#include "util/shard.hh"
#include "util/units.hh"
#include "workload/trace.hh"

namespace imsim {

namespace obs {
class Counter;
class FleetAggregator;
class FlightRecorder;
class Gauge;
class HistogramMetric;
class MetricRegistry;
class TimeSeries;
class Watchdog;
} // namespace obs

namespace cluster {

/** When servers are allowed to overclock. */
enum class OverclockPolicy
{
    Never,       ///< Plain fleet, no overclocking.
    Always,      ///< Overclock whenever a server wants speed.
    PowerAware,  ///< Overclock only while the feed has headroom.
};

/** One rack of identical servers. */
struct RackConfig
{
    std::size_t servers = 24;
    Watts idlePower = 200.0;       ///< Per-server power at zero load.
    Watts nominalPeak = 700.0;     ///< Per-server power at full load.
    Watts overclockExtra = 200.0;  ///< Extra power while overclocked.
    int priority = 1;              ///< Capping priority (higher = later).
    double overclockDemand = 0.5;  ///< Fraction of busy time the rack's
                                   ///< tenants want overclocking.
};

/** Fidelity of the per-minute physics. */
enum class FleetFidelity
{
    RackAggregate, ///< Closed-form rack power (default; the original model).
    PerServer,     ///< Per-server Tj/leakage/wear via the fleet kernels.
};

/**
 * Configuration of the per-server fidelity mode: the SKU physics table
 * (fleet::SkuParams lifted from the scalar models) and how racks map
 * onto it.
 */
struct PerServerPhysics
{
    /** SKU table the fleet kernels run against (non-empty). */
    std::vector<fleet::SkuParams> skus;
    /** SKU index per rack; empty = every rack is SKU 0. */
    std::vector<std::uint32_t> rackSku;
    /**
     * Half-width of the static per-server utilization offset around the
     * rack trace (uniform in [-spread, +spread], drawn once per server
     * from the run's RNG), so servers inside a rack de-correlate.
     */
    double utilSpread = 0.1;

    /**
     * The paper's large-tank fleet: Open Compute blades (2x Skylake)
     * immersed in FC-3284, +23 % overclock point, 5-year design life.
     */
    static PerServerPhysics openComputeImmersed();
};

/** Per-server physics statistics of one run (per-server mode only). */
struct FleetPhysicsStats
{
    std::size_t servers = 0;       ///< Fleet size.
    Celsius meanTj = 0.0;          ///< Time-mean of the fleet-mean Tj.
    Celsius peakTj = 0.0;          ///< Highest Tj any server reached.
    double meanWearConsumed = 0.0; ///< End-of-run mean life fraction.
    double meanWearCredit = 0.0;   ///< End-of-run mean lifetime credit.
    Watts meanServerPower = 0.0;   ///< Time-mean per-server power.
};

/** Aggregate outcome of one simulated horizon. */
struct DatacenterOutcome
{
    OverclockPolicy policy;
    double energyMwh = 0.0;           ///< IT energy consumed.
    double meanFeedUtilization = 0.0; ///< Average feed draw / capacity.
    double cappingMinutesShare = 0.0; ///< Fraction of time capping fired.
    double overclockShare = 0.0;      ///< Server-minutes overclocked /
                                      ///< server-minutes wanting it.
    double cappedOverclockShare = 0.0;///< Overclocked minutes that were
                                      ///< then capped (wasted).
    double speedupDelivered = 0.0;    ///< Mean delivered speedup across
                                      ///< overclock-demanding minutes.
    FleetPhysicsStats fleet;          ///< Populated in per-server mode.
};

class DatacenterPowerSim;

/**
 * An in-flight per-server-fidelity run that an external control loop
 * can advance minute by minute (DatacenterPowerSim::run steps it to
 * the horizon in one go — stepping in chunks is bit-identical to that
 * monolithic run when no knob is touched mid-flight).
 *
 * Between steps, a controller may turn the actuation knobs:
 *
 *  - setFrequencyCeiling(): per-SKU overclock admission. A ceiling at
 *    or above a SKU's overclock point admits every wanting server; one
 *    at or below its nominal point admits none; in between, the head
 *    of the rack's deterministic want-ranks is admitted
 *    proportionally. Running servers above the ceiling are demoted
 *    immediately via fleet::FleetState::applyFrequencyCeiling.
 *  - setFeedCapacity(): the feed budget (PowerBudget::setCapacity),
 *    e.g. a power cap or a derated feed during a crisis.
 *  - setPackingFraction(): concentrate each rack's load onto its
 *    first `fraction` of servers (the rest idle) — the packing-density
 *    knob trading per-server utilization against idle-power overhead.
 *
 * Sessions are created by DatacenterPowerSim::startPerServerSession
 * and borrow the parent sim (racks, physics, attached observers),
 * which must outlive them. Determinism follows the parent's contract:
 * for a fixed seed and knob/step schedule, any --sim-threads value
 * reproduces the same bits.
 */
class PerServerSession
{
  public:
    PerServerSession(const PerServerSession &) = delete;
    PerServerSession &operator=(const PerServerSession &) = delete;

    /** @return minutes in the full horizon. */
    std::size_t totalMinutes() const { return minutesTotal; }

    /** @return minutes simulated so far. */
    std::size_t minutesDone() const { return minuteIndex; }

    /** @return whether the horizon has been reached. */
    bool done() const { return minuteIndex >= minutesTotal; }

    /** Advance up to @p count minutes (stops at the horizon). */
    void stepMinutes(std::size_t count);

    /**
     * Final accounting over the minutes simulated so far. Callable
     * once; the session cannot be stepped afterwards.
     */
    DatacenterOutcome finish();

    /** @return fleet size (servers). */
    std::size_t servers() const { return n; }

    /** @return the live fleet columns (pure read). */
    const fleet::FleetState &fleet() const { return state; }

    /** Cap operating points at @p ceiling [GHz] (see class comment). */
    void setFrequencyCeiling(GHz ceiling);

    /** @return the current frequency ceiling [GHz] (+inf = uncapped). */
    GHz frequencyCeiling() const { return ceiling; }

    /** Set the feed capacity [W] (oversubscription ratio is kept). */
    void setFeedCapacity(Watts capacity);

    /** @return the current feed capacity [W]. */
    Watts feedCapacity() const { return feedCap; }

    /** @return the parent sim's nominal feed capacity [W]. */
    Watts nominalFeedCapacity() const;

    /** @return the sum of the racks' capping floors [W] — the lowest
     *  feed capacity allocatable without a brownout. */
    Watts minimumFeedDemand() const;

    /** Forwarded to PowerBudget::setRecoverableBrownout. */
    void setRecoverableBrownout(bool recoverable);

    /** Pack rack load onto the first @p fraction of servers, (0, 1]. */
    void setPackingFraction(double fraction);

    /** @return the current packing fraction. */
    double packingFraction() const { return packing; }

    /** @return the SKU physics table the session runs against. */
    const std::vector<fleet::SkuParams> &skus() const;

    /** @return IT energy consumed over the minutes stepped so far
     *  [MWh] — running total, so epoch deltas cost out each control
     *  period without waiting for finish(). */
    double energyMwhSoFar() const { return out.energyMwh; }

  private:
    friend class DatacenterPowerSim;
    PerServerSession(const DatacenterPowerSim &sim_in,
                     OverclockPolicy policy_in, util::Rng &rng,
                     double days, obs::TimeSeries *telemetry_in,
                     obs::MetricRegistry *metrics);
    void stepMinute();

    const DatacenterPowerSim &owner;
    OverclockPolicy policy;
    obs::TimeSeries *telemetry = nullptr;
    obs::Counter *minuteMetric = nullptr;
    obs::Counter *cappingMetric = nullptr;
    obs::Counter *cappedRackMetric = nullptr;
    obs::HistogramMetric *feedUtilMetric = nullptr;
    obs::Counter *serverMinuteMetric = nullptr;
    obs::Counter *cappedServerMetric = nullptr;
    obs::Counter *ocServerMetric = nullptr;
    obs::Gauge *meanTjGauge = nullptr;
    obs::Gauge *maxTjGauge = nullptr;
    obs::Gauge *meanWearGauge = nullptr;
    obs::Gauge *meanCreditGauge = nullptr;

    std::vector<std::vector<workload::TraceSample>> traces;
    fleet::FleetState state;
    std::vector<std::size_t> rackBegin;
    std::size_t n = 0;
    std::vector<double> offset; ///< Static per-server util offsets.
    std::vector<double> ocRank; ///< Deterministic want/packing ranks.
    power::PowerBudget budget;
    power::AllocScratch scratch;
    std::vector<power::PowerConsumer> consumers;
    util::ShardRunner runner;
    bool sharded = false;
    util::ShardPlan plan;
    std::vector<std::size_t> shardRack;

    DatacenterOutcome out;
    double feedUtilSum = 0.0;
    double cappingMinutes = 0.0;
    double wantMinutes = 0.0;
    double ocMinutes = 0.0;
    double cappedOcMinutes = 0.0;
    double speedupSum = 0.0;
    double meanTjSum = 0.0;
    double fleetPowerSum = 0.0;
    Celsius peakTj = 0.0;
    std::size_t minutesTotal = 0;
    std::size_t minuteIndex = 0;
    bool finished = false;

    // ----- knobs -----------------------------------------------------
    Watts feedCap = 0.0;
    GHz ceiling = 0.0; ///< +inf until setFrequencyCeiling is called.
    /** Per-SKU admitted share of overclock-wanting servers in [0, 1],
     *  derived from the ceiling against the SKU's two levels. */
    std::vector<double> ocAdmission;
    double packing = 1.0;
};

/**
 * Fixed-step (1-minute) datacenter power simulator.
 */
class DatacenterPowerSim
{
  public:
    /**
     * @param racks            Rack configurations.
     * @param feed_capacity    Feed circuit capacity [W].
     * @param oversubscription Provisioned/capacity ratio (>= 1).
     * @param oc_speedup       Speedup overclocking delivers when not
     *                         capped (e.g. 1.2).
     */
    DatacenterPowerSim(std::vector<RackConfig> racks, Watts feed_capacity,
                       double oversubscription = 1.2,
                       double oc_speedup = 1.2);

    /**
     * Simulate @p days of operation under @p policy.
     *
     * @param rng Random stream (drives the per-rack diurnal traces).
     */
    DatacenterOutcome run(OverclockPolicy policy, util::Rng &rng,
                          double days) const;

    /**
     * As run(), also recording per-minute telemetry and counters.
     *
     * @param telemetry When non-null, receives one row per simulated
     *                  minute with columns `feed_draw_w`,
     *                  `feed_utilization`, `capped`,
     *                  `oc_server_minutes` (fresh series; any prior
     *                  contents are replaced).
     * @param metrics   When non-null, gains counters
     *                  `datacenter.minutes`,
     *                  `datacenter.capping_minutes`,
     *                  `datacenter.capped_rack_minutes` and histogram
     *                  `datacenter.feed_utilization`.
     */
    DatacenterOutcome run(OverclockPolicy policy, util::Rng &rng,
                          double days, obs::TimeSeries *telemetry,
                          obs::MetricRegistry *metrics) const;

    /**
     * Switch the per-minute loop to per-server fidelity: every server
     * gets its own utilization, junction temperature, leakage, and
     * wear columns (fleet::FleetState), stepped by the batched fleet
     * kernels, and rack demands fed into the capping allocator are the
     * sums of the per-server physics. run() then also fills
     * DatacenterOutcome::fleet, appends `mean_tj_c`, `max_tj_c`,
     * `mean_wear` telemetry columns, and publishes `fleet.*` metrics.
     *
     * The default RackAggregate mode is untouched (bit-for-bit) by
     * this switch existing; fidelity only changes runs after the call.
     */
    void enablePerServerFidelity(PerServerPhysics physics);

    /** @return the active physics fidelity. */
    FleetFidelity fidelity() const { return fidelityMode; }

    /**
     * Use @p threads compute threads inside each run(): the per-minute
     * fleet physics (and an attached FleetAggregator's reductions) are
     * fanned over rack-aligned shards of the fleet columns, with a
     * barrier at every minute tick before the serial accounting and
     * capping allocation.
     *
     * Determinism contract (tests/test_fleet.cc holds it bit-exact):
     * threads == 1 (the default) runs the original serial loop, and
     * any thread count reproduces it bit-for-bit — shard geometry
     * depends only on the rack layout (never on the thread count),
     * shard bodies are elementwise, per-rack demand sums stay whole
     * inside one shard, and every order-sensitive floating-point
     * reduction runs serially in fixed rack/server order after the
     * barrier. --sim-threads trades wall-clock only, never results.
     *
     * @param threads Compute threads per run, caller included
     *                (0 is clamped to 1).
     */
    void setSimThreads(std::size_t threads)
    {
        simThreadCount = threads == 0 ? 1 : threads;
    }

    /** @return compute threads used inside each run(). */
    std::size_t simThreads() const { return simThreadCount; }

    /**
     * Attach streaming observers to the minute loop: after each
     * minute's physics, @p aggregator (when non-null) reduces the
     * fleet columns (obs::FleetAggregator::observe with the minute's
     * wall time and dt=60 s) and @p watchdog (when non-null) polls its
     * rules. Works in both fidelity modes — in RackAggregate mode the
     * aggregated "units" are racks and only the power/utilization
     * channels carry signal (Tj and wear columns are not modelled).
     *
     * Observers are pure reads: attaching them never changes a run's
     * outcome, telemetry, or RNG stream. Pass nullptrs to detach.
     * Both pointers must outlive subsequent run() calls.
     *
     * The three-argument overload additionally ticks @p recorder
     * (obs::FlightRecorder) once per minute, after the aggregator
     * reduction and the watchdog poll, so its channels can read the
     * minute's published sample and alert state.
     */
    void attachObservability(obs::FleetAggregator *aggregator,
                             obs::Watchdog *watchdog);
    void attachObservability(obs::FleetAggregator *aggregator,
                             obs::Watchdog *watchdog,
                             obs::FlightRecorder *recorder);

    /** @return total nominal peak power across racks [W]. */
    Watts fleetNominalPeak() const;

    /** @return the rack configurations. */
    const std::vector<RackConfig> &rackConfigs() const { return racks; }

    /** @return the per-server physics (per-server fidelity only). */
    const PerServerPhysics &perServerPhysics() const { return physics; }

    /** @return the nominal feed capacity [W]. */
    Watts feedCapacityNominal() const { return feedCapacity; }

    /**
     * Start an externally stepped per-server run (see PerServerSession;
     * requires enablePerServerFidelity). The caller drives it with
     * stepMinutes()/finish(); @p rng seeds the diurnal traces and
     * per-server offsets exactly as run() would, so a session stepped
     * straight to the horizon with untouched knobs reproduces run()
     * bit-for-bit. The session borrows this sim — keep it alive.
     */
    std::unique_ptr<PerServerSession>
    startPerServerSession(OverclockPolicy policy, util::Rng &rng,
                          double days,
                          obs::TimeSeries *telemetry = nullptr,
                          obs::MetricRegistry *metrics = nullptr) const;

  private:
    friend class PerServerSession;
    DatacenterOutcome runRackAggregate(OverclockPolicy policy,
                                       util::Rng &rng, double days,
                                       obs::TimeSeries *telemetry,
                                       obs::MetricRegistry *metrics) const;
    DatacenterOutcome runPerServer(OverclockPolicy policy, util::Rng &rng,
                                   double days, obs::TimeSeries *telemetry,
                                   obs::MetricRegistry *metrics) const;
    void observeMinute(std::size_t minute, const fleet::FleetState &state,
                       const util::ShardPlan *plan,
                       util::ShardRunner *runner) const;

    std::vector<RackConfig> racks;
    Watts feedCapacity;
    double oversub;
    double ocSpeedup;
    std::size_t simThreadCount = 1;
    FleetFidelity fidelityMode = FleetFidelity::RackAggregate;
    PerServerPhysics physics;
    obs::FleetAggregator *fleetAggregator = nullptr;
    obs::Watchdog *watchdog = nullptr;
    obs::FlightRecorder *flightRecorder = nullptr;
};

} // namespace cluster
} // namespace imsim

#endif // IMSIM_CLUSTER_DATACENTER_HH
