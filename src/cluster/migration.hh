/**
 * @file
 * Live VM migration model and the "overclock as a stop-gap" policy.
 *
 * Sec. V (dense VM packing): "overclocking could be used simply as a
 * stop-gap solution to performance loss until live VM migration (which
 * is a resource-hungry and lengthy operation) can eliminate the problem
 * completely." This module models pre-copy live migration (iterative
 * dirty-page copying over a bandwidth-limited link, then a stop-and-copy
 * pause) and compares three responses to an oversubscription hotspot:
 * endure it, migrate a VM away, or overclock until the migration lands.
 */

#ifndef IMSIM_CLUSTER_MIGRATION_HH
#define IMSIM_CLUSTER_MIGRATION_HH

#include "util/units.hh"

namespace imsim {
namespace cluster {

/** Parameters of a pre-copy live migration. */
struct MigrationParams
{
    double memoryGb = 16.0;       ///< VM memory footprint.
    double bandwidthGbps = 10.0;  ///< Migration link bandwidth.
    double dirtyRateGbps = 1.5;   ///< Rate the guest redirties memory.
    double stopCopyThresholdGb = 0.25; ///< Residual that triggers pause.
    int maxRounds = 30;           ///< Pre-copy round limit.
    double cpuOverhead = 0.15;    ///< Host CPU share migration consumes.
};

/** Outcome of a migration-time computation. */
struct MigrationEstimate
{
    Seconds totalTime;   ///< Start to completion [s].
    Seconds downtime;    ///< Stop-and-copy pause [s].
    int rounds;          ///< Pre-copy rounds used.
    double dataCopiedGb; ///< Total bytes moved (with re-copies).
    bool converged;      ///< Dirty rate < bandwidth (else forced stop).
};

/**
 * Pre-copy live migration model.
 */
class MigrationModel
{
  public:
    explicit MigrationModel(MigrationParams params = {});

    /** Estimate the migration of one VM. */
    MigrationEstimate estimate() const;

    /** @return the parameters. */
    const MigrationParams &params() const { return cfg; }

  private:
    MigrationParams cfg;
};

/** How a provider responds to an oversubscription hotspot. */
enum class HotspotResponse
{
    Endure,           ///< Accept the interference until it passes.
    MigrateOnly,      ///< Start a migration; suffer until it lands.
    OverclockStopGap, ///< Overclock now, migrate in the background.
    OverclockOnly,    ///< Overclock for the hotspot's whole duration.
};

/** Integrated cost of one hotspot episode under a response policy. */
struct HotspotOutcome
{
    HotspotResponse response;
    double degradationSeconds;  ///< Integral of (slowdown x time) [s].
    Seconds overclockedTime;    ///< Time spent overclocked [s].
    Seconds migrationTime;      ///< Migration duration (0 if none).
    double wearFractionSpent;   ///< Lifetime fraction consumed.
};

/**
 * Evaluate a hotspot episode: a host oversubscribed such that affected
 * VMs run at @p slowdown (< 1) of their entitled speed for
 * @p hotspot_duration, unless mitigated.
 *
 * @param response          Mitigation policy.
 * @param slowdown          Relative VM speed while contended (e.g. 0.8).
 * @param oc_speedup        Speed multiplier overclocking provides.
 * @param hotspot_duration  How long the contention would last [s].
 * @param migration         Migration model for the move-away option.
 * @param oc_wear_per_hour  Lifetime fraction consumed per overclocked
 *                          hour (from the reliability model).
 */
HotspotOutcome evaluateHotspot(HotspotResponse response, double slowdown,
                               double oc_speedup,
                               Seconds hotspot_duration,
                               const MigrationModel &migration,
                               double oc_wear_per_hour);

} // namespace cluster
} // namespace imsim

#endif // IMSIM_CLUSTER_MIGRATION_HH
