#include "cluster/capacity.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace cluster {

CapacityPlanner::CapacityPlanner(double overclock_headroom)
    : headroom(overclock_headroom)
{
    util::fatalIf(overclock_headroom < 0.0,
                  "CapacityPlanner: negative headroom");
}

std::vector<CapacityPoint>
CapacityPlanner::evaluate(const std::vector<double> &demand,
                          const std::vector<double> &supply) const
{
    util::fatalIf(demand.size() != supply.size(),
                  "CapacityPlanner: demand/supply length mismatch");
    std::vector<CapacityPoint> out;
    out.reserve(demand.size());
    for (std::size_t i = 0; i < demand.size(); ++i) {
        CapacityPoint point{};
        point.demandVms = demand[i];
        point.supplyVms = supply[i];
        point.servedNominal = std::min(demand[i], supply[i]);
        point.deniedNominal = demand[i] - point.servedNominal;
        const double boosted = supply[i] * (1.0 + headroom);
        point.servedOverclock = std::min(demand[i], boosted);
        point.deniedOverclock = demand[i] - point.servedOverclock;
        out.push_back(point);
    }
    return out;
}

CapacitySummary
CapacityPlanner::summarise(const std::vector<CapacityPoint> &points) const
{
    CapacitySummary s;
    for (const auto &p : points) {
        s.peakGapVms = std::max(s.peakGapVms, p.deniedNominal);
        s.deniedVmPeriodsNominal += p.deniedNominal;
        s.deniedVmPeriodsOverclock += p.deniedOverclock;
        if (p.servedOverclock > p.supplyVms)
            s.overclockedPeriods += 1.0;
    }
    return s;
}

void
CapacityPlanner::makeCrisisScenario(std::size_t periods, double initial_vms,
                                    double growth, double step_vms,
                                    std::size_t step_every,
                                    std::size_t delay_periods,
                                    std::vector<double> &demand,
                                    std::vector<double> &supply)
{
    util::fatalIf(periods == 0 || step_every == 0,
                  "makeCrisisScenario: bad horizon");
    demand.assign(periods, 0.0);
    supply.assign(periods, 0.0);
    double d = initial_vms;
    double s = initial_vms;
    for (std::size_t i = 0; i < periods; ++i) {
        demand[i] = d;
        d *= 1.0 + growth;
        // Planned supply step arrives late by delay_periods.
        if (i >= delay_periods && (i - delay_periods) % step_every == 0 &&
            i != delay_periods)
            s += step_vms;
        supply[i] = s;
    }
}

} // namespace cluster
} // namespace imsim
