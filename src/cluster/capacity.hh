/**
 * @file
 * Capacity-crisis mitigation (Fig. 7): when demand outgrows forecasted
 * supply (construction delays, equipment shortages), overclocking lets the
 * provider host more VMs on the existing fleet and bridge (part of) the
 * gap instead of denying service.
 */

#ifndef IMSIM_CLUSTER_CAPACITY_HH
#define IMSIM_CLUSTER_CAPACITY_HH

#include <vector>

#include "util/units.hh"

namespace imsim {
namespace cluster {

/** One period (e.g. a week) of the planning horizon. */
struct CapacityPoint
{
    double demandVms;     ///< VMs customers want.
    double supplyVms;     ///< VMs the deployed fleet hosts at nominal.
    double servedNominal; ///< VMs served without overclocking.
    double servedOverclock; ///< VMs served with overclock headroom.
    double deniedNominal;   ///< Demand denied without overclocking.
    double deniedOverclock; ///< Demand denied with overclocking.
};

/** Aggregate outcome over the horizon. */
struct CapacitySummary
{
    double peakGapVms = 0.0;        ///< Worst nominal shortfall.
    double deniedVmPeriodsNominal = 0.0;   ///< Integral of denied demand.
    double deniedVmPeriodsOverclock = 0.0; ///< Same, with overclocking.
    double overclockedPeriods = 0.0; ///< Periods the fleet ran overclocked.
};

/**
 * Capacity planner comparing nominal and overclock-assisted operation.
 */
class CapacityPlanner
{
  public:
    /**
     * @param overclock_headroom Extra VM-hosting fraction overclocking
     *                           buys (e.g. 0.2 = +20 % packing density,
     *                           the Sec. VI-C result).
     */
    explicit CapacityPlanner(double overclock_headroom = 0.2);

    /**
     * Evaluate a horizon.
     *
     * @param demand Demand trajectory [VMs per period].
     * @param supply Supply trajectory [VMs hostable at nominal].
     */
    std::vector<CapacityPoint>
    evaluate(const std::vector<double> &demand,
             const std::vector<double> &supply) const;

    /** Summarise an evaluated horizon. */
    CapacitySummary summarise(const std::vector<CapacityPoint> &points) const;

    /**
     * Build the Fig. 7 style scenario: exponential demand growth against
     * stepwise supply that arrives late by @p delay_periods.
     *
     * @param periods        Horizon length.
     * @param initial_vms    Demand and supply at period 0.
     * @param growth         Per-period demand growth (e.g. 0.05).
     * @param step_vms       VMs added per supply step.
     * @param step_every     Periods between planned supply steps.
     * @param delay_periods  Delivery delay causing the crisis.
     */
    static void
    makeCrisisScenario(std::size_t periods, double initial_vms,
                       double growth, double step_vms,
                       std::size_t step_every, std::size_t delay_periods,
                       std::vector<double> &demand,
                       std::vector<double> &supply);

  private:
    double headroom;
};

} // namespace cluster
} // namespace imsim

#endif // IMSIM_CLUSTER_CAPACITY_HH
