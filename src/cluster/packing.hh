/**
 * @file
 * Multi-dimensional VM bin packing (Sec. V "Dense VM packing").
 *
 * Places VMs onto hosts by best-fit-decreasing over (vcores, memory),
 * optionally oversubscribing physical cores by a configurable ratio — the
 * paper's 10-20 % CPU oversubscription that overclocking then compensates
 * for. Reports packing density (vcores per pcore), the metric whose
 * single percentage points are "hundreds of millions of dollars" at
 * Azure scale [28].
 */

#ifndef IMSIM_CLUSTER_PACKING_HH
#define IMSIM_CLUSTER_PACKING_HH

#include <optional>
#include <vector>

#include "vm/vm.hh"

namespace imsim {
namespace cluster {

/** One host with its current allocation. */
struct PackedHost
{
    vm::HostSpec spec;
    int vcoresUsed = 0;
    double memoryUsedGb = 0.0;
    std::vector<vm::VmSpec> vms;
};

/** Aggregate packing statistics. */
struct PackingStats
{
    std::size_t hostsUsed = 0;    ///< Hosts with at least one VM.
    std::size_t hostsTotal = 0;   ///< Hosts available.
    int vcoresPlaced = 0;         ///< Total vcores placed.
    int pcoresUsed = 0;           ///< Pcores of used hosts.
    double density = 0.0;         ///< vcores placed / pcores used.
    std::size_t failed = 0;       ///< VMs that could not be placed.
};

/**
 * Best-fit-decreasing multi-dimensional packer.
 */
class BinPacker
{
  public:
    /**
     * @param hosts        Homogeneous host fleet.
     * @param count        Number of hosts.
     * @param cpu_oversub  vcore/pcore oversubscription ratio (>= 1).
     */
    BinPacker(vm::HostSpec hosts, std::size_t count,
              double cpu_oversub = 1.0);

    /**
     * Place one VM.
     * @return index of the chosen host, or std::nullopt when no host fits.
     */
    std::optional<std::size_t> place(const vm::VmSpec &vm);

    /**
     * Place all VMs, largest (by vcores) first.
     * @return number successfully placed.
     */
    std::size_t placeAll(std::vector<vm::VmSpec> vms);

    /** Remove every VM hosted on @p host (a host failure). */
    std::vector<vm::VmSpec> evictHost(std::size_t host);

    /** @return aggregate statistics. */
    PackingStats stats() const;

    /** @return the per-host state. */
    const std::vector<PackedHost> &hosts() const { return fleet; }

    /** @return the CPU oversubscription ratio. */
    double cpuOversubscription() const { return oversub; }

  private:
    bool fits(const PackedHost &host, const vm::VmSpec &vm) const;
    /** Remaining weighted capacity (for best-fit scoring). */
    double slack(const PackedHost &host) const;

    std::vector<PackedHost> fleet;
    double oversub;
    std::size_t failedCount = 0;
};

} // namespace cluster
} // namespace imsim

#endif // IMSIM_CLUSTER_PACKING_HH
