#include "cluster/datacenter.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/timeseries.hh"
#include "util/logging.hh"

namespace imsim {
namespace cluster {

DatacenterPowerSim::DatacenterPowerSim(std::vector<RackConfig> rack_configs,
                                       Watts feed_capacity,
                                       double oversubscription,
                                       double oc_speedup)
    : racks(std::move(rack_configs)), feedCapacity(feed_capacity),
      oversub(oversubscription), ocSpeedup(oc_speedup)
{
    util::fatalIf(racks.empty(), "DatacenterPowerSim: need racks");
    util::fatalIf(feed_capacity <= 0.0,
                  "DatacenterPowerSim: feed capacity must be positive");
    util::fatalIf(oversubscription < 1.0,
                  "DatacenterPowerSim: oversubscription must be >= 1");
    util::fatalIf(oc_speedup < 1.0,
                  "DatacenterPowerSim: speedup must be >= 1");
    for (const auto &rack : racks) {
        util::fatalIf(rack.servers == 0, "DatacenterPowerSim: empty rack");
        util::fatalIf(rack.idlePower < 0.0 ||
                          rack.nominalPeak <= rack.idlePower,
                      "DatacenterPowerSim: bad rack power range");
        util::fatalIf(rack.overclockDemand < 0.0 ||
                          rack.overclockDemand > 1.0,
                      "DatacenterPowerSim: overclock demand out of [0,1]");
    }
}

Watts
DatacenterPowerSim::fleetNominalPeak() const
{
    Watts total = 0.0;
    for (const auto &rack : racks)
        total += rack.nominalPeak * static_cast<double>(rack.servers);
    return total;
}

DatacenterOutcome
DatacenterPowerSim::run(OverclockPolicy policy, util::Rng &rng,
                        double days) const
{
    return run(policy, rng, days, nullptr, nullptr);
}

DatacenterOutcome
DatacenterPowerSim::run(OverclockPolicy policy, util::Rng &rng, double days,
                        obs::TimeSeries *telemetry,
                        obs::MetricRegistry *metrics) const
{
    obs::ProfScope prof("datacenter.run");
    util::fatalIf(days <= 0.0, "DatacenterPowerSim::run: bad horizon");

    obs::Counter *minute_metric = nullptr;
    obs::Counter *capping_metric = nullptr;
    obs::Counter *capped_rack_metric = nullptr;
    obs::HistogramMetric *feed_util_metric = nullptr;
    if (metrics) {
        minute_metric = &metrics->counter("datacenter.minutes");
        capping_metric = &metrics->counter("datacenter.capping_minutes");
        capped_rack_metric =
            &metrics->counter("datacenter.capped_rack_minutes");
        feed_util_metric =
            &metrics->histogram("datacenter.feed_utilization");
    }
    if (telemetry) {
        *telemetry = obs::TimeSeries();
        telemetry->setColumns({"feed_draw_w", "feed_utilization", "capped",
                               "oc_server_minutes"});
    }

    // One utilization trace per rack (racks aggregate many servers, so
    // use a smoother trace than a single machine's).
    workload::TraceParams trace_params;
    trace_params.sampleInterval = 60.0;
    trace_params.noiseSigma = 0.03;
    trace_params.burstProb = 0.005;
    std::vector<std::vector<workload::TraceSample>> traces;
    traces.reserve(racks.size());
    for (std::size_t r = 0; r < racks.size(); ++r) {
        workload::TraceGenerator gen(trace_params);
        traces.push_back(gen.generate(rng, days));
    }

    DatacenterOutcome out;
    out.policy = policy;

    double feed_util_sum = 0.0;
    double capping_minutes = 0.0;
    double want_minutes = 0.0;
    double oc_minutes = 0.0;
    double capped_oc_minutes = 0.0;
    double speedup_sum = 0.0;

    // Everything the minute loop needs is built once up front — the
    // budget, the consumer records (names, minimums, and priorities are
    // constant; only demands change per minute), and the allocator's
    // scratch buffers — so each simulated minute runs without heap
    // allocation (bench_hot_paths pins this).
    const power::PowerBudget budget(feedCapacity, oversub);
    power::AllocScratch scratch;
    std::vector<power::PowerConsumer> consumers;
    consumers.reserve(racks.size());
    for (std::size_t r = 0; r < racks.size(); ++r) {
        const auto &rack = racks[r];
        consumers.push_back(power::PowerConsumer{
            "rack" + std::to_string(r), 0.0,
            static_cast<double>(rack.servers) * rack.idlePower,
            rack.priority});
    }
    std::vector<double> want_oc(racks.size(), 0.0);

    const std::size_t minutes = traces.front().size();
    for (std::size_t minute = 0; minute < minutes; ++minute) {
        obs::ProfScope minute_prof("datacenter.minute");
        // Refresh the per-minute demands.
        Watts demand_total = 0.0;
        for (std::size_t r = 0; r < racks.size(); ++r) {
            const auto &rack = racks[r];
            const double util = traces[r][minute].utilization;
            const double servers = static_cast<double>(rack.servers);
            Watts demand =
                servers * (rack.idlePower +
                           util * (rack.nominalPeak - rack.idlePower));

            // Which share of the rack wants (and may get) an overclock?
            want_oc[r] = util * rack.overclockDemand;
            bool grant = false;
            switch (policy) {
              case OverclockPolicy::Never:
                break;
              case OverclockPolicy::Always:
                grant = true;
                break;
              case OverclockPolicy::PowerAware:
                // Decided after the base demand pass; handled below by
                // a headroom check on the running total.
                grant = true;
                break;
            }
            if (grant && want_oc[r] > 0.0) {
                demand += servers * want_oc[r] * rack.overclockExtra;
            }
            consumers[r].demand = demand;
            demand_total += demand;
        }

        // Power-aware policy backs the overclock out again when the
        // aggregate would breach the feed.
        if (policy == OverclockPolicy::PowerAware &&
            demand_total > feedCapacity) {
            for (std::size_t r = 0; r < racks.size(); ++r) {
                const auto &rack = racks[r];
                const Watts oc_part = static_cast<double>(rack.servers) *
                                      want_oc[r] * rack.overclockExtra;
                consumers[r].demand -= oc_part;
                demand_total -= oc_part;
                want_oc[r] = -want_oc[r]; // Mark "wanted but withheld".
            }
        }

        // Demands are structurally >= the idle-power minimums, so the
        // per-consumer validation pass stays off this hot path.
        budget.allocate(consumers, scratch, false);
        Watts drawn = 0.0;
        bool any_capped = false;
        double minute_oc = 0.0;
        std::size_t capped_racks = 0;
        for (std::size_t r = 0; r < racks.size(); ++r) {
            drawn += scratch.granted[r];
            any_capped = any_capped || scratch.capped[r] != 0;
            if (scratch.capped[r] != 0)
                ++capped_racks;

            const auto &rack = racks[r];
            const double servers = static_cast<double>(rack.servers);
            const double wanted = std::abs(want_oc[r]) * servers;
            want_minutes += wanted;
            const bool overclocked =
                policy != OverclockPolicy::Never && want_oc[r] > 0.0;
            if (overclocked) {
                oc_minutes += wanted;
                minute_oc += wanted;
                if (scratch.capped[r] != 0) {
                    // Capping claws the frequency back: the overclock
                    // bought nothing this minute.
                    capped_oc_minutes += wanted;
                    speedup_sum += wanted * 1.0;
                } else {
                    speedup_sum += wanted * ocSpeedup;
                }
            } else {
                speedup_sum += wanted * 1.0;
            }
        }
        feed_util_sum += drawn / feedCapacity;
        if (any_capped)
            capping_minutes += 1.0;
        out.energyMwh += drawn / 1e6 / 60.0;

        const double feed_util = drawn / feedCapacity;
        if (telemetry) {
            telemetry->append(static_cast<double>(minute) * 60.0,
                              {drawn, feed_util, any_capped ? 1.0 : 0.0,
                               minute_oc});
        }
        if (metrics) {
            minute_metric->inc();
            if (any_capped)
                capping_metric->inc();
            capped_rack_metric->inc(
                static_cast<std::uint64_t>(capped_racks));
            feed_util_metric->observe(feed_util);
        }
    }

    const double total_minutes = static_cast<double>(minutes);
    out.meanFeedUtilization = feed_util_sum / total_minutes;
    out.cappingMinutesShare = capping_minutes / total_minutes;
    out.overclockShare =
        want_minutes > 0.0 ? oc_minutes / want_minutes : 0.0;
    out.cappedOverclockShare =
        oc_minutes > 0.0 ? capped_oc_minutes / oc_minutes : 0.0;
    out.speedupDelivered =
        want_minutes > 0.0 ? speedup_sum / want_minutes : 1.0;
    return out;
}

} // namespace cluster
} // namespace imsim
