#include "cluster/datacenter.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fleet/kernels.hh"
#include "obs/blackbox.hh"
#include "obs/fleet_agg.hh"
#include "obs/metrics.hh"
#include "obs/watchdog.hh"
#include "obs/profiler.hh"
#include "obs/timeseries.hh"
#include "power/server_power.hh"
#include "thermal/fluid.hh"
#include "util/logging.hh"

namespace imsim {
namespace cluster {

DatacenterPowerSim::DatacenterPowerSim(std::vector<RackConfig> rack_configs,
                                       Watts feed_capacity,
                                       double oversubscription,
                                       double oc_speedup)
    : racks(std::move(rack_configs)), feedCapacity(feed_capacity),
      oversub(oversubscription), ocSpeedup(oc_speedup)
{
    util::fatalIf(racks.empty(), "DatacenterPowerSim: need racks");
    util::fatalIf(feed_capacity <= 0.0,
                  "DatacenterPowerSim: feed capacity must be positive");
    util::fatalIf(oversubscription < 1.0,
                  "DatacenterPowerSim: oversubscription must be >= 1");
    util::fatalIf(oc_speedup < 1.0,
                  "DatacenterPowerSim: speedup must be >= 1");
    for (const auto &rack : racks) {
        util::fatalIf(rack.servers == 0, "DatacenterPowerSim: empty rack");
        util::fatalIf(rack.idlePower < 0.0 ||
                          rack.nominalPeak <= rack.idlePower,
                      "DatacenterPowerSim: bad rack power range");
        util::fatalIf(rack.overclockDemand < 0.0 ||
                          rack.overclockDemand > 1.0,
                      "DatacenterPowerSim: overclock demand out of [0,1]");
    }
}

PerServerPhysics
PerServerPhysics::openComputeImmersed()
{
    const auto server = power::ServerPowerModel::openComputeBlade();
    const thermal::TwoPhaseImmersionCooling cooling(thermal::fc3284());
    // Constant (non-CPU) component power under this cooling system, at
    // the nominal memory clock — the ServerPowerModel budget minus the
    // sockets.
    const auto breakdown = server.compute(
        {server.socketModel().curve().nominalFrequency(),
         server.socketModel().curve().nominalVoltage(), 1.0},
        cooling);
    const Watts constant_power =
        breakdown.memory + breakdown.fans + breakdown.other;

    PerServerPhysics physics;
    physics.skus.push_back(fleet::SkuParams::fromModels(
        server.socketModel(), server.socketCount(), constant_power,
        cooling,
        /*thermal_cap=*/400.0, /*oc_ratio=*/1.23,
        /*t_min=*/cooling.referenceTemperature(0.0),
        /*design_life=*/5.0));
    return physics;
}

void
DatacenterPowerSim::enablePerServerFidelity(PerServerPhysics server_physics)
{
    util::fatalIf(server_physics.skus.empty(),
                  "enablePerServerFidelity: need at least one SKU");
    util::fatalIf(!server_physics.rackSku.empty() &&
                      server_physics.rackSku.size() != racks.size(),
                  "enablePerServerFidelity: rackSku size != rack count");
    for (const std::uint32_t s : server_physics.rackSku)
        util::fatalIf(s >= server_physics.skus.size(),
                      "enablePerServerFidelity: rack SKU out of range");
    util::fatalIf(server_physics.utilSpread < 0.0 ||
                      server_physics.utilSpread > 0.5,
                  "enablePerServerFidelity: utilSpread out of [0, 0.5]");
    physics = std::move(server_physics);
    fidelityMode = FleetFidelity::PerServer;
}

Watts
DatacenterPowerSim::fleetNominalPeak() const
{
    Watts total = 0.0;
    for (const auto &rack : racks)
        total += rack.nominalPeak * static_cast<double>(rack.servers);
    return total;
}

DatacenterOutcome
DatacenterPowerSim::run(OverclockPolicy policy, util::Rng &rng,
                        double days) const
{
    return run(policy, rng, days, nullptr, nullptr);
}

void
DatacenterPowerSim::attachObservability(obs::FleetAggregator *aggregator,
                                        obs::Watchdog *watchdog_in)
{
    attachObservability(aggregator, watchdog_in, nullptr);
}

void
DatacenterPowerSim::attachObservability(obs::FleetAggregator *aggregator,
                                        obs::Watchdog *watchdog_in,
                                        obs::FlightRecorder *recorder)
{
    fleetAggregator = aggregator;
    watchdog = watchdog_in;
    flightRecorder = recorder;
}

/**
 * The per-minute observer hook shared by both fidelity loops: reduce
 * the fleet columns and poll the watchdog rules. Pure reads — no
 * model state, RNG stream, telemetry row, or metric is touched, so an
 * attached observer can never change a run's outcome.
 *
 * When the minute loop runs sharded (@p plan / @p runner non-null),
 * the aggregator's reduction fans over the same shards; its sharded
 * path is bit-identical to the serial one, so attached observers see
 * the same sample stream at every thread count. The watchdog poll
 * stays serial (it reads the aggregator's already-reduced sample).
 */
void
DatacenterPowerSim::observeMinute(std::size_t minute,
                                  const fleet::FleetState &state,
                                  const util::ShardPlan *plan,
                                  util::ShardRunner *runner) const
{
    if (!fleetAggregator && !watchdog && !flightRecorder)
        return;
    const Seconds now = static_cast<double>(minute) * 60.0;
    if (fleetAggregator) {
        if (plan && runner && runner->threads() > 1)
            fleetAggregator->observe(now, fleet::fleetView(state), 60.0,
                                     *plan, *runner);
        else
            fleetAggregator->observe(now, fleet::fleetView(state), 60.0);
    }
    if (watchdog)
        watchdog->evaluate(now);
    if (flightRecorder)
        flightRecorder->tick(now);
}

DatacenterOutcome
DatacenterPowerSim::run(OverclockPolicy policy, util::Rng &rng, double days,
                        obs::TimeSeries *telemetry,
                        obs::MetricRegistry *metrics) const
{
    obs::ProfScope prof("datacenter.run");
    util::fatalIf(days <= 0.0, "DatacenterPowerSim::run: bad horizon");
    return fidelityMode == FleetFidelity::PerServer
               ? runPerServer(policy, rng, days, telemetry, metrics)
               : runRackAggregate(policy, rng, days, telemetry, metrics);
}

namespace {

/**
 * One smoothed diurnal utilization trace per rack (racks aggregate
 * many servers, so the trace is smoother than a single machine's).
 * Shared by both fidelity modes so they see the same rack-level load.
 */
std::vector<std::vector<workload::TraceSample>>
generateRackTraces(std::size_t rack_count, util::Rng &rng, double days)
{
    workload::TraceParams trace_params;
    trace_params.sampleInterval = 60.0;
    trace_params.noiseSigma = 0.03;
    trace_params.burstProb = 0.005;
    std::vector<std::vector<workload::TraceSample>> traces;
    traces.reserve(rack_count);
    for (std::size_t r = 0; r < rack_count; ++r) {
        workload::TraceGenerator gen(trace_params);
        traces.push_back(gen.generate(rng, days));
    }
    return traces;
}

/**
 * Target shard size for the intra-run fan-out. The count of shards a
 * fleet splits into is a pure function of its size — never of the
 * thread count — so every --sim-threads value schedules the *same*
 * shards and reproduces the same bits (see setSimThreads). ~2k units
 * per shard keeps each shard's physics pass tens of microseconds,
 * comfortably above the fork-join synchronisation cost, while still
 * exposing 48+ shards at the roadmap's 100k-server scale.
 */
constexpr std::size_t kShardGrainUnits = 2048;

std::size_t
shardCountFor(std::size_t units)
{
    return units == 0 ? 1 : (units + kShardGrainUnits - 1) / kShardGrainUnits;
}

} // namespace

DatacenterOutcome
DatacenterPowerSim::runRackAggregate(OverclockPolicy policy, util::Rng &rng,
                                     double days,
                                     obs::TimeSeries *telemetry,
                                     obs::MetricRegistry *metrics) const
{
    obs::Counter *minute_metric = nullptr;
    obs::Counter *capping_metric = nullptr;
    obs::Counter *capped_rack_metric = nullptr;
    obs::HistogramMetric *feed_util_metric = nullptr;
    if (metrics) {
        minute_metric = &metrics->counter("datacenter.minutes");
        capping_metric = &metrics->counter("datacenter.capping_minutes");
        capped_rack_metric =
            &metrics->counter("datacenter.capped_rack_minutes");
        feed_util_metric =
            &metrics->histogram("datacenter.feed_utilization");
    }
    if (telemetry) {
        *telemetry = obs::TimeSeries();
        telemetry->setColumns({"feed_draw_w", "feed_utilization", "capped",
                               "oc_server_minutes"});
    }

    const auto traces = generateRackTraces(racks.size(), rng, days);

    DatacenterOutcome out;
    out.policy = policy;

    double feed_util_sum = 0.0;
    double capping_minutes = 0.0;
    double want_minutes = 0.0;
    double oc_minutes = 0.0;
    double capped_oc_minutes = 0.0;
    double speedup_sum = 0.0;

    // Everything the minute loop needs is built once up front — the
    // budget, the consumer records (names, minimums, and priorities are
    // constant; only demands change per minute), the allocator's
    // scratch buffers, and the fleet columns — so each simulated minute
    // runs without heap allocation (bench_hot_paths pins this).
    const power::PowerBudget budget(feedCapacity, oversub);
    power::AllocScratch scratch;
    std::vector<power::PowerConsumer> consumers;
    consumers.reserve(racks.size());
    for (std::size_t r = 0; r < racks.size(); ++r) {
        const auto &rack = racks[r];
        consumers.push_back(power::PowerConsumer{
            "rack" + std::to_string(r), 0.0,
            static_cast<double>(rack.servers) * rack.idlePower,
            rack.priority});
    }
    // In aggregate mode each fleet column entry is one rack: the
    // utilization/overclock-share/capped columns carry the per-minute
    // control state the original loop kept in ad-hoc locals, and
    // totalPower mirrors the granted draw so attached telemetry reads
    // one consistent layer.
    fleet::FleetState state;
    state.addServers(racks.size(), 0, 0.0);

    // Intra-run sharding (setSimThreads): in aggregate mode the
    // shardable units are racks. The demand refresh is elementwise per
    // rack and the aggregator reduction shards bit-identically; the
    // capping allocation and the accounting walk stay serial (they are
    // FP-order-sensitive whole-fleet reductions). The plan's geometry
    // depends only on the rack count, so every thread count computes
    // identical results; threads == 1 never touches a pool.
    util::ShardRunner runner(simThreadCount);
    const bool sharded = runner.threads() > 1;
    util::ShardPlan plan;
    if (sharded)
        plan = util::ShardPlan::even(racks.size(),
                                     shardCountFor(racks.size()));

    const std::size_t minutes = traces.front().size();
    for (std::size_t minute = 0; minute < minutes; ++minute) {
        obs::ProfScope minute_prof("datacenter.minute");
        // Refresh the per-minute demands (elementwise per rack).
        const auto refreshRack = [&](std::size_t r) {
            const auto &rack = racks[r];
            const double util = traces[r][minute].utilization;
            const double servers = static_cast<double>(rack.servers);
            Watts demand =
                servers * (rack.idlePower +
                           util * (rack.nominalPeak - rack.idlePower));
            state.utilization[r] = util;

            // Which share of the rack wants (and may get) an overclock?
            state.overclockShare[r] = util * rack.overclockDemand;
            bool grant = false;
            switch (policy) {
              case OverclockPolicy::Never:
                break;
              case OverclockPolicy::Always:
                grant = true;
                break;
              case OverclockPolicy::PowerAware:
                // Decided after the base demand pass; handled below by
                // a headroom check on the running total.
                grant = true;
                break;
            }
            if (grant && state.overclockShare[r] > 0.0) {
                demand +=
                    servers * state.overclockShare[r] * rack.overclockExtra;
            }
            consumers[r].demand = demand;
        };
        if (sharded) {
            runner.run(plan, [&](std::size_t, std::size_t begin,
                                 std::size_t end) {
                for (std::size_t r = begin; r < end; ++r)
                    refreshRack(r);
            });
        } else {
            for (std::size_t r = 0; r < racks.size(); ++r)
                refreshRack(r);
        }
        // Fixed rack order: the same left-to-right sum as the serial
        // loop, regardless of which thread refreshed which rack.
        Watts demand_total = 0.0;
        for (std::size_t r = 0; r < racks.size(); ++r)
            demand_total += consumers[r].demand;

        // Power-aware policy backs the overclock out again when the
        // aggregate would breach the feed.
        if (policy == OverclockPolicy::PowerAware &&
            demand_total > feedCapacity) {
            for (std::size_t r = 0; r < racks.size(); ++r) {
                const auto &rack = racks[r];
                const Watts oc_part = static_cast<double>(rack.servers) *
                                      state.overclockShare[r] *
                                      rack.overclockExtra;
                consumers[r].demand -= oc_part;
                demand_total -= oc_part;
                // Mark "wanted but withheld".
                state.overclockShare[r] = -state.overclockShare[r];
            }
        }

        // Demands are structurally >= the idle-power minimums, so the
        // per-consumer validation pass stays off this hot path.
        budget.allocate(consumers, scratch, false);
        Watts drawn = 0.0;
        bool any_capped = false;
        double minute_oc = 0.0;
        std::size_t capped_racks = 0;
        for (std::size_t r = 0; r < racks.size(); ++r) {
            drawn += scratch.granted[r];
            any_capped = any_capped || scratch.capped[r] != 0;
            if (scratch.capped[r] != 0)
                ++capped_racks;
            state.capped[r] = scratch.capped[r];
            state.totalPower[r] = scratch.granted[r];

            const auto &rack = racks[r];
            const double servers = static_cast<double>(rack.servers);
            const double wanted =
                std::abs(state.overclockShare[r]) * servers;
            want_minutes += wanted;
            const bool overclocked = policy != OverclockPolicy::Never &&
                                     state.overclockShare[r] > 0.0;
            state.overclocked[r] = overclocked ? 1 : 0;
            if (overclocked) {
                oc_minutes += wanted;
                minute_oc += wanted;
                if (scratch.capped[r] != 0) {
                    // Capping claws the frequency back: the overclock
                    // bought nothing this minute.
                    capped_oc_minutes += wanted;
                    speedup_sum += wanted * 1.0;
                } else {
                    speedup_sum += wanted * ocSpeedup;
                }
            } else {
                speedup_sum += wanted * 1.0;
            }
        }
        feed_util_sum += drawn / feedCapacity;
        if (any_capped)
            capping_minutes += 1.0;
        out.energyMwh += drawn / 1e6 / 60.0;

        const double feed_util = drawn / feedCapacity;
        if (telemetry) {
            telemetry->append(static_cast<double>(minute) * 60.0,
                              {drawn, feed_util, any_capped ? 1.0 : 0.0,
                               minute_oc});
        }
        if (metrics) {
            minute_metric->inc();
            if (any_capped)
                capping_metric->inc();
            capped_rack_metric->inc(
                static_cast<std::uint64_t>(capped_racks));
            feed_util_metric->observe(feed_util);
        }
        observeMinute(minute, state, sharded ? &plan : nullptr,
                      sharded ? &runner : nullptr);
    }

    const double total_minutes = static_cast<double>(minutes);
    out.meanFeedUtilization = feed_util_sum / total_minutes;
    out.cappingMinutesShare = capping_minutes / total_minutes;
    out.overclockShare =
        want_minutes > 0.0 ? oc_minutes / want_minutes : 0.0;
    out.cappedOverclockShare =
        oc_minutes > 0.0 ? capped_oc_minutes / oc_minutes : 0.0;
    out.speedupDelivered =
        want_minutes > 0.0 ? speedup_sum / want_minutes : 1.0;
    return out;
}

PerServerSession::PerServerSession(const DatacenterPowerSim &sim_in,
                                   OverclockPolicy policy_in,
                                   util::Rng &rng, double days,
                                   obs::TimeSeries *telemetry_in,
                                   obs::MetricRegistry *metrics)
    : owner(sim_in), policy(policy_in), telemetry(telemetry_in),
      budget(sim_in.feedCapacity, sim_in.oversub),
      runner(sim_in.simThreadCount), feedCap(sim_in.feedCapacity),
      ceiling(std::numeric_limits<double>::infinity()),
      ocAdmission(sim_in.physics.skus.size(), 1.0)
{
    const auto &racks = owner.racks;
    const auto &physics = owner.physics;
    const std::vector<fleet::SkuParams> &sku_table = physics.skus;

    if (metrics) {
        minuteMetric = &metrics->counter("datacenter.minutes");
        cappingMetric = &metrics->counter("datacenter.capping_minutes");
        cappedRackMetric =
            &metrics->counter("datacenter.capped_rack_minutes");
        feedUtilMetric =
            &metrics->histogram("datacenter.feed_utilization");
        // The fleet layer's own attachment points (per-server physics).
        serverMinuteMetric = &metrics->counter("fleet.server_minutes");
        cappedServerMetric =
            &metrics->counter("fleet.capped_server_minutes");
        ocServerMetric = &metrics->counter("fleet.oc_server_minutes");
        meanTjGauge = &metrics->gauge("fleet.mean_tj_c");
        maxTjGauge = &metrics->gauge("fleet.max_tj_c");
        meanWearGauge = &metrics->gauge("fleet.mean_wear");
        meanCreditGauge = &metrics->gauge("fleet.mean_credit");
    }
    if (telemetry) {
        *telemetry = obs::TimeSeries();
        telemetry->setColumns({"feed_draw_w", "feed_utilization", "capped",
                               "oc_server_minutes", "mean_tj_c",
                               "max_tj_c", "mean_wear"});
    }

    traces = generateRackTraces(racks.size(), rng, days);

    // Build the fleet columns: rack r owns servers
    // [rackBegin[r], rackBegin[r + 1]).
    rackBegin.assign(racks.size() + 1, 0);
    {
        std::size_t total = 0;
        for (const auto &rack : racks)
            total += rack.servers;
        state.reserve(total);
    }
    for (std::size_t r = 0; r < racks.size(); ++r) {
        const std::uint32_t sku =
            physics.rackSku.empty() ? 0u : physics.rackSku[r];
        rackBegin[r + 1] = rackBegin[r] + racks[r].servers;
        state.addServers(racks[r].servers, sku,
                         sku_table[sku].coolantRef);
    }
    n = state.size();

    // Per-server static utilization offsets (drawn after the traces so
    // the rack-level load stream matches the aggregate mode).
    offset.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        offset[i] = physics.utilSpread > 0.0
                        ? rng.uniform(-physics.utilSpread,
                                      physics.utilSpread)
                        : 0.0;

    // Deterministic overclock-demand ranks: the first
    // ceil(share * servers) servers of a rack want the overclock when
    // the wanting share is `share`, matching the aggregate model's
    // expected fraction without extra RNG draws.
    ocRank.assign(n, 0.0);
    for (std::size_t r = 0; r < racks.size(); ++r) {
        const double servers = static_cast<double>(racks[r].servers);
        for (std::size_t i = rackBegin[r]; i < rackBegin[r + 1]; ++i)
            ocRank[i] = (static_cast<double>(i - rackBegin[r]) + 0.5) /
                        servers;
    }

    // The capping floors come from the physics: at zero utilization a
    // server draws its constant components plus coolant-reference
    // leakage, a guaranteed lower bound since Tj never falls below the
    // coolant reference.
    consumers.reserve(racks.size());
    for (std::size_t r = 0; r < racks.size(); ++r) {
        const std::uint32_t sku =
            physics.rackSku.empty() ? 0u : physics.rackSku[r];
        const fleet::SkuParams &p = sku_table[sku];
        const Watts idle_floor =
            p.leakRef *
                std::exp((p.coolantRef - p.leakRefTj) / p.leakTheta) *
                p.sockets +
            p.constantPower;
        consumers.push_back(power::PowerConsumer{
            "rack" + std::to_string(r), 0.0,
            static_cast<double>(racks[r].servers) * idle_floor,
            racks[r].priority});
    }

    out.policy = policy;
    out.fleet.servers = n;

    // Intra-run sharding (setSimThreads): the fleet splits into
    // rack-aligned shards — every rack lies whole inside one shard, so
    // a rack's demand sum is still one thread's left-to-right
    // accumulation, bit-identical to the serial loop. The plan's
    // geometry depends only on the rack layout, never the thread
    // count; shardRack[s] is the first rack of shard s.
    sharded = runner.threads() > 1;
    if (sharded) {
        plan = util::ShardPlan::alignedTo(rackBegin, shardCountFor(n));
        shardRack.reserve(plan.shards() + 1);
        std::size_t r = 0;
        for (std::size_t s = 0; s < plan.shards(); ++s) {
            while (rackBegin[r] < plan.begin(s))
                ++r;
            shardRack.push_back(r);
        }
        shardRack.push_back(racks.size());
    }

    minutesTotal = traces.front().size();
}

const std::vector<fleet::SkuParams> &
PerServerSession::skus() const
{
    return owner.physics.skus;
}

Watts
PerServerSession::nominalFeedCapacity() const
{
    return owner.feedCapacity;
}

Watts
PerServerSession::minimumFeedDemand() const
{
    Watts total = 0.0;
    for (const auto &consumer : consumers)
        total += consumer.minimum;
    return total;
}

void
PerServerSession::setFrequencyCeiling(GHz ceiling_in)
{
    util::fatalIf(!(ceiling_in > 0.0),
                  "PerServerSession: ceiling must be positive");
    ceiling = ceiling_in;
    const auto &sku_table = owner.physics.skus;
    for (std::size_t s = 0; s < sku_table.size(); ++s) {
        const GHz f_nom = sku_table[s].level[fleet::kNominal].frequency;
        const GHz f_oc =
            sku_table[s].level[fleet::kOverclocked].frequency;
        if (ceiling >= f_oc)
            ocAdmission[s] = 1.0;
        else if (ceiling <= f_nom || f_oc <= f_nom)
            ocAdmission[s] = 0.0;
        else
            ocAdmission[s] = (ceiling - f_nom) / (f_oc - f_nom);
    }
    // Demote running operating points right away so the next physics
    // step already sees the cap, not just the next grant pass.
    state.applyFrequencyCeiling(sku_table, ceiling);
}

void
PerServerSession::setFeedCapacity(Watts capacity)
{
    util::fatalIf(capacity <= 0.0,
                  "PerServerSession: feed capacity must be positive");
    feedCap = capacity;
    budget.setCapacity(capacity);
}

void
PerServerSession::setRecoverableBrownout(bool recoverable)
{
    budget.setRecoverableBrownout(recoverable);
}

void
PerServerSession::setPackingFraction(double fraction)
{
    util::fatalIf(fraction <= 0.0 || fraction > 1.0,
                  "PerServerSession: packing fraction out of (0, 1]");
    packing = fraction;
}

void
PerServerSession::stepMinutes(std::size_t count)
{
    util::fatalIf(finished,
                  "PerServerSession: stepMinutes after finish");
    while (count > 0 && !done()) {
        stepMinute();
        --count;
    }
}

DatacenterOutcome
PerServerSession::finish()
{
    util::fatalIf(finished, "PerServerSession: finish called twice");
    util::fatalIf(minuteIndex == 0,
                  "PerServerSession: finish before any step");
    finished = true;
    const auto &sku_table = owner.physics.skus;
    const double total_minutes = static_cast<double>(minuteIndex);
    out.meanFeedUtilization = feedUtilSum / total_minutes;
    out.cappingMinutesShare = cappingMinutes / total_minutes;
    out.overclockShare =
        wantMinutes > 0.0 ? ocMinutes / wantMinutes : 0.0;
    out.cappedOverclockShare =
        ocMinutes > 0.0 ? cappedOcMinutes / ocMinutes : 0.0;
    out.speedupDelivered =
        wantMinutes > 0.0 ? speedupSum / wantMinutes : 1.0;
    out.fleet.meanTj = meanTjSum / total_minutes;
    out.fleet.peakTj = peakTj;
    out.fleet.meanWearConsumed = state.meanWearConsumed();
    out.fleet.meanWearCredit = state.meanWearCredit(sku_table);
    out.fleet.meanServerPower =
        fleetPowerSum / total_minutes / static_cast<double>(n);
    return out;
}

void
PerServerSession::stepMinute()
{
    const auto &racks = owner.racks;
    const std::vector<fleet::SkuParams> &skus = owner.physics.skus;
    const std::size_t minute = minuteIndex;
    const Seconds minute_dt = 60.0;
    const Years minute_years = fleet::secondsToYears(minute_dt);

    obs::ProfScope minute_prof("datacenter.minute");

    // Desired operating point per server (elementwise per rack). The
    // control knobs nest so that their neutral values (packing == 1,
    // admission == 1) take the exact branches of the original
    // monolithic loop — a session with untouched knobs is bit-identical
    // to run().
    const auto setRackOperatingPoints = [&](std::size_t r) {
        const auto &rack = racks[r];
        const std::uint32_t sku =
            owner.physics.rackSku.empty() ? 0u : owner.physics.rackSku[r];
        const double rack_util = traces[r][minute].utilization;
        for (std::size_t i = rackBegin[r]; i < rackBegin[r + 1];
             ++i) {
            double u = std::clamp(rack_util + offset[i], 0.0,
                                  1.0);
            if (packing < 1.0) {
                // Packing: the head of the rack's rank order carries
                // the rack's whole load at proportionally higher
                // utilization; the tail idles.
                u = ocRank[i] < packing
                        ? std::clamp(rack_util / packing + offset[i],
                                     0.0, 1.0)
                        : 0.0;
            }
            state.utilization[i] = u;
            const bool wants =
                ocRank[i] < u * rack.overclockDemand;
            bool grant =
                wants && policy != OverclockPolicy::Never;
            if (grant && ocAdmission[sku] < 1.0) {
                // Frequency ceiling between the SKU's levels: admit
                // only the head of the wanting ranks, in proportion.
                grant = ocRank[i] <
                        u * rack.overclockDemand * ocAdmission[sku];
            }
            state.wantsOverclock[i] = wants ? 1 : 0;
            state.overclockShare[i] = wants ? 1.0 : 0.0;
            state.overclocked[i] = grant ? 1 : 0;
            state.freqLevel[i] =
                grant ? fleet::kOverclocked : fleet::kNominal;
            state.capped[i] = 0;
        }
    };
    // Left-to-right sum over one rack's servers — whole inside a
    // single shard, so serial and sharded runs associate
    // identically.
    const auto sumRackDemand = [&](std::size_t r) {
        Watts demand = 0.0;
        for (std::size_t i = rackBegin[r]; i < rackBegin[r + 1]; ++i)
            demand += state.totalPower[i];
        consumers[r].demand = demand;
    };

    // Physics pass: per-server dynamic + leakage power at the
    // desired points feeds the rack demands and the capping
    // decision.
    if (sharded) {
        runner.run(plan, [&](std::size_t s, std::size_t begin,
                             std::size_t end) {
            for (std::size_t r = shardRack[s]; r < shardRack[s + 1];
                 ++r)
                setRackOperatingPoints(r);
            fleet::stepPower(state, skus, begin, end);
            for (std::size_t r = shardRack[s]; r < shardRack[s + 1];
                 ++r)
                sumRackDemand(r);
        });
    } else {
        for (std::size_t r = 0; r < racks.size(); ++r)
            setRackOperatingPoints(r);
        fleet::stepPower(state, skus);
        for (std::size_t r = 0; r < racks.size(); ++r)
            sumRackDemand(r);
    }
    // Cross-rack total: serial, in fixed rack order (the barrier
    // before this line is what makes the order deterministic).
    Watts demand_total = 0.0;
    for (std::size_t r = 0; r < racks.size(); ++r)
        demand_total += consumers[r].demand;

    // Power-aware policy backs every overclock out when the fleet
    // would breach the feed, before capping has to fire.
    if (policy == OverclockPolicy::PowerAware &&
        demand_total > feedCap && state.overclockedCount() > 0) {
        const auto clearOverclocks = [&](std::size_t begin,
                                         std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                if (state.overclocked[i] != 0) {
                    state.overclocked[i] = 0;
                    state.freqLevel[i] = fleet::kNominal;
                }
            }
        };
        if (sharded) {
            runner.run(plan, [&](std::size_t s, std::size_t begin,
                                 std::size_t end) {
                clearOverclocks(begin, end);
                fleet::stepPower(state, skus, begin, end);
                for (std::size_t r = shardRack[s];
                     r < shardRack[s + 1]; ++r)
                    sumRackDemand(r);
            });
        } else {
            clearOverclocks(0, n);
            fleet::stepPower(state, skus);
            for (std::size_t r = 0; r < racks.size(); ++r)
                sumRackDemand(r);
        }
        demand_total = 0.0;
        for (std::size_t r = 0; r < racks.size(); ++r)
            demand_total += consumers[r].demand;
    }

    budget.allocate(consumers, scratch, false);

    Watts drawn = 0.0;
    bool any_capped = false;
    double minute_oc = 0.0;
    std::size_t capped_racks = 0;
    std::size_t capped_servers = 0;
    for (std::size_t r = 0; r < racks.size(); ++r) {
        drawn += scratch.granted[r];
        const bool rack_capped = scratch.capped[r] != 0;
        any_capped = any_capped || rack_capped;
        if (rack_capped)
            ++capped_racks;

        for (std::size_t i = rackBegin[r]; i < rackBegin[r + 1];
             ++i) {
            if (state.wantsOverclock[i] != 0)
                wantMinutes += 1.0;
            if (rack_capped) {
                state.capped[i] = 1;
                ++capped_servers;
            }
            if (state.overclocked[i] != 0) {
                ocMinutes += 1.0;
                minute_oc += 1.0;
                if (rack_capped) {
                    // Capping claws the frequency back: the
                    // overclock bought nothing this minute.
                    cappedOcMinutes += 1.0;
                    speedupSum += 1.0;
                    state.freqLevel[i] = fleet::kNominal;
                } else {
                    speedupSum += owner.ocSpeedup;
                }
            } else if (state.wantsOverclock[i] != 0) {
                speedupSum += 1.0;
            }
        }
        if (rack_capped && !sharded) {
            // Re-evaluate the rack's power at the clawed-back
            // frequencies so the thermal/wear steps see the capped
            // operating point.
            fleet::stepPower(state, skus, rackBegin[r],
                             rackBegin[r + 1]);
        }
    }

    // Thermal and wear advance at the post-capping operating point.
    if (sharded) {
        // The capped-rack power re-evaluation is deferred into this
        // fused phase: every rack's freqLevel is final once the
        // accounting loop above finishes, stepPower is elementwise
        // over exactly that input, and nothing between the inline
        // call site and here reads the power columns — so deferring
        // it is bit-identical to the serial interleaving.
        fleet::prepareThermalStep(state, skus, minute_dt);
        fleet::prepareWearStep(state);
        runner.run(plan, [&](std::size_t s, std::size_t begin,
                             std::size_t end) {
            for (std::size_t r = shardRack[s]; r < shardRack[s + 1];
                 ++r) {
                if (scratch.capped[r] != 0)
                    fleet::stepPower(state, skus, rackBegin[r],
                                     rackBegin[r + 1]);
            }
            fleet::stepThermal(state, skus, minute_dt, begin, end);
            fleet::stepWear(state, skus, minute_years, begin, end);
        });
    } else {
        fleet::stepThermal(state, skus, minute_dt);
        fleet::stepWear(state, skus, minute_years);
    }

    feedUtilSum += drawn / feedCap;
    if (any_capped)
        cappingMinutes += 1.0;
    out.energyMwh += drawn / 1e6 / 60.0;

    const double feed_util = drawn / feedCap;
    const Celsius mean_tj = state.meanTj();
    const Celsius max_tj = state.maxTj();
    const double mean_wear = state.meanWearConsumed();
    meanTjSum += mean_tj;
    peakTj = std::max(peakTj, max_tj);
    fleetPowerSum += state.fleetPower();

    if (telemetry) {
        telemetry->append(static_cast<double>(minute) * 60.0,
                          {drawn, feed_util, any_capped ? 1.0 : 0.0,
                           minute_oc, mean_tj, max_tj, mean_wear});
    }
    if (minuteMetric) {
        minuteMetric->inc();
        if (any_capped)
            cappingMetric->inc();
        cappedRackMetric->inc(
            static_cast<std::uint64_t>(capped_racks));
        feedUtilMetric->observe(feed_util);
        serverMinuteMetric->inc(static_cast<std::uint64_t>(n));
        cappedServerMetric->inc(
            static_cast<std::uint64_t>(capped_servers));
        ocServerMetric->inc(static_cast<std::uint64_t>(minute_oc));
        meanTjGauge->set(mean_tj);
        maxTjGauge->set(max_tj);
        meanWearGauge->set(mean_wear);
        meanCreditGauge->set(state.meanWearCredit(skus));
    }
    owner.observeMinute(minute, state, sharded ? &plan : nullptr,
                        sharded ? &runner : nullptr);
    ++minuteIndex;
}

std::unique_ptr<PerServerSession>
DatacenterPowerSim::startPerServerSession(OverclockPolicy policy,
                                          util::Rng &rng, double days,
                                          obs::TimeSeries *telemetry,
                                          obs::MetricRegistry *metrics)
    const
{
    util::fatalIf(fidelityMode != FleetFidelity::PerServer,
                  "startPerServerSession: call enablePerServerFidelity "
                  "first");
    util::fatalIf(days <= 0.0, "startPerServerSession: bad horizon");
    return std::unique_ptr<PerServerSession>(new PerServerSession(
        *this, policy, rng, days, telemetry, metrics));
}

DatacenterOutcome
DatacenterPowerSim::runPerServer(OverclockPolicy policy, util::Rng &rng,
                                 double days, obs::TimeSeries *telemetry,
                                 obs::MetricRegistry *metrics) const
{
    // The monolithic run is the steppable session driven straight to
    // the horizon with every knob at its neutral default.
    PerServerSession session(*this, policy, rng, days, telemetry,
                             metrics);
    session.stepMinutes(session.totalMinutes());
    return session.finish();
}

} // namespace cluster
} // namespace imsim
