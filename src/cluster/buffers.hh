/**
 * @file
 * Failover buffer strategies (Fig. 6): a static buffer of reserved
 * servers versus a virtual buffer realised by overclocking the surviving
 * servers after a failure. The virtual buffer lets the provider sell the
 * reserved capacity during normal operation.
 */

#ifndef IMSIM_CLUSTER_BUFFERS_HH
#define IMSIM_CLUSTER_BUFFERS_HH

#include <cstddef>

#include "util/random.hh"
#include "util/units.hh"

namespace imsim {
namespace cluster {

/** How failover capacity is provisioned. */
enum class BufferStrategy
{
    Static,  ///< Reserve whole servers; idle in normal operation.
    Virtual, ///< Sell all capacity; overclock survivors on failure.
};

/** Outcome of a buffer simulation. */
struct BufferResult
{
    std::size_t servers = 0;         ///< Fleet size.
    std::size_t sellableServers = 0; ///< Servers hosting VMs normally.
    int vmsHosted = 0;               ///< VMs sold in normal operation.
    std::size_t failures = 0;        ///< Host-failure events simulated.
    std::size_t recovered = 0;       ///< Failures fully absorbed.
    double overclockHours = 0.0;     ///< Server-hours spent overclocked.
    double utilizationNormal = 0.0;  ///< Sellable fraction of the fleet.
};

/**
 * Failover-buffer simulator for a homogeneous cluster.
 */
class BufferSimulator
{
  public:
    /**
     * @param servers          Fleet size.
     * @param vms_per_server   VMs a server hosts at nominal frequency.
     * @param buffer_fraction  Fraction of the fleet reserved (Static) or
     *                         the overclock capacity headroom (Virtual);
     *                         e.g. 0.1 = 10 %.
     */
    BufferSimulator(std::size_t servers, int vms_per_server,
                    double buffer_fraction);

    /**
     * Simulate @p duration_h hours of operation with an exponential
     * host-failure process.
     *
     * @param strategy           Buffer strategy.
     * @param rng                Random stream.
     * @param duration_h         Simulated hours.
     * @param failures_per_server_year Host failure rate.
     * @param repair_hours       Mean time to repair a failed host.
     */
    BufferResult simulate(BufferStrategy strategy, util::Rng &rng,
                          double duration_h,
                          double failures_per_server_year = 0.5,
                          double repair_hours = 24.0) const;

  private:
    std::size_t serverCount;
    int vmsPerServer;
    double bufferFraction;
};

} // namespace cluster
} // namespace imsim

#endif // IMSIM_CLUSTER_BUFFERS_HH
