#include "cluster/buffers.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace imsim {
namespace cluster {

BufferSimulator::BufferSimulator(std::size_t servers, int vms_per_server,
                                 double buffer_fraction)
    : serverCount(servers), vmsPerServer(vms_per_server),
      bufferFraction(buffer_fraction)
{
    util::fatalIf(servers == 0, "BufferSimulator: need servers");
    util::fatalIf(vms_per_server <= 0,
                  "BufferSimulator: need VMs per server");
    util::fatalIf(buffer_fraction <= 0.0 || buffer_fraction >= 1.0,
                  "BufferSimulator: buffer fraction must be in (0,1)");
}

BufferResult
BufferSimulator::simulate(BufferStrategy strategy, util::Rng &rng,
                          double duration_h,
                          double failures_per_server_year,
                          double repair_hours) const
{
    util::fatalIf(duration_h <= 0.0, "BufferSimulator: bad duration");
    util::fatalIf(failures_per_server_year < 0.0 || repair_hours <= 0.0,
                  "BufferSimulator: bad failure parameters");

    BufferResult out;
    out.servers = serverCount;

    const auto reserved = static_cast<std::size_t>(
        std::ceil(bufferFraction * static_cast<double>(serverCount)));
    if (strategy == BufferStrategy::Static) {
        out.sellableServers = serverCount - reserved;
    } else {
        out.sellableServers = serverCount;
    }
    out.vmsHosted = static_cast<int>(out.sellableServers) * vmsPerServer;
    out.utilizationNormal = static_cast<double>(out.sellableServers) /
                            static_cast<double>(serverCount);

    // Hour-step simulation of failures and repairs.
    const double fail_per_hour =
        failures_per_server_year / units::kHoursPerYear;
    std::vector<double> down_until; // Repair completion times.
    for (double t = 0.0; t < duration_h; t += 1.0) {
        down_until.erase(std::remove_if(down_until.begin(), down_until.end(),
                                        [t](double u) { return u <= t; }),
                         down_until.end());
        const std::size_t up = serverCount - down_until.size();
        const std::int64_t failures =
            rng.poisson(fail_per_hour * static_cast<double>(up));
        for (std::int64_t i = 0; i < failures; ++i) {
            ++out.failures;
            down_until.push_back(t + rng.exponential(repair_hours));

            // Can the displaced VMs be re-hosted?
            if (strategy == BufferStrategy::Static) {
                // Spare headroom = reserved servers minus those already
                // absorbing concurrently failed hosts.
                if (down_until.size() <= reserved)
                    ++out.recovered;
            } else {
                // Overclock survivors: each survivor gains
                // bufferFraction of extra capacity.
                const double survivors =
                    static_cast<double>(serverCount - down_until.size());
                const double spare_vms =
                    survivors * bufferFraction *
                    static_cast<double>(vmsPerServer);
                const double displaced =
                    static_cast<double>(down_until.size()) *
                    static_cast<double>(vmsPerServer);
                if (displaced <= spare_vms)
                    ++out.recovered;
            }
        }
        if (strategy == BufferStrategy::Virtual && !down_until.empty()) {
            // Survivors hosting failed-over VMs run overclocked. The
            // displaced VMs spread over all survivors.
            const double survivors =
                static_cast<double>(serverCount - down_until.size());
            const double needed_fraction = std::min(
                1.0, static_cast<double>(down_until.size()) / survivors /
                         bufferFraction);
            out.overclockHours += survivors * needed_fraction;
        }
    }
    return out;
}

} // namespace cluster
} // namespace imsim
