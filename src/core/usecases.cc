#include "core/usecases.hh"

#include "util/logging.hh"
#include "workload/perf.hh"

namespace imsim {
namespace core {

namespace {

hw::DomainClocks
clocksOf(const hw::CpuConfig &config)
{
    return hw::DomainClocks{config.core, config.llc, config.memory};
}

} // namespace

HighPerfVmPlan
planHighPerfVm(const workload::AppProfile &app, double green_band_ratio)
{
    util::fatalIf(green_band_ratio < 1.0,
                  "planHighPerfVm: green band ratio below nominal");
    const BottleneckAnalyzer analyzer;
    HighPerfVmPlan plan;
    plan.appName = app.name;
    plan.config = &analyzer.configForApp(app);
    const double rel =
        workload::relativeMetric(app, clocksOf(*plan.config));
    plan.expectedSpeedup =
        workload::lowerIsBetter(app.metric) ? 1.0 / rel : rel;
    plan.inGreenBand =
        plan.config->core <=
        workload::referenceClocks().core * green_band_ratio + 1e-9;
    return plan;
}

OversubscriptionPlan
planOversubscription(const workload::AppProfile &app, int vcores, int pcores)
{
    util::fatalIf(vcores <= 0 || pcores <= 0,
                  "planOversubscription: need positive core counts");
    OversubscriptionPlan plan;
    plan.oversubRatio =
        static_cast<double>(vcores) / static_cast<double>(pcores);
    plan.config = &hw::cpuConfig("B2");
    plan.compensatedSpeedup = 1.0;
    plan.feasible = plan.oversubRatio <= 1.0;
    if (plan.feasible)
        return plan;

    // Walk the overclock configs cheapest-first and take the first whose
    // speedup on this workload covers the oversubscription.
    for (const char *name : {"OC1", "OC2", "OC3"}) {
        const hw::CpuConfig &config = hw::cpuConfig(name);
        const double gain =
            workload::speedup(app.work, clocksOf(config));
        if (gain >= plan.oversubRatio) {
            plan.config = &config;
            plan.compensatedSpeedup = gain;
            plan.feasible = true;
            return plan;
        }
        // Remember the best effort even if insufficient.
        plan.config = &config;
        plan.compensatedSpeedup = gain;
    }
    plan.feasible = false;
    return plan;
}

} // namespace core
} // namespace imsim
