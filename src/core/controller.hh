/**
 * @file
 * The overclock controller: the safety gate every overclocking request
 * passes through. It enforces the three risk budgets Sec. IV quantifies:
 *
 *  - lifetime: the requested episode must be affordable within the
 *    processor's wear budget (WearTracker credit);
 *  - stability: the operating point must retain a minimum voltage margin
 *    and the correctable-error watchdog must not be tripped;
 *  - power: the server's post-overclock power must fit the (possibly
 *    oversubscribed) power budget, or the request is trimmed.
 */

#ifndef IMSIM_CORE_CONTROLLER_HH
#define IMSIM_CORE_CONTROLLER_HH

#include <string>

#include "hw/cpu.hh"
#include "power/capping.hh"
#include "reliability/lifetime.hh"
#include "reliability/stability.hh"
#include "thermal/cooling.hh"
#include "util/units.hh"

namespace imsim {
namespace core {

/** Outcome of an overclock request. */
struct OverclockDecision
{
    bool approved = false;
    GHz grantedCore = 0.0;   ///< Core clock actually granted [GHz].
    double grantedRatio = 1.0; ///< granted / all-core turbo.
    std::string reason;      ///< Human-readable explanation.
};

/** Controller policy knobs. */
struct ControllerPolicy
{
    double minMarginMv = 30.0;   ///< Minimum stability margin [mV].
    Watts powerHeadroom = 0.0;   ///< Extra power the budget must keep.
    Years lifetimeTarget = 5.0;  ///< Fleet design life.
    Celsius cycleFloor = 35.0;   ///< Thermal-cycle low temperature [C].
};

/**
 * Overclock controller for one server/CPU.
 */
class OverclockController
{
  public:
    /**
     * @param cpu       The CPU being controlled (state is inspected and,
     *                  on approval, updated by the caller).
     * @param cooling   Cooling system the CPU sits in.
     * @param tracker   Wear-out accounting for this part.
     * @param watchdog  Correctable-error watchdog.
     * @param budget    Power budget for this server's circuit.
     * @param policy    Controller policy.
     */
    OverclockController(hw::CpuModel &cpu,
                        const thermal::CoolingSystem &cooling,
                        reliability::WearTracker &tracker,
                        reliability::ErrorRateWatchdog &watchdog,
                        power::RaplCapper &budget,
                        ControllerPolicy policy = {});

    /**
     * Request to run the core domain at @p target for @p duration hours
     * with @p activity load.
     *
     * The controller may grant a lower frequency than requested (power
     * trim or lifetime cap) or deny (stability). On approval the caller
     * is expected to apply grantedCore and, afterwards, accrue the wear.
     *
     * @param now_s Current time [s], for the watchdog.
     */
    OverclockDecision request(GHz target, double duration_h,
                              double activity, Seconds now_s) const;

    /**
     * Highest core frequency the lifetime budget alone sustains
     * indefinitely (the "green band" ceiling of Fig. 5(b)).
     */
    GHz greenBandCeiling() const;

    /** @return the policy. */
    const ControllerPolicy &policy() const { return pol; }

  private:
    /** Build the stress condition for running at @p f with @p activity. */
    reliability::StressCondition stressAt(GHz f, double activity) const;

    hw::CpuModel &cpu;
    const thermal::CoolingSystem &cooling;
    reliability::WearTracker &tracker;
    reliability::ErrorRateWatchdog &watchdog;
    power::RaplCapper &budget;
    ControllerPolicy pol;
    reliability::LifetimeModel lifetimeModel;
};

} // namespace core
} // namespace imsim

#endif // IMSIM_CORE_CONTROLLER_HH
