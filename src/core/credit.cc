#include "core/credit.hh"

#include "util/logging.hh"

namespace imsim {
namespace core {

CreditScheduler::CreditScheduler(reliability::WearTracker &wear_tracker,
                                 CreditPolicy policy)
    : tracker(wear_tracker), pol(policy)
{
    util::fatalIf(pol.greenRatio < 1.0 || pol.redRatio < pol.greenRatio,
                  "CreditScheduler: need 1 <= green <= red ratio");
    util::fatalIf(pol.redBandReserve < 0.0 || pol.safetyReserve < 0.0,
                  "CreditScheduler: negative reserves");
}

CreditDecision
CreditScheduler::decide(const reliability::StressCondition &,
                        const reliability::StressCondition &green,
                        const reliability::StressCondition &red,
                        bool demand, Years duration) const
{
    util::fatalIf(duration <= 0.0, "CreditScheduler: bad duration");
    CreditDecision decision;
    if (!demand)
        return decision; // Bank credit while nobody wants the speed.

    const double credit = tracker.credit();

    // Red-band escalation: only from a healthy credit balance, and only
    // when the balance stays above the safety floor afterwards.
    if (credit >= pol.redBandReserve &&
        tracker.canAfford(red, duration)) {
        // canAfford already nets the episode against the banked credit;
        // additionally require the post-episode balance to respect the
        // safety reserve.
        reliability::WearTracker probe = tracker;
        probe.accrue(red, duration);
        if (probe.credit() >= pol.safetyReserve) {
            decision.overclock = true;
            decision.redBand = true;
            decision.frequencyRatio = pol.redRatio;
            return decision;
        }
    }

    // Green band: grant while the budget affords it.
    if (tracker.canAfford(green, duration)) {
        decision.overclock = true;
        decision.frequencyRatio = pol.greenRatio;
        return decision;
    }
    return decision;
}

} // namespace core
} // namespace imsim
