/**
 * @file
 * Counter-based bottleneck analysis (Sec. I, Sec. IV "Performance"):
 * decide *which* component to overclock for a VM whose workload the
 * provider cannot see. The analyzer consumes architecture-independent
 * resource signals (derivable from Aperf/Pperf, LLC-miss and
 * memory-bandwidth counters) and recommends the cheapest Table VII
 * configuration that addresses the bottleneck, avoiding the wasted power
 * of overclocking non-bottleneck domains (the paper's BI example).
 */

#ifndef IMSIM_CORE_BOTTLENECK_HH
#define IMSIM_CORE_BOTTLENECK_HH

#include <string>

#include "hw/configs.hh"
#include "hw/counters.hh"
#include "workload/app.hh"

namespace imsim {
namespace core {

/** Resource-sensitivity signals for one VM, all in [0, 1]. */
struct ResourceSignals
{
    double coreScalable; ///< dPperf/dAperf: core-clock sensitivity.
    double llcPressure;  ///< LLC-bound fraction of the stalls.
    double memPressure;  ///< DRAM-bound fraction of the stalls.
    double ioFraction;   ///< Non-CPU (IO/network) time fraction.
};

/** Derive signals from an application's (hidden) work vector, the way
 *  the hardware counters would surface them. */
ResourceSignals signalsFromWork(const workload::WorkVector &work);

/** Which domains an overclock recommendation touches. */
struct Recommendation
{
    bool core = false;
    bool uncore = false;
    bool memory = false;

    /** @return whether any domain is recommended. */
    bool any() const { return core || uncore || memory; }
};

/**
 * Bottleneck analyzer.
 */
class BottleneckAnalyzer
{
  public:
    /**
     * @param sensitivity_threshold Minimum sensitivity for a domain to
     *        be worth its overclocking power cost.
     */
    explicit BottleneckAnalyzer(double sensitivity_threshold = 0.15);

    /** Recommend which domains to overclock for @p signals. */
    Recommendation recommend(const ResourceSignals &signals) const;

    /**
     * Map a recommendation to the cheapest Table VII configuration that
     * covers it (B2 when nothing is worth overclocking; OC1/OC2/OC3
     * otherwise). Memory overclocking implies uncore overclocking on
     * this platform (Table VII has no memory-only config).
     */
    const hw::CpuConfig &configFor(const Recommendation &rec) const;

    /** Convenience: analyze an application end to end. */
    const hw::CpuConfig &configForApp(const workload::AppProfile &app) const;

  private:
    double threshold;
};

} // namespace core
} // namespace imsim

#endif // IMSIM_CORE_BOTTLENECK_HH
