/**
 * @file
 * Use-case planners (Sec. V): thin orchestration layers that apply the
 * overclocking control plane to the five datacenter scenarios the paper
 * proposes — high-performance VMs, dense packing via oversubscription,
 * buffer reduction, capacity-crisis mitigation, and (in the autoscale
 * module) auto-scaling.
 */

#ifndef IMSIM_CORE_USECASES_HH
#define IMSIM_CORE_USECASES_HH

#include <string>

#include "core/bottleneck.hh"
#include "hw/configs.hh"
#include "workload/app.hh"

namespace imsim {
namespace core {

/** High-performance VM offering (Fig. 5(c)). */
struct HighPerfVmPlan
{
    std::string appName;
    const hw::CpuConfig *config; ///< Recommended Table VII config.
    double expectedSpeedup;      ///< On the app's metric of interest.
    bool inGreenBand;            ///< No lifetime impact expected.
};

/**
 * Plan a high-performance VM offering for @p app: choose the bottleneck-
 * matched overclock config and compute the expected gain.
 *
 * @param green_band_ratio Frequency ratio boundary of the green band
 *        (from OverclockController::greenBandCeiling over nominal).
 */
HighPerfVmPlan planHighPerfVm(const workload::AppProfile &app,
                              double green_band_ratio = 1.23);

/** Oversubscription compensation plan (Fig. 5(d), Sec. VI-C). */
struct OversubscriptionPlan
{
    double oversubRatio;       ///< vcores / pcores requested.
    const hw::CpuConfig *config; ///< Config that compensates it.
    double compensatedSpeedup; ///< Speedup the config delivers.
    bool feasible;             ///< Speedup covers the oversubscription.
};

/**
 * Find the cheapest overclock configuration whose core-domain speedup
 * covers an oversubscription of @p vcores on @p pcores for workload mix
 * dominated by @p app.
 */
OversubscriptionPlan planOversubscription(const workload::AppProfile &app,
                                          int vcores, int pcores);

} // namespace core
} // namespace imsim

#endif // IMSIM_CORE_USECASES_HH
