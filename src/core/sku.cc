#include "core/sku.hh"

#include "core/bottleneck.hh"
#include "core/usecases.hh"
#include "util/logging.hh"

namespace imsim {
namespace core {

SkuEconomics
priceHighPerfSku(const workload::AppProfile &app, int vm_vcores,
                 Watts extra_power_w, double wear_per_hour,
                 const SkuCostInputs &costs)
{
    util::fatalIf(vm_vcores <= 0, "priceHighPerfSku: need vcores");
    util::fatalIf(extra_power_w < 0.0,
                  "priceHighPerfSku: negative extra power");
    util::fatalIf(wear_per_hour < 0.0,
                  "priceHighPerfSku: negative wear rate");
    util::fatalIf(costs.vcoresPerServer <= 0,
                  "priceHighPerfSku: bad server vcore count");

    SkuEconomics out;
    out.appClass = app.name;
    const HighPerfVmPlan plan = planHighPerfVm(app);
    out.configName = plan.config->name;
    out.speedup = plan.expectedSpeedup;
    out.extraPowerW = extra_power_w;

    // The VM owns its vcore share of the server's extra power and wear.
    const double share = static_cast<double>(vm_vcores) /
                         static_cast<double>(costs.vcoresPerServer);
    out.extraEnergyCostPerVmHour = extra_power_w / 1000.0 * costs.pue *
                                   costs.energyPricePerKwh * share;
    out.wearCostPerVmHour =
        wear_per_hour * costs.serverReplacementCost * share;

    const double base_vm_price =
        costs.basePricePerVcoreHour * vm_vcores;
    out.breakEvenPremium =
        (out.extraEnergyCostPerVmHour + out.wearCostPerVmHour) /
        base_vm_price;
    // Performance-proportional pricing: customers pay for delivered
    // speed, so the justifiable premium equals the speedup minus one.
    out.valuePremium = out.speedup - 1.0;
    out.sellable = out.valuePremium >= out.breakEvenPremium;
    return out;
}

} // namespace core
} // namespace imsim
