#include "core/gpu_planner.hh"

#include <algorithm>

#include "util/logging.hh"

namespace imsim {
namespace core {

GpuPlanner::GpuPlanner(double memory_sensitivity_threshold)
    : memThreshold(memory_sensitivity_threshold)
{
    util::fatalIf(memory_sensitivity_threshold <= 0.0 ||
                      memory_sensitivity_threshold >= 1.0,
                  "GpuPlanner: threshold must be in (0,1)");
}

double
GpuPlanner::speedup(const workload::VggModel &model,
                    const std::string &config_name) const
{
    hw::GpuModel gpu;
    gpu.applyConfig(hw::gpuConfig(config_name));
    return 1.0 / trainingModel.relativeTime(model, gpu);
}

GpuOverclockPlan
GpuPlanner::plan(const workload::VggModel &model) const
{
    GpuOverclockPlan out;
    out.modelName = model.name;

    // SM overclocking (OCG1) is free within the stock power limit, so
    // it is always part of the plan; the memory overclock (OCG2, and
    // OCG3's further step) only pays when the model is memory-hungry.
    const char *choice;
    if (model.memWork >= 1.5 * memThreshold)
        choice = "OCG3";
    else if (model.memWork >= memThreshold)
        choice = "OCG2";
    else
        choice = "OCG1";
    out.config = &hw::gpuConfig(choice);

    hw::GpuModel base;
    hw::GpuModel chosen;
    chosen.applyConfig(*out.config);
    out.expectedSpeedup = 1.0 / trainingModel.relativeTime(model, chosen);
    out.extraPower = trainingModel.trainingPower(model, chosen) -
                     trainingModel.trainingPower(model, base);
    // OCG1 costs essentially no extra board power (same limit, shifted
    // efficiency point); floor the denominator at one watt so its
    // near-free uplift reports a high, finite efficiency.
    out.powerEfficiency = (out.expectedSpeedup - 1.0) * 100.0 /
                          std::max(out.extraPower, 1.0);
    return out;
}

} // namespace core
} // namespace imsim
