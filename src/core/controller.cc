#include "core/controller.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/table.hh"

namespace imsim {
namespace core {

OverclockController::OverclockController(
    hw::CpuModel &cpu_model, const thermal::CoolingSystem &cooling_system,
    reliability::WearTracker &wear_tracker,
    reliability::ErrorRateWatchdog &error_watchdog,
    power::RaplCapper &power_budget, ControllerPolicy policy)
    : cpu(cpu_model), cooling(cooling_system), tracker(wear_tracker),
      watchdog(error_watchdog), budget(power_budget), pol(policy)
{
    util::fatalIf(policy.minMarginMv < 0.0,
                  "OverclockController: negative margin requirement");
    util::fatalIf(policy.lifetimeTarget <= 0.0,
                  "OverclockController: lifetime target must be positive");
}

reliability::StressCondition
OverclockController::stressAt(GHz f, double activity) const
{
    // Evaluate the operating point's voltage and junction temperature.
    hw::DomainClocks clocks = cpu.clocks();
    clocks.core = f;
    hw::CpuModel probe = cpu; // Copy: do not mutate the live part.
    probe.setClocks(clocks);
    const auto breakdown = probe.power(cooling, activity);

    reliability::StressCondition cond;
    cond.voltage = probe.coreVoltage();
    cond.tjMax = breakdown.tj;
    cond.tMin = std::min(pol.cycleFloor, breakdown.tj);
    cond.freqRatio = f / cpu.curve().nominalFrequency();
    cond.dutyCycle = std::clamp(activity, 0.0, 1.0);
    return cond;
}

OverclockDecision
OverclockController::request(GHz target, double duration_h, double activity,
                             Seconds now_s) const
{
    util::fatalIf(target <= 0.0,
                  "OverclockController::request: bad target frequency");
    util::fatalIf(duration_h < 0.0,
                  "OverclockController::request: negative duration");
    OverclockDecision decision;
    const GHz nominal = cpu.curve().nominalFrequency();

    // 0. Hard boundary.
    if (target > cpu.governor().overclockBoundary()) {
        decision.reason = "target beyond the non-operating boundary";
        decision.grantedCore = nominal;
        return decision;
    }

    // 1. Stability: the watchdog must be quiet, and the operating point
    // must retain the minimum voltage margin (the +50 mV offset of the
    // OC configs exists exactly for this).
    if (watchdog.tripped(now_s)) {
        decision.reason = "correctable-error watchdog tripped; backing off";
        decision.grantedCore = nominal;
        return decision;
    }
    {
        hw::CpuModel probe = cpu;
        hw::DomainClocks clocks = cpu.clocks();
        clocks.core = target;
        probe.setClocks(clocks);
        if (probe.voltageMarginMv() < pol.minMarginMv) {
            decision.reason = "insufficient voltage margin at target";
            decision.grantedCore = nominal;
            return decision;
        }
    }

    // 2. Power: trim the target into the package power budget.
    GHz granted = target;
    {
        const auto power_at = [&](GHz f) {
            hw::CpuModel probe = cpu;
            hw::DomainClocks clocks = cpu.clocks();
            clocks.core = f;
            probe.setClocks(clocks);
            return probe.power(cooling, activity).total +
                   pol.powerHeadroom;
        };
        granted = budget.clamp(target, power_at);
        granted = cpu.governor().snapToBin(granted);
        if (granted < nominal) {
            decision.reason = "power budget leaves no overclock headroom";
            decision.grantedCore = nominal;
            return decision;
        }
    }

    // 3. Lifetime: the episode must be affordable within the wear
    // budget; otherwise reduce until it is.
    while (granted > nominal &&
           !tracker.canAfford(stressAt(granted, activity),
                              duration_h / units::kHoursPerYear)) {
        granted = cpu.governor().snapToBin(granted - 0.1);
    }
    if (granted <= nominal) {
        decision.reason = "lifetime budget exhausted";
        decision.grantedCore = nominal;
        return decision;
    }

    decision.approved = true;
    decision.grantedCore = granted;
    decision.grantedRatio = granted / nominal;
    if (granted < target) {
        decision.reason = "granted " + util::fmt(granted, 1) +
                          " GHz (trimmed from " + util::fmt(target, 1) +
                          " GHz)";
    } else {
        decision.reason = "granted";
    }
    return decision;
}

GHz
OverclockController::greenBandCeiling() const
{
    // Junction temperatures at the two anchor ratios under this cooling.
    const auto tj_at = [&](double ratio) {
        hw::CpuModel probe = cpu;
        hw::DomainClocks clocks = cpu.clocks();
        clocks.core = cpu.curve().nominalFrequency() * ratio;
        probe.setClocks(clocks);
        if (ratio > 1.0)
            probe.setVoltageOffset(50.0);
        return probe.power(cooling, 1.0).tj;
    };
    const double ratio = lifetimeModel.maxFrequencyRatioForLifetime(
        tj_at(1.0), tj_at(1.23), pol.cycleFloor, pol.lifetimeTarget);
    return cpu.governor().snapToBin(cpu.curve().nominalFrequency() * ratio);
}

} // namespace core
} // namespace imsim
