#include "core/bottleneck.hh"

#include "util/logging.hh"

namespace imsim {
namespace core {

ResourceSignals
signalsFromWork(const workload::WorkVector &work)
{
    ResourceSignals s{};
    const double cpu = work.core + work.llc + work.mem;
    s.coreScalable = cpu > 0.0 ? work.core / cpu : 0.0;
    const double stalls = work.llc + work.mem;
    s.llcPressure = stalls > 0.0 ? work.llc / (cpu > 0 ? cpu : 1.0) : 0.0;
    s.memPressure = stalls > 0.0 ? work.mem / (cpu > 0 ? cpu : 1.0) : 0.0;
    s.ioFraction = work.io;
    return s;
}

BottleneckAnalyzer::BottleneckAnalyzer(double sensitivity_threshold)
    : threshold(sensitivity_threshold)
{
    util::fatalIf(sensitivity_threshold <= 0.0 ||
                      sensitivity_threshold >= 1.0,
                  "BottleneckAnalyzer: threshold must be in (0,1)");
}

Recommendation
BottleneckAnalyzer::recommend(const ResourceSignals &signals) const
{
    Recommendation rec;
    // Weight each domain's sensitivity by the CPU-resident time: a VM
    // that is 90 % IO gains little from any overclock.
    const double cpu_weight = 1.0 - signals.ioFraction;
    rec.core = signals.coreScalable * cpu_weight > threshold;
    rec.uncore = signals.llcPressure * cpu_weight > threshold;
    rec.memory = signals.memPressure * cpu_weight > threshold;
    return rec;
}

const hw::CpuConfig &
BottleneckAnalyzer::configFor(const Recommendation &rec) const
{
    if (!rec.any())
        return hw::cpuConfig("B2");
    if (rec.memory)
        return hw::cpuConfig("OC3"); // Memory OC rides on uncore OC.
    if (rec.uncore)
        return hw::cpuConfig("OC2");
    return hw::cpuConfig("OC1");
}

const hw::CpuConfig &
BottleneckAnalyzer::configForApp(const workload::AppProfile &app) const
{
    return configFor(recommend(signalsFromWork(app.work)));
}

} // namespace core
} // namespace imsim
