/**
 * @file
 * GPU overclocking planner: the "which component to overclock" question
 * (Sec. IV "Performance") applied to the GPU's two domains. Fig. 11's
 * lesson is the input: SM-bound training (the batch-optimised VGG16B)
 * wastes the OCG2/OCG3 memory overclock's power, while memory-hungry
 * models need it. The planner picks the cheapest Table VIII
 * configuration whose domains match the model's bottleneck split and
 * reports the expected gain and power cost.
 */

#ifndef IMSIM_CORE_GPU_PLANNER_HH
#define IMSIM_CORE_GPU_PLANNER_HH

#include <string>

#include "hw/gpu.hh"
#include "workload/gpu_training.hh"

namespace imsim {
namespace core {

/** Plan for one GPU training workload. */
struct GpuOverclockPlan
{
    std::string modelName;       ///< Workload (VGG variant).
    const hw::GpuConfig *config; ///< Recommended Table VIII config.
    double expectedSpeedup;      ///< 1 / relative training time.
    Watts extraPower;            ///< Board power above the Base config.
    double powerEfficiency;      ///< Speedup percent per extra watt.
};

/**
 * GPU bottleneck-aware configuration planner.
 */
class GpuPlanner
{
  public:
    /**
     * @param memory_sensitivity_threshold Minimum memory-work fraction
     *        for the memory overclock (OCG2/OCG3) to pay for itself.
     */
    explicit GpuPlanner(double memory_sensitivity_threshold = 0.20);

    /** Plan the configuration for one training workload. */
    GpuOverclockPlan plan(const workload::VggModel &model) const;

    /**
     * Expected speedup of @p model under @p config_name relative to the
     * Base configuration.
     */
    double speedup(const workload::VggModel &model,
                   const std::string &config_name) const;

  private:
    double memThreshold;
    workload::GpuTrainingModel trainingModel;
};

} // namespace core
} // namespace imsim

#endif // IMSIM_CORE_GPU_PLANNER_HH
