/**
 * @file
 * High-performance VM SKU economics (Sec. V "High-performance VMs",
 * Fig. 5(c)): given the expected speedup on a workload class, the extra
 * power and wear the overclock costs, and the provider's cost structure,
 * what price premium makes the SKU break even — and does the green band
 * make it sellable at all?
 */

#ifndef IMSIM_CORE_SKU_HH
#define IMSIM_CORE_SKU_HH

#include <string>

#include "util/units.hh"
#include "workload/app.hh"

namespace imsim {
namespace core {

/** Cost inputs for the SKU pricing. */
struct SkuCostInputs
{
    /** Baseline VM price [$ per vcore-hour]. */
    double basePricePerVcoreHour = 0.05;
    /** Electricity price [$ per kWh]. */
    double energyPricePerKwh = 0.08;
    /** Facility average PUE applied to the energy bill. */
    double pue = 1.05;
    /** Replacement cost of one server, amortised per wear-fraction. */
    double serverReplacementCost = 12000.0;
    /** vCores per server (to apportion per-VM shares). */
    int vcoresPerServer = 56;
};

/** Economics of one high-performance SKU. */
struct SkuEconomics
{
    std::string appClass;        ///< Workload class it targets.
    std::string configName;      ///< Overclock configuration used.
    double speedup;              ///< Customer-visible speedup.
    double extraPowerW;          ///< Additional server power [W].
    double extraEnergyCostPerVmHour;  ///< [$ per VM-hour].
    double wearCostPerVmHour;    ///< Lifetime consumption cost [$/VM-h].
    double breakEvenPremium;     ///< Fractional price uplift to break even.
    double valuePremium;         ///< Premium justified by the speedup
                                 ///< (perf-proportional pricing).
    bool sellable;               ///< valuePremium >= breakEvenPremium.
};

/**
 * Price a high-performance SKU for @p app.
 *
 * @param app               Target workload class (drives config choice
 *                          and speedup via the bottleneck analyzer).
 * @param vm_vcores         vCores of the SKU.
 * @param extra_power_w     Additional server power when overclocked [W].
 * @param wear_per_hour     Extra lifetime fraction consumed per
 *                          overclocked hour (from the lifetime model).
 * @param costs             Cost inputs.
 */
SkuEconomics priceHighPerfSku(const workload::AppProfile &app,
                              int vm_vcores, Watts extra_power_w,
                              double wear_per_hour,
                              const SkuCostInputs &costs = {});

} // namespace core
} // namespace imsim

#endif // IMSIM_CORE_SKU_HH
