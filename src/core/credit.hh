/**
 * @file
 * Wear-credit overclocking scheduler.
 *
 * Sec. IV ("Lifetime"): the vendor model assumes worst-case utilization,
 * so "moderately-utilized servers will accumulate lifetime credit. Such
 * servers can be overclocked beyond the 23% frequency boost for added
 * performance, but the extent and duration of this additional
 * overclocking has to be balanced against the impact on lifetime. To
 * this end, we are working with component manufacturers to provide
 * wear-out counters". This scheduler implements that balance: it reads
 * the wear-out counter (WearTracker), grants overclock episodes only
 * when the budget affords them, and escalates into the red band (beyond
 * the green-band ratio) only while surplus credit exists.
 */

#ifndef IMSIM_CORE_CREDIT_HH
#define IMSIM_CORE_CREDIT_HH

#include "reliability/lifetime.hh"
#include "util/units.hh"

namespace imsim {
namespace core {

/** One scheduling decision. */
struct CreditDecision
{
    bool overclock = false;    ///< Run the episode overclocked at all.
    bool redBand = false;      ///< Escalate beyond the green band.
    double frequencyRatio = 1.0; ///< Granted f / all-core turbo.
};

/** Scheduler policy knobs. */
struct CreditPolicy
{
    double greenRatio = 1.23;   ///< Green-band frequency ratio.
    double redRatio = 1.30;     ///< Red-band escalation ratio.
    /** Credit (fraction of total life) that must be banked before the
     *  scheduler escalates into the red band. */
    double redBandReserve = 0.02;
    /** Keep this much credit untouched as a safety floor. */
    double safetyReserve = 0.005;
};

/**
 * Wear-credit scheduler for one processor.
 */
class CreditScheduler
{
  public:
    /**
     * @param tracker  The processor's wear-out counter.
     * @param policy   Scheduler knobs.
     */
    CreditScheduler(reliability::WearTracker &tracker,
                    CreditPolicy policy = {});

    /**
     * Decide one upcoming episode.
     *
     * @param nominal   Stress if the episode runs at nominal frequency.
     * @param green     Stress if it runs at the green-band ratio.
     * @param red       Stress if it runs at the red-band ratio.
     * @param demand    Whether the tenant wants the speed at all.
     * @param duration  Episode length [years].
     */
    CreditDecision decide(const reliability::StressCondition &nominal,
                          const reliability::StressCondition &green,
                          const reliability::StressCondition &red,
                          bool demand, Years duration) const;

    /**
     * Record the episode's outcome into the wear counter: call with the
     * stress actually applied.
     */
    void
    commit(const reliability::StressCondition &applied, Years duration)
    {
        tracker.accrue(applied, duration);
    }

    /** @return the policy. */
    const CreditPolicy &policy() const { return pol; }

  private:
    reliability::WearTracker &tracker;
    CreditPolicy pol;
};

} // namespace core
} // namespace imsim

#endif // IMSIM_CORE_CREDIT_HH
