#include "hw/cpu.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace hw {

namespace {

/** Leakage reference temperature [C] and exponential scale [C]. */
constexpr Celsius kLeakRefTj = 90.0;
constexpr Celsius kLeakTheta = 80.0;

/** Uncore V-f anchor: 0.95 V at 2.4 GHz, 0.1 V/GHz slope. */
constexpr Volts kUncoreVNominal = 0.95;
constexpr GHz kUncoreFNominal = 2.4;
constexpr double kUncoreSlope = 0.10;

/** Memory-domain nominal clock [GHz]. */
constexpr GHz kMemFNominal = 2.4;

} // namespace

CpuModel::CpuModel(std::string name, TurboGovernor governor,
                   power::VfCurve curve, Watts core_dyn, Watts uncore_dyn,
                   Watts mem_io_dyn, Watts leak_ref, bool unlocked)
    : partName(std::move(name)), turbo(governor), vf(curve),
      coreDyn(core_dyn), uncoreDyn(uncore_dyn), memIoDyn(mem_io_dyn),
      leakRef(leak_ref), isUnlocked(unlocked)
{
    util::fatalIf(core_dyn <= 0.0, "CpuModel: core power must be positive");
    util::fatalIf(uncore_dyn < 0.0 || mem_io_dyn < 0.0 || leak_ref < 0.0,
                  "CpuModel: negative power term");
    domains.core = turbo.baseFrequency();
}

void
CpuModel::applyConfig(const CpuConfig &config)
{
    util::fatalIf(config.isOverclock() && !isUnlocked,
                  "CpuModel::applyConfig: '" + config.name +
                      "' requires an unlocked part, but " + partName +
                      " is locked");
    util::fatalIf(config.core > turbo.overclockBoundary(),
                  "CpuModel::applyConfig: core clock beyond the "
                  "non-operating boundary");
    domains.core = config.core;
    domains.llc = config.llc;
    domains.memory = config.memory;
    voltageOffsetMv = config.voltageOffsetMv;
    currentConfig = config.name;
}

void
CpuModel::setClocks(const DomainClocks &clocks)
{
    util::fatalIf(clocks.core <= 0.0 || clocks.llc <= 0.0 ||
                      clocks.memory <= 0.0,
                  "CpuModel::setClocks: non-positive clock");
    util::fatalIf(clocks.core > turbo.overclockBoundary(),
                  "CpuModel::setClocks: core clock beyond the "
                  "non-operating boundary");
    const bool overclocked = clocks.core > turbo.turboCeiling(turbo.cores());
    util::fatalIf(overclocked && !isUnlocked,
                  "CpuModel::setClocks: overclocking a locked part");
    domains = clocks;
    currentConfig = "custom";
}

void
CpuModel::setVoltageOffset(double mv)
{
    util::fatalIf(mv < -200.0 || mv > 300.0,
                  "CpuModel::setVoltageOffset: offset out of sane range");
    voltageOffsetMv = mv;
}

Volts
CpuModel::coreVoltage() const
{
    return vf.voltageFor(domains.core) + voltageOffsetMv * 1e-3;
}

double
CpuModel::voltageMarginMv() const
{
    return vf.margin(domains.core, coreVoltage()) * 1e3;
}

Volts
CpuModel::uncoreVoltage(GHz fu) const
{
    return kUncoreVNominal + kUncoreSlope * (fu - kUncoreFNominal);
}

CpuPowerBreakdown
CpuModel::power(const thermal::CoolingSystem &cooling, double activity) const
{
    util::fatalIf(activity < 0.0 || activity > 1.0,
                  "CpuModel::power: activity out of [0,1]");
    CpuPowerBreakdown out{};

    const Volts vc = coreVoltage();
    const double vc_ratio = vc / vf.nominalVoltage();
    const double fc_ratio = domains.core / vf.nominalFrequency();
    out.core = coreDyn * activity * vc_ratio * vc_ratio * vc_ratio *
               fc_ratio;

    // The uncore never fully idles while any core is active; floor its
    // activity at 30 %.
    const double uncore_act = std::max(activity, 0.3);
    const Volts vu = uncoreVoltage(domains.llc);
    const double vu_ratio = vu / kUncoreVNominal;
    const double fu_ratio = domains.llc / kUncoreFNominal;
    out.uncore = uncoreDyn * uncore_act * vu_ratio * vu_ratio * vu_ratio *
                 fu_ratio;

    // Memory controller/PHY power scales with the memory clock.
    out.memoryIo = memIoDyn * std::max(activity, 0.3) *
                   (domains.memory / kMemFNominal);

    // Leakage closes the power/temperature fixed point.
    const Watts dyn = out.core + out.uncore + out.memoryIo;
    Watts total = dyn + leakRef;
    for (int iter = 0; iter < 60; ++iter) {
        const Celsius tj = cooling.junctionTemperature(total);
        const Watts leak =
            leakRef * std::exp((tj - kLeakRefTj) / kLeakTheta);
        const Watts next = dyn + leak;
        if (std::abs(next - total) < 1e-6) {
            total = next;
            break;
        }
        total = next;
    }
    out.total = total;
    out.tj = cooling.junctionTemperature(total);
    out.leakage = total - dyn;
    return out;
}

CpuModel
CpuModel::xeonW3175x()
{
    // 255 W TDP, 28 cores, unlocked: 175 W core + 30 W uncore + 12 W
    // memory IO dynamic at the B2 anchor, 55 W leakage at 90 C.
    return CpuModel("Xeon W-3175X", TurboGovernor::xeonW3175x(),
                    power::VfCurve::xeonW3175x(), 175.0, 30.0, 12.0, 55.0,
                    true);
}

CpuModel
CpuModel::skylake8180()
{
    // Locked server part: 205 W TDP, 28 cores, all-core turbo 2.6-2.7.
    // Dynamic split (114 + 26 + 10 = 150 W at the anchor) matches the
    // air-calibrated socket model.
    return CpuModel("Xeon Platinum 8180", TurboGovernor::skylake8180(),
                    power::VfCurve::xeonServer(2.6), 114.0, 26.0, 10.0, 55.0,
                    false);
}

CpuModel
CpuModel::skylake8168()
{
    return CpuModel("Xeon Platinum 8168", TurboGovernor::skylake8168(),
                    power::VfCurve::xeonServer(3.1), 114.0, 26.0, 10.0, 55.0,
                    false);
}

} // namespace hw
} // namespace imsim
