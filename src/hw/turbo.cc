#include "hw/turbo.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace hw {

std::string
domainName(FrequencyDomain domain)
{
    switch (domain) {
      case FrequencyDomain::Guaranteed:
        return "guaranteed";
      case FrequencyDomain::Turbo:
        return "turbo";
      case FrequencyDomain::Overclocking:
        return "overclocking";
      case FrequencyDomain::NonOperating:
        return "non-operating";
    }
    util::panic("domainName: unhandled domain");
}

TurboGovernor::TurboGovernor(int cores, GHz f_min, GHz f_base,
                             GHz f_turbo_single, GHz f_turbo_all,
                             GHz f_oc_max, Watts tdp_watts, Celsius tj_limit,
                             GHz bin)
    : coreCount(cores), fMin(f_min), fBase(f_base),
      fTurboSingle(f_turbo_single), fTurboAll(f_turbo_all), fOcMax(f_oc_max),
      tdpLimit(tdp_watts), tjLimit(tj_limit), binSize(bin)
{
    util::fatalIf(cores <= 0, "TurboGovernor: core count must be positive");
    util::fatalIf(!(f_min <= f_base && f_base <= f_turbo_all &&
                    f_turbo_all <= f_turbo_single &&
                    f_turbo_single <= f_oc_max),
                  "TurboGovernor: frequencies must be ordered "
                  "min <= base <= all-core turbo <= 1-core turbo <= ocMax");
    util::fatalIf(tdp_watts <= 0.0, "TurboGovernor: TDP must be positive");
    util::fatalIf(bin <= 0.0, "TurboGovernor: bin must be positive");
}

GHz
TurboGovernor::turboCeiling(int active_cores) const
{
    util::fatalIf(active_cores < 1 || active_cores > coreCount,
                  "TurboGovernor::turboCeiling: active cores out of range");
    if (coreCount == 1)
        return fTurboSingle;
    // Linear droop from the single-core ceiling to the all-core ceiling.
    const double frac = static_cast<double>(active_cores - 1) /
                        static_cast<double>(coreCount - 1);
    const GHz ceiling = fTurboSingle - frac * (fTurboSingle - fTurboAll);
    return snapToBin(ceiling);
}

FrequencyDomain
TurboGovernor::classify(GHz f, int active_cores) const
{
    util::fatalIf(f <= 0.0, "TurboGovernor::classify: frequency must be > 0");
    if (f > fOcMax)
        return FrequencyDomain::NonOperating;
    if (f > turboCeiling(active_cores))
        return FrequencyDomain::Overclocking;
    if (f > fBase)
        return FrequencyDomain::Turbo;
    return FrequencyDomain::Guaranteed;
}

GHz
TurboGovernor::effectiveFrequency(const power::SocketPowerModel &socket,
                                  const thermal::CoolingSystem &cooling,
                                  int active_cores, double activity) const
{
    const GHz table_ceiling = turboCeiling(active_cores);

    // Scale activity by the fraction of cores that are busy: the package
    // power model's activity factor covers the whole socket.
    const double package_activity =
        activity * static_cast<double>(active_cores) /
        static_cast<double>(coreCount);

    const GHz power_ceiling = socket.maxFrequencyAtPowerLimit(
        tdpLimit, cooling, std::clamp(package_activity, 0.05, 1.0));

    // Junction-temperature throttle: the highest frequency whose steady
    // Tj stays under the limit.
    GHz thermal_ceiling = fOcMax;
    {
        const auto tj_at = [&](GHz f) {
            const power::OperatingPoint op{
                f, socket.curve().voltageFor(f),
                std::clamp(package_activity, 0.05, 1.0)};
            return socket.solve(op, cooling).tj;
        };
        if (tj_at(fOcMax) > tjLimit) {
            GHz lo = fMin;
            GHz hi = fOcMax;
            if (tj_at(lo) > tjLimit) {
                thermal_ceiling = lo;
            } else {
                for (int iter = 0; iter < 50; ++iter) {
                    const GHz mid = 0.5 * (lo + hi);
                    if (tj_at(mid) <= tjLimit)
                        lo = mid;
                    else
                        hi = mid;
                }
                thermal_ceiling = lo;
            }
        }
    }

    const GHz f = std::min({table_ceiling, power_ceiling, thermal_ceiling});
    return std::max(fMin, snapToBin(f));
}

void
TurboGovernor::setTdp(Watts watts)
{
    util::fatalIf(watts <= 0.0, "TurboGovernor::setTdp: TDP must be > 0");
    tdpLimit = watts;
}

GHz
TurboGovernor::snapToBin(GHz f) const
{
    return std::floor(f / binSize + 1e-9) * binSize;
}

TurboGovernor
TurboGovernor::skylake8168()
{
    // 24 cores, 2.7 GHz base, 3.7 GHz single-core turbo, 205 W TDP. The
    // all-core turbo table ceiling (3.3 GHz) exceeds what the TDP allows;
    // the governor lands at 3.1 GHz in air and 3.2 GHz in 2PIC.
    return TurboGovernor(24, 1.2, 2.7, 3.7, 3.3, 4.3, 205.0);
}

TurboGovernor
TurboGovernor::skylake8180()
{
    // 28 cores, 2.5 GHz base, 3.8 GHz single-core turbo, 205 W TDP.
    return TurboGovernor(28, 1.2, 2.5, 3.8, 3.2, 4.2, 205.0);
}

TurboGovernor
TurboGovernor::xeonW3175x()
{
    // 28 cores, unlocked, 255 W TDP; 3.1 GHz base (Table VII B1), 3.4 GHz
    // all-core turbo (B2), 4.5 GHz single-core table, 5.1 GHz boundary.
    return TurboGovernor(28, 1.2, 3.1, 4.5, 3.4, 5.1, 255.0);
}

} // namespace hw
} // namespace imsim
