#include "hw/gpu.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace hw {

namespace {

/** Fixed board overhead (fans removed in immersion, VRM, etc.) [W]. */
constexpr Watts kBoardOverhead = 25.0;

/** Memory power at the baseline 6.8 GHz clock [W]. */
constexpr Watts kMemPowerNominal = 45.0;
constexpr GHz kMemClockNominal = 6.8;

/** Core power at the baseline turbo clock, activity 1 [W]. */
constexpr Watts kCorePowerNominal = 180.0;

/** Nominal core voltage [V] and effective voltage sensitivity. */
constexpr Volts kCoreVNominal = 1.00;

} // namespace

GpuModel::GpuModel(std::string name, GpuConfig base_cfg)
    : partName(std::move(name)), baseline(base_cfg), current(base_cfg)
{}

void
GpuModel::applyConfig(const GpuConfig &config)
{
    util::fatalIf(config.turbo < config.base,
                  "GpuModel::applyConfig: turbo below base clock");
    current = config;
}

Watts
GpuModel::corePowerAt(GHz f, double activity) const
{
    const Volts v = kCoreVNominal + current.voltageOffsetMv * 1e-3;
    const double v_ratio = v / kCoreVNominal;
    // Normalised by the *configured* turbo clock: an overclocked config
    // reaches its higher clock at the rated core power (the offset shifts
    // the efficiency point); the voltage offset costs quadratically.
    // Calibrated to the paper's +19 % P99 board power base -> OCG3.
    return kCorePowerNominal * activity * v_ratio * v_ratio *
           (f / current.turbo);
}

GHz
GpuModel::sustainedCoreClock(double activity) const
{
    util::fatalIf(activity < 0.0 || activity > 1.0,
                  "GpuModel: activity out of [0,1]");
    const Watts mem =
        kMemPowerNominal * (current.memory / kMemClockNominal);
    const Watts core_budget =
        current.powerLimit - mem - kBoardOverhead;
    util::fatalIf(core_budget <= 0.0,
                  "GpuModel: power limit below memory + board floor");
    if (corePowerAt(current.turbo, activity) <= core_budget)
        return current.turbo;
    // Clip the clock to fit the budget; power is linear in f here.
    const double scale =
        core_budget / corePowerAt(current.turbo, activity);
    return std::max(current.base, current.turbo * scale);
}

GpuPowerBreakdown
GpuModel::power(double activity) const
{
    GpuPowerBreakdown out{};
    const GHz f = sustainedCoreClock(activity);
    out.core = corePowerAt(f, activity);
    out.memory = kMemPowerNominal * (current.memory / kMemClockNominal) *
                 std::max(activity, 0.3);
    out.board = kBoardOverhead;
    out.total = out.core + out.memory + out.board;
    out.powerLimited = f < current.turbo - 1e-9;
    return out;
}

} // namespace hw
} // namespace imsim
