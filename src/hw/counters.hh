/**
 * @file
 * Hardware-counter emulation: the architecture-independent Aperf/Pperf
 * pair the auto-scaler's utilization model (Eq. 1, from Mubeen's workload
 * frequency scaling law [51]) consumes.
 *
 * Aperf counts cycles while the core is active; Pperf counts active cycles
 * that are *productive*, i.e. not stalled on some dependency such as a
 * memory access. The ratio dPperf/dAperf is the frequency-scalable
 * fraction of the work.
 */

#ifndef IMSIM_HW_COUNTERS_HH
#define IMSIM_HW_COUNTERS_HH

#include <cstdint>

#include "util/units.hh"

namespace imsim {
namespace hw {

/** A sample of the counter block at one instant. */
struct CounterSample
{
    double aperf = 0.0; ///< Active cycles (x1e9, i.e. gigacycles).
    double pperf = 0.0; ///< Productive active cycles (gigacycles).
    double tsc = 0.0;   ///< Wall-clock reference cycles (gigacycles).

    /**
     * Frequency-scalable fraction between @p earlier and this sample:
     * dPperf/dAperf. Returns @p fallback when no active cycles elapsed.
     */
    double scalableFraction(const CounterSample &earlier,
                            double fallback = 1.0) const;

    /** Core utilization between @p earlier and this sample: dAperf/dTsc
     *  normalised by the frequency ratio f/f_tsc. For the emulation the
     *  caller usually tracks utilization directly; this derives it from
     *  the counters the way production telemetry would. */
    double utilization(const CounterSample &earlier, GHz core_freq,
                       GHz tsc_freq) const;
};

/**
 * Per-core (or per-VM aggregate) counter block, advanced by the hypervisor
 * scheduler as simulated work executes.
 */
class CounterBlock
{
  public:
    /** @param tsc_freq Invariant TSC frequency [GHz]. */
    explicit CounterBlock(GHz tsc_freq = 2.4);

    /**
     * Advance the counters by @p dt seconds of wall-clock time.
     *
     * @param core_freq     Current core frequency [GHz].
     * @param busy_fraction Fraction of @p dt the core was active [0,1].
     * @param stall_fraction Fraction of *active* cycles stalled on
     *                       non-core-clock resources [0,1].
     */
    void advance(Seconds dt, GHz core_freq, double busy_fraction,
                 double stall_fraction);

    /** @return a snapshot of the current counter values. */
    CounterSample sample() const { return current; }

    /** Reset all counters to zero. */
    void reset();

  private:
    CounterSample current;
    GHz tscFreq;
};

/**
 * Eq. 1 of the paper: predicted utilization after changing the core clock
 * from @p f0 to @p f1, given current utilization @p util and the measured
 * scalable fraction @p p_over_a = dPperf/dAperf.
 *
 * Util' = Util * (P/A * F0/F1 + (1 - P/A)).
 */
double predictedUtilization(double util, double p_over_a, GHz f0, GHz f1);

} // namespace hw
} // namespace imsim

#endif // IMSIM_HW_COUNTERS_HH
