#include "hw/counters.hh"

#include <algorithm>

#include "util/logging.hh"

namespace imsim {
namespace hw {

double
CounterSample::scalableFraction(const CounterSample &earlier,
                                double fallback) const
{
    const double da = aperf - earlier.aperf;
    const double dp = pperf - earlier.pperf;
    util::fatalIf(da < -1e-12 || dp < -1e-12,
                  "CounterSample: counters went backwards");
    if (da <= 1e-12)
        return fallback;
    return std::clamp(dp / da, 0.0, 1.0);
}

double
CounterSample::utilization(const CounterSample &earlier, GHz core_freq,
                           GHz tsc_freq) const
{
    util::fatalIf(core_freq <= 0.0 || tsc_freq <= 0.0,
                  "CounterSample::utilization: non-positive frequency");
    const double da = aperf - earlier.aperf;
    const double dtsc = tsc - earlier.tsc;
    if (dtsc <= 1e-12)
        return 0.0;
    // Busy wall-clock fraction: active cycles divided by the cycles the
    // core would have retired had it been active the whole interval.
    const double wall_seconds = dtsc / tsc_freq;
    const double busy_seconds = da / core_freq;
    return std::clamp(busy_seconds / wall_seconds, 0.0, 1.0);
}

CounterBlock::CounterBlock(GHz tsc_freq) : tscFreq(tsc_freq)
{
    util::fatalIf(tsc_freq <= 0.0, "CounterBlock: TSC frequency must be > 0");
}

void
CounterBlock::advance(Seconds dt, GHz core_freq, double busy_fraction,
                      double stall_fraction)
{
    util::fatalIf(dt < 0.0, "CounterBlock::advance: negative dt");
    util::fatalIf(core_freq <= 0.0,
                  "CounterBlock::advance: frequency must be positive");
    util::fatalIf(busy_fraction < 0.0 || busy_fraction > 1.0,
                  "CounterBlock::advance: busy fraction out of [0,1]");
    util::fatalIf(stall_fraction < 0.0 || stall_fraction > 1.0,
                  "CounterBlock::advance: stall fraction out of [0,1]");
    const double active_gigacycles = dt * core_freq * busy_fraction;
    current.aperf += active_gigacycles;
    current.pperf += active_gigacycles * (1.0 - stall_fraction);
    current.tsc += dt * tscFreq;
}

void
CounterBlock::reset()
{
    current = CounterSample{};
}

double
predictedUtilization(double util, double p_over_a, GHz f0, GHz f1)
{
    util::fatalIf(util < 0.0, "predictedUtilization: negative utilization");
    util::fatalIf(p_over_a < 0.0 || p_over_a > 1.0,
                  "predictedUtilization: P/A out of [0,1]");
    util::fatalIf(f0 <= 0.0 || f1 <= 0.0,
                  "predictedUtilization: non-positive frequency");
    return util * (p_over_a * f0 / f1 + (1.0 - p_over_a));
}

} // namespace hw
} // namespace imsim
