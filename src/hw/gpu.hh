/**
 * @file
 * GPU model with the Table VIII overclocking knobs (RTX 2080 Ti class):
 * board power limit, base/turbo core clock, memory clock, and voltage
 * offset. Drives the Fig. 11 GPU-training experiments.
 */

#ifndef IMSIM_HW_GPU_HH
#define IMSIM_HW_GPU_HH

#include <string>

#include "hw/configs.hh"
#include "util/units.hh"

namespace imsim {
namespace hw {

/** GPU board power breakdown. */
struct GpuPowerBreakdown
{
    Watts core;    ///< SM core power [W].
    Watts memory;  ///< GDDR memory power [W].
    Watts board;   ///< Fixed board overhead [W].
    Watts total;   ///< Total board power [W].
    bool powerLimited; ///< Whether the board power limit clipped the core.
};

/**
 * One GPU board.
 */
class GpuModel
{
  public:
    /**
     * @param name       Part name.
     * @param base_cfg   Baseline configuration (Table VIII "Base").
     */
    explicit GpuModel(std::string name = "RTX 2080 Ti",
                      GpuConfig base_cfg = gpuConfig("Base"));

    /** Apply a Table VIII configuration. */
    void applyConfig(const GpuConfig &config);

    /** @return the applied configuration. */
    const GpuConfig &config() const { return current; }

    /** @return the part name. */
    const std::string &name() const { return partName; }

    /**
     * Sustained core clock under load: the turbo clock, clipped by the
     * board power limit when the (voltage-scaled) core power would
     * exceed it.
     */
    GHz sustainedCoreClock(double activity = 1.0) const;

    /** @return effective memory clock [GHz]. */
    GHz memoryClock() const { return current.memory; }

    /** Board power at @p activity. */
    GpuPowerBreakdown power(double activity = 1.0) const;

  private:
    std::string partName;
    GpuConfig baseline;
    GpuConfig current;

    /** Core power at clock @p f and the current voltage offset. */
    Watts corePowerAt(GHz f, double activity) const;
};

} // namespace hw
} // namespace imsim

#endif // IMSIM_HW_GPU_HH
