/**
 * @file
 * Frequency-configuration catalogs: the CPU configurations of Table VII
 * (B1-B4, OC1-OC3 on the Xeon W-3175X) and the GPU configurations of
 * Table VIII (Base, OCG1-OCG3 on the RTX 2080 Ti).
 */

#ifndef IMSIM_HW_CONFIGS_HH
#define IMSIM_HW_CONFIGS_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace imsim {
namespace hw {

/** One row of Table VII: a CPU frequency configuration. */
struct CpuConfig
{
    std::string name;       ///< "B1".."B4", "OC1".."OC3".
    GHz core;               ///< Core clock [GHz].
    double voltageOffsetMv; ///< Extra voltage offset [mV].
    bool turboEnabled;      ///< Turbo Boost enabled (N/A when overclocked).
    GHz llc;                ///< Uncore / last-level-cache clock [GHz].
    GHz memory;             ///< System memory clock [GHz].

    /** @return whether this is an overclocked configuration (OC*). */
    bool isOverclock() const { return name.rfind("OC", 0) == 0; }
};

/** @return all Table VII rows, in table order. */
const std::vector<CpuConfig> &cpuConfigCatalog();

/** Look up a CPU configuration by name; FatalError when unknown. */
const CpuConfig &cpuConfig(const std::string &name);

/** One row of Table VIII: a GPU frequency configuration. */
struct GpuConfig
{
    std::string name;       ///< "Base", "OCG1".."OCG3".
    Watts powerLimit;       ///< Board power limit [W].
    GHz base;               ///< Base clock [GHz].
    GHz turbo;              ///< Turbo clock [GHz].
    GHz memory;             ///< Memory clock [GHz].
    double voltageOffsetMv; ///< Extra voltage offset [mV].

    /** @return whether this is an overclocked configuration (OCG*). */
    bool isOverclock() const { return name.rfind("OCG", 0) == 0; }
};

/** @return all Table VIII rows, in table order. */
const std::vector<GpuConfig> &gpuConfigCatalog();

/** Look up a GPU configuration by name; FatalError when unknown. */
const GpuConfig &gpuConfig(const std::string &name);

} // namespace hw
} // namespace imsim

#endif // IMSIM_HW_CONFIGS_HH
