/**
 * @file
 * CPU package model with independent core / uncore(LLC) / memory clock
 * domains — the knobs Table VII turns. Combines the per-domain dynamic
 * power terms with temperature-dependent leakage against a cooling system
 * and exposes the stability margin of the current operating point.
 */

#ifndef IMSIM_HW_CPU_HH
#define IMSIM_HW_CPU_HH

#include <string>

#include "hw/configs.hh"
#include "hw/turbo.hh"
#include "power/vf_curve.hh"
#include "reliability/stability.hh"
#include "thermal/cooling.hh"
#include "util/units.hh"

namespace imsim {
namespace hw {

/** Clock settings of all three domains. */
struct DomainClocks
{
    GHz core = 3.4;
    GHz llc = 2.4;
    GHz memory = 2.4;
};

/** Package power breakdown at one evaluation. */
struct CpuPowerBreakdown
{
    Watts core;     ///< Core-domain dynamic power [W].
    Watts uncore;   ///< Uncore/LLC dynamic power [W].
    Watts memoryIo; ///< Memory-controller and PHY power [W].
    Watts leakage;  ///< Temperature-dependent leakage [W].
    Watts total;    ///< Package power [W].
    Celsius tj;     ///< Junction temperature [C].
};

/**
 * One CPU package.
 */
class CpuModel
{
  public:
    /**
     * @param name          Part name.
     * @param governor      Turbo/domain governor for the part.
     * @param curve         Core-domain V-f curve.
     * @param core_dyn      Core dynamic power at the curve anchor [W].
     * @param uncore_dyn    Uncore dynamic power at 2.4 GHz [W].
     * @param mem_io_dyn    Memory controller power at 2.4 GHz [W].
     * @param leak_ref      Leakage at 90 C [W].
     * @param unlocked      Whether overclocked configs may be applied.
     */
    CpuModel(std::string name, TurboGovernor governor, power::VfCurve curve,
             Watts core_dyn, Watts uncore_dyn, Watts mem_io_dyn,
             Watts leak_ref, bool unlocked);

    /** @return the part name. */
    const std::string &name() const { return partName; }

    /**
     * Apply a Table VII configuration. Overclocked configurations on a
     * locked part raise FatalError (the large-tank blades are locked;
     * Sec. III).
     */
    void applyConfig(const CpuConfig &config);

    /** Set clocks directly (the auto-scaler's scale-up/down path). */
    void setClocks(const DomainClocks &clocks);

    /** Set the extra voltage offset [mV]. */
    void setVoltageOffset(double mv);

    /** @return the current domain clocks. */
    const DomainClocks &clocks() const { return domains; }

    /** @return the name of the applied config ("custom" after setClocks). */
    const std::string &configName() const { return currentConfig; }

    /** @return core supply voltage at the current operating point [V]. */
    Volts coreVoltage() const;

    /**
     * Voltage margin of the current operating point [mV]; the input to
     * the stability model.
     */
    double voltageMarginMv() const;

    /**
     * Package power/thermal evaluation.
     *
     * @param cooling  Cooling system.
     * @param activity Core-domain activity factor [0,1].
     */
    CpuPowerBreakdown power(const thermal::CoolingSystem &cooling,
                            double activity = 1.0) const;

    /** @return the turbo governor. */
    const TurboGovernor &governor() const { return turbo; }

    /** @return mutable governor (to raise TDP for overclocking). */
    TurboGovernor &governor() { return turbo; }

    /** @return the V-f curve. */
    const power::VfCurve &curve() const { return vf; }

    /** @return whether the part is unlocked for overclocking. */
    bool unlocked() const { return isUnlocked; }

    /** The overclockable Xeon W-3175X of small tank #1. */
    static CpuModel xeonW3175x();

    /** The locked Skylake 8180 of the large tank. */
    static CpuModel skylake8180();

    /** The locked Skylake 8168 of the large tank. */
    static CpuModel skylake8168();

  private:
    std::string partName;
    TurboGovernor turbo;
    power::VfCurve vf;
    Watts coreDyn;
    Watts uncoreDyn;
    Watts memIoDyn;
    Watts leakRef;
    bool isUnlocked;
    DomainClocks domains;
    double voltageOffsetMv = 0.0;
    std::string currentConfig = "B2";

    /** Uncore supply voltage for an uncore clock. */
    Volts uncoreVoltage(GHz fu) const;
};

} // namespace hw
} // namespace imsim

#endif // IMSIM_HW_CPU_HH
