/**
 * @file
 * Operating-frequency domains and the turbo governor (Fig. 4, Table III).
 *
 * Processors expose a guaranteed range [min, base], an opportunistic turbo
 * range whose ceiling depends on the number of active cores, and — with
 * sufficient cooling — an overclocking range beyond the turbo ceiling up
 * to a non-operating boundary. The governor picks the highest frequency
 * bin that fits the active-core turbo table, the package power limit, and
 * a junction-temperature ceiling; 2PIC's lower leakage is what buys the
 * extra 100 MHz bin Table III reports.
 */

#ifndef IMSIM_HW_TURBO_HH
#define IMSIM_HW_TURBO_HH

#include <string>

#include "power/socket_power.hh"
#include "thermal/cooling.hh"
#include "util/units.hh"

namespace imsim {
namespace hw {

/** The operating domains of Fig. 4. */
enum class FrequencyDomain
{
    Guaranteed,   ///< [min, base]: always sustainable.
    Turbo,        ///< (base, turbo(n)]: opportunistic, thermal permitting.
    Overclocking, ///< (turbo(n), ocMax]: requires 2PIC-class cooling.
    NonOperating, ///< Beyond ocMax: unstable at any voltage.
};

/** @return a printable name for a domain. */
std::string domainName(FrequencyDomain domain);

/**
 * Frequency-domain map and thermally aware turbo governor for one part.
 */
class TurboGovernor
{
  public:
    /**
     * @param cores           Core count.
     * @param f_min           Minimum operating frequency [GHz].
     * @param f_base          Base (nominal/guaranteed) frequency [GHz].
     * @param f_turbo_single  Max turbo with one active core [GHz].
     * @param f_turbo_all     Max turbo with all cores active [GHz].
     * @param f_oc_max        Overclocking (non-operating) boundary [GHz].
     * @param tdp             Package power limit [W].
     * @param tj_limit        Junction throttle temperature [C].
     * @param bin             Frequency bin granularity [GHz].
     */
    TurboGovernor(int cores, GHz f_min, GHz f_base, GHz f_turbo_single,
                  GHz f_turbo_all, GHz f_oc_max, Watts tdp,
                  Celsius tj_limit = 98.0, GHz bin = 0.1);

    /** Turbo-table ceiling for @p active_cores active cores [GHz]. */
    GHz turboCeiling(int active_cores) const;

    /** Classify a frequency for a given active-core count (Fig. 4). */
    FrequencyDomain classify(GHz f, int active_cores) const;

    /**
     * Frequency the part actually sustains with @p active_cores running
     * a load of @p activity, under @p cooling: the turbo-table ceiling
     * clipped by the TDP and the junction limit, floored to a bin.
     *
     * @param socket  Power model used for the TDP/thermal evaluation.
     */
    GHz effectiveFrequency(const power::SocketPowerModel &socket,
                           const thermal::CoolingSystem &cooling,
                           int active_cores, double activity = 1.0) const;

    /** @return base frequency [GHz]. */
    GHz baseFrequency() const { return fBase; }

    /** @return minimum frequency [GHz]. */
    GHz minFrequency() const { return fMin; }

    /** @return the overclocking boundary [GHz]. */
    GHz overclockBoundary() const { return fOcMax; }

    /** @return package power limit [W]. */
    Watts tdp() const { return tdpLimit; }

    /** Raise the package power limit (overclocking headroom). */
    void setTdp(Watts watts);

    /** @return core count. */
    int cores() const { return coreCount; }

    /** Floor @p f to the bin grid. */
    GHz snapToBin(GHz f) const;

    /** Skylake 8168 (24 cores; Table III air max turbo 3.1 GHz). */
    static TurboGovernor skylake8168();

    /** Skylake 8180 (28 cores; Table III air max turbo 2.6 GHz). */
    static TurboGovernor skylake8180();

    /** Xeon W-3175X (28 cores, unlocked; Table VII B2 = 3.4 GHz). */
    static TurboGovernor xeonW3175x();

  private:
    int coreCount;
    GHz fMin;
    GHz fBase;
    GHz fTurboSingle;
    GHz fTurboAll;
    GHz fOcMax;
    Watts tdpLimit;
    Celsius tjLimit;
    GHz binSize;
};

} // namespace hw
} // namespace imsim

#endif // IMSIM_HW_TURBO_HH
