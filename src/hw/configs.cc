#include "hw/configs.hh"

#include "util/logging.hh"

namespace imsim {
namespace hw {

const std::vector<CpuConfig> &
cpuConfigCatalog()
{
    // Table VII. B1 runs at base clock with turbo disabled; B2 is the
    // production default (all-core turbo); B3/B4 overclock uncore/memory
    // only; OC1-OC3 overclock the core to 4.1 GHz with a +50 mV offset
    // and progressively the uncore and memory.
    static const std::vector<CpuConfig> catalog{
        {"B1", 3.1, 0.0, false, 2.4, 2.4},
        {"B2", 3.4, 0.0, true, 2.4, 2.4},
        {"B3", 3.4, 0.0, true, 2.8, 2.4},
        {"B4", 3.4, 0.0, true, 2.8, 3.0},
        {"OC1", 4.1, 50.0, false, 2.4, 2.4},
        {"OC2", 4.1, 50.0, false, 2.8, 2.4},
        {"OC3", 4.1, 50.0, false, 2.8, 3.0},
    };
    return catalog;
}

const CpuConfig &
cpuConfig(const std::string &name)
{
    for (const auto &config : cpuConfigCatalog())
        if (config.name == name)
            return config;
    util::fatal("unknown CPU configuration: " + name);
}

const std::vector<GpuConfig> &
gpuConfigCatalog()
{
    // Table VIII.
    static const std::vector<GpuConfig> catalog{
        {"Base", 250.0, 1.35, 1.950, 6.8, 0.0},
        {"OCG1", 250.0, 1.55, 2.085, 6.8, 0.0},
        {"OCG2", 300.0, 1.55, 2.085, 8.1, 100.0},
        {"OCG3", 300.0, 1.55, 2.085, 8.3, 100.0},
    };
    return catalog;
}

const GpuConfig &
gpuConfig(const std::string &name)
{
    for (const auto &config : gpuConfigCatalog())
        if (config.name == name)
            return config;
    util::fatal("unknown GPU configuration: " + name);
}

} // namespace hw
} // namespace imsim
