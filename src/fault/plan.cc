#include "fault/plan.hh"

#include "util/logging.hh"

namespace imsim {
namespace fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::ServerCrash:
        return "server_crash";
      case FaultKind::ServerRepair:
        return "server_repair";
      case FaultKind::CoolingDegrade:
        return "cooling_degrade";
      case FaultKind::CoolingRestore:
        return "cooling_restore";
      case FaultKind::PowerDerate:
        return "power_derate";
      case FaultKind::PowerRestore:
        return "power_restore";
    }
    util::panic("faultKindName: unhandled kind");
}

FaultPlan &
FaultPlan::at(Seconds t, Fault fault)
{
    util::fatalIf(t < 0.0, "FaultPlan::at: negative time");
    if (fault.kind == FaultKind::CoolingDegrade) {
        util::fatalIf(fault.magnitude < 0.05 || fault.magnitude >= 1.0,
                      "FaultPlan::at: cooling-degrade level out of "
                      "[0.05, 1)");
    }
    if (fault.kind == FaultKind::PowerDerate) {
        util::fatalIf(fault.magnitude <= 0.0 || fault.magnitude >= 1.0,
                      "FaultPlan::at: power-derate fraction out of (0, 1)");
    }
    events.emplace_back(t, fault);
    return *this;
}

FaultPlan &
FaultPlan::withCrashProcess(CrashProcess process_in)
{
    util::fatalIf(process_in.meanTimeBetweenCrashes <= 0.0,
                  "FaultPlan: mean time between crashes must be positive");
    util::fatalIf(process_in.meanRepair <= 0.0,
                  "FaultPlan: mean repair time must be positive");
    util::fatalIf(process_in.repairCv <= 0.0,
                  "FaultPlan: repair CV must be positive");
    util::fatalIf(process_in.maxConcurrentDown == 0,
                  "FaultPlan: maxConcurrentDown must be >= 1");
    process = process_in;
    process.enabled = true;
    return *this;
}

} // namespace fault
} // namespace imsim
