/**
 * @file
 * Runtime invariant checking for fault-injection runs.
 *
 * Fault injection is only trustworthy if the model stays physical while
 * being kicked: power granted must never exceed the feed capacity, heat
 * must not exceed what the condenser can reject (after the derate
 * reacts), junction temperatures must stay under the throttle point,
 * and the cluster's server accounting must stay consistent. The
 * InvariantChecker evaluates such predicates periodically on the
 * virtual clock and reports violations through obs — without ever
 * perturbing the model itself, so an armed checker leaves trajectories
 * bit-identical.
 */

#ifndef IMSIM_FAULT_INVARIANTS_HH
#define IMSIM_FAULT_INVARIANTS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "util/units.hh"

namespace imsim {

namespace obs {
class Counter;
class EventTracer;
class FleetAggregator;
class FlightRecorder;
class MetricRegistry;
} // namespace obs

namespace power {
struct AllocScratch;
class PowerBudget;
} // namespace power

namespace thermal {
class ImmersionTank;
} // namespace thermal

namespace workload {
class QueueingCluster;
} // namespace workload

namespace fault {

/** One recorded invariant violation. */
struct Violation
{
    Seconds time;
    std::string check;
};

/**
 * Periodically evaluates named boolean predicates ("the invariant
 * holds") and records every failure. Checks must be pure reads of the
 * watched objects; all watched objects must outlive the checker.
 */
class InvariantChecker
{
  public:
    explicit InvariantChecker(sim::Simulation &simulation);

    /** Register @p holds under @p name; false at a tick = violation. */
    void addCheck(std::string name, std::function<bool()> holds);

    /**
     * Canned cluster accounting checks: per-server busy threads within
     * [0, threadsPerServer], crashed servers never active, and
     * active + crashed never exceeding the servers ever added.
     */
    void watchCluster(const workload::QueueingCluster &cluster);

    /** Canned tank check: heat <= the (possibly degraded) condenser. */
    void watchTank(const thermal::ImmersionTank &tank);

    /**
     * Canned feed check: the last allocation in @p scratch grants no
     * more than the budget's current capacity.
     */
    void watchBudget(const power::PowerBudget &budget,
                     const power::AllocScratch &scratch);

    /** Canned junction check: @p tj() stays at or below @p tj_max. */
    void watchJunction(std::function<Celsius()> tj, Celsius tj_max);

    /**
     * Canned fleet checks over @p aggregator's published sample: while
     * the fleet is non-empty, its hottest junction stays at or below
     * @p tj_max and the headline aggregates (fleet power, per-channel
     * max) stay finite. Reads go through the aggregator's
     * mutex-published snapshot() — the cross-thread safe point — so the
     * checker stays valid while a sharded run (setSimThreads > 1) is
     * publishing from inside its minute loop.
     */
    void watchFleetAggregator(const obs::FleetAggregator &aggregator,
                              Celsius tj_max);

    /**
     * Publish counters `<prefix>.checks` (ticks x checks evaluated) and
     * `<prefix>.violations` into @p registry (must outlive the
     * checker). Call before start().
     */
    void attachMetrics(obs::MetricRegistry &registry,
                       const std::string &prefix = "invariant");

    /** Emit an instant trace event per violation. May be null. */
    void attachTracer(obs::EventTracer *tracer);

    /**
     * Route every violation through @p recorder->violation(): it lands
     * in the event ring and triggers a post-mortem dump when the
     * recorder is armed. May be null to detach; must outlive the
     * checker otherwise.
     */
    void attachFlightRecorder(obs::FlightRecorder *recorder);

    /** Evaluate all checks every @p period seconds, starting now. */
    void start(Seconds period);

    /** Stop periodic evaluation. */
    void stop();

    /** Evaluate every check once, immediately. */
    void evaluate();

    /** @return all violations recorded so far, in time order. */
    const std::vector<Violation> &violations() const { return failures; }

    /** @return total predicate evaluations performed. */
    std::uint64_t checksRun() const { return evaluations; }

  private:
    struct Check
    {
        std::string name;
        std::function<bool()> holds;
    };

    sim::Simulation &sim;
    std::vector<Check> checks;
    std::vector<Violation> failures;
    std::uint64_t evaluations = 0;
    sim::EventId tickEvent = 0;
    bool running = false;

    obs::EventTracer *tracer = nullptr;
    obs::FlightRecorder *flightRecorder = nullptr;
    obs::Counter *checkMetric = nullptr;
    obs::Counter *violationMetric = nullptr;
};

} // namespace fault
} // namespace imsim

#endif // IMSIM_FAULT_INVARIANTS_HH
