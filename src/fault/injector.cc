#include "fault/injector.hh"

#include <algorithm>

#include "autoscale/autoscaler.hh"
#include "obs/blackbox.hh"
#include "obs/incident.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "power/capping.hh"
#include "thermal/tank.hh"
#include "util/logging.hh"
#include "workload/queueing.hh"

namespace imsim {
namespace fault {

FaultInjector::FaultInjector(sim::Simulation &simulation, util::Rng rng_in)
    : sim(simulation), rng(rng_in)
{}

void
FaultInjector::attachCluster(workload::QueueingCluster &cluster_in)
{
    cluster = &cluster_in;
}

void
FaultInjector::attachAutoScaler(autoscale::AutoScaler &scaler_in)
{
    scaler = &scaler_in;
}

void
FaultInjector::attachTank(thermal::ImmersionTank &tank_in,
                          std::function<Watts(GHz)> per_server_power_at)
{
    util::fatalIf(!per_server_power_at,
                  "FaultInjector::attachTank: need a power model to derive "
                  "the derated frequency ceiling");
    tank = &tank_in;
    perServerPowerAt = std::move(per_server_power_at);
}

void
FaultInjector::attachPowerBudget(power::PowerBudget &budget_in)
{
    budget = &budget_in;
    nominalFeedCapacity = budget_in.capacity();
    budget_in.setRecoverableBrownout(true);
}

void
FaultInjector::attachMetrics(obs::MetricRegistry &registry,
                             const std::string &prefix)
{
    crashMetric = &registry.counter(prefix + ".server_crashes");
    repairMetric = &registry.counter(prefix + ".server_repairs");
    coolingMetric = &registry.counter(prefix + ".cooling_faults");
    powerMetric = &registry.counter(prefix + ".power_faults");
    registry.registerGauge(prefix + ".servers_down", [this] {
        return static_cast<double>(downIds.size());
    });
}

void
FaultInjector::attachTracer(obs::EventTracer *tracer_in)
{
    tracer = tracer_in;
}

void
FaultInjector::attachIncidentLog(obs::IncidentLog *log)
{
    incidents = log;
}

void
FaultInjector::attachFlightRecorder(obs::FlightRecorder *recorder)
{
    flightRecorder = recorder;
}

void
FaultInjector::start(const FaultPlan &plan)
{
    util::fatalIf(started, "FaultInjector::start: already started");
    started = true;
    for (const auto &entry : plan.scripted()) {
        const Fault fault = entry.second;
        sim.at(entry.first, [this, fault] {
            if (!stopped)
                inject(fault);
        });
    }
    process = plan.crashProcess();
    if (process.enabled) {
        const Seconds begin = std::max(process.start, sim.now());
        const Seconds first =
            begin + rng.exponential(process.meanTimeBetweenCrashes);
        sim.at(first, [this] { processTick(); });
    }
}

void
FaultInjector::stop()
{
    stopped = true;
}

void
FaultInjector::inject(const Fault &fault)
{
    switch (fault.kind) {
      case FaultKind::ServerCrash: {
        const std::size_t target = fault.target == kAnyServer
                                       ? pickVictim()
                                       : fault.target;
        if (target == kAnyServer)
            return; // Nothing left to kill.
        injectCrash(target);
        return;
      }
      case FaultKind::ServerRepair: {
        std::size_t target = fault.target;
        if (target == kAnyServer) {
            if (downIds.empty())
                return; // Nothing to repair.
            target = downIds.front();
        }
        injectRepair(target);
        return;
      }
      case FaultKind::CoolingDegrade:
        applyFluidLevel(fault.magnitude);
        record(fault.kind, kAnyServer, fault.magnitude);
        return;
      case FaultKind::CoolingRestore:
        applyFluidLevel(1.0);
        record(fault.kind, kAnyServer, 1.0);
        return;
      case FaultKind::PowerDerate:
        applyFeedCapacity(fault.magnitude);
        record(fault.kind, kAnyServer, fault.magnitude);
        return;
      case FaultKind::PowerRestore:
        applyFeedCapacity(1.0);
        record(fault.kind, kAnyServer, 1.0);
        return;
    }
    util::panic("FaultInjector::inject: unhandled kind");
}

void
FaultInjector::injectCrash(std::size_t target)
{
    util::fatalIf(!cluster,
                  "FaultInjector: server fault without an attached cluster");
    cluster->crashServer(target);
    if (scaler)
        scaler->invalidateServerCounters(target);
    downIds.push_back(target);
    if (crashMetric)
        crashMetric->inc();
    record(FaultKind::ServerCrash, target, 0.0);
}

void
FaultInjector::injectRepair(std::size_t target)
{
    util::fatalIf(!cluster,
                  "FaultInjector: server fault without an attached cluster");
    cluster->repairServer(target);
    downIds.erase(std::remove(downIds.begin(), downIds.end(), target),
                  downIds.end());
    if (repairMetric)
        repairMetric->inc();
    record(FaultKind::ServerRepair, target, 0.0);
}

void
FaultInjector::applyFluidLevel(double level)
{
    util::fatalIf(!tank,
                  "FaultInjector: cooling fault without an attached tank");
    tank->setFluidLevel(level);
    if (coolingMetric)
        coolingMetric->inc();
    if (!scaler)
        return;
    // Find the highest frequency whose worst-case per-server power the
    // degraded condenser still absorbs across the current fleet, and
    // push it into the scaler as a ceiling. A refill (level 1.0) lifts
    // the ceiling back to the configured maximum.
    const auto &cfg = scaler->config();
    std::size_t sharing = tank->slots();
    if (cluster && cluster->activeServers() > 0)
        sharing = cluster->activeServers();
    const Watts per_server =
        tank->effectiveCondenserCapacity() / static_cast<double>(sharing);
    const power::RaplCapper capper(per_server, cfg.baseFrequency);
    const GHz ceiling = capper.clamp(cfg.maxFrequency, perServerPowerAt);
    scaler->setFrequencyCeiling(std::max(ceiling, cfg.baseFrequency));
}

void
FaultInjector::applyFeedCapacity(double fraction)
{
    util::fatalIf(!budget,
                  "FaultInjector: power fault without an attached budget");
    budget->setCapacity(nominalFeedCapacity * fraction);
    if (powerMetric)
        powerMetric->inc();
}

std::size_t
FaultInjector::pickVictim()
{
    util::fatalIf(!cluster,
                  "FaultInjector: server fault without an attached cluster");
    std::vector<std::size_t> candidates;
    candidates.reserve(cluster->serverCount());
    for (std::size_t id = 0; id < cluster->serverCount(); ++id) {
        if (cluster->isActive(id))
            candidates.push_back(id);
    }
    if (candidates.empty())
        return kAnyServer;
    const auto pick = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(candidates.size()) - 1));
    return candidates[pick];
}

void
FaultInjector::processTick()
{
    if (stopped)
        return;
    if (process.stop >= 0.0 && sim.now() > process.stop)
        return;
    if (downIds.size() < process.maxConcurrentDown) {
        const std::size_t victim = pickVictim();
        if (victim != kAnyServer) {
            injectCrash(victim);
            const Seconds repair_in =
                rng.lognormalMeanCv(process.meanRepair, process.repairCv);
            sim.after(repair_in, [this, victim] {
                if (!stopped && cluster->isCrashed(victim))
                    injectRepair(victim);
            });
        }
    }
    sim.after(rng.exponential(process.meanTimeBetweenCrashes),
              [this] { processTick(); });
}

void
FaultInjector::record(FaultKind kind, std::size_t target, double magnitude)
{
    injected.push_back(InjectedFault{sim.now(), kind, target, magnitude});
    if (incidents || flightRecorder) {
        std::string label = faultKindName(kind);
        if (target != kAnyServer) {
            label += '#';
            label += std::to_string(target);
        }
        if (incidents)
            incidents->noteFault(sim.now(), label);
        if (flightRecorder)
            flightRecorder->noteFault(sim.now(), label);
    }
    if (tracer) {
        const double target_arg =
            target == kAnyServer ? -1.0 : static_cast<double>(target);
        tracer->instantAt(faultKindName(kind), "fault", sim.now(),
                          {{"target", target_arg},
                           {"magnitude", magnitude}});
    }
}

} // namespace fault
} // namespace imsim
