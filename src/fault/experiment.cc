#include "fault/experiment.hh"

#include <algorithm>
#include <memory>
#include <optional>

#include "fault/invariants.hh"
#include "hw/cpu.hh"
#include "obs/blackbox.hh"
#include "obs/sampler.hh"
#include "obs/watchdog.hh"
#include "power/capping.hh"
#include "thermal/cooling.hh"
#include "thermal/tank.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/queueing.hh"

namespace imsim {
namespace fault {

namespace {

/**
 * Per-VM power attribution, matching the auto-scaler experiments: the
 * server VMs share small tank #1's Xeon W-3175X (28 cores); each
 * 4-vcore VM owns a 4/28 share of the package power at its utilization
 * and frequency.
 */
double
perVmPower(GHz freq, double utilization)
{
    static const thermal::TwoPhaseImmersionCooling cooling(
        thermal::hfe7000());
    hw::CpuModel cpu = hw::CpuModel::xeonW3175x();
    hw::DomainClocks clocks;
    clocks.core = freq;
    clocks.llc = 2.4;
    clocks.memory = 2.4;
    cpu.setClocks(clocks);
    if (freq > 3.4 + 1e-9)
        cpu.setVoltageOffset(50.0);
    const double package_share = 4.0 / 28.0;
    const auto breakdown =
        cpu.power(cooling, std::clamp(utilization, 0.0, 1.0));
    return breakdown.total * package_share;
}

} // namespace

CrisisOutcome
runCrisisExperiment(autoscale::Policy policy, const CrisisParams &params)
{
    util::fatalIf(params.fleetSize < 2,
                  "runCrisisExperiment: need at least two servers");
    util::fatalIf(params.failFraction <= 0.0 || params.failFraction >= 1.0,
                  "runCrisisExperiment: fail fraction out of (0, 1)");
    util::fatalIf(params.crisisStart <= params.warmup,
                  "runCrisisExperiment: crisis must start after warmup");
    util::fatalIf(params.horizon <= params.crisisStart,
                  "runCrisisExperiment: horizon must exceed crisis start");

    sim::Simulation sim;
    util::Rng rng(params.seed);

    workload::QueueingCluster::Params cp;
    cp.serviceMean = params.serviceMean;
    cp.serviceCv = params.serviceCv;
    cp.kappa = params.kappa;
    cp.refFreq = 3.4;
    cp.threadsPerServer = params.threadsPerVm;
    workload::QueueingCluster cluster(sim, rng.child(), cp);

    autoscale::AutoScalerConfig cfg;
    cfg.policy = policy;
    cfg.maxFrequency = params.maxFrequency;
    cfg.maxVms = params.fleetSize;
    for (std::size_t i = 0; i < params.fleetSize; ++i)
        cluster.addServer(cfg.baseFrequency);
    autoscale::AutoScaler scaler(sim, cluster, cfg);

    // Shared tank and feed, sized so the healthy fleet fits even fully
    // overclocked — the crisis stresses capacity, not sizing.
    const Watts per_server_max = perVmPower(cfg.maxFrequency, 1.0);
    thermal::ImmersionTank tank(
        "crisis tank", thermal::hfe7000(), params.fleetSize + 8,
        static_cast<double>(params.fleetSize) * per_server_max * 1.2);
    power::PowerBudget feed(
        static_cast<double>(params.fleetSize) * per_server_max, 1.2);
    power::AllocScratch feed_scratch;

    FaultInjector injector(sim, rng.child());
    injector.attachCluster(cluster);
    injector.attachAutoScaler(scaler);
    injector.attachTank(tank, [](GHz f) { return perVmPower(f, 1.0); });
    injector.attachPowerBudget(feed);

    // The SLO watchdog: the operator's pager for this run. It watches
    // the *trailing-window* tail latency (not the whole-phase P99 the
    // outcome reports), the tank fluid level, and feed brownouts; its
    // first page after the crash instant is the run's detection
    // latency. Pure observers — the trajectory is byte-identical with
    // or without them.
    cluster.enableTailTracking(params.tailWindow);
    obs::IncidentLog incident_log;
    obs::Watchdog watchdog;
    {
        obs::WatchdogRule sla;
        sla.name = "sla_p99";
        sla.kind = obs::AlertKind::TailLatency;
        sla.signal = [&cluster] { return cluster.recentTailQuantile(99.0); };
        sla.fireThreshold = params.slaP99;
        sla.clearThreshold = 0.8 * params.slaP99;
        watchdog.addRule(sla);

        obs::WatchdogRule fluid;
        fluid.name = "fluid_level";
        fluid.kind = obs::AlertKind::FluidLevel;
        fluid.signal = [&tank] { return tank.fluidLevel(); };
        fluid.fireThreshold = 0.95;
        fluid.clearThreshold = 0.99;
        fluid.fireAbove = false;
        watchdog.addRule(fluid);

        obs::WatchdogRule brownout;
        brownout.name = "feed_brownout";
        brownout.kind = obs::AlertKind::Brownout;
        brownout.signal = [&feed] {
            return static_cast<double>(feed.brownouts());
        };
        brownout.fireThreshold = 1.0;
        brownout.clearThreshold = 0.0; // Cumulative count: never clears.
        watchdog.addRule(brownout);
    }
    watchdog.attachIncidentLog(&incident_log);
    injector.attachIncidentLog(&incident_log);
    sim.every(params.watchdogPeriod,
              [&watchdog, &sim] { watchdog.evaluate(sim.now()); });

    InvariantChecker checker(sim);
    checker.watchCluster(cluster);
    checker.watchTank(tank);
    checker.watchBudget(feed, feed_scratch);

    // The black-box flight recorder: the same signals the pager and
    // the outcome read, folded into bounded multi-resolution rings,
    // plus every alert/fault/violation in its event ring. Registered
    // after the watchdog's every() above so a tick at the same instant
    // samples the already-evaluated alert state. Pure observer.
    if (obs::FlightRecorder *box = params.blackbox) {
        box->addChannel("p99_latency_s", [&cluster] {
            return cluster.recentTailQuantile(99.0);
        });
        box->addChannel("queue_depth", [&cluster] {
            return static_cast<double>(cluster.queueDepth());
        });
        box->addChannel("active_servers", [&cluster] {
            return static_cast<double>(cluster.activeServers());
        });
        box->addChannel("fluid_level",
                        [&tank] { return tank.fluidLevel(); });
        box->addChannel("feed_brownouts", [&feed] {
            return static_cast<double>(feed.brownouts());
        });
        box->addChannel("alerts_firing", [&watchdog] {
            return static_cast<double>(watchdog.firingCount());
        });
        watchdog.attachFlightRecorder(box);
        injector.attachFlightRecorder(box);
        checker.attachFlightRecorder(box);
        sim.every(params.watchdogPeriod,
                  [box, &sim] { box->tick(sim.now()); });
    }

    // Optional observability capture, wired like the auto-scaler
    // experiments: one capture per run, merged by the caller.
    autoscale::ObsCapture *capture = params.obs;
    std::optional<obs::TelemetrySampler> sampler;
    if (capture) {
        if (!capture->tracer.enabled())
            capture->tracer.enable([&sim] { return sim.now(); });
        scaler.attachTelemetry(&capture->registry, &capture->tracer);
        watchdog.attachMetrics(capture->registry);
        injector.attachMetrics(capture->registry);
        injector.attachTracer(&capture->tracer);
        checker.attachMetrics(capture->registry);
        checker.attachTracer(&capture->tracer);
        sampler.emplace(sim, capture->registry, capture->telemetryPeriod);
        sampler->mirrorToTracer(&capture->tracer);
        sampler->start();
    }

    scaler.start();
    checker.start(5.0);
    cluster.setArrivalRate(params.qps);

    // Heat and feed accounting each decision period: tank slots mirror
    // server heat, the feed allocates against current demand.
    std::vector<power::PowerConsumer> consumers;
    sim.every(cfg.decisionPeriod, [&] {
        consumers.clear();
        const Watts idle_floor = perVmPower(cfg.baseFrequency, 0.0);
        for (std::size_t id = 0; id < cluster.serverCount(); ++id) {
            const bool on = cluster.isActive(id);
            const Watts draw =
                on ? perVmPower(cluster.frequency(id),
                                cluster.utilization(id, cfg.shortWindow))
                   : 0.0;
            if (id < tank.slots())
                tank.setHeatLoad(id, draw);
            if (on) {
                consumers.push_back(power::PowerConsumer{
                    std::string(), draw, std::min(draw, idle_floor), 0});
            }
        }
        if (!consumers.empty())
            feed.allocate(consumers, feed_scratch, false);
    });

    // Measurement phases. All phase events are scheduled before the
    // injector arms the fault plan, so at the crisis instant the
    // healthy-phase capture runs before the crashes land (the kernel
    // breaks timestamp ties by scheduling order).
    sim.at(params.warmup, [&] { cluster.resetLatencies(); });

    double healthy_p99 = 0.0;
    sim.at(params.crisisStart, [&] {
        healthy_p99 = cluster.latencies().p99();
        cluster.resetLatencies();
    });

    const Seconds crisis_end =
        std::min(params.crisisStart + params.repairAfter, params.horizon);
    double crisis_p99 = 0.0;
    sim.at(crisis_end, [&] { crisis_p99 = cluster.latencies().p99(); });

    // Recovery detection: the backlog the crash created (requeued
    // in-flight work plus arrivals the shrunken fleet cannot absorb)
    // has drained and stayed drained — a global queue shorter than one
    // service round (one request per live thread) for 15 consecutive
    // 1 s samples. The first few seconds after the crash are skipped
    // so the requeue burst must actually clear.
    double recovery_at = -1.0;
    int recovery_streak = 0;
    sim.every(1.0, [&] {
        if (sim.now() <= params.crisisStart + 5.0 || recovery_at >= 0.0)
            return;
        const std::size_t one_round =
            cluster.activeServers() *
            static_cast<std::size_t>(params.threadsPerVm);
        recovery_streak =
            cluster.queueDepth() <= one_round ? recovery_streak + 1 : 0;
        if (recovery_streak >= 15) {
            recovery_at =
                sim.now() - 14.0; // Streak start, not streak end.
        }
    });

    // The fault plan: a scripted mass crash (plus optional cooling /
    // feed degradation over the same window), repairs after the MTTR.
    FaultPlan plan;
    const auto crash_count = static_cast<std::size_t>(std::max(
        1.0, std::floor(static_cast<double>(params.fleetSize) *
                            params.failFraction +
                        0.5)));
    for (std::size_t i = 0; i < crash_count; ++i)
        plan.at(params.crisisStart, Fault{FaultKind::ServerCrash});
    if (params.coolingDegradeLevel < 1.0) {
        plan.at(params.crisisStart,
                Fault{FaultKind::CoolingDegrade, kAnyServer,
                      params.coolingDegradeLevel});
    }
    if (params.powerDerateFraction < 1.0) {
        plan.at(params.crisisStart,
                Fault{FaultKind::PowerDerate, kAnyServer,
                      params.powerDerateFraction});
    }
    const Seconds repair_time = params.crisisStart + params.repairAfter;
    if (repair_time < params.horizon) {
        for (std::size_t i = 0; i < crash_count; ++i)
            plan.at(repair_time, Fault{FaultKind::ServerRepair});
        if (params.coolingDegradeLevel < 1.0)
            plan.at(repair_time, Fault{FaultKind::CoolingRestore});
        if (params.powerDerateFraction < 1.0)
            plan.at(repair_time, Fault{FaultKind::PowerRestore});
    }
    injector.start(plan);

    sim.runUntil(params.horizon);
    cluster.setArrivalRate(0.0);
    incident_log.closeAll(params.horizon);

    if (capture) {
        sampler->stop();
        capture->telemetry = sampler->takeSeries();
        incident_log.exportTrace(capture->tracer, params.horizon);
        capture->tracer.disable();
        // Freeze provider gauges: they capture objects dying with this
        // frame (see autoscale::runSchedule).
        for (const auto &entry : capture->registry.gauges()) {
            if (entry.second->provided())
                entry.second->set(entry.second->value());
        }
    }

    CrisisOutcome out;
    out.policy = policy;
    out.healthyP99 = healthy_p99;
    out.crisisP99 = crisis_p99;
    out.recoverySeconds =
        recovery_at >= 0.0 ? recovery_at - params.crisisStart : -1.0;
    out.slaMet = crisis_p99 <= params.slaP99;
    out.serversCrashed = crash_count;
    out.scaleOuts = scaler.scaleOuts();
    out.avgFrequency = scaler.averageFrequency();
    out.requests = cluster.completed();
    out.invariantChecks = checker.checksRun();
    out.invariantViolations =
        static_cast<std::uint64_t>(checker.violations().size());
    out.brownouts = feed.brownouts();
    const Seconds first_page = watchdog.firstRaiseAfter(params.crisisStart);
    out.detectSeconds =
        first_page >= 0.0 ? first_page - params.crisisStart : -1.0;
    out.alertsRaised = watchdog.raisedCount();
    out.incidents = incident_log;
    out.faults = injector.timeline();
    return out;
}

} // namespace fault
} // namespace imsim
