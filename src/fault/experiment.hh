/**
 * @file
 * The capacity-crisis experiment: the paper's cost argument (Sec. VII)
 * says overclocking headroom can stand in for spare servers. Here a
 * steady fleet loses a fraction of its servers at once; Baseline must
 * scale replacement VMs out (60 s each), while OC-E/OC-A overclock the
 * survivors to cover the lost capacity immediately. The outcome
 * compares tail latency during the crisis and the time to recover the
 * pre-crisis operating point.
 */

#ifndef IMSIM_FAULT_EXPERIMENT_HH
#define IMSIM_FAULT_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "autoscale/experiment.hh"
#include "fault/injector.hh"
#include "obs/incident.hh"
#include "util/units.hh"

namespace imsim {

namespace obs {
class FlightRecorder;
} // namespace obs

namespace fault {

/** Parameters of the capacity-crisis run. */
struct CrisisParams
{
    std::uint64_t seed = 42;
    std::size_t fleetSize = 10;    ///< Healthy fleet (also the VM cap).
    /**
     * Steady offered load. The default runs the healthy 10-VM fleet at
     * ~88% utilization; losing 20% of the servers then overloads the
     * base clock (13.5k QPS > 12.3k QPS capacity, the backlog grows
     * until replacement VMs arrive) while full overclocking headroom
     * keeps the survivors stable (14.5k QPS capacity at 4.1 GHz) —
     * the paper's spare-capacity-as-headroom argument.
     */
    double qps = 13500.0;
    Seconds warmup = 120.0;        ///< Latencies reset after warmup.
    Seconds crisisStart = 600.0;   ///< Servers crash here.
    double failFraction = 0.2;     ///< Fraction of the fleet crashed.
    Seconds repairAfter = 300.0;   ///< Crash -> repair delay.
    Seconds horizon = 1200.0;      ///< Total simulated time.
    GHz maxFrequency = 4.1;        ///< Overclocking headroom (> 3.4).
    Seconds slaP99 = 0.100;        ///< Crisis-window P99 SLA [s].
    /**
     * SLO watchdog poll period. The watchdog watches a trailing
     * tailWindow-seconds P99 (QueueingCluster::recentTailQuantile)
     * against slaP99 plus the tank fluid level and feed brownouts;
     * its first page after crisisStart is the run's crisis detection
     * latency (CrisisOutcome::detectSeconds).
     */
    Seconds watchdogPeriod = 1.0;
    Seconds tailWindow = 15.0;     ///< Trailing window the watchdog sees.
    double kappa = 0.9;
    Seconds serviceMean = 2.6e-3;  ///< At 3.4 GHz.
    double serviceCv = 1.5;
    int threadsPerVm = 4;
    /** Optional extra degradation during the crisis window: */
    double coolingDegradeLevel = 1.0; ///< Tank fluid level; 1 = none.
    double powerDerateFraction = 1.0; ///< Feed capacity; 1 = none.
    autoscale::ObsCapture *obs = nullptr; ///< Optional telemetry capture.
    /**
     * Optional black-box flight recorder. Must be fresh (never
     * ticked): the experiment registers its channels (trailing P99,
     * queue depth, active servers, fluid level, feed brownouts,
     * firing alerts) and ticks it at watchdogPeriod, and wires the
     * watchdog, injector, and invariant checker into its event ring —
     * so an armed recorder post-mortems on the first page or
     * violation. A pure observer: attaching one never changes the
     * run's outcome.
     */
    obs::FlightRecorder *blackbox = nullptr;
};

/** Outcome of one crisis run. */
struct CrisisOutcome
{
    autoscale::Policy policy;
    double healthyP99 = 0.0;     ///< P99 latency before the crisis [s].
    double crisisP99 = 0.0;      ///< P99 latency during the crisis [s].
    double recoverySeconds = -1.0; ///< Crash -> recovered; -1 = never.
    bool slaMet = false;         ///< crisisP99 <= slaP99.
    std::size_t serversCrashed = 0;
    std::size_t scaleOuts = 0;   ///< Replacement VMs the scaler launched.
    double avgFrequency = 0.0;   ///< Time-average fleet frequency [GHz].
    std::uint64_t requests = 0;
    std::uint64_t invariantChecks = 0;
    std::uint64_t invariantViolations = 0;
    std::uint64_t brownouts = 0; ///< Recoverable feed brownouts survived.
    /**
     * Seconds from the crash instant to the watchdog's first page
     * (any rule); -1 when it never fired. A policy with enough
     * overclocking headroom legitimately never pages — the survivors
     * absorb the lost capacity before the trailing-window P99
     * breaches the SLA.
     */
    Seconds detectSeconds = -1.0;
    std::size_t alertsRaised = 0;  ///< Watchdog raise events, whole run.
    obs::IncidentLog incidents;    ///< Alert/fault-correlated timeline.
    std::vector<InjectedFault> faults; ///< The injected fault timeline.
};

/**
 * Run the capacity-crisis experiment for one policy. Deterministic for
 * (policy, params): the fault schedule, victim choice, and workload all
 * derive from params.seed.
 */
CrisisOutcome runCrisisExperiment(autoscale::Policy policy,
                                  const CrisisParams &params = {});

} // namespace fault
} // namespace imsim

#endif // IMSIM_FAULT_EXPERIMENT_HH
