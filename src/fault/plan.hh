/**
 * @file
 * Fault plans: what goes wrong, and when.
 *
 * Sec. VII ("Cost analysis") prices overclocking as spare capacity: when
 * part of the fleet is lost — a power-feed derate, a cooling problem, or
 * plain server crashes — the surviving machines overclock to cover the
 * gap instead of keeping idle spares provisioned. A FaultPlan describes
 * such an episode: scripted faults pinned to simulation times plus an
 * optional seeded stochastic crash/repair process, both executed by
 * fault::FaultInjector on the deterministic event kernel.
 */

#ifndef IMSIM_FAULT_PLAN_HH
#define IMSIM_FAULT_PLAN_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "util/units.hh"

namespace imsim {
namespace fault {

/** Typed fault categories the injector understands. */
enum class FaultKind
{
    ServerCrash,    ///< Kill a server VM; in-flight work is requeued.
    ServerRepair,   ///< Bring a crashed server back into the fleet.
    CoolingDegrade, ///< Tank fluid loss: magnitude = level fraction.
    CoolingRestore, ///< Refill the tank to the nominal level.
    PowerDerate,    ///< Feed derate: magnitude = capacity fraction.
    PowerRestore,   ///< Restore the nominal feed capacity.
};

/** @return a printable fault-kind name. */
const char *faultKindName(FaultKind kind);

/** Sentinel target: let the injector pick (random victim / FIFO repair). */
constexpr std::size_t kAnyServer = ~std::size_t{0};

/** One fault to inject. */
struct Fault
{
    FaultKind kind;
    /** Server id for crash/repair; kAnyServer lets the injector choose. */
    std::size_t target = kAnyServer;
    /**
     * CoolingDegrade: fluid level fraction in [0.05, 1).
     * PowerDerate: remaining capacity fraction in (0, 1).
     * Ignored by the other kinds.
     */
    double magnitude = 0.0;
};

/**
 * Seeded stochastic crash/repair process: server crashes arrive with
 * exponential inter-arrival times (a Poisson process, the standard
 * fleet-failure model) and each crashed server is repaired after a
 * lognormal delay — repair times are long-tailed in practice (parts,
 * people, remote hands).
 */
struct CrashProcess
{
    bool enabled = false;
    Seconds start = 0.0;          ///< Process active from this time.
    Seconds stop = -1.0;          ///< Inactive after this time; <0 = never.
    Seconds meanTimeBetweenCrashes = 3600.0;
    Seconds meanRepair = 900.0;   ///< Mean of the lognormal repair time.
    double repairCv = 1.0;        ///< Repair-time coefficient of variation.
    std::size_t maxConcurrentDown = 1; ///< Crash ticks beyond this no-op.
};

/**
 * A deterministic fault schedule: scripted (time, fault) pairs plus an
 * optional stochastic crash process. Plans are plain data — build one,
 * hand it to FaultInjector::start(). An empty plan injects nothing, so
 * attaching an injector with an empty plan leaves a run bit-identical
 * to one without the injector.
 */
class FaultPlan
{
  public:
    /** Schedule @p fault at absolute simulation time @p t (chainable). */
    FaultPlan &at(Seconds t, Fault fault);

    /** Enable the stochastic crash/repair process (chainable). */
    FaultPlan &withCrashProcess(CrashProcess process);

    /** @return the scripted (time, fault) events, in insertion order. */
    const std::vector<std::pair<Seconds, Fault>> &scripted() const
    {
        return events;
    }

    /** @return the stochastic process configuration. */
    const CrashProcess &crashProcess() const { return process; }

    /** @return whether the plan injects nothing at all. */
    bool empty() const { return events.empty() && !process.enabled; }

  private:
    std::vector<std::pair<Seconds, Fault>> events;
    CrashProcess process;
};

} // namespace fault
} // namespace imsim

#endif // IMSIM_FAULT_PLAN_HH
