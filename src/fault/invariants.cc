#include "fault/invariants.hh"

#include <cmath>
#include <numeric>

#include "obs/blackbox.hh"
#include "obs/fleet_agg.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "power/capping.hh"
#include "thermal/tank.hh"
#include "util/logging.hh"
#include "workload/queueing.hh"

namespace imsim {
namespace fault {

InvariantChecker::InvariantChecker(sim::Simulation &simulation)
    : sim(simulation)
{}

void
InvariantChecker::addCheck(std::string name, std::function<bool()> holds)
{
    util::fatalIf(!holds, "InvariantChecker::addCheck: empty predicate");
    util::fatalIf(running,
                  "InvariantChecker::addCheck: call before start()");
    checks.push_back(Check{std::move(name), std::move(holds)});
}

void
InvariantChecker::watchCluster(const workload::QueueingCluster &cluster)
{
    addCheck("cluster.thread_accounting", [&cluster] {
        const int threads = cluster.params().threadsPerServer;
        for (std::size_t id = 0; id < cluster.serverCount(); ++id) {
            const int busy = cluster.busyThreads(id);
            if (busy < 0 || busy > threads)
                return false;
        }
        return true;
    });
    addCheck("cluster.crashed_not_active", [&cluster] {
        for (std::size_t id = 0; id < cluster.serverCount(); ++id) {
            if (cluster.isCrashed(id) && cluster.isActive(id))
                return false;
        }
        return true;
    });
    addCheck("cluster.server_accounting", [&cluster] {
        return cluster.activeServers() + cluster.crashedServers() <=
               cluster.serverCount();
    });
}

void
InvariantChecker::watchTank(const thermal::ImmersionTank &tank)
{
    addCheck("tank.condenser_keeps_up",
             [&tank] { return tank.condenserKeepsUp(); });
}

void
InvariantChecker::watchBudget(const power::PowerBudget &budget,
                              const power::AllocScratch &scratch)
{
    addCheck("feed.granted_within_capacity", [&budget, &scratch] {
        const Watts granted =
            std::accumulate(scratch.granted.begin(), scratch.granted.end(),
                            0.0);
        return granted <= budget.capacity() + 1e-6;
    });
}

void
InvariantChecker::watchJunction(std::function<Celsius()> tj, Celsius tj_max)
{
    util::fatalIf(!tj, "InvariantChecker::watchJunction: empty reader");
    addCheck("cpu.junction_below_max", [tj = std::move(tj), tj_max] {
        return tj() <= tj_max;
    });
}

void
InvariantChecker::watchFleetAggregator(
    const obs::FleetAggregator &aggregator, Celsius tj_max)
{
    addCheck("fleet.junction_below_max", [&aggregator, tj_max] {
        const obs::FleetSample sample = aggregator.snapshot();
        return sample.units == 0 ||
               sample.overall[obs::kChanTj].max <= tj_max;
    });
    addCheck("fleet.aggregates_finite", [&aggregator] {
        const obs::FleetSample sample = aggregator.snapshot();
        if (sample.units == 0)
            return true;
        if (!std::isfinite(sample.fleetPower))
            return false;
        for (int c = 0; c < obs::kFleetChannels; ++c) {
            if (!std::isfinite(sample.overall[c].max))
                return false;
        }
        return true;
    });
}

void
InvariantChecker::attachMetrics(obs::MetricRegistry &registry,
                                const std::string &prefix)
{
    checkMetric = &registry.counter(prefix + ".checks");
    violationMetric = &registry.counter(prefix + ".violations");
}

void
InvariantChecker::attachTracer(obs::EventTracer *tracer_in)
{
    tracer = tracer_in;
}

void
InvariantChecker::attachFlightRecorder(obs::FlightRecorder *recorder)
{
    flightRecorder = recorder;
}

void
InvariantChecker::start(Seconds period)
{
    util::fatalIf(period <= 0.0,
                  "InvariantChecker::start: period must be positive");
    util::fatalIf(running, "InvariantChecker::start: already running");
    running = true;
    tickEvent = sim.every(period, [this] { evaluate(); });
}

void
InvariantChecker::stop()
{
    if (!running)
        return;
    sim.cancel(tickEvent);
    running = false;
}

void
InvariantChecker::evaluate()
{
    for (const auto &check : checks) {
        ++evaluations;
        if (checkMetric)
            checkMetric->inc();
        if (check.holds())
            continue;
        failures.push_back(Violation{sim.now(), check.name});
        if (flightRecorder)
            flightRecorder->violation(sim.now(), check.name);
        if (violationMetric)
            violationMetric->inc();
        if (tracer) {
            tracer->instantAt("invariant_violation", "fault", sim.now(),
                              {{"check_index",
                                static_cast<double>(failures.size())}});
        }
    }
}

} // namespace fault
} // namespace imsim
