/**
 * @file
 * The fault injector: executes a FaultPlan against the simulated
 * datacenter, wiring typed faults into the subsystem hooks —
 * QueueingCluster crash/repair, ImmersionTank fluid level (with a
 * RAPL-style frequency derate pushed into the auto-scaler), and
 * PowerBudget feed derates (with recoverable brownouts).
 *
 * Everything runs on the simulation's virtual clock from an explicit
 * Rng substream, so fault sequences are reproducible for a seed and
 * bit-identical across exp::SweepRunner job counts.
 */

#ifndef IMSIM_FAULT_INJECTOR_HH
#define IMSIM_FAULT_INJECTOR_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fault/plan.hh"
#include "sim/simulation.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace imsim {

namespace autoscale {
class AutoScaler;
} // namespace autoscale

namespace obs {
class Counter;
class EventTracer;
class FlightRecorder;
class IncidentLog;
class MetricRegistry;
} // namespace obs

namespace power {
class PowerBudget;
} // namespace power

namespace thermal {
class ImmersionTank;
} // namespace thermal

namespace workload {
class QueueingCluster;
} // namespace workload

namespace fault {

/** One fault actually injected (the run's fault timeline). */
struct InjectedFault
{
    Seconds time;
    FaultKind kind;
    std::size_t target;   ///< Server id, or kAnyServer for non-server faults.
    double magnitude;
};

/**
 * Executes fault plans against attached subsystems.
 *
 * Attach the targets a plan needs before start(); faults whose target
 * subsystem is not attached are fatal (a plan that asks for a derate
 * nobody models is a configuration error, not a silent no-op). All
 * attached objects must outlive the injector.
 */
class FaultInjector
{
  public:
    /**
     * @param simulation Event kernel the faults are scheduled on.
     * @param rng        Substream for victim choice and the stochastic
     *                   crash process (fork it from the run's root Rng).
     */
    FaultInjector(sim::Simulation &simulation, util::Rng rng);

    /** Attach the cluster crash/repair faults act on. */
    void attachCluster(workload::QueueingCluster &cluster);

    /**
     * Attach the auto-scaler. Crashes invalidate its per-server counter
     * baselines; cooling degrades push a frequency ceiling into it.
     */
    void attachAutoScaler(autoscale::AutoScaler &scaler);

    /**
     * Attach the tank cooling faults act on. @p per_server_power_at
     * maps a core frequency to one server's worst-case power draw [W];
     * the injector bisects it (RaplCapper) against the degraded
     * condenser capacity to find the frequency ceiling the surviving
     * fluid can still absorb.
     */
    void attachTank(thermal::ImmersionTank &tank,
                    std::function<Watts(GHz)> per_server_power_at);

    /**
     * Attach the power feed. Remembers the nominal capacity for
     * PowerRestore and switches the budget to recoverable brownouts: a
     * derated feed may legitimately fall below the fleet's power
     * floors, which must shed harder, not abort the run.
     */
    void attachPowerBudget(power::PowerBudget &budget);

    /**
     * Publish counters `<prefix>.server_crashes`,
     * `<prefix>.server_repairs`, `<prefix>.cooling_faults`,
     * `<prefix>.power_faults` and gauge `<prefix>.servers_down` into
     * @p registry (must outlive the injector). Call before start().
     */
    void attachMetrics(obs::MetricRegistry &registry,
                       const std::string &prefix = "fault");

    /** Emit an instant trace event per injected fault. May be null. */
    void attachTracer(obs::EventTracer *tracer);

    /**
     * Note every injected fault on @p log's timeline (as
     * `<kind>#<target>` labels), so watchdog incidents correlate with
     * the faults that caused them. May be null to detach; must
     * outlive the injector otherwise.
     */
    void attachIncidentLog(obs::IncidentLog *log);

    /**
     * Note every injected fault in @p recorder's event ring (same
     * `<kind>#<target>` labels as the incident log), so post-mortem
     * dumps carry the fault timeline. May be null to detach; must
     * outlive the injector otherwise.
     */
    void attachFlightRecorder(obs::FlightRecorder *recorder);

    /**
     * Arm @p plan: scripted faults are scheduled at their times and the
     * stochastic crash process (if enabled) starts ticking. May only be
     * called once.
     */
    void start(const FaultPlan &plan);

    /** Stop injecting: pending scripted faults and process ticks no-op. */
    void stop();

    /** Inject @p fault right now (also usable without start()). */
    void inject(const Fault &fault);

    /** @return every fault injected so far, in injection order. */
    const std::vector<InjectedFault> &timeline() const { return injected; }

    /** @return servers currently down from injected crashes. */
    std::size_t serversDown() const { return downIds.size(); }

  private:
    void injectCrash(std::size_t target);
    void injectRepair(std::size_t target);
    void applyFluidLevel(double level);
    void applyFeedCapacity(double fraction);
    void processTick();
    std::size_t pickVictim();
    void record(FaultKind kind, std::size_t target, double magnitude);

    sim::Simulation &sim;
    util::Rng rng;
    workload::QueueingCluster *cluster = nullptr;
    autoscale::AutoScaler *scaler = nullptr;
    thermal::ImmersionTank *tank = nullptr;
    std::function<Watts(GHz)> perServerPowerAt;
    power::PowerBudget *budget = nullptr;
    Watts nominalFeedCapacity = 0.0;
    obs::IncidentLog *incidents = nullptr;
    obs::FlightRecorder *flightRecorder = nullptr;

    bool started = false;
    bool stopped = false;
    CrashProcess process;
    std::vector<std::size_t> downIds; ///< Crash order (FIFO repairs).
    std::vector<InjectedFault> injected;

    obs::EventTracer *tracer = nullptr;
    obs::Counter *crashMetric = nullptr;
    obs::Counter *repairMetric = nullptr;
    obs::Counter *coolingMetric = nullptr;
    obs::Counter *powerMetric = nullptr;
};

} // namespace fault
} // namespace imsim

#endif // IMSIM_FAULT_INJECTOR_HH
