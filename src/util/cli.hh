/**
 * @file
 * Minimal command-line flag parser for the bench and example binaries:
 * boolean switches ("--csv"), and "--key value" / "--key=value" options
 * with typed accessors.
 *
 * Shared observability flags: every binary that constructs a Cli gains
 * `--verbose` and `--log-level trace|debug|info|warn|off` for free —
 * the constructor applies them to the process-wide util::LogLevel
 * threshold — plus the `--trace FILE` / `--telemetry FILE` /
 * `--profile FILE` / `--progress [FILE]` accessors the obs-aware
 * benches honour.
 */

#ifndef IMSIM_UTIL_CLI_HH
#define IMSIM_UTIL_CLI_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace imsim {
namespace util {

/**
 * Parsed command line.
 */
class Cli
{
  public:
    /**
     * Parse argv; unknown flags are kept (benches print them back).
     * Applies `--verbose` / `--log-level LEVEL` to the process-wide
     * logging threshold as a side effect (no flag leaves it untouched).
     */
    Cli(int argc, const char *const *argv);

    /** @return whether @p flag (e.g. "--csv") appeared. */
    bool has(const std::string &flag) const;

    /** @return string value of "--key value|--key=value" or fallback. */
    std::string get(const std::string &flag,
                    const std::string &fallback = "") const;

    /** @return integer value of the flag or fallback; FatalError when
     *  present but non-numeric. */
    std::int64_t getInt(const std::string &flag,
                        std::int64_t fallback) const;

    /** @return double value of the flag or fallback; FatalError when
     *  present but non-numeric. */
    double getDouble(const std::string &flag, double fallback) const;

    /**
     * Shared "--jobs N" flag for the parallel benches/examples.
     *
     * @return N when "--jobs N" was given (FatalError when < 1);
     *         otherwise the hardware concurrency. "--jobs 1" runs the
     *         sweep serially on the calling thread.
     */
    std::size_t jobs() const;

    /**
     * Shared "--sim-threads N" flag: compute threads for the intra-run
     * sharded fleet physics (DatacenterPowerSim::setSimThreads).
     *
     * @return N when given (FatalError when negative; 0 means "use the
     *         hardware concurrency"); defaults to 1 — the serial minute
     *         loop. Any value reproduces N=1 bit-for-bit; this flag
     *         only trades wall-clock, never results. Orthogonal to
     *         --jobs (sweep points vs threads *inside* one run).
     */
    std::size_t simThreads() const;

    /** @return "--trace FILE" (Chrome-trace JSON output), "" if unset. */
    std::string traceFile() const { return get("--trace"); }

    /** @return "--telemetry FILE" (time-series CSV output), "" if unset. */
    std::string telemetryFile() const { return get("--telemetry"); }

    /** @return "--profile FILE" (profiler JSON output), "" if unset. */
    std::string profileFile() const { return get("--profile"); }

    /** @return "--watchdog FILE" (incident-timeline JSON), "" if unset. */
    std::string watchdogFile() const { return get("--watchdog"); }

    /** @return "--blackbox FILE" (flight-recorder JSON), "" if unset. */
    std::string blackboxFile() const { return get("--blackbox"); }

    /** @return whether "--progress [FILE]" appeared at all. */
    bool progressRequested() const { return has("--progress"); }

    /** @return the "--progress FILE" heartbeat path, "" when absent. */
    std::string progressFile() const { return get("--progress"); }

    /** @return the program name (argv[0]). */
    const std::string &program() const { return programName; }

    /** @return positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return args; }

    /**
     * @return the full command line (argv[0] plus every token, space
     *         separated) as received — what RunManifest records.
     */
    const std::string &commandLine() const { return argvLine; }

  private:
    std::string programName;
    std::string argvLine;
    std::map<std::string, std::string> flags;
    std::vector<std::string> args;
};

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_CLI_HH
