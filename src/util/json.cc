#include "util/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace imsim {
namespace util {

/** Recursive-descent parser over the whole document. */
class Json::Parser
{
  public:
    explicit Parser(const std::string &text_in) : text(text_in) {}

    Json
    document()
    {
        Json value = parseValue();
        skipWs();
        fatalIf(pos != text.size(),
                "Json: trailing characters at offset " +
                    std::to_string(pos));
        return value;
    }

  private:
    Json
    parseValue()
    {
        skipWs();
        fatalIf(pos >= text.size(), "Json: unexpected end of input");
        switch (text[pos]) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            Json value;
            value.kind = Type::String;
            value.stringValue = parseString();
            return value;
          }
          case 't':
          case 'f': return parseBool();
          case 'n': {
            expectWord("null");
            return Json();
          }
          default: return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json value;
        value.kind = Type::Object;
        skipWs();
        if (consume('}'))
            return value;
        do {
            skipWs();
            std::string key = parseString();
            expect(':');
            Json member = parseValue();
            if (!value.find(key))
                value.members.emplace_back(std::move(key),
                                           std::move(member));
        } while (consume(','));
        expect('}');
        return value;
    }

    Json
    parseArray()
    {
        expect('[');
        Json value;
        value.kind = Type::Array;
        skipWs();
        if (consume(']'))
            return value;
        do {
            value.elements.push_back(parseValue());
        } while (consume(','));
        expect(']');
        return value;
    }

    Json
    parseBool()
    {
        Json value;
        value.kind = Type::Bool;
        if (text[pos] == 't') {
            expectWord("true");
            value.boolValue = true;
        } else {
            expectWord("false");
            value.boolValue = false;
        }
        return value;
    }

    Json
    parseNumber()
    {
        const char *begin = text.c_str() + pos;
        char *end = nullptr;
        const double number = std::strtod(begin, &end);
        fatalIf(end == begin, "Json: expected a value at offset " +
                                  std::to_string(pos));
        pos += static_cast<std::size_t>(end - begin);
        Json value;
        value.kind = Type::Number;
        value.numberValue = number;
        return value;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            fatalIf(pos >= text.size(), "Json: dangling escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'u': {
                fatalIf(pos + 4 > text.size(), "Json: bad \\u escape");
                const unsigned code = static_cast<unsigned>(
                    std::stoul(text.substr(pos, 4), nullptr, 16));
                fatalIf(code > 0x7f,
                        "Json: non-ASCII \\u escape unsupported");
                out += static_cast<char>(code);
                pos += 4;
                break;
              }
              default: fatal("Json: unknown escape");
            }
        }
        expect('"');
        return out;
    }

    void
    expect(char c)
    {
        skipWs();
        fatalIf(pos >= text.size() || text[pos] != c,
                std::string("Json: expected '") + c + "' at offset " +
                    std::to_string(pos));
        ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    expectWord(const char *word)
    {
        const std::size_t len = std::string(word).size();
        fatalIf(text.compare(pos, len, word) != 0,
                std::string("Json: expected '") + word + "' at offset " +
                    std::to_string(pos));
        pos += len;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n' ||
                text[pos] == '\t' || text[pos] == '\r'))
            ++pos;
    }

    const std::string &text;
    std::size_t pos = 0;
};

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

bool
Json::boolean() const
{
    fatalIf(kind != Type::Bool, "Json: value is not a bool");
    return boolValue;
}

double
Json::number() const
{
    if (kind == Type::Null)
        return std::nan("");
    fatalIf(kind != Type::Number, "Json: value is not a number");
    return numberValue;
}

const std::string &
Json::str() const
{
    fatalIf(kind != Type::String, "Json: value is not a string");
    return stringValue;
}

const std::vector<Json> &
Json::array() const
{
    fatalIf(kind != Type::Array, "Json: value is not an array");
    return elements;
}

const std::vector<std::pair<std::string, Json>> &
Json::object() const
{
    fatalIf(kind != Type::Object, "Json: value is not an object");
    return members;
}

std::size_t
Json::size() const
{
    if (kind == Type::Array)
        return elements.size();
    if (kind == Type::Object)
        return members.size();
    return 0;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind != Type::Object)
        return nullptr;
    for (const auto &member : members)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *member = find(key);
    fatalIf(member == nullptr, "Json: missing object key '" + key + "'");
    return *member;
}

const Json &
Json::at(std::size_t index) const
{
    fatalIf(kind != Type::Array || index >= elements.size(),
            "Json: array index out of range");
    return elements[index];
}

void
Json::appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace util
} // namespace imsim
