/**
 * @file
 * Deterministically seedable random number generation and the distributions
 * used by the workload and queueing models.
 *
 * Every stochastic component in the library draws from an explicitly passed
 * Rng so that simulations are reproducible given a seed.
 */

#ifndef IMSIM_UTIL_RANDOM_HH
#define IMSIM_UTIL_RANDOM_HH

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.hh"

namespace imsim {
namespace util {

/**
 * Random number generator wrapper around std::mt19937_64.
 *
 * Provides the primitive draws the simulator needs and named distribution
 * helpers. A child() generator can be forked for independent substreams.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for reproducibility). */
    explicit Rng(std::uint64_t seed = 0x1ce5eedULL)
        : engine(seed), seedValue(seed)
    {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        fatalIf(hi < lo, "Rng::uniform: hi < lo");
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        fatalIf(hi < lo, "Rng::uniformInt: hi < lo");
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine);
    }

    /** Exponentially distributed draw with the given mean (> 0). */
    double
    exponential(double mean)
    {
        fatalIf(mean <= 0.0, "Rng::exponential: mean must be positive");
        return std::exponential_distribution<double>(1.0 / mean)(engine);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        fatalIf(stddev < 0.0, "Rng::normal: stddev must be non-negative");
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /**
     * Lognormal draw parameterised by its *arithmetic* mean and coefficient
     * of variation. Used as the "General" service-time distribution of the
     * paper's M/G/k Client-Server application.
     */
    double lognormalMeanCv(double mean, double cv);

    /** Bounded Pareto draw (heavy tail) with shape alpha and minimum xm. */
    double pareto(double xm, double alpha);

    /** Bernoulli draw with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        fatalIf(p < 0.0 || p > 1.0, "Rng::bernoulli: p out of [0,1]");
        return uniform() < p;
    }

    /** Poisson-distributed count with the given mean. */
    std::int64_t
    poisson(double mean)
    {
        fatalIf(mean < 0.0, "Rng::poisson: mean must be non-negative");
        return std::poisson_distribution<std::int64_t>(mean)(engine);
    }

    /**
     * Draw an index from a discrete distribution given (unnormalised,
     * non-negative) weights.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Fork an independent child generator for a substream. */
    Rng
    child()
    {
        return Rng(engine());
    }

    /**
     * Derive an independent, reproducible substream for @p stream_id.
     *
     * Unlike child(), split() depends only on the *construction seed*
     * and the stream id — not on how many draws have been consumed —
     * via SplitMix64 hashing. This is what makes parallel sweeps
     * deterministic: worker k processing point i always seeds point i's
     * simulation with split(i), so results are bit-identical whether
     * the sweep runs on 1 thread or N.
     */
    Rng split(std::uint64_t stream_id) const;

    /** @return the seed this generator was constructed with. */
    std::uint64_t seed() const { return seedValue; }

    /** SplitMix64 finalizer (public: also used as a stable hash). */
    static std::uint64_t splitmix64(std::uint64_t x);

  private:
    std::mt19937_64 engine;
    std::uint64_t seedValue;
};

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_RANDOM_HH
