#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace imsim {
namespace util {

TableWriter::TableWriter(std::vector<std::string> headers)
    : header(std::move(headers))
{
    fatalIf(header.empty(), "TableWriter: need at least one column");
}

void
TableWriter::addRow(std::vector<std::string> row)
{
    fatalIf(row.size() != header.size(),
            "TableWriter::addRow: column count mismatch");
    body.push_back(std::move(row));
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c]
               << std::string(width[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    auto print_rule = [&]() {
        os << "+";
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << "+";
        os << "\n";
    };

    print_rule();
    print_row(header);
    print_rule();
    for (const auto &row : body)
        print_row(row);
    print_rule();
}

void
TableWriter::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    print_row(header);
    for (const auto &row : body)
        print_row(row);
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtPercent(double ratio, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, ratio * 100.0);
    return buf;
}

void
printHeading(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace util
} // namespace imsim
