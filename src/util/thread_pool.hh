/**
 * @file
 * Fixed-size worker-thread pool used by the experiment engine (src/exp)
 * to fan sweep points and Monte-Carlo replications across cores, and by
 * the intra-run fleet sharding (src/util/shard.hh) to fan per-minute
 * physics shards across the same workers.
 *
 * The pool owns its worker threads for its whole lifetime: submit()
 * enqueues a task and returns a std::future for its result; the
 * destructor drains the queue and joins every worker (graceful
 * shutdown — queued tasks still run).
 *
 * parallelFor() is the second, allocation-free entry point: a
 * fork-join over an index range where the calling thread participates
 * and the call returns only when every index has been processed.
 * submit() heap-allocates per task (packaged_task shared state), which
 * is fine at sweep-point granularity but would violate the fleet hot
 * path's 0 allocs/op contract at minute-tick granularity — hence the
 * separate path.
 */

#ifndef IMSIM_UTIL_THREAD_POOL_HH
#define IMSIM_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace imsim {
namespace util {

/**
 * Fixed-size thread pool with a FIFO task queue.
 *
 * Thread-safe: submit() may be called from any thread, including from
 * inside a running task. Tasks must not block on futures of tasks
 * submitted to the *same* pool (classic self-deadlock); the experiment
 * engine only ever submits leaf work, so this does not arise there.
 */
class ThreadPool
{
  public:
    /**
     * Start @p workers worker threads (0 is clamped to 1).
     *
     * @param workers Number of worker threads.
     */
    explicit ThreadPool(std::size_t workers);

    /** Drain outstanding tasks and join all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return number of worker threads. */
    std::size_t size() const { return workers.size(); }

    /**
     * Enqueue @p fn for execution on a worker.
     *
     * @return a future carrying fn's result (or its exception).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Run @p fn(ctx, i) for every i in [0, count), fanned across the
     * pool's workers plus the calling thread, and return once all
     * indices have completed (a fork-join barrier).
     *
     * Indices are claimed with an atomic counter, so *which* thread
     * runs a given index is nondeterministic — fn must only write
     * state that is disjoint per index (or otherwise synchronized).
     * Memory ordering: everything written by the caller before
     * parallelFor() is visible inside fn, and everything fn writes is
     * visible to the caller after parallelFor() returns.
     *
     * Allocation-free: the job descriptor lives inside the pool, so
     * this path is safe for 0-allocs/op hot loops (unlike submit()).
     *
     * Not reentrant: one parallelFor at a time per pool, and it must
     * not be called from inside a task or from inside fn on the same
     * pool (panics on nesting). It may interleave with submit() —
     * queued tasks and shard jobs are drained independently.
     *
     * Exception-safe: if fn throws (on any participating thread), no
     * further indices are claimed, the join completes, and the first
     * exception is rethrown on the calling thread. The pool stays
     * usable afterwards. Indices already in flight when the throw
     * happens still run to completion, so a throw means "some subset
     * of [0, count) ran" — callers treating the throw as fatal (the
     * fleet kernels' fatalIf diagnostics) are unaffected.
     */
    void parallelFor(std::size_t count, void (*fn)(void *ctx, std::size_t i),
                     void *ctx);

    /**
     * Typed convenience wrapper over parallelFor(): invokes
     * @p fn(std::size_t index) through a stateless trampoline, so the
     * callable is borrowed by reference and never copied or allocated.
     */
    template <typename F> void forEachIndex(std::size_t count, F &&fn)
    {
        using Fn = std::remove_reference_t<F>;
        parallelFor(
            count,
            [](void *ctx, std::size_t i) { (*static_cast<Fn *>(ctx))(i); },
            const_cast<void *>(static_cast<const void *>(&fn)));
    }

    /**
     * @return the usable hardware concurrency (>= 1 even when the
     *         runtime cannot determine it).
     */
    static std::size_t defaultWorkers();

  private:
    /** Push a type-erased task and wake one worker. */
    void enqueue(std::function<void()> task);

    /** Worker loop: pop tasks until shutdown and the queue is empty. */
    void workerLoop();

    /** Claim and run shard indices until the current job is drained. */
    void drainShards();

    /**
     * The active parallelFor() job. All fields except `next` are
     * written under `mutex`; `next` is the atomic work-stealing
     * cursor the participating threads bump lock-free.
     */
    struct ShardJob {
        void (*fn)(void *, std::size_t) = nullptr; ///< null = no job.
        void *ctx = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0}; ///< Next unclaimed index.
        std::size_t active = 0;   ///< Workers currently inside fn.
        std::uint64_t epoch = 0;  ///< Bumped per job so a worker joins
                                  ///< each job at most once.
        std::exception_ptr error; ///< First exception thrown by fn.
    };

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> tasks;
    std::mutex mutex;
    std::condition_variable wakeup;
    std::condition_variable jobDone;
    ShardJob job;
    bool shuttingDown = false;
};

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_THREAD_POOL_HH
