/**
 * @file
 * Fixed-size worker-thread pool used by the experiment engine (src/exp)
 * to fan sweep points and Monte-Carlo replications across cores.
 *
 * The pool owns its worker threads for its whole lifetime: submit()
 * enqueues a task and returns a std::future for its result; the
 * destructor drains the queue and joins every worker (graceful
 * shutdown — queued tasks still run).
 */

#ifndef IMSIM_UTIL_THREAD_POOL_HH
#define IMSIM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace imsim {
namespace util {

/**
 * Fixed-size thread pool with a FIFO task queue.
 *
 * Thread-safe: submit() may be called from any thread, including from
 * inside a running task. Tasks must not block on futures of tasks
 * submitted to the *same* pool (classic self-deadlock); the experiment
 * engine only ever submits leaf work, so this does not arise there.
 */
class ThreadPool
{
  public:
    /**
     * Start @p workers worker threads (0 is clamped to 1).
     *
     * @param workers Number of worker threads.
     */
    explicit ThreadPool(std::size_t workers);

    /** Drain outstanding tasks and join all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return number of worker threads. */
    std::size_t size() const { return workers.size(); }

    /**
     * Enqueue @p fn for execution on a worker.
     *
     * @return a future carrying fn's result (or its exception).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * @return the usable hardware concurrency (>= 1 even when the
     *         runtime cannot determine it).
     */
    static std::size_t defaultWorkers();

  private:
    /** Push a type-erased task and wake one worker. */
    void enqueue(std::function<void()> task);

    /** Worker loop: pop tasks until shutdown and the queue is empty. */
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> tasks;
    std::mutex mutex;
    std::condition_variable wakeup;
    bool shuttingDown = false;
};

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_THREAD_POOL_HH
