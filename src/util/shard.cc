#include "util/shard.hh"

#include "util/logging.hh"

namespace imsim {
namespace util {

ShardPlan
ShardPlan::even(std::size_t units, std::size_t shards)
{
    ShardPlan plan;
    if (units == 0)
        return plan;
    const std::size_t n = std::min(units, shards == 0 ? 1 : shards);
    plan.bounds.reserve(n + 1);
    plan.bounds.push_back(0);
    for (std::size_t s = 0; s < n; ++s) {
        // units/n per shard, the first units%n shards one unit larger —
        // exact integer arithmetic, no accumulation drift.
        const std::size_t end = (units * (s + 1)) / n;
        plan.bounds.push_back(end);
    }
    return plan;
}

ShardPlan
ShardPlan::alignedTo(const std::vector<std::size_t> &group_begin,
                     std::size_t shards)
{
    ShardPlan plan;
    fatalIf(group_begin.size() < 2 || group_begin.front() != 0,
            "ShardPlan::alignedTo: need offsets [0, ..., units]");
    const std::size_t groups = group_begin.size() - 1;
    const std::size_t units = group_begin.back();
    if (units == 0)
        return plan;
    const std::size_t n =
        std::min(groups, std::min(units, shards == 0 ? 1 : shards));
    plan.bounds.reserve(n + 1);
    plan.bounds.push_back(0);
    // Greedy pack: shard s closes at the first group boundary at or
    // past the even split point, never splitting a group. Deterministic
    // in (group_begin, shards) alone.
    std::size_t g = 0;
    for (std::size_t s = 0; s < n; ++s) {
        const std::size_t target = (units * (s + 1)) / n;
        const std::size_t groups_left = groups - g;
        const std::size_t shards_left = n - s;
        // Leave at least one group for each remaining shard.
        std::size_t close = g + 1;
        while (close < groups - (shards_left - 1) &&
               group_begin[close] < target)
            ++close;
        fatalIf(groups_left < shards_left,
                "ShardPlan::alignedTo: internal shard/group imbalance");
        g = close;
        plan.bounds.push_back(group_begin[g]);
    }
    // The loop's leave-one-group guard guarantees the final shard
    // closes exactly at the last boundary.
    fatalIf(plan.bounds.back() != units,
            "ShardPlan::alignedTo: plan does not cover all units");
    return plan;
}

ShardRunner::ShardRunner(std::size_t threads)
    : threadCount(threads == 0 ? 1 : threads)
{
    if (threadCount > 1)
        pool = std::make_unique<ThreadPool>(threadCount - 1);
}

} // namespace util
} // namespace imsim
