#include "util/cli.hh"

#include <cstdlib>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace imsim {
namespace util {

Cli::Cli(int argc, const char *const *argv)
{
    fatalIf(argc < 1 || argv == nullptr, "Cli: empty argv");
    programName = argv[0];
    argvLine = programName;
    for (int i = 1; i < argc; ++i) {
        argvLine += ' ';
        argvLine += argv[i];
    }
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        if (token.rfind("--", 0) != 0) {
            args.push_back(token);
            continue;
        }
        const auto eq = token.find('=');
        if (eq != std::string::npos) {
            flags[token.substr(0, eq)] = token.substr(eq + 1);
            continue;
        }
        // "--key value" when the next token is not itself a flag.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags[token] = argv[i + 1];
            ++i;
        } else {
            flags[token] = "";
        }
    }
    // Shared observability flags: --log-level wins over --verbose when
    // both are given.
    if (has("--verbose"))
        setVerbose(true);
    if (has("--log-level"))
        setLogLevel(parseLogLevel(get("--log-level")));
}

bool
Cli::has(const std::string &flag) const
{
    return flags.count(flag) > 0;
}

std::string
Cli::get(const std::string &flag, const std::string &fallback) const
{
    const auto it = flags.find(flag);
    return it == flags.end() ? fallback : it->second;
}

std::int64_t
Cli::getInt(const std::string &flag, std::int64_t fallback) const
{
    const auto it = flags.find(flag);
    if (it == flags.end())
        return fallback;
    char *end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    fatalIf(end == it->second.c_str() || *end != '\0',
            "Cli: flag " + flag + " expects an integer, got '" +
                it->second + "'");
    return value;
}

std::size_t
Cli::jobs() const
{
    const std::int64_t n = getInt(
        "--jobs", static_cast<std::int64_t>(ThreadPool::defaultWorkers()));
    fatalIf(n < 1, "Cli: --jobs expects a positive worker count");
    return static_cast<std::size_t>(n);
}

std::size_t
Cli::simThreads() const
{
    const std::int64_t n = getInt("--sim-threads", 1);
    fatalIf(n < 0, "Cli: --sim-threads expects a non-negative count");
    if (n == 0)
        return ThreadPool::defaultWorkers();
    return static_cast<std::size_t>(n);
}

double
Cli::getDouble(const std::string &flag, double fallback) const
{
    const auto it = flags.find(flag);
    if (it == flags.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    fatalIf(end == it->second.c_str() || *end != '\0',
            "Cli: flag " + flag + " expects a number, got '" +
                it->second + "'");
    return value;
}

} // namespace util
} // namespace imsim
