#include "util/logging.hh"

#include <cstdio>

namespace imsim {
namespace util {

namespace {
bool verboseFlag = false;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
inform(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

} // namespace util
} // namespace imsim
