#include "util/logging.hh"

#include <atomic>
#include <cstdio>

namespace imsim {
namespace util {

namespace {
/** Process-wide threshold; warnings print, inform() does not. */
std::atomic<LogLevel> levelFlag{LogLevel::Warn};
} // namespace

std::string
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "trace";
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Off: return "off";
    }
    panic("logLevelName: unhandled level");
}

LogLevel
parseLogLevel(const std::string &name)
{
    for (LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Off}) {
        if (name == logLevelName(level))
            return level;
    }
    fatal("unknown log level '" + name +
          "' (expected trace|debug|info|warn|off)");
}

void
setLogLevel(LogLevel level)
{
    levelFlag.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return levelFlag.load(std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return level >= logLevel() && level != LogLevel::Off;
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::Info : LogLevel::Warn);
}

bool
verbose()
{
    return logEnabled(LogLevel::Info);
}

void
inform(const std::string &msg)
{
    if (logEnabled(LogLevel::Info))
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (logEnabled(LogLevel::Warn))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

} // namespace util
} // namespace imsim
