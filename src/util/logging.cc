#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace imsim {
namespace util {

namespace {
/** Process-wide threshold; warnings print, inform() does not. */
std::atomic<LogLevel> levelFlag{LogLevel::Warn};

/** The installed error hook (guarded; fatal paths are cold). */
std::mutex hookMutex;
ErrorHook errorHook = nullptr;
void *errorHookCtx = nullptr;
/** Re-entrancy latch: a fatal raised *inside* the hook skips it. */
thread_local bool inErrorHook = false;

void
runErrorHook(const std::string &what)
{
    if (inErrorHook)
        return;
    ErrorHook hook;
    void *ctx;
    {
        std::lock_guard<std::mutex> lock(hookMutex);
        hook = errorHook;
        ctx = errorHookCtx;
    }
    if (!hook)
        return;
    inErrorHook = true;
    try {
        hook(what.c_str(), ctx);
    } catch (...) {
        // The hook is best-effort; the original error must win.
    }
    inErrorHook = false;
}
} // namespace

std::string
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "trace";
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Off: return "off";
    }
    panic("logLevelName: unhandled level");
}

LogLevel
parseLogLevel(const std::string &name)
{
    for (LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Off}) {
        if (name == logLevelName(level))
            return level;
    }
    fatal("unknown log level '" + name +
          "' (expected trace|debug|info|warn|off)");
}

void
setLogLevel(LogLevel level)
{
    levelFlag.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return levelFlag.load(std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return level >= logLevel() && level != LogLevel::Off;
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::Info : LogLevel::Warn);
}

bool
verbose()
{
    return logEnabled(LogLevel::Info);
}

void
inform(const std::string &msg)
{
    if (logEnabled(LogLevel::Info))
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (logEnabled(LogLevel::Warn))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
setErrorHook(ErrorHook hook, void *ctx)
{
    std::lock_guard<std::mutex> lock(hookMutex);
    errorHook = hook;
    errorHookCtx = ctx;
}

void
fatal(const std::string &msg)
{
    const std::string what = "fatal: " + msg;
    runErrorHook(what);
    throw FatalError(what);
}

void
panic(const std::string &msg)
{
    const std::string what = "panic: " + msg;
    runErrorHook(what);
    throw PanicError(what);
}

} // namespace util
} // namespace imsim
