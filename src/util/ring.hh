/**
 * @file
 * Growable ring-buffer deque for hot-path FIFO queues.
 *
 * std::deque never shrinks its chunk map, but libstdc++ allocates and
 * frees 512-byte element chunks as push_back/pop_front cycle across
 * chunk boundaries — a steady drip of allocations in steady state (the
 * residual ~0.06 allocs/op the queueing bench used to show came from
 * exactly this, two SlidingTimeWindow::record() calls per request).
 * RingDeque keeps one contiguous buffer and wraps head/tail indices
 * around it instead: once the buffer has grown to the high-water mark
 * of the queue, pushes and pops are allocation-free forever.
 *
 * Iteration order (operator[] from 0 to size()-1) is front-to-back,
 * matching std::deque, so index-based consumers port over unchanged.
 * Not thread-safe for concurrent mutation; const reads are pure.
 */

#ifndef IMSIM_UTIL_RING_HH
#define IMSIM_UTIL_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace imsim {
namespace util {

/**
 * Double-ended FIFO over a growable power-of-two ring buffer.
 *
 * @tparam T element type; must be default-constructible and movable
 *           (the grow path move-relocates live elements in order).
 */
template <typename T> class RingDeque
{
  public:
    /** @return number of live elements. */
    std::size_t size() const { return count; }

    /** @return whether the deque is empty. */
    bool empty() const { return count == 0; }

    /** @return element @p i from the front (0 = oldest). */
    const T &operator[](std::size_t i) const
    {
        fatalIf(i >= count, "RingDeque: index out of range");
        return buffer[wrap(head + i)];
    }

    /** @copydoc operator[] */
    T &operator[](std::size_t i)
    {
        fatalIf(i >= count, "RingDeque: index out of range");
        return buffer[wrap(head + i)];
    }

    /** @return oldest element; FatalError when empty. */
    const T &front() const
    {
        fatalIf(count == 0, "RingDeque::front: empty");
        return buffer[head];
    }

    /** @return newest element; FatalError when empty. */
    const T &back() const
    {
        fatalIf(count == 0, "RingDeque::back: empty");
        return buffer[wrap(head + count - 1)];
    }

    /** Append @p value at the back (amortised allocation-free). */
    void push_back(T value)
    {
        if (count == buffer.size())
            grow();
        buffer[wrap(head + count)] = std::move(value);
        ++count;
    }

    /** Construct an element in place at the back. */
    template <typename... Args> void emplace_back(Args &&...args)
    {
        push_back(T(std::forward<Args>(args)...));
    }

    /** Prepend @p value at the front (requeue-ahead-of-backlog path). */
    void push_front(T value)
    {
        if (count == buffer.size())
            grow();
        head = wrap(head + buffer.size() - 1);
        buffer[head] = std::move(value);
        ++count;
    }

    /** Drop the oldest element; FatalError when empty. */
    void pop_front()
    {
        fatalIf(count == 0, "RingDeque::pop_front: empty");
        buffer[head] = T(); // Release payload resources eagerly.
        head = wrap(head + 1);
        --count;
    }

    /** Drop every element; capacity is retained. */
    void clear()
    {
        for (std::size_t i = 0; i < count; ++i)
            buffer[wrap(head + i)] = T();
        head = 0;
        count = 0;
    }

    /** Pre-size the buffer so @p n pushes need no growth. */
    void reserve(std::size_t n)
    {
        if (n > buffer.size())
            regrow(nextPow2(n));
    }

  private:
    std::size_t wrap(std::size_t i) const
    {
        // buffer.size() is always a power of two (or zero, in which
        // case no index is ever wrapped).
        return i & (buffer.size() - 1);
    }

    static std::size_t nextPow2(std::size_t n)
    {
        std::size_t p = kInitialCapacity;
        while (p < n)
            p <<= 1;
        return p;
    }

    void grow() { regrow(buffer.empty() ? kInitialCapacity : buffer.size() * 2); }

    void regrow(std::size_t new_capacity)
    {
        std::vector<T> next(new_capacity);
        for (std::size_t i = 0; i < count; ++i)
            next[i] = std::move(buffer[wrap(head + i)]);
        buffer.swap(next);
        head = 0;
    }

    static constexpr std::size_t kInitialCapacity = 8;

    std::vector<T> buffer;
    std::size_t head = 0;  ///< Index of the front element.
    std::size_t count = 0; ///< Live elements.
};

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_RING_HH
