/**
 * @file
 * Unit aliases, conversions, and physical constants.
 *
 * The library standardises on:
 *  - power in watts,
 *  - temperature in degrees Celsius (kelvin only inside Arrhenius math),
 *  - frequency in gigahertz,
 *  - voltage in volts,
 *  - time in seconds (simulation) or years (lifetime).
 *
 * Plain double aliases keep the arithmetic natural; the names make intent
 * explicit at API boundaries.
 */

#ifndef IMSIM_UTIL_UNITS_HH
#define IMSIM_UTIL_UNITS_HH

namespace imsim {

/** Electrical power [W]. */
using Watts = double;
/** Temperature [degrees Celsius]. */
using Celsius = double;
/** Absolute temperature [K]. */
using Kelvin = double;
/** Clock frequency [GHz]. */
using GHz = double;
/** Supply voltage [V]. */
using Volts = double;
/** Simulated wall-clock time [s]. */
using Seconds = double;
/** Component lifetime [years]. */
using Years = double;
/** Memory bandwidth [GB/s]. */
using GBps = double;
/** Thermal resistance [degrees Celsius per watt]. */
using CelsiusPerWatt = double;
/** Monetary cost, normalised units. */
using Cost = double;

namespace units {

/** Boltzmann constant [eV/K], for Arrhenius terms. */
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/** Offset between Celsius and Kelvin scales. */
inline constexpr double kCelsiusToKelvin = 273.15;

/** Hours in a (Julian) year, for lifetime <-> rate conversions. */
inline constexpr double kHoursPerYear = 8766.0;

/** Seconds in an hour. */
inline constexpr double kSecondsPerHour = 3600.0;

/** Minutes in a day, for the fixed-step datacenter power loop. */
inline constexpr double kMinutesPerDay = 1440.0;

/** Convert degrees Celsius to kelvin. */
constexpr Kelvin
toKelvin(Celsius c)
{
    return c + kCelsiusToKelvin;
}

/** Convert kelvin to degrees Celsius. */
constexpr Celsius
toCelsius(Kelvin k)
{
    return k - kCelsiusToKelvin;
}

/** Convert seconds to hours. */
constexpr double
secondsToHours(Seconds s)
{
    return s / kSecondsPerHour;
}

/** Convert years to hours. */
constexpr double
yearsToHours(Years y)
{
    return y * kHoursPerYear;
}

} // namespace units
} // namespace imsim

#endif // IMSIM_UTIL_UNITS_HH
