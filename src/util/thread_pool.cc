#include "util/thread_pool.hh"

#include "util/logging.hh"

namespace imsim {
namespace util {

ThreadPool::ThreadPool(std::size_t workers_requested)
{
    const std::size_t n = workers_requested == 0 ? 1 : workers_requested;
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        shuttingDown = true;
    }
    wakeup.notify_all();
    for (auto &worker : workers)
        worker.join();
}

std::size_t
ThreadPool::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        panicIf(shuttingDown, "ThreadPool: submit() after shutdown began");
        tasks.push_back(std::move(task));
    }
    wakeup.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wakeup.wait(lock, [this]() {
                return shuttingDown || !tasks.empty();
            });
            if (tasks.empty())
                return; // Shutting down and drained.
            task = std::move(tasks.front());
            tasks.pop_front();
        }
        // packaged_task catches exceptions into the future; a raw throw
        // here would mean a non-packaged task, which enqueue() never
        // produces.
        task();
    }
}

} // namespace util
} // namespace imsim
