#include "util/thread_pool.hh"

#include "util/logging.hh"

namespace imsim {
namespace util {

ThreadPool::ThreadPool(std::size_t workers_requested)
{
    const std::size_t n = workers_requested == 0 ? 1 : workers_requested;
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        shuttingDown = true;
    }
    wakeup.notify_all();
    for (auto &worker : workers)
        worker.join();
}

std::size_t
ThreadPool::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        panicIf(shuttingDown, "ThreadPool: submit() after shutdown began");
        tasks.push_back(std::move(task));
    }
    wakeup.notify_one();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_epoch = 0;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wakeup.wait(lock, [&]() {
                return shuttingDown || !tasks.empty() ||
                       (job.fn != nullptr && job.epoch != seen_epoch);
            });
            if (job.fn != nullptr && job.epoch != seen_epoch) {
                // A parallelFor() job is live and this worker has not
                // joined it yet. `active` is bumped under the lock, so
                // the coordinator cannot conclude the join while we
                // are inside fn.
                seen_epoch = job.epoch;
                ++job.active;
                lock.unlock();
                drainShards();
                lock.lock();
                if (--job.active == 0)
                    jobDone.notify_all();
                continue;
            }
            if (tasks.empty())
                return; // Shutting down and drained.
            task = std::move(tasks.front());
            tasks.pop_front();
        }
        // packaged_task catches exceptions into the future; a raw throw
        // here would mean a non-packaged task, which enqueue() never
        // produces.
        task();
    }
}

void
ThreadPool::drainShards()
{
    for (;;) {
        const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.count)
            return;
        try {
            job.fn(job.ctx, i);
        } catch (...) {
            // Never let an exception unwind through a worker (that
            // would terminate the process): stash the first one for
            // the coordinator and drag the cursor to the end so every
            // participant drains out promptly.
            std::lock_guard<std::mutex> lock(mutex);
            if (!job.error)
                job.error = std::current_exception();
            job.next.store(job.count, std::memory_order_relaxed);
            return;
        }
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        void (*fn)(void *ctx, std::size_t i), void *ctx)
{
    panicIf(fn == nullptr, "ThreadPool: parallelFor with null fn");
    if (count == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex);
        panicIf(shuttingDown, "ThreadPool: parallelFor() after shutdown");
        panicIf(job.fn != nullptr,
                "ThreadPool: nested/concurrent parallelFor() on one pool");
        job.fn = fn;
        job.ctx = ctx;
        job.count = count;
        job.next.store(0, std::memory_order_relaxed);
        ++job.epoch;
    }
    wakeup.notify_all();
    // The caller is a full participant: on a pool with W workers,
    // parallelFor runs on up to W+1 threads, and degenerates to a plain
    // serial loop when every worker is busy with submitted tasks.
    drainShards();
    std::unique_lock<std::mutex> lock(mutex);
    jobDone.wait(lock, [&]() {
        return job.active == 0 &&
               job.next.load(std::memory_order_relaxed) >= job.count;
    });
    // Workers that never woke for this epoch see fn == nullptr and skip
    // it; the epoch guard keeps late wakers from re-joining a job that
    // already completed.
    job.fn = nullptr;
    job.ctx = nullptr;
    job.count = 0;
    if (job.error) {
        // A shard body threw (possibly on a worker). The join above
        // already completed, so the pool is idle and reusable; surface
        // the first failure on the calling thread.
        std::exception_ptr error = job.error;
        job.error = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

} // namespace util
} // namespace imsim
