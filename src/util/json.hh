/**
 * @file
 * Minimal JSON document parser for the repo's own machine-readable
 * artifacts: RunReport JSON, profiler dumps, BENCH_hotpaths.json, and
 * TimeSeries JSON. Objects preserve key order (the writers emit in a
 * deterministic order and the readers round-trip it), numbers are
 * doubles, and `null` is a first-class value because the writers emit
 * it for non-finite metrics.
 *
 * This is a reader for JSON *we* wrote — it accepts standard JSON but
 * raises FatalError on anything malformed instead of recovering.
 */

#ifndef IMSIM_UTIL_JSON_HH
#define IMSIM_UTIL_JSON_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace imsim {
namespace util {

/**
 * One parsed JSON value: null, bool, number, string, array, or object
 * (ordered key/value pairs; duplicate keys keep the first).
 */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Parse @p text (one document, trailing whitespace only). */
    static Json parse(const std::string &text);

    /** @return this value's type. */
    Type type() const { return kind; }

    bool isNull() const { return kind == Type::Null; }
    bool isBool() const { return kind == Type::Bool; }
    bool isNumber() const { return kind == Type::Number; }
    bool isString() const { return kind == Type::String; }
    bool isArray() const { return kind == Type::Array; }
    bool isObject() const { return kind == Type::Object; }

    /** @return the boolean; FatalError when not a bool. */
    bool boolean() const;

    /** @return the number (NaN for null); FatalError otherwise. */
    double number() const;

    /** @return the string; FatalError when not a string. */
    const std::string &str() const;

    /** @return array elements; FatalError when not an array. */
    const std::vector<Json> &array() const;

    /** @return object members in document order; FatalError otherwise. */
    const std::vector<std::pair<std::string, Json>> &object() const;

    /** @return element count of an array or object, else 0. */
    std::size_t size() const;

    /** @return member @p key of an object, or nullptr when absent. */
    const Json *find(const std::string &key) const;

    /** @return whether this object has member @p key. */
    bool has(const std::string &key) const { return find(key) != nullptr; }

    /** @return member @p key; FatalError when absent. */
    const Json &at(const std::string &key) const;

    /** @return array element @p index; FatalError when out of range. */
    const Json &at(std::size_t index) const;

    /**
     * Append @p s to @p out as a quoted JSON string (the escaping all
     * of the repo's JSON writers share).
     */
    static void appendEscaped(std::string &out, const std::string &s);

  private:
    Type kind = Type::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<Json> elements;
    std::vector<std::pair<std::string, Json>> members;

    class Parser;
};

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_JSON_HH
