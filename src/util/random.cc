#include "util/random.hh"

#include <cmath>

namespace imsim {
namespace util {

std::uint64_t
Rng::splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Rng
Rng::split(std::uint64_t stream_id) const
{
    // Two finalizer rounds decorrelate (seed, stream) pairs even for
    // adjacent seeds and small consecutive stream ids.
    return Rng(splitmix64(splitmix64(seedValue) ^
                          splitmix64(stream_id + 0x632be59bd9b4e019ULL)));
}

double
Rng::lognormalMeanCv(double mean, double cv)
{
    fatalIf(mean <= 0.0, "Rng::lognormalMeanCv: mean must be positive");
    fatalIf(cv <= 0.0, "Rng::lognormalMeanCv: cv must be positive");
    // For lognormal with parameters (mu, sigma):
    //   E[X]  = exp(mu + sigma^2/2)
    //   CV^2  = exp(sigma^2) - 1
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::lognormal_distribution<double>(mu, std::sqrt(sigma2))(engine);
}

double
Rng::pareto(double xm, double alpha)
{
    fatalIf(xm <= 0.0, "Rng::pareto: xm must be positive");
    fatalIf(alpha <= 0.0, "Rng::pareto: alpha must be positive");
    double u = uniform();
    // Guard against u == 0, which would produce infinity.
    if (u < 1e-16)
        u = 1e-16;
    return xm / std::pow(u, 1.0 / alpha);
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    fatalIf(weights.empty(), "Rng::discrete: empty weight vector");
    double total = 0.0;
    for (double w : weights) {
        fatalIf(w < 0.0, "Rng::discrete: negative weight");
        total += w;
    }
    fatalIf(total <= 0.0, "Rng::discrete: weights sum to zero");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace util
} // namespace imsim
