/**
 * @file
 * Online statistics used throughout the simulator: running moments,
 * percentile estimation over stored samples, time-weighted sliding-window
 * averages (the auto-scaler's 30 s and 3 min utilization windows), a
 * simple fixed-bin histogram, and a mergeable fixed-bin quantile sketch
 * for streaming percentiles at fleet scale.
 */

#ifndef IMSIM_UTIL_STATS_HH
#define IMSIM_UTIL_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/ring.hh"
#include "util/units.hh"

namespace imsim {
namespace util {

/**
 * Running mean/variance/min/max over a stream of samples (Welford update).
 */
class OnlineStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

    /** Reset to the empty state. */
    void reset();

    /** @return number of samples added. */
    std::size_t count() const { return n; }

    /** @return arithmetic mean (0 when empty). */
    double mean() const { return n ? mu : 0.0; }

    /** @return population variance (0 with fewer than 2 samples). */
    double variance() const;

    /** @return standard deviation. */
    double stddev() const;

    /** @return minimum sample (+inf when empty). */
    double min() const { return minv; }

    /** @return maximum sample (-inf when empty). */
    double max() const { return maxv; }

    /** @return sum of all samples. */
    double sum() const { return mu * static_cast<double>(n); }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double minv = std::numeric_limits<double>::infinity();
    double maxv = -std::numeric_limits<double>::infinity();
};

/**
 * Percentile estimator that stores all samples and sorts on demand.
 *
 * Exact (not sketch-based); the experiments in this repository collect at
 * most a few million latency samples, for which exact quantiles are cheap
 * and reproducible.
 *
 * Thread-safety contract: the const accessors never mutate the estimator
 * (no `mutable` lazy sort), so concurrent reads through const references
 * are race-free — the contract exp::SweepRunner relies on when sweep
 * points share read-only snapshots. Sorting is an explicit non-const
 * operation: the non-const percentile() overload (and sort()) orders the
 * sample store in place and caches that fact; the const overload works
 * on a sorted store directly and otherwise selects the order statistics
 * from a local copy, producing bit-identical values either way.
 */
class PercentileEstimator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** @return number of samples. */
    std::size_t count() const { return samples.size(); }

    /**
     * @param p Quantile in [0, 100].
     * @return the p-th percentile via linear interpolation; 0 when empty.
     *
     * Sorts the sample store in place (once; later calls reuse it).
     */
    double percentile(double p);

    /**
     * Non-mutating overload: reads a pre-sorted store directly, and
     * otherwise computes the same value from a local copy without
     * touching this object — safe for concurrent const readers.
     */
    double percentile(double p) const;

    /** Convenience accessors for the metrics the paper reports. */
    double p50() { return percentile(50.0); }
    double p95() { return percentile(95.0); }
    double p99() { return percentile(99.0); }
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /** Sort the sample store now (explicit form of the lazy sort). */
    void sort();

    /** @return arithmetic mean of the samples; 0 when empty. */
    double mean() const;

    /** Absorb all of @p other's samples into this estimator. */
    void merge(const PercentileEstimator &other);

    /**
     * @return the stored samples. Order is unspecified (the non-const
     * percentile()/sort() order them in place); treat as a multiset.
     */
    const std::vector<double> &data() const { return samples; }

    /** Drop all samples. */
    void reset();

  private:
    double percentileSorted(const std::vector<double> &sorted_samples,
                            double p) const;

    std::vector<double> samples;
    bool sorted = true;
};

/**
 * Time-weighted sliding-window average.
 *
 * Samples are (timestamp, value) pairs; the average weights each value by
 * the duration it was current, over the trailing window. This is how the
 * auto-scaler computes "average CPU utilization over the last 30 seconds /
 * 3 minutes" from a piecewise-constant telemetry signal.
 *
 * Segments that fell out of the retained window are evicted by record()
 * (a non-const operation); average() is a pure read, so concurrent
 * queries through const references are race-free.
 *
 * Storage is a RingDeque, so once the segment buffer reaches the
 * window's high-water mark, record() is allocation-free — std::deque
 * would keep cycling 512-byte chunks at the eviction boundary (the
 * queueing hot path records two segments per request, which showed up
 * as ~0.06 allocs/request before the switch).
 */
class SlidingTimeWindow
{
  public:
    /** @param window_s Length of the trailing window in seconds (> 0). */
    explicit SlidingTimeWindow(Seconds window_s);

    /** Record that the signal took value @p value starting at time @p t. */
    void record(Seconds t, double value);

    /**
     * @param now Current simulation time (>= last record time).
     * @return time-weighted mean of the signal over [now - window, now];
     *         0 when no sample has ever been recorded.
     */
    double average(Seconds now) const;

    /**
     * Time-weighted mean over a shorter trailing sub-window
     * [now - sub_window, now]; @p sub_window must not exceed the window
     * this instance retains.
     */
    double average(Seconds now, Seconds sub_window) const;

    /** @return the window length. */
    Seconds window() const { return windowLen; }

    /** @return the most recent raw value recorded (0 when empty). */
    double latest() const;

    /** Forget all history. */
    void reset();

  private:
    Seconds windowLen;
    /** (start time, value) of each piecewise-constant segment. */
    RingDeque<std::pair<Seconds, double>> segments;
};

/**
 * Fixed-width-bin histogram over [lo, hi); finite out-of-range samples
 * clamp to the end bins. Non-finite samples (NaN, +/-Inf) are never
 * binned — they count into dropped() instead, keeping the bin-index
 * arithmetic free of undefined float-to-integer casts.
 */
class Histogram
{
  public:
    /**
     * @param lo    Left edge of the first bin.
     * @param hi    Right edge of the last bin (> lo).
     * @param nbins Number of bins (> 0).
     */
    Histogram(double lo, double hi, std::size_t nbins);

    /** Add one sample (non-finite values go to the dropped counter). */
    void add(double x);

    /** @return count in bin @p i. */
    std::size_t binCount(std::size_t i) const;

    /** @return center value of bin @p i. */
    double binCenter(std::size_t i) const;

    /** @return number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** @return total samples binned (excludes dropped non-finite ones). */
    std::size_t total() const { return totalCount; }

    /** @return non-finite samples rejected by add(). */
    std::size_t dropped() const { return droppedCount; }

  private:
    double lo;
    double hi;
    std::vector<std::size_t> counts;
    std::size_t totalCount = 0;
    std::size_t droppedCount = 0;
};

/**
 * Mergeable fixed-bin quantile sketch.
 *
 * Unlike PercentileEstimator (which stores every sample — exact but
 * O(samples) memory), a QuantileSketch holds a fixed array of bin
 * counts over a configured value range: add() is O(1) and
 * allocation-free, memory is O(bins) regardless of sample count, and
 * two sketches with the same geometry merge by adding their counts —
 * the property obs::FleetAggregator exploits to combine per-SKU
 * distributions into a fleet-wide one without touching per-server
 * data twice.
 *
 * Bins are either linearly spaced over [lo, hi] or logarithmically
 * spaced (equal ratio per bin — the right shape for latencies spanning
 * decades). Finite out-of-range samples clamp into the end bins;
 * non-finite samples (NaN, +/-Inf) count into dropped() and are never
 * binned, mirroring Histogram::add. quantile() walks the cumulative
 * counts and interpolates linearly inside the selected bin, so the
 * answer is deterministic and within one bin width (one bin *ratio*
 * for log spacing) of the exact order statistic.
 */
class QuantileSketch
{
  public:
    /** An empty, zero-bin sketch; add() drops everything. */
    QuantileSketch() = default;

    /** Linearly spaced bins over [lo, hi]; requires hi > lo, bins > 0. */
    static QuantileSketch linear(double lo, double hi, std::size_t bins);

    /**
     * Logarithmically spaced bins over [lo, hi]; requires
     * 0 < lo < hi, bins > 0. Finite samples <= 0 clamp to the first
     * bin edge.
     */
    static QuantileSketch logarithmic(double lo, double hi,
                                      std::size_t bins);

    /**
     * Add one sample (non-finite values go to dropped()). O(1) and
     * allocation-free; defined inline because the fleet aggregator
     * calls it once per unit per channel in its reduction pass.
     */
    void
    add(double x)
    {
        // A zero-bin (default-constructed) sketch has no geometry to
        // bin into: count the sample as dropped instead of clamping an
        // index into an empty vector.
        if (!std::isfinite(x) || counts.empty()) {
            ++droppedCount;
            return;
        }
        // Clamp in transform space: log10 of a non-positive sample is
        // not finite, so pin those to the first edge before the cast.
        const double u = (logScale && x <= 0.0) ? tLo : transform(x);
        const double frac = (u - tLo) * invWidth;
        auto idx = static_cast<long>(frac);
        idx = std::clamp<long>(idx, 0,
                               static_cast<long>(counts.size()) - 1);
        ++counts[static_cast<std::size_t>(idx)];
        ++total;
    }

    /** Zero all counts; geometry is retained. Allocation-free. */
    void reset();

    /**
     * Add @p other's counts into this sketch. Merging a zero-bin
     * (default-constructed) sketch is a no-op beyond folding its
     * dropped count; merging *into* a zero-bin sketch adopts the
     * other's geometry wholesale (the natural accumulator idiom).
     * Any other geometry mismatch is a FatalError — never a silent
     * mis-binning.
     */
    void merge(const QuantileSketch &other);

    /** @return whether @p other has the same bin geometry. */
    bool compatible(const QuantileSketch &other) const;

    /**
     * @param p Quantile in [0, 100].
     * @return interpolated p-th percentile; 0 when empty.
     */
    double quantile(double p) const;

    /**
     * Quantile over the union of @p parts without materialising a
     * merged sketch (O(bins * parts), allocation-free) — how the
     * sliding tail-latency window polls p99 across its sub-window
     * buckets. All parts must share one geometry; empty vector or
     * all-empty parts return 0.
     */
    static double mergedQuantile(const std::vector<QuantileSketch> &parts,
                                 double p);

    /** @return samples binned so far (excludes dropped ones). */
    std::uint64_t count() const { return total; }

    /** @return non-finite samples rejected by add(). */
    std::uint64_t dropped() const { return droppedCount; }

    /** @return number of bins (0 for a default-constructed sketch). */
    std::size_t bins() const { return counts.size(); }

    /** @return count in bin @p i. */
    std::uint64_t binCount(std::size_t i) const { return counts[i]; }

    /** @return lower value edge of bin @p i. */
    double binLower(std::size_t i) const;

    /** @return upper value edge of bin @p i. */
    double binUpper(std::size_t i) const;

    /** @return whether bins are log-spaced. */
    bool logSpaced() const { return logScale; }

  private:
    QuantileSketch(bool log_scale, double lo, double hi,
                   std::size_t bins);

    /** Map a value into transform space (log10 for log sketches). */
    double transform(double x) const
    {
        return logScale ? std::log10(x) : x;
    }

    /** Map a transform-space coordinate back to value space. */
    double untransform(double u) const
    {
        return logScale ? std::pow(10.0, u) : u;
    }

    bool logScale = false;
    double tLo = 0.0;      ///< transform(lo)
    double tHi = 0.0;      ///< transform(hi)
    double invWidth = 0.0; ///< bins / (tHi - tLo)
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t droppedCount = 0;
};

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_STATS_HH
