/**
 * @file
 * Logging and error-reporting helpers for the ImmerSim library.
 *
 * Follows the gem5 split between user errors and internal invariant
 * violations:
 *  - fatal()  -> the condition is the caller's fault (bad configuration,
 *                out-of-range parameter); throws imsim::FatalError so that
 *                library users and tests can recover.
 *  - panic()  -> the condition indicates a bug inside the library; throws
 *                imsim::PanicError carrying the broken invariant.
 *  - warn() / inform() -> non-fatal notices on stderr/stdout.
 *
 * Verbosity is a single process-wide LogLevel threshold shared with the
 * structured obs::Logger front-end (src/obs/log.hh): a message prints
 * when its level is at or above the threshold. inform() sits at Info,
 * warn() at Warn; the historical setVerbose() switch maps onto the
 * threshold (true -> Info, false -> Warn) so existing callers keep
 * working while `--log-level`/`--verbose` (util::Cli) control the same
 * state.
 */

#ifndef IMSIM_UTIL_LOGGING_HH
#define IMSIM_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace imsim {

/** Base class for all errors raised by the library. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Raised when the *caller* supplied an invalid configuration or argument. */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &what_arg) : Error(what_arg) {}
};

/** Raised when an internal invariant of the library is violated (a bug). */
class PanicError : public Error
{
  public:
    explicit PanicError(const std::string &what_arg) : Error(what_arg) {}
};

namespace util {

/**
 * Message severities, least to most severe. The process-wide threshold
 * (setLogLevel) suppresses everything below it; Off silences even
 * warnings.
 */
enum class LogLevel
{
    Trace,
    Debug,
    Info,
    Warn,
    Off,
};

/** @return a printable lower-case level name ("trace", ..., "off"). */
std::string logLevelName(LogLevel level);

/**
 * Parse a level name as accepted by `--log-level`
 * (trace|debug|info|warn|off, case-sensitive); FatalError otherwise.
 */
LogLevel parseLogLevel(const std::string &name);

/** Set the process-wide logging threshold (thread-safe). */
void setLogLevel(LogLevel level);

/** @return the current process-wide logging threshold. */
LogLevel logLevel();

/** @return whether messages at @p level currently print. */
bool logEnabled(LogLevel level);

/**
 * Legacy verbosity switch, routed through the LogLevel threshold:
 * true -> Info (inform() prints), false -> Warn (the default).
 */
void setVerbose(bool verbose);

/** @return whether inform() currently prints (threshold <= Info). */
bool verbose();

/** Print an informational message (suppressed below Info level). */
void inform(const std::string &msg);

/** Print a warning to stderr (suppressed only by LogLevel::Off). */
void warn(const std::string &msg);

/** Report a user error: throws FatalError with the given message. */
[[noreturn]] void fatal(const std::string &msg);

/** Report a library bug: throws PanicError with the given message. */
[[noreturn]] void panic(const std::string &msg);

/**
 * Process-wide error hook, invoked with the formatted message right
 * before fatal()/panic() throw — the black-box flight recorder's
 * post-mortem trigger (obs::FlightRecorder::setPostMortemSink). Plain
 * function pointer + context, not std::function, so installing and
 * clearing it is trivially safe at any point of the process lifetime.
 */
using ErrorHook = void (*)(const char *what, void *ctx);

/**
 * Install @p hook (nullptr clears). The hook runs once per
 * fatal()/panic(), before the exception is thrown; exceptions it
 * raises are swallowed and re-entrant fatals from inside the hook do
 * not recurse, so a failing post-mortem dump cannot mask the original
 * error. Thread-safe.
 */
void setErrorHook(ErrorHook hook, void *ctx);

/**
 * Check a caller-supplied precondition.
 *
 * @param ok   Condition that must hold.
 * @param msg  Message for the FatalError raised when it does not.
 */
inline void
fatalIf(bool bad, const std::string &msg)
{
    if (bad)
        fatal(msg);
}

/**
 * Literal-message overload: the error string is only materialized when
 * the check actually fails, so passing checks cost no heap allocation.
 * Hot paths (the event kernel, the power minute loop) rely on this; the
 * std::string overload above keeps serving composed messages.
 */
inline void
fatalIf(bool bad, const char *msg)
{
    if (bad)
        fatal(std::string(msg));
}

/**
 * Check an internal invariant.
 *
 * @param ok   Condition that must hold.
 * @param msg  Message for the PanicError raised when it does not.
 */
inline void
panicIf(bool bad, const std::string &msg)
{
    if (bad)
        panic(msg);
}

/** Literal-message overload; see fatalIf(bool, const char*). */
inline void
panicIf(bool bad, const char *msg)
{
    if (bad)
        panic(std::string(msg));
}

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_LOGGING_HH
