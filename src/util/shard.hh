/**
 * @file
 * Intra-run sharding primitives: a deterministic partition of a
 * contiguous index range (ShardPlan) and a fork-join executor over it
 * (ShardRunner, backed by util::ThreadPool::parallelFor).
 *
 * Determinism contract (the FP-identity oracle the fleet layer tests):
 *
 *  - A plan's geometry is a pure function of the population it
 *    partitions (unit count, or group boundaries for aligned plans) —
 *    never of the thread count. Threads only *schedule* shards.
 *  - Shard bodies must write only their own [begin, end) slice of any
 *    shared columns (elementwise kernels qualify trivially).
 *  - Order-sensitive floating-point reductions are performed by the
 *    caller after run() returns, walking shards (or units) in fixed
 *    ascending order — never in completion order.
 *
 * Under those rules a sharded pass is bit-identical to the serial loop
 * for ANY shard count and ANY thread count, which is why
 * `--sim-threads 8` reproduces `--sim-threads 1` exactly.
 */

#ifndef IMSIM_UTIL_SHARD_HH
#define IMSIM_UTIL_SHARD_HH

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "util/thread_pool.hh"

namespace imsim {
namespace util {

/**
 * A partition of [0, units) into contiguous, ordered, non-empty
 * shards. Value type; cheap to copy and compare.
 */
class ShardPlan
{
  public:
    /** An empty plan over zero units (0 shards). */
    ShardPlan() = default;

    /**
     * Evenly split [0, units) into at most @p shards contiguous
     * ranges (fewer when units < shards; sizes differ by at most 1).
     * Deterministic: depends only on (units, shards).
     */
    static ShardPlan even(std::size_t units, std::size_t shards);

    /**
     * Split a grouped population on group boundaries: @p group_begin
     * holds the first unit index of each group plus a final
     * end-sentinel (the rack-offset convention: group g spans
     * [group_begin[g], group_begin[g+1])). Groups are packed greedily
     * toward units/shards per shard, and no group is ever split — the
     * property that keeps per-group FP sums (e.g. per-rack power
     * demand) bit-identical to the serial loop, because every group's
     * sum is still accumulated left-to-right by exactly one thread.
     */
    static ShardPlan alignedTo(const std::vector<std::size_t> &group_begin,
                               std::size_t shards);

    /** @return number of shards (0 for an empty plan). */
    std::size_t shards() const
    {
        return bounds.empty() ? 0 : bounds.size() - 1;
    }

    /** @return total units partitioned. */
    std::size_t units() const { return bounds.empty() ? 0 : bounds.back(); }

    /** @return first unit of shard @p s. */
    std::size_t begin(std::size_t s) const { return bounds[s]; }

    /** @return one-past-last unit of shard @p s. */
    std::size_t end(std::size_t s) const { return bounds[s + 1]; }

  private:
    /** shards()+1 ascending unit offsets; bounds[0] == 0. */
    std::vector<std::size_t> bounds;
};

/**
 * Fork-join executor for shard plans.
 *
 * threads == 1 runs every shard inline on the calling thread (no pool,
 * no synchronization — the serial path, bit-identical by construction).
 * threads == T > 1 owns a ThreadPool of T-1 workers; run() executes the
 * plan's shards on those workers plus the calling thread and returns
 * only when every shard is done (the conservative barrier the minute
 * loop places between physics phases).
 *
 * run() is allocation-free (ThreadPool::parallelFor path), so it is
 * safe inside 0-allocs/op minute loops. Not reentrant.
 */
class ShardRunner
{
  public:
    /**
     * @param threads Total compute threads run() may use, including
     *                the caller (0 is clamped to 1).
     */
    explicit ShardRunner(std::size_t threads);

    ShardRunner(const ShardRunner &) = delete;
    ShardRunner &operator=(const ShardRunner &) = delete;

    /** @return total compute threads (caller included). */
    std::size_t threads() const { return threadCount; }

    /**
     * Execute @p fn(shard, begin, end) for every shard of @p plan and
     * return when all have completed. Shard-to-thread assignment is
     * nondeterministic above 1 thread; results must not depend on it
     * (see the file-level contract).
     */
    template <typename F> void run(const ShardPlan &plan, F &&fn)
    {
        const std::size_t n = plan.shards();
        if (n == 0)
            return;
        if (!pool || n == 1) {
            for (std::size_t s = 0; s < n; ++s)
                fn(s, plan.begin(s), plan.end(s));
            return;
        }
        auto body = [&plan, &fn](std::size_t s) {
            fn(s, plan.begin(s), plan.end(s));
        };
        pool->forEachIndex(n, body);
    }

  private:
    std::size_t threadCount;
    std::unique_ptr<ThreadPool> pool; ///< threads-1 workers; null when 1.
};

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_SHARD_HH
