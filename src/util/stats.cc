#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace util {

void
OnlineStats::add(double x)
{
    ++n;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    minv = std::min(minv, x);
    maxv = std::max(maxv, x);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.mu - mu;
    const double nt = na + nb;
    mu += delta * nb / nt;
    m2 += other.m2 + delta * delta * na * nb / nt;
    n += other.n;
    minv = std::min(minv, other.minv);
    maxv = std::max(maxv, other.maxv);
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
PercentileEstimator::add(double x)
{
    samples.push_back(x);
    sorted = false;
}

void
PercentileEstimator::sort()
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
PercentileEstimator::percentile(double p)
{
    sort();
    return percentileSorted(samples, p);
}

double
PercentileEstimator::percentile(double p) const
{
    if (sorted)
        return percentileSorted(samples, p);
    std::vector<double> copy(samples);
    std::sort(copy.begin(), copy.end());
    return percentileSorted(copy, p);
}

double
PercentileEstimator::percentileSorted(
    const std::vector<double> &sorted_samples, double p) const
{
    fatalIf(p < 0.0 || p > 100.0, "percentile: p out of [0,100]");
    if (sorted_samples.empty())
        return 0.0;
    if (sorted_samples.size() == 1)
        return sorted_samples.front();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_samples.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(rank);
    const std::size_t hi_idx =
        std::min(lo_idx + 1, sorted_samples.size() - 1);
    const double frac = rank - static_cast<double>(lo_idx);
    return sorted_samples[lo_idx] * (1.0 - frac) +
           sorted_samples[hi_idx] * frac;
}

double
PercentileEstimator::mean() const
{
    if (samples.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples)
        s += x;
    return s / static_cast<double>(samples.size());
}

void
PercentileEstimator::merge(const PercentileEstimator &other)
{
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    sorted = samples.empty();
}

void
PercentileEstimator::reset()
{
    samples.clear();
    sorted = true;
}

SlidingTimeWindow::SlidingTimeWindow(Seconds window_s) : windowLen(window_s)
{
    fatalIf(window_s <= 0.0, "SlidingTimeWindow: window must be positive");
}

void
SlidingTimeWindow::record(Seconds t, double value)
{
    fatalIf(!segments.empty() && t < segments.back().first,
            "SlidingTimeWindow::record: time went backwards");
    segments.emplace_back(t, value);

    // Evict segments that ended before the retained window started. A
    // segment ends where the next one begins, so keep the last segment
    // that straddles the retention boundary. Eviction lives here (the
    // only mutating entry point) so that average() stays a pure read;
    // queries always run at now >= t, where these segments contribute
    // zero weight either way.
    const Seconds retain_start = t - windowLen;
    while (segments.size() > 1 && segments[1].first <= retain_start)
        segments.pop_front();
}

double
SlidingTimeWindow::average(Seconds now) const
{
    return average(now, windowLen);
}

double
SlidingTimeWindow::average(Seconds now, Seconds sub_window) const
{
    fatalIf(sub_window <= 0.0 || sub_window > windowLen + 1e-9,
            "SlidingTimeWindow::average: sub-window out of range");
    if (segments.empty())
        return 0.0;

    const Seconds start = now - sub_window;

    double weighted = 0.0;
    double span = 0.0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
        const Seconds seg_start = std::max(segments[i].first, start);
        const Seconds seg_end =
            (i + 1 < segments.size()) ? segments[i + 1].first : now;
        if (seg_end <= seg_start)
            continue;
        weighted += segments[i].second * (seg_end - seg_start);
        span += seg_end - seg_start;
    }
    if (span <= 0.0)
        return segments.back().second;
    return weighted / span;
}

double
SlidingTimeWindow::latest() const
{
    return segments.empty() ? 0.0 : segments.back().second;
}

void
SlidingTimeWindow::reset()
{
    segments.clear();
}

Histogram::Histogram(double lo_edge, double hi_edge, std::size_t nbins)
    : lo(lo_edge), hi(hi_edge), counts(nbins, 0)
{
    fatalIf(nbins == 0, "Histogram: need at least one bin");
    fatalIf(hi_edge <= lo_edge, "Histogram: hi must exceed lo");
}

void
Histogram::add(double x)
{
    // A NaN/Inf frac would make the float-to-long cast below undefined
    // *before* the clamp can help; divert non-finite samples instead.
    if (!std::isfinite(x)) {
        ++droppedCount;
        return;
    }
    const double frac = (x - lo) / (hi - lo);
    auto idx = static_cast<long>(frac * static_cast<double>(counts.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(idx)];
    ++totalCount;
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    fatalIf(i >= counts.size(), "Histogram::binCount: bin out of range");
    return counts[i];
}

double
Histogram::binCenter(std::size_t i) const
{
    fatalIf(i >= counts.size(), "Histogram::binCenter: bin out of range");
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * width;
}

} // namespace util
} // namespace imsim
