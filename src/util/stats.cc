#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace util {

void
OnlineStats::add(double x)
{
    ++n;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    minv = std::min(minv, x);
    maxv = std::max(maxv, x);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.mu - mu;
    const double nt = na + nb;
    mu += delta * nb / nt;
    m2 += other.m2 + delta * delta * na * nb / nt;
    n += other.n;
    minv = std::min(minv, other.minv);
    maxv = std::max(maxv, other.maxv);
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
PercentileEstimator::add(double x)
{
    samples.push_back(x);
    sorted = false;
}

void
PercentileEstimator::sort()
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
PercentileEstimator::percentile(double p)
{
    sort();
    return percentileSorted(samples, p);
}

double
PercentileEstimator::percentile(double p) const
{
    if (sorted)
        return percentileSorted(samples, p);
    std::vector<double> copy(samples);
    std::sort(copy.begin(), copy.end());
    return percentileSorted(copy, p);
}

double
PercentileEstimator::percentileSorted(
    const std::vector<double> &sorted_samples, double p) const
{
    fatalIf(p < 0.0 || p > 100.0, "percentile: p out of [0,100]");
    if (sorted_samples.empty())
        return 0.0;
    if (sorted_samples.size() == 1)
        return sorted_samples.front();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_samples.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(rank);
    const std::size_t hi_idx =
        std::min(lo_idx + 1, sorted_samples.size() - 1);
    const double frac = rank - static_cast<double>(lo_idx);
    return sorted_samples[lo_idx] * (1.0 - frac) +
           sorted_samples[hi_idx] * frac;
}

double
PercentileEstimator::mean() const
{
    if (samples.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples)
        s += x;
    return s / static_cast<double>(samples.size());
}

void
PercentileEstimator::merge(const PercentileEstimator &other)
{
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    sorted = samples.empty();
}

void
PercentileEstimator::reset()
{
    samples.clear();
    sorted = true;
}

SlidingTimeWindow::SlidingTimeWindow(Seconds window_s) : windowLen(window_s)
{
    fatalIf(window_s <= 0.0, "SlidingTimeWindow: window must be positive");
}

void
SlidingTimeWindow::record(Seconds t, double value)
{
    fatalIf(!segments.empty() && t < segments.back().first,
            "SlidingTimeWindow::record: time went backwards");
    segments.emplace_back(t, value);

    // Evict segments that ended before the retained window started. A
    // segment ends where the next one begins, so keep the last segment
    // that straddles the retention boundary. Eviction lives here (the
    // only mutating entry point) so that average() stays a pure read;
    // queries always run at now >= t, where these segments contribute
    // zero weight either way.
    const Seconds retain_start = t - windowLen;
    while (segments.size() > 1 && segments[1].first <= retain_start)
        segments.pop_front();
}

double
SlidingTimeWindow::average(Seconds now) const
{
    return average(now, windowLen);
}

double
SlidingTimeWindow::average(Seconds now, Seconds sub_window) const
{
    fatalIf(sub_window <= 0.0 || sub_window > windowLen + 1e-9,
            "SlidingTimeWindow::average: sub-window out of range");
    if (segments.empty())
        return 0.0;

    const Seconds start = now - sub_window;

    double weighted = 0.0;
    double span = 0.0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
        const Seconds seg_start = std::max(segments[i].first, start);
        const Seconds seg_end =
            (i + 1 < segments.size()) ? segments[i + 1].first : now;
        if (seg_end <= seg_start)
            continue;
        weighted += segments[i].second * (seg_end - seg_start);
        span += seg_end - seg_start;
    }
    if (span <= 0.0)
        return segments.back().second;
    return weighted / span;
}

double
SlidingTimeWindow::latest() const
{
    return segments.empty() ? 0.0 : segments.back().second;
}

void
SlidingTimeWindow::reset()
{
    segments.clear();
}

Histogram::Histogram(double lo_edge, double hi_edge, std::size_t nbins)
    : lo(lo_edge), hi(hi_edge), counts(nbins, 0)
{
    fatalIf(nbins == 0, "Histogram: need at least one bin");
    fatalIf(hi_edge <= lo_edge, "Histogram: hi must exceed lo");
}

void
Histogram::add(double x)
{
    // A NaN/Inf frac would make the float-to-long cast below undefined
    // *before* the clamp can help; divert non-finite samples instead.
    if (!std::isfinite(x)) {
        ++droppedCount;
        return;
    }
    const double frac = (x - lo) / (hi - lo);
    auto idx = static_cast<long>(frac * static_cast<double>(counts.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(idx)];
    ++totalCount;
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    fatalIf(i >= counts.size(), "Histogram::binCount: bin out of range");
    return counts[i];
}

double
Histogram::binCenter(std::size_t i) const
{
    fatalIf(i >= counts.size(), "Histogram::binCenter: bin out of range");
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * width;
}

QuantileSketch::QuantileSketch(bool log_scale, double lo, double hi,
                               std::size_t nbins)
    : logScale(log_scale), counts(nbins, 0)
{
    fatalIf(nbins == 0, "QuantileSketch: need at least one bin");
    fatalIf(hi <= lo, "QuantileSketch: hi must exceed lo");
    fatalIf(log_scale && lo <= 0.0,
            "QuantileSketch: log spacing needs lo > 0");
    tLo = transform(lo);
    tHi = transform(hi);
    invWidth = static_cast<double>(nbins) / (tHi - tLo);
}

QuantileSketch
QuantileSketch::linear(double lo, double hi, std::size_t bins)
{
    return QuantileSketch(false, lo, hi, bins);
}

QuantileSketch
QuantileSketch::logarithmic(double lo, double hi, std::size_t bins)
{
    return QuantileSketch(true, lo, hi, bins);
}

void
QuantileSketch::reset()
{
    std::fill(counts.begin(), counts.end(), std::uint64_t{0});
    total = 0;
    droppedCount = 0;
}

bool
QuantileSketch::compatible(const QuantileSketch &other) const
{
    return logScale == other.logScale && tLo == other.tLo &&
           tHi == other.tHi && counts.size() == other.counts.size();
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    // Empty-sketch edge cases first (a default-constructed sketch has
    // no geometry, so compatible() would reject it): merging one in is
    // a no-op beyond its dropped tally, and merging into one adopts
    // the other's geometry — both accumulator idioms, neither an
    // error. Everything else must match exactly.
    if (other.counts.empty()) {
        droppedCount += other.droppedCount;
        return;
    }
    if (counts.empty()) {
        const std::uint64_t dropped_here = droppedCount;
        *this = other;
        droppedCount += dropped_here;
        return;
    }
    fatalIf(!compatible(other),
            "QuantileSketch::merge: incompatible bin geometry");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
    droppedCount += other.droppedCount;
}

double
QuantileSketch::binLower(std::size_t i) const
{
    fatalIf(i >= counts.size(), "QuantileSketch::binLower: out of range");
    const double width = (tHi - tLo) / static_cast<double>(counts.size());
    return untransform(tLo + static_cast<double>(i) * width);
}

double
QuantileSketch::binUpper(std::size_t i) const
{
    fatalIf(i >= counts.size(), "QuantileSketch::binUpper: out of range");
    const double width = (tHi - tLo) / static_cast<double>(counts.size());
    return untransform(tLo + static_cast<double>(i + 1) * width);
}

namespace {

/**
 * Shared cumulative walk for quantile()/mergedQuantile(): find the bin
 * where the cumulative count crosses the target rank and interpolate
 * inside it in transform space. @p bin_count returns the count of bin
 * i summed over whatever sketches participate.
 */
template <typename BinCountFn>
double
sketchQuantileWalk(const QuantileSketch &geometry, std::uint64_t total,
                   double p, BinCountFn bin_count)
{
    fatalIf(p < 0.0 || p > 100.0, "QuantileSketch: p out of [0,100]");
    if (total == 0)
        return 0.0;
    const double target = p / 100.0 * static_cast<double>(total);
    double cum = 0.0;
    const std::size_t nbins = geometry.bins();
    for (std::size_t i = 0; i < nbins; ++i) {
        const double c = static_cast<double>(bin_count(i));
        if (c > 0.0 && cum + c >= target) {
            const double frac =
                std::clamp((target - cum) / c, 0.0, 1.0);
            const double lo = geometry.binLower(i);
            const double hi = geometry.binUpper(i);
            if (geometry.logSpaced()) {
                // Interpolate in log space (equal-ratio bins).
                return lo * std::pow(hi / lo, frac);
            }
            return lo + frac * (hi - lo);
        }
        cum += c;
    }
    return geometry.binUpper(nbins - 1);
}

} // namespace

double
QuantileSketch::quantile(double p) const
{
    if (counts.empty())
        return 0.0;
    return sketchQuantileWalk(*this, total, p,
                              [this](std::size_t i) { return counts[i]; });
}

double
QuantileSketch::mergedQuantile(const std::vector<QuantileSketch> &parts,
                               double p)
{
    if (parts.empty() || parts.front().counts.empty())
        return 0.0;
    const QuantileSketch &geometry = parts.front();
    std::uint64_t total = 0;
    for (const QuantileSketch &part : parts) {
        fatalIf(!geometry.compatible(part),
                "QuantileSketch::mergedQuantile: incompatible geometry");
        total += part.total;
    }
    return sketchQuantileWalk(
        geometry, total, p, [&parts](std::size_t i) {
            std::uint64_t c = 0;
            for (const QuantileSketch &part : parts)
                c += part.counts[i];
            return c;
        });
}

} // namespace util
} // namespace imsim
