/**
 * @file
 * Console table and CSV writers used by the bench harnesses to print
 * paper-style tables and figure series.
 */

#ifndef IMSIM_UTIL_TABLE_HH
#define IMSIM_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace imsim {
namespace util {

/**
 * Aligned console table.
 *
 * Usage:
 * @code
 *   TableWriter t({"Config", "P95 [ms]", "Power [W]"});
 *   t.addRow({"B2", "12.4", "130"});
 *   t.print(std::cout);
 * @endcode
 */
class TableWriter
{
  public:
    /** @param headers Column headers; fixes the column count. */
    explicit TableWriter(std::vector<std::string> headers);

    /** Append one row; must match the header column count. */
    void addRow(std::vector<std::string> row);

    /** Render the table with aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Render the table as CSV to @p os. */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows. */
    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

/** Format a double with @p decimals decimal places. */
std::string fmt(double value, int decimals = 2);

/** Format a ratio as a signed percentage string, e.g. "+17.0%". */
std::string fmtPercent(double ratio, int decimals = 1);

/** Print a section heading (used by bench binaries between sub-tables). */
void printHeading(std::ostream &os, const std::string &title);

} // namespace util
} // namespace imsim

#endif // IMSIM_UTIL_TABLE_HH
