#include "tco/tco.hh"

#include <cmath>

#include "util/logging.hh"

namespace imsim {
namespace tco {

std::string
scenarioName(Scenario scenario)
{
    switch (scenario) {
      case Scenario::AirCooled:
        return "Air-cooled";
      case Scenario::NonOverclockable2Pic:
        return "Non-overclockable 2PIC";
      case Scenario::Overclockable2Pic:
        return "Overclockable 2PIC";
    }
    util::panic("scenarioName: unhandled scenario");
}

TcoModel::TcoModel(TcoInputs inputs) : in(inputs)
{
    const double total = in.serverFraction + in.networkFraction +
                         in.constructionFraction + in.energyFraction +
                         in.operationsFraction + in.designTaxesFraction;
    util::fatalIf(std::abs(total - 1.0) > 1e-6,
                  "TcoModel: baseline cost fractions must sum to 1");
    util::fatalIf(in.airPue <= 1.0 || in.immersionPue <= 1.0,
                  "TcoModel: PUEs must exceed 1");
    util::fatalIf(in.immersionPue >= in.airPue,
                  "TcoModel: immersion PUE must beat air PUE");
}

TcoResult
TcoModel::evaluate(Scenario scenario) const
{
    TcoResult out;
    out.scenario = scenario;

    if (scenario == Scenario::AirCooled) {
        out.coreRatio = 1.0;
        out.rows = {{"Servers", 0.0},          {"Network", 0.0},
                    {"DC construction", 0.0},  {"Energy", 0.0},
                    {"Operations", 0.0},       {"Design, taxes, fees", 0.0},
                    {"Immersion", 0.0}};
        out.costPerCoreDelta = 0.0;
        return out;
    }

    // The same facility power envelope feeds more IT under the lower
    // PUE, so the fleet (and core count) grows by airPue/immersionPue.
    const double r = in.airPue / in.immersionPue;
    out.coreRatio = r;

    // Servers: per-core server cost tracks the unit cost (core count per
    // server is unchanged). Overclockable fleets add power-delivery
    // upgrades that negate the unit-cost saving (Sec. IV "TCO").
    double servers =
        in.serverFraction * (in.serverUnitCostRatio - 1.0);
    if (scenario == Scenario::Overclockable2Pic)
        servers += in.powerDeliveryUpgradeFraction;

    // Network: total network cost scales superlinearly with the server
    // count (additional aggregation tiers), so per-core cost rises.
    const double network =
        in.networkFraction *
        (std::pow(r, in.networkScaleExponent) / r - 1.0);

    // Construction, operations, design/taxes: fixed per facility, so the
    // extra cores dilute them.
    const double dilution = 1.0 / r - 1.0;
    const double construction = in.constructionFraction * dilution;
    const double operations = in.operationsFraction * dilution;
    const double design_taxes = in.designTaxesFraction * dilution;

    // Energy: per-core energy cost scales with (server power) x
    // (average PUE). Immersion removes fans and leakage; overclocking
    // adds its duty-weighted average power back, which lands the energy
    // bill at the air-cooled baseline (Table VI's blank Energy cell).
    Watts server_power = in.serverPowerAir - in.immersionServerSavings;
    if (scenario == Scenario::Overclockable2Pic)
        server_power += in.overclockExtraPower * in.overclockAverageDuty;
    const double energy =
        in.energyFraction * ((server_power / in.serverPowerAir) *
                                 (in.immersionPueAvg / in.airPueAvg) -
                             1.0);

    // Immersion: tanks and fluid.
    const double immersion = in.immersionCostFraction;

    out.rows = {{"Servers", servers},
                {"Network", network},
                {"DC construction", construction},
                {"Energy", energy},
                {"Operations", operations},
                {"Design, taxes, fees", design_taxes},
                {"Immersion", immersion}};
    out.costPerCoreDelta = 0.0;
    for (const auto &row : out.rows)
        out.costPerCoreDelta += row.deltaOfBaselineTotal;
    return out;
}

double
TcoModel::costPerVcoreRelative(Scenario scenario, double oversub,
                               double effectiveness) const
{
    util::fatalIf(oversub < 0.0, "costPerVcoreRelative: negative oversub");
    util::fatalIf(effectiveness < 0.0 || effectiveness > 1.0,
                  "costPerVcoreRelative: effectiveness out of [0,1]");
    const TcoResult result = evaluate(scenario);
    const double cost_per_core = 1.0 + result.costPerCoreDelta;
    const double sellable_vcores = 1.0 + oversub * effectiveness;
    return cost_per_core / sellable_vcores;
}

} // namespace tco
} // namespace imsim
