/**
 * @file
 * Total-cost-of-ownership model (Sec. IV "TCO", Table VI; Sec. VI-C).
 *
 * The model reproduces the paper's accounting structure: a fixed-power
 * datacenter whose categories (servers, network, construction, energy,
 * operations, design/taxes/fees, immersion) are compared per *physical
 * core* against a direct-evaporative air-cooled baseline. 2PIC's lower
 * PUE reclaims facility power for ~16 % more servers, diluting the fixed
 * costs per core; immersion adds tank/fluid cost; overclockability adds
 * power-delivery upgrades and energy.
 *
 * Each Table VI row is the change in that category's per-core cost,
 * expressed as a percentage of the baseline's *total* per-core cost, so
 * the rows sum to the bottom-line delta — exactly how the paper's table
 * adds up (-1+1-2-2-2-2+1 = -7).
 */

#ifndef IMSIM_TCO_TCO_HH
#define IMSIM_TCO_TCO_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace imsim {
namespace tco {

/** Datacenter scenario being costed. */
enum class Scenario
{
    AirCooled,           ///< Direct-evaporative baseline.
    NonOverclockable2Pic,///< 2PIC, stock server operating points.
    Overclockable2Pic,   ///< 2PIC with +200 W/server overclock headroom.
};

/** @return a printable scenario name. */
std::string scenarioName(Scenario scenario);

/** One Table VI row: a cost category's per-core delta. */
struct CategoryDelta
{
    std::string category;
    double deltaOfBaselineTotal; ///< e.g. -0.02 = "-2 %".
};

/** Cost-model inputs; defaults calibrated to the paper's structure. */
struct TcoInputs
{
    /** Baseline cost structure (fractions of total TCO; sum to 1).
     *  Follows the warehouse-scale cost splits of the paper's refs
     *  [12], [17], [37]. */
    double serverFraction = 0.37;
    double networkFraction = 0.08;
    double constructionFraction = 0.14;
    double energyFraction = 0.135;
    double operationsFraction = 0.14;
    double designTaxesFraction = 0.135;

    /** Facility PUEs (Table I peak values). */
    double airPue = 1.20;
    double immersionPue = 1.03;
    /** Average-PUE ratio used for the energy bill. */
    double airPueAvg = 1.12;
    double immersionPueAvg = 1.05;

    /** Server power and the immersion savings (Sec. IV). */
    Watts serverPowerAir = 700.0;
    Watts immersionServerSavings = 64.0; ///< Fans 42 W + 2 x 11 W static.
    Watts overclockExtraPower = 200.0;   ///< Peak +100 W per socket.
    /** Fraction of time the fleet actually overclocks: the peak +200 W
     *  sizes the power-delivery upgrade, but the energy bill sees the
     *  duty-weighted average. */
    double overclockAverageDuty = 0.55;

    /** Server-unit cost change under immersion (fans, sheet metal). */
    double serverUnitCostRatio = 0.973;
    /** Network cost scale exponent in server count (> 1: more
     *  aggregation tiers at larger scale). */
    double networkScaleExponent = 1.77;
    /** Tank + fluid cost per core as a fraction of baseline total/core. */
    double immersionCostFraction = 0.01;
    /** Power-delivery upgrade (overclockable) per core, same basis. */
    double powerDeliveryUpgradeFraction = 0.01;
};

/** Result for one scenario. */
struct TcoResult
{
    Scenario scenario;
    double coreRatio;     ///< Physical cores vs the air baseline.
    std::vector<CategoryDelta> rows; ///< Table VI rows.
    double costPerCoreDelta; ///< Bottom line (sum of rows).
};

/**
 * The TCO model.
 */
class TcoModel
{
  public:
    explicit TcoModel(TcoInputs inputs = {});

    /** Evaluate one scenario against the air-cooled baseline. */
    TcoResult evaluate(Scenario scenario) const;

    /**
     * Cost per *virtual* core with CPU oversubscription (Sec. VI-C),
     * relative to the air-cooled baseline at 1:1 vcore:pcore.
     *
     * @param scenario       Datacenter scenario.
     * @param oversub        Oversubscription ratio - 1 (0.10 = 10 %).
     * @param effectiveness  Fraction of the oversold cores that are
     *                       actually sellable: 1.0 when overclocking
     *                       compensates the interference, lower when it
     *                       cannot (non-overclockable fleets).
     * @return relative cost per vcore (1.0 = baseline).
     */
    double costPerVcoreRelative(Scenario scenario, double oversub,
                                double effectiveness = 1.0) const;

    /** @return the inputs. */
    const TcoInputs &inputs() const { return in; }

  private:
    TcoInputs in;
};

} // namespace tco
} // namespace imsim

#endif // IMSIM_TCO_TCO_HH
