/**
 * @file
 * Quickstart: immerse an overclockable server in a 2PIC tank, inspect
 * its thermals and power, check what overclocking does to its expected
 * lifetime, and ask the control plane for a safe overclock.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/controller.hh"
#include "hw/configs.hh"
#include "hw/cpu.hh"
#include "power/capping.hh"
#include "reliability/lifetime.hh"
#include "reliability/stability.hh"
#include "thermal/tank.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    // 1. Build the paper's small tank #1: two slots of HFE-7000 with
    // boiling-enhancement coating on the CPU heat spreader.
    thermal::ImmersionTank tank = thermal::makeSmallTank1();
    std::cout << "Tank: " << tank.name() << ", fluid "
              << tank.coolingSystem().fluid().name << " boiling at "
              << tank.fluidTemperature() << " C\n";

    // 2. Drop in the overclockable Xeon W-3175X and sweep the Table VII
    // configurations.
    hw::CpuModel cpu = hw::CpuModel::xeonW3175x();
    const auto &cooling = tank.coolingSystem();

    util::TableWriter table({"Config", "Core GHz", "Package W", "Tj C",
                             "Margin mV"});
    for (const char *name : {"B2", "OC1", "OC3"}) {
        cpu.applyConfig(hw::cpuConfig(name));
        const auto breakdown = cpu.power(cooling, 1.0);
        table.addRow({name, util::fmt(cpu.clocks().core, 1),
                      util::fmt(breakdown.total, 0),
                      util::fmt(breakdown.tj, 1),
                      util::fmt(cpu.voltageMarginMv(), 0)});
        tank.setHeatLoad(0, breakdown.total);
    }
    table.print(std::cout);
    std::cout << "Condenser headroom at OC3: " << tank.headroom()
              << " W\n\n";

    // 3. What does overclocking cost in lifetime?
    reliability::LifetimeModel lifetime;
    cpu.applyConfig(hw::cpuConfig("B2"));
    const Celsius tj_nominal = cpu.power(cooling, 1.0).tj;
    cpu.applyConfig(hw::cpuConfig("OC1"));
    const Celsius tj_oc = cpu.power(cooling, 1.0).tj;
    reliability::StressCondition nominal{0.90, tj_nominal, 34.0, 1.0, 1.0};
    reliability::StressCondition overclocked{cpu.coreVoltage(), tj_oc,
                                             34.0, 4.1 / 3.4, 1.0};
    std::cout << "Expected lifetime at B2:  "
              << util::fmt(lifetime.lifetime(nominal), 1) << " years\n"
              << "Expected lifetime at OC1: "
              << util::fmt(lifetime.lifetime(overclocked), 1)
              << " years (air-cooled nominal is ~5)\n\n";

    // 4. Ask the control plane for a safe overclock: it checks the wear
    // budget, the stability watchdog, and the power budget.
    reliability::WearTracker tracker(lifetime, 5.0);
    reliability::ErrorRateWatchdog watchdog;
    power::RaplCapper budget(450.0);
    core::OverclockController controller(cpu, cooling, tracker, watchdog,
                                         budget);
    const auto decision = controller.request(4.1, /*duration_h=*/24.0,
                                             /*activity=*/0.7,
                                             /*now_s=*/0.0);
    std::cout << "Overclock request 4.1 GHz for 24 h: "
              << (decision.approved ? "APPROVED" : "DENIED") << " ("
              << decision.reason << "), granted "
              << util::fmt(decision.grantedCore, 1) << " GHz\n";
    std::cout << "Lifetime-neutral green band tops out at "
              << util::fmt(controller.greenBandCeiling(), 1) << " GHz ("
              << util::fmtPercent(controller.greenBandCeiling() / 3.4 -
                                  1.0)
              << " over all-core turbo)\n";
    return 0;
}
