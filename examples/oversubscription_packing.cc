/**
 * @file
 * Dense VM packing via overclocking-compensated oversubscription: plan
 * the right overclock for a workload mix, pack a fleet 10 % denser,
 * verify the latency impact on the hypervisor simulation, and price the
 * result with the TCO model (the full Sec. V "dense packing" use-case).
 *
 * Run: ./build/examples/oversubscription_packing
 */

#include <iostream>

#include "cluster/packing.hh"
#include "core/bottleneck.hh"
#include "core/usecases.hh"
#include "tco/tco.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "vm/hypervisor.hh"
#include "workload/app.hh"

using namespace imsim;

int
main()
{
    // 1. Which overclock compensates a 44-on-40 vcore oversubscription
    // for a SPECJBB-dominated mix?
    const auto plan =
        core::planOversubscription(workload::app("SPECJBB"), 44, 40);
    std::cout << "Planning 44 vcores on 40 pcores ("
              << util::fmtPercent(plan.oversubRatio - 1.0)
              << " oversubscription): config " << plan.config->name
              << " provides " << util::fmtPercent(plan.compensatedSpeedup - 1.0)
              << " speedup -> " << (plan.feasible ? "feasible" : "infeasible")
              << "\n\n";

    // 2. Pack 300 random VMs onto 24 hosts at 1.0 vs 1.1 density.
    util::Rng rng(11);
    std::vector<vm::VmSpec> vms;
    for (int i = 0; i < 300; ++i) {
        vm::VmSpec spec;
        spec.id = static_cast<vm::VmId>(i);
        spec.vcores = static_cast<int>(rng.uniformInt(1, 4)) * 2;
        spec.memoryGb = spec.vcores * 4.0;
        vms.push_back(spec);
    }
    util::TableWriter packing({"Oversubscription", "VMs placed",
                               "Hosts used", "Density"});
    for (double ratio : {1.0, 1.1}) {
        cluster::BinPacker packer({40, 512.0}, 24, ratio);
        const std::size_t placed = packer.placeAll(vms);
        const auto stats = packer.stats();
        packing.addRow({util::fmtPercent(ratio - 1.0),
                        util::fmt(placed, 0),
                        util::fmt(stats.hostsUsed, 0),
                        util::fmt(stats.density, 2)});
    }
    packing.print(std::cout);

    // 3. Verify on the hypervisor simulation that OC3 keeps a
    // latency-sensitive tenant whole under the denser packing.
    const auto &sql = workload::app("SQL");
    auto run = [&](int pcores, const hw::CpuConfig &config) {
        vm::HypervisorSim sim(pcores,
                              {config.core, config.llc, config.memory},
                              util::Rng(5));
        for (int i = 0; i < 4; ++i)
            sim.addLatencyVm(sql, 520.0);
        sim.run(20.0);
        sim.resetStats();
        sim.run(90.0);
        double total = 0.0;
        for (const auto &res : sim.results())
            total += res.p95Latency;
        return total / 4.0 * 1000.0;
    };
    util::TableWriter latency({"Setting", "Avg P95 [ms]"});
    latency.addRow({"16 pcores, B2 (no oversubscription)",
                    util::fmt(run(16, hw::cpuConfig("B2")), 2)});
    latency.addRow({"12 pcores, B2 (oversubscribed)",
                    util::fmt(run(12, hw::cpuConfig("B2")), 2)});
    latency.addRow({"12 pcores, OC3 (compensated)",
                    util::fmt(run(12, hw::cpuConfig("OC3")), 2)});
    latency.print(std::cout);

    // 4. Price it.
    const tco::TcoModel tco_model;
    std::cout << "\nCost per virtual core vs the air-cooled baseline at"
                 " 10% oversubscription:\n  overclockable 2PIC: "
              << util::fmtPercent(
                     tco_model.costPerVcoreRelative(
                         tco::Scenario::Overclockable2Pic, 0.10) -
                     1.0)
              << "  (paper: -13%)\n";
    return 0;
}
