/**
 * @file
 * Overclocking-enhanced auto-scaling on a diurnal load: a Client-Server
 * deployment rides a morning ramp, a lunchtime dip, and an evening peak.
 * Compare the baseline auto-scaler against OC-A ("scale up, then out").
 *
 * Run: ./build/examples/autoscaling_demo
 */

#include <iostream>
#include <vector>

#include "autoscale/autoscaler.hh"
#include "sim/simulation.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "workload/queueing.hh"

using namespace imsim;

namespace {

struct Outcome
{
    double p95Ms;
    double meanMs;
    double vmHours;
    std::size_t maxVms;
    std::size_t scaleOuts;
};

Outcome
runDay(autoscale::Policy policy)
{
    sim::Simulation sim;
    workload::QueueingCluster::Params params;
    params.serviceMean = 2.6e-3; // Client-Server at B2.
    params.serviceCv = 1.5;
    params.kappa = 0.9;
    params.threadsPerServer = 4;
    workload::QueueingCluster cluster(sim, util::Rng(7), params);
    cluster.addServer(3.4);

    autoscale::AutoScalerConfig config;
    config.policy = policy;
    autoscale::AutoScaler scaler(sim, cluster, config);
    scaler.start();

    // A compressed "day": each hour becomes 2 simulated minutes.
    const std::vector<double> hourly_qps{
        300,  250,  200,  200,  250,  400,  // night
        800,  1400, 2000, 2300, 2400, 2200, // morning ramp
        1800, 1600, 1900, 2200, 2500, 2800, // afternoon
        3200, 3400, 2800, 1800, 1000, 500,  // evening peak and wind-down
    };
    const Seconds step = 120.0;
    for (std::size_t hour = 0; hour < hourly_qps.size(); ++hour) {
        const double qps = hourly_qps[hour];
        if (hour == 0)
            cluster.setArrivalRate(qps);
        else
            sim.at(step * static_cast<double>(hour),
                   [&cluster, qps] { cluster.setArrivalRate(qps); });
    }
    sim.runUntil(step * static_cast<double>(hourly_qps.size()));

    Outcome outcome{};
    outcome.p95Ms = cluster.latencies().p95() * 1000.0;
    outcome.meanMs = cluster.latencies().mean() * 1000.0;
    outcome.vmHours = cluster.vmHours();
    outcome.maxVms = cluster.maxServers();
    outcome.scaleOuts = scaler.scaleOuts();
    return outcome;
}

} // namespace

int
main()
{
    std::cout << "Auto-scaling a Client-Server deployment through a"
                 " compressed diurnal day\n(24 steps of 2 minutes; load"
                 " 200 -> 3400 QPS).\n";

    const Outcome baseline = runDay(autoscale::Policy::Baseline);
    const Outcome oce = runDay(autoscale::Policy::OcE);
    const Outcome oca = runDay(autoscale::Policy::OcA);

    util::TableWriter table({"Policy", "P95 [ms]", "Mean [ms]",
                             "VM-hours", "Max VMs", "Scale-outs"});
    const auto add = [&](const char *name, const Outcome &outcome) {
        table.addRow({name, util::fmt(outcome.p95Ms, 2),
                      util::fmt(outcome.meanMs, 2),
                      util::fmt(outcome.vmHours, 2),
                      util::fmt(outcome.maxVms, 0),
                      util::fmt(outcome.scaleOuts, 0)});
    };
    add("Baseline", baseline);
    add("OC-E (overclock while scaling out)", oce);
    add("OC-A (scale up, then out)", oca);
    table.print(std::cout);

    std::cout << "\nOC-A absorbs the ramps by raising frequency within"
                 " microseconds instead of\nwaiting 60 s for new VMs:"
                 " its tail latency improves "
              << util::fmtPercent(1.0 - oca.p95Ms / baseline.p95Ms)
              << " while using "
              << util::fmtPercent(1.0 - oca.vmHours / baseline.vmHours)
              << " fewer VM-hours.\n";
    return 0;
}
