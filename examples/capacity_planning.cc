/**
 * @file
 * Fleet planning with overclocking in the toolbox: replace static
 * failover buffers with virtual (overclocked) ones, bridge a capacity
 * crisis, and keep the fleet inside its power budget with priority-aware
 * capping — the Sec. V buffer-reduction and crisis-mitigation use-cases
 * end to end.
 *
 * Run: ./build/examples/capacity_planning
 */

#include <iostream>

#include "cluster/buffers.hh"
#include "cluster/capacity.hh"
#include "power/capping.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    // 1. Buffer reduction: a 500-server cluster with a 10% failover
    // reserve, over one simulated year.
    std::cout << "== Buffer reduction ==\n";
    cluster::BufferSimulator buffers(500, 10, 0.10);
    util::Rng rng(3);
    const auto stat = buffers.simulate(cluster::BufferStrategy::Static,
                                       rng, 24.0 * 365.0);
    const auto virt = buffers.simulate(cluster::BufferStrategy::Virtual,
                                       rng, 24.0 * 365.0);
    util::TableWriter buffer_table({"Strategy", "VMs sold", "Failures",
                                    "Absorbed", "OC server-hours"});
    buffer_table.addRow({"Static reserve", util::fmt(stat.vmsHosted, 0),
                         util::fmt(stat.failures, 0),
                         util::fmt(stat.recovered, 0), "0"});
    buffer_table.addRow({"Virtual (overclock)", util::fmt(virt.vmsHosted, 0),
                         util::fmt(virt.failures, 0),
                         util::fmt(virt.recovered, 0),
                         util::fmt(virt.overclockHours, 0)});
    buffer_table.print(std::cout);

    // 2. Capacity crisis: demand grows 4%/week; the next two supply
    // deliveries slip by 6 weeks.
    std::cout << "\n== Capacity crisis ==\n";
    std::vector<double> demand;
    std::vector<double> supply;
    cluster::CapacityPlanner::makeCrisisScenario(
        20, 5000.0, 0.04, 800.0, 3, 6, demand, supply);
    cluster::CapacityPlanner planner(0.2);
    const auto points = planner.evaluate(demand, supply);
    const auto summary = planner.summarise(points);
    std::cout << "Peak shortfall without overclocking: "
              << util::fmt(summary.peakGapVms, 0) << " VMs\n"
              << "Denied demand: " << util::fmt(summary.deniedVmPeriodsNominal, 0)
              << " VM-weeks nominal vs "
              << util::fmt(summary.deniedVmPeriodsOverclock, 0)
              << " VM-weeks with +20% overclock headroom\n";

    // 3. Power safety: when the overclocked fleet approaches the feed
    // limit, priority-aware capping sheds batch first (Sec. IV).
    std::cout << "\n== Priority-aware capping under overclocking ==\n";
    power::PowerBudget feed(100000.0, 1.3); // 100 kW feed, 30% oversub.
    std::vector<power::PowerConsumer> racks{
        {"batch rack A", 40000.0, 20000.0, 1},
        {"batch rack B", 38000.0, 19000.0, 1},
        {"latency rack C (overclocked)", 45000.0, 22000.0, 2},
    };
    std::cout << "Demand " << (40000.0 + 38000.0 + 45000.0) / 1000.0
              << " kW against a 100 kW feed -> "
              << (feed.breached(racks) ? "capping engaged" : "no capping")
              << "\n";
    util::TableWriter caps({"Rack", "Demand [kW]", "Granted [kW]",
                            "Capped"});
    for (const auto &alloc : feed.allocate(racks)) {
        for (const auto &rack : racks) {
            if (rack.name != alloc.name)
                continue;
            caps.addRow({alloc.name, util::fmt(rack.demand / 1000.0, 1),
                         util::fmt(alloc.granted / 1000.0, 1),
                         alloc.capped ? "yes" : "no"});
        }
    }
    caps.print(std::cout);
    std::cout << "The overclocked latency rack keeps its full allocation;"
                 " the batch racks\nabsorb the cut — overclocking and"
                 " priority-aware capping compose.\n";
    return 0;
}
