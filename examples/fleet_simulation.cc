/**
 * @file
 * Fleet-scale what-if: run a power-oversubscribed datacenter for two
 * weeks under each overclocking policy, then follow one server through
 * its five-year life with the wear-credit scheduler — the operator's
 * view of "can we overclock this fleet, and for how long?"
 *
 * The policy bake-off and a 16-replication Monte-Carlo confidence run
 * fan across the experiment engine (--jobs N, default hardware
 * concurrency); --report FILE writes the Monte-Carlo sweep as JSON.
 * Replications draw their seeds via Rng::split, so the numbers are
 * identical for any --jobs value.
 *
 * Run: ./build/examples/fleet_simulation [--jobs N] [--report out.json]
 *      [--telemetry out.csv] [--blackbox out.json]
 */

#include <iostream>
#include <memory>

#include "cluster/datacenter.hh"
#include "core/credit.hh"
#include "exp/sweep.hh"
#include "obs/obs.hh"
#include "reliability/lifetime.hh"
#include "thermal/network.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace imsim;

int
main(int argc, char **argv)
{
    const util::Cli cli(argc, argv);
    obs::maybeEnableProfiler(cli);
    const auto progress = exp::progressFromCli(cli, "fleet_simulation");

    // 1. Policy bake-off on a 40 kW feed, one policy per worker.
    std::cout << "== Two-week policy bake-off (40 kW feed, 30%"
                 " oversubscribed) ==\n";
    cluster::RackConfig batch;
    batch.priority = 1;
    cluster::RackConfig latency;
    latency.priority = 2;
    latency.overclockDemand = 0.7;
    cluster::DatacenterPowerSim dc({batch, batch, latency}, 40000.0, 1.3,
                                   1.2);
    // --sim-threads N shards each run's minute loop; the tables and
    // telemetry are bit-identical for any value (see setSimThreads).
    dc.setSimThreads(cli.simThreads());

    util::TableWriter table({"Policy", "Speedup delivered",
                             "OC wasted", "Capping time"});
    const std::vector<std::pair<const char *, cluster::OverclockPolicy>>
        policies{
            {"Never", cluster::OverclockPolicy::Never},
            {"Always", cluster::OverclockPolicy::Always},
            {"Power-aware", cluster::OverclockPolicy::PowerAware},
        };
    exp::SweepRunner runner({cli.jobs(), 99, progress.get()});
    const obs::RunManifest manifest =
        obs::RunManifest::capture(cli, runner.seed(), runner.jobs());
    // With --telemetry each policy run records its per-minute feed
    // series into its own slot; merged in point order below, so the
    // CSV is identical for any --jobs value.
    const bool capture_obs = obs::telemetryRequested(cli);
    std::vector<obs::TimeSeries> feed_series(
        capture_obs ? policies.size() : 0);
    // --blackbox FILE: a flight-recorder bundle per policy, ticked by
    // the minute loop. Each point then runs its own identically
    // configured sim so parallel jobs never share observer state;
    // observers are pure reads, so the tables stay byte-identical.
    std::vector<std::unique_ptr<obs::FleetBlackbox>> boxes;
    if (obs::blackboxRequested(cli)) {
        obs::FleetAggregator::Config agg_cfg;
        agg_cfg.record = false;
        agg_cfg.cumulative = false;
        for (std::size_t i = 0; i < policies.size(); ++i) {
            boxes.push_back(std::make_unique<obs::FleetBlackbox>(
                agg_cfg, obs::FlightRecorder::Config{},
                /*fire_power_w=*/0.98 * 40000.0,
                /*clear_power_w=*/0.95 * 40000.0));
        }
    }
    const auto outcomes = runner.map<cluster::DatacenterOutcome>(
        policies.size(), [&](std::size_t i, util::Rng &) {
            util::Rng rng(99);
            if (boxes.empty()) {
                return dc.run(policies[i].second, rng, 14.0,
                              capture_obs ? &feed_series[i] : nullptr,
                              nullptr);
            }
            cluster::DatacenterPowerSim local({batch, batch, latency},
                                              40000.0, 1.3, 1.2);
            local.setSimThreads(cli.simThreads());
            local.attachObservability(&boxes[i]->aggregator,
                                      &boxes[i]->watchdog,
                                      &boxes[i]->recorder);
            return local.run(policies[i].second, rng, 14.0,
                             capture_obs ? &feed_series[i] : nullptr,
                             nullptr);
        });
    for (std::size_t i = 0; i < policies.size(); ++i) {
        const auto &outcome = outcomes[i];
        table.addRow({policies[i].first,
                      util::fmt(outcome.speedupDelivered, 3),
                      util::fmt(outcome.cappedOverclockShare * 100.0, 1) +
                          "%",
                      util::fmt(outcome.cappingMinutesShare * 100.0, 1) +
                          "%"});
    }
    table.print(std::cout);

    // 2. How sensitive is the power-aware win to the diurnal draw?
    //    16 Monte-Carlo replications, each seeded by Rng::split, fanned
    //    across the pool.
    std::cout << "\n== Power-aware policy: 16-seed Monte-Carlo"
                 " confidence ==\n";
    const std::size_t replications = 16;
    std::vector<exp::Params> grid;
    for (std::size_t r = 0; r < replications; ++r)
        grid.push_back(exp::Params{
            {"replication", util::fmt(static_cast<double>(r), 0)}});
    exp::RunReport report = runner.run(
        "fleet_power_aware_mc", grid,
        [&](const exp::Params &, std::size_t, util::Rng &rng,
            exp::MetricsRegistry &metrics) {
            const auto outcome =
                dc.run(cluster::OverclockPolicy::PowerAware, rng, 14.0);
            metrics.scalar("speedup", outcome.speedupDelivered);
            metrics.scalar("capping_share", outcome.cappingMinutesShare);
            metrics.scalar("oc_served_share", outcome.overclockShare);
        });
    util::OnlineStats speedup;
    util::OnlineStats capping;
    for (const auto &record : report.records()) {
        speedup.add(record.metrics.get("speedup"));
        capping.add(record.metrics.get("capping_share"));
    }
    std::cout << "Across " << replications << " diurnal draws: speedup "
              << util::fmt(speedup.mean(), 3) << " +/- "
              << util::fmt(speedup.stddev(), 3) << " (min "
              << util::fmt(speedup.min(), 3) << ", max "
              << util::fmt(speedup.max(), 3) << "), capping time "
              << util::fmt(capping.mean() * 100.0, 1) << "%.\n";

    // 3. One server's five-year wear ledger under the credit scheduler.
    std::cout << "\n== One server, five years, wear-credit scheduling ==\n";
    reliability::LifetimeModel model;
    reliability::WearTracker tracker(model, 5.0);
    core::CreditScheduler scheduler(tracker);
    const reliability::StressCondition nominal{0.90, 51.0, 35.0, 1.0, 1.0};
    const reliability::StressCondition green{0.98, 60.0, 35.0, 1.23, 1.0};
    const reliability::StressCondition red{1.01, 64.0, 35.0, 1.30, 1.0};
    util::Rng rng(7);
    double oc_hours = 0.0;
    const Years step = 24.0 / units::kHoursPerYear;
    for (int day = 0; day < 5 * 365; ++day) {
        const bool demand = rng.bernoulli(0.4);
        const auto decision =
            scheduler.decide(nominal, green, red, demand, step);
        if (decision.overclock)
            oc_hours += 24.0;
        const auto &applied = decision.redBand ? red
                              : decision.overclock ? green
                                                   : nominal;
        scheduler.commit(applied, step);
    }
    std::cout << "After 5 years: wear consumed "
              << util::fmtPercent(tracker.consumed()) << ", credit "
              << util::fmtPercent(tracker.credit()) << ", overclocked "
              << util::fmt(oc_hours, 0) << " hours.\n";

    // 4. Sanity-check the thermals of the overclocked operating point.
    std::cout << "\n== Thermal check of the overclocked point ==\n";
    auto rig = thermal::makeImmersedCpuNetwork(thermal::hfe7000());
    rig.network.inject(rig.die, 305.0);
    rig.network.settle();
    std::cout << "Die at 305 W in HFE-7000: "
              << util::fmt(rig.network.temperature(rig.die), 1)
              << " C (Table V's overclocked HFE point is ~60 C).\n";

    report.setMeta(manifest.entries());
    exp::maybeWriteReport(cli, report, std::cout);

    if (capture_obs) {
        obs::TelemetryMerger telemetry(feed_series.size());
        for (std::size_t i = 0; i < feed_series.size(); ++i)
            telemetry.add(i, policies[i].first, feed_series[i]);
        obs::maybeWriteTelemetry(cli, telemetry, manifest, std::cout);
    }
    if (!boxes.empty()) {
        std::vector<std::pair<std::string, const obs::FlightRecorder *>>
            blackbox_points;
        for (std::size_t i = 0; i < policies.size(); ++i)
            blackbox_points.emplace_back(policies[i].first,
                                         &boxes[i]->recorder);
        obs::maybeWriteBlackbox(cli, blackbox_points, manifest,
                                std::cout);
    }
    obs::maybeWriteProfile(cli, manifest, std::cerr);
    return 0;
}
