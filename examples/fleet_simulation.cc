/**
 * @file
 * Fleet-scale what-if: run a power-oversubscribed datacenter for two
 * weeks under each overclocking policy, then follow one server through
 * its five-year life with the wear-credit scheduler — the operator's
 * view of "can we overclock this fleet, and for how long?"
 *
 * Run: ./build/examples/fleet_simulation
 */

#include <iostream>

#include "cluster/datacenter.hh"
#include "core/credit.hh"
#include "reliability/lifetime.hh"
#include "thermal/network.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    // 1. Policy bake-off on a 40 kW feed.
    std::cout << "== Two-week policy bake-off (40 kW feed, 30%"
                 " oversubscribed) ==\n";
    cluster::RackConfig batch;
    batch.priority = 1;
    cluster::RackConfig latency;
    latency.priority = 2;
    latency.overclockDemand = 0.7;
    cluster::DatacenterPowerSim dc({batch, batch, latency}, 40000.0, 1.3,
                                   1.2);

    util::TableWriter table({"Policy", "Speedup delivered",
                             "OC wasted", "Capping time"});
    const std::pair<const char *, cluster::OverclockPolicy> policies[] = {
        {"Never", cluster::OverclockPolicy::Never},
        {"Always", cluster::OverclockPolicy::Always},
        {"Power-aware", cluster::OverclockPolicy::PowerAware},
    };
    for (const auto &[name, policy] : policies) {
        util::Rng rng(99);
        const auto outcome = dc.run(policy, rng, 14.0);
        table.addRow({name, util::fmt(outcome.speedupDelivered, 3),
                      util::fmt(outcome.cappedOverclockShare * 100.0, 1) +
                          "%",
                      util::fmt(outcome.cappingMinutesShare * 100.0, 1) +
                          "%"});
    }
    table.print(std::cout);

    // 2. One server's five-year wear ledger under the credit scheduler.
    std::cout << "\n== One server, five years, wear-credit scheduling ==\n";
    reliability::LifetimeModel model;
    reliability::WearTracker tracker(model, 5.0);
    core::CreditScheduler scheduler(tracker);
    const reliability::StressCondition nominal{0.90, 51.0, 35.0, 1.0, 1.0};
    const reliability::StressCondition green{0.98, 60.0, 35.0, 1.23, 1.0};
    const reliability::StressCondition red{1.01, 64.0, 35.0, 1.30, 1.0};
    util::Rng rng(7);
    double oc_hours = 0.0;
    const Years step = 24.0 / units::kHoursPerYear;
    for (int day = 0; day < 5 * 365; ++day) {
        const bool demand = rng.bernoulli(0.4);
        const auto decision =
            scheduler.decide(nominal, green, red, demand, step);
        if (decision.overclock)
            oc_hours += 24.0;
        const auto &applied = decision.redBand ? red
                              : decision.overclock ? green
                                                   : nominal;
        scheduler.commit(applied, step);
    }
    std::cout << "After 5 years: wear consumed "
              << util::fmtPercent(tracker.consumed()) << ", credit "
              << util::fmtPercent(tracker.credit()) << ", overclocked "
              << util::fmt(oc_hours, 0) << " hours.\n";

    // 3. Sanity-check the thermals of the overclocked operating point.
    std::cout << "\n== Thermal check of the overclocked point ==\n";
    auto rig = thermal::makeImmersedCpuNetwork(thermal::hfe7000());
    rig.network.inject(rig.die, 305.0);
    rig.network.settle();
    std::cout << "Die at 305 W in HFE-7000: "
              << util::fmt(rig.network.temperature(rig.die), 1)
              << " C (Table V's overclocked HFE point is ~60 C).\n";
    return 0;
}
