/**
 * @file
 * One-file HTML run report: merges the artifacts a bench run leaves
 * behind — the RunReport JSON (--report), the merged telemetry CSV
 * (--telemetry), the profiler dump (--profile) and a hot-path bench
 * baseline (--bench) — into a single self-contained page with inline
 * SVG sparklines. No external assets, scripts, or stylesheets: the
 * file can be mailed around or archived next to the run.
 *
 * Usage:
 *   imsim_report --report run.json [--telemetry run.csv]
 *                [--incidents incidents.json]
 *                [--blackbox blackbox.json]
 *                [--profile prof.json] [--bench BENCH_hotpaths.json]
 *                [--out report.html] [--title STRING]
 *
 * Only --report is required; every other section appears when its
 * artifact is given. The provenance table at the top renders the
 * report's "meta" block (see obs::RunManifest), so the page answers
 * "which commit, which compiler, which seed produced these numbers?"
 *
 * Artifacts degrade gracefully: a missing, unparseable, or
 * newer-schema artifact renders as an explanatory paragraph in its
 * section (and a warning on stderr), never a crash — a report page
 * with one stale artifact is still a report page.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/report.hh"
#include "obs/incident.hh"
#include "obs/obs.hh"
#include "obs/profiler.hh"
#include "obs/timeseries.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace imsim;

namespace {

/** Read a whole file; FatalError when unreadable. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    util::fatalIf(!in, "imsim_report: cannot read " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Escape &, <, >, " for HTML text and attribute contexts. */
std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '"': out += "&quot;"; break;
        default: out += c;
        }
    }
    return out;
}

/** Compact human-facing number: %.6g, non-finite spelled out. */
std::string
fmtNum(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", v);
    return buffer;
}

/** One coordinate in an SVG points list. */
std::string
fmtCoord(double v)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.1f", v);
    return buffer;
}

/**
 * Inline SVG sparkline of (t, value) samples. Non-finite values break
 * the polyline into segments rather than being interpolated over, so a
 * NaN gap in a gauge is visible as a gap. Flat series draw a midline.
 */
std::string
sparkline(const std::vector<double> &ts, const std::vector<double> &vs)
{
    const int w = 240;
    const int h = 40;
    const int pad = 2;
    double lo = 0.0;
    double hi = 0.0;
    double t_lo = 0.0;
    double t_hi = 0.0;
    bool any = false;
    for (std::size_t i = 0; i < vs.size(); ++i) {
        if (!std::isfinite(vs[i]))
            continue;
        if (!any) {
            lo = hi = vs[i];
            t_lo = t_hi = ts[i];
            any = true;
        } else {
            lo = std::min(lo, vs[i]);
            hi = std::max(hi, vs[i]);
            t_lo = std::min(t_lo, ts[i]);
            t_hi = std::max(t_hi, ts[i]);
        }
    }
    if (!any)
        return "<span class=\"muted\">no finite samples</span>";
    const double t_span = t_hi > t_lo ? t_hi - t_lo : 1.0;
    const double v_span = hi > lo ? hi - lo : 1.0;
    std::string svg = "<svg class=\"spark\" width=\"" +
                      std::to_string(w) + "\" height=\"" +
                      std::to_string(h) + "\" viewBox=\"0 0 " +
                      std::to_string(w) + " " + std::to_string(h) +
                      "\">";
    std::string points;
    const auto flush = [&] {
        if (points.empty())
            return;
        svg += "<polyline fill=\"none\" stroke=\"#2a6f97\" "
               "stroke-width=\"1.5\" points=\"" +
               points + "\"/>";
        points.clear();
    };
    for (std::size_t i = 0; i < vs.size(); ++i) {
        if (!std::isfinite(vs[i])) {
            flush(); // NaN/inf sample: visible gap in the line.
            continue;
        }
        const double x =
            pad + (ts[i] - t_lo) / t_span * (w - 2.0 * pad);
        const double y =
            h - pad - (vs[i] - lo) / v_span * (h - 2.0 * pad);
        if (!points.empty())
            points += " ";
        points += fmtCoord(x) + "," + fmtCoord(y);
    }
    flush();
    svg += "</svg>";
    return svg;
}

/** <tr> of <th> or <td> cells, already-escaped content. */
std::string
tableRow(const std::vector<std::string> &cells, bool header = false)
{
    const char *tag = header ? "th" : "td";
    std::string row = "<tr>";
    for (const auto &cell : cells)
        row += std::string("<") + tag + ">" + cell + "</" + tag + ">";
    row += "</tr>\n";
    return row;
}

/** Provenance table from the report's meta block. */
std::string
manifestSection(const exp::RunReport &report)
{
    if (!report.hasMeta())
        return "<p class=\"muted\">No provenance block in the report "
               "(run the bench with a build that stamps "
               "obs::RunManifest).</p>\n";
    std::string html = "<table class=\"kv\">\n";
    for (const auto &field : report.meta())
        html += tableRow(
            {htmlEscape(field.first), htmlEscape(field.second)});
    html += "</table>\n";
    return html;
}

/** Sweep results: one row per point, params then metric columns. */
std::string
resultsSection(const exp::RunReport &report)
{
    const auto &records = report.records();
    if (records.empty())
        return "<p class=\"muted\">Report has no sweep points.</p>\n";
    std::vector<std::string> header;
    for (const auto &param : records.front().params)
        header.push_back(htmlEscape(param.first));
    std::vector<std::string> metric_names;
    for (const auto &record : records)
        for (const auto &metric : record.metrics.entries())
            if (std::find(metric_names.begin(), metric_names.end(),
                          metric.first) == metric_names.end())
                metric_names.push_back(metric.first);
    for (const auto &name : metric_names)
        header.push_back(htmlEscape(name));
    std::string html = "<table>\n" + tableRow(header, true);
    for (const auto &record : records) {
        std::vector<std::string> row;
        for (const auto &param : record.params)
            row.push_back(htmlEscape(param.second));
        for (const auto &name : metric_names)
            row.push_back(record.metrics.has(name)
                              ? fmtNum(record.metrics.get(name))
                              : std::string("&mdash;"));
        html += tableRow(row);
    }
    html += "</table>\n";
    return html;
}

/**
 * Latency/cost Pareto scatter for control reports (bench_control):
 * every sweep point plotted on (P99 latency, cost per Mreq), the
 * non-dominated front marked and connected, and a table of the front
 * rows beneath. Applies the same strict-domination test the bench's
 * stdout table uses, so the page and the console agree on the front.
 */
std::string
paretoSection(const exp::RunReport &report)
{
    const auto &records = report.records();
    std::vector<double> p99;
    std::vector<double> cost;
    std::vector<std::string> labels;
    for (const auto &record : records) {
        if (!record.metrics.has("p99_ms") ||
            !record.metrics.has("cost_per_mreq"))
            continue;
        p99.push_back(record.metrics.get("p99_ms"));
        cost.push_back(record.metrics.get("cost_per_mreq"));
        std::string label;
        for (const auto &param : record.params)
            label += (label.empty() ? "" : " @ ") + param.second;
        labels.push_back(label);
    }
    util::fatalIf(p99.empty(),
                  "report has no points with p99_ms and cost_per_mreq");

    // Both axes minimized: dominated = some other point is no worse on
    // both and strictly better on at least one.
    std::vector<bool> front(p99.size(), true);
    for (std::size_t a = 0; a < p99.size(); ++a)
        for (std::size_t b = 0; b < p99.size(); ++b)
            if (a != b && p99[b] <= p99[a] && cost[b] <= cost[a] &&
                (p99[b] < p99[a] || cost[b] < cost[a])) {
                front[a] = false;
                break;
            }

    const int w = 460;
    const int h = 300;
    const int pad = 40;
    double p_lo = p99[0];
    double p_hi = p99[0];
    double c_lo = cost[0];
    double c_hi = cost[0];
    for (std::size_t i = 0; i < p99.size(); ++i) {
        p_lo = std::min(p_lo, p99[i]);
        p_hi = std::max(p_hi, p99[i]);
        c_lo = std::min(c_lo, cost[i]);
        c_hi = std::max(c_hi, cost[i]);
    }
    const double p_span = p_hi > p_lo ? p_hi - p_lo : 1.0;
    const double c_span = c_hi > c_lo ? c_hi - c_lo : 1.0;
    const auto px = [&](double v) {
        return fmtCoord(pad + (v - p_lo) / p_span * (w - 2.0 * pad));
    };
    const auto py = [&](double v) {
        return fmtCoord(h - pad - (v - c_lo) / c_span * (h - 2.0 * pad));
    };

    std::string svg =
        "<svg class=\"timeline\" width=\"" + std::to_string(w) +
        "\" height=\"" + std::to_string(h) + "\" viewBox=\"0 0 " +
        std::to_string(w) + " " + std::to_string(h) + "\">";
    svg += "<line x1=\"" + std::to_string(pad) + "\" y1=\"" +
           std::to_string(h - pad) + "\" x2=\"" +
           std::to_string(w - pad) + "\" y2=\"" +
           std::to_string(h - pad) + "\" stroke=\"#999\"/>";
    svg += "<line x1=\"" + std::to_string(pad) + "\" y1=\"" +
           std::to_string(pad) + "\" x2=\"" + std::to_string(pad) +
           "\" y2=\"" + std::to_string(h - pad) + "\" stroke=\"#999\"/>";
    svg += "<text class=\"axis\" x=\"" + std::to_string(w / 2) +
           "\" y=\"" + std::to_string(h - 8) +
           "\" text-anchor=\"middle\">P99 latency [ms] (" +
           fmtNum(p_lo) + " &#8211; " + fmtNum(p_hi) + ")</text>";
    svg += "<text class=\"axis\" x=\"12\" y=\"" +
           std::to_string(h / 2) + "\" text-anchor=\"middle\" "
           "transform=\"rotate(-90 12 " + std::to_string(h / 2) +
           ")\">USD/Mreq (" + fmtNum(c_lo) + " &#8211; " +
           fmtNum(c_hi) + ")</text>";

    // Connect the front in latency order so the trade-off curve reads
    // left to right.
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < p99.size(); ++i)
        if (front[i])
            order.push_back(i);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return p99[a] < p99[b];
              });
    std::string points;
    for (std::size_t i : order) {
        if (!points.empty())
            points += " ";
        points += px(p99[i]) + "," + py(cost[i]);
    }
    if (order.size() > 1)
        svg += "<polyline fill=\"none\" stroke=\"#2a6f97\" "
               "stroke-dasharray=\"4 3\" points=\"" + points + "\"/>";
    for (std::size_t i = 0; i < p99.size(); ++i) {
        svg += "<circle cx=\"" + px(p99[i]) + "\" cy=\"" +
               py(cost[i]) + "\" r=\"4\" " +
               (front[i] ? "fill=\"#2a6f97\""
                         : "fill=\"none\" stroke=\"#b55\"") +
               "/>";
        svg += "<text class=\"axis\" x=\"" + px(p99[i]) + "\" y=\"" +
               py(cost[i]) + "\" dx=\"6\" dy=\"-4\">" +
               htmlEscape(labels[i]) + "</text>";
    }
    svg += "</svg>";

    std::string html =
        "<p>Filled points are non-dominated on (P99 latency, cost per "
        "million requests); hollow points are dominated by some other "
        "controller.</p>\n" + svg + "\n<table>\n" +
        tableRow({"Point", "P99 [ms]", "USD/Mreq"}, true);
    for (std::size_t i : order)
        html += tableRow({htmlEscape(labels[i]), fmtNum(p99[i]),
                          fmtNum(cost[i])});
    html += "</table>\n";
    return html;
}

/** Per-point wall-clock bars from the report's timing section. */
std::string
timingSection(const exp::RunReport &report)
{
    const auto &timing = report.timing();
    double max_ms = 0.0;
    for (const auto &point : timing.points)
        max_ms = std::max(max_ms, point.queueMs + point.wallMs);
    std::string html = "<p>Total sweep wall time: <b>" +
                       fmtNum(timing.totalWallMs) + " ms</b> across " +
                       std::to_string(timing.points.size()) +
                       " points.</p>\n";
    html += "<table>\n" + tableRow({"point", "worker", "queue [ms]",
                                    "wall [ms]", ""},
                                   true);
    for (const auto &point : timing.points) {
        const double span = max_ms > 0.0 ? max_ms : 1.0;
        const double queue_pct = point.queueMs / span * 100.0;
        const double wall_pct = point.wallMs / span * 100.0;
        const std::string bar =
            "<div class=\"bar\"><div class=\"queue\" style=\"width:" +
            fmtCoord(queue_pct) +
            "%\"></div><div class=\"wall\" style=\"width:" +
            fmtCoord(wall_pct) + "%\"></div></div>";
        html += tableRow({std::to_string(point.index),
                          std::to_string(point.worker),
                          fmtNum(point.queueMs), fmtNum(point.wallMs),
                          bar});
    }
    html += "</table>\n";
    return html;
}

/** Sparkline grid: one row per (point label, telemetry column). */
std::string
telemetrySection(const std::vector<obs::LabelledSeries> &series)
{
    std::string html =
        "<table>\n" +
        tableRow({"point", "column", "min", "max", "last", "samples",
                  "sparkline"},
                 true);
    for (const auto &labelled : series) {
        const auto &ts = labelled.series;
        std::vector<double> times(ts.rows());
        for (std::size_t i = 0; i < ts.rows(); ++i)
            times[i] = ts.time(i);
        for (std::size_t c = 0; c < ts.columns().size(); ++c) {
            std::vector<double> values(ts.rows());
            double lo = std::nan("");
            double hi = std::nan("");
            double last = std::nan("");
            for (std::size_t i = 0; i < ts.rows(); ++i) {
                values[i] = ts.row(i)[c];
                if (!std::isfinite(values[i]))
                    continue;
                lo = std::isnan(lo) ? values[i]
                                    : std::min(lo, values[i]);
                hi = std::isnan(hi) ? values[i]
                                    : std::max(hi, values[i]);
                last = values[i];
            }
            html += tableRow({htmlEscape(labelled.label),
                              htmlEscape(ts.columns()[c]), fmtNum(lo),
                              fmtNum(hi), fmtNum(last),
                              std::to_string(ts.rows()),
                              sparkline(times, values)});
        }
    }
    html += "</table>\n";
    return html;
}

/** Wall-clock profile table, heaviest self time first. */
std::string
profileSection(const obs::ProfileReport &profile)
{
    auto entries = profile.entries();
    std::sort(entries.begin(), entries.end(),
              [](const obs::ProfileEntry &a, const obs::ProfileEntry &b) {
                  return a.selfMs > b.selfMs;
              });
    double total_self = 0.0;
    for (const auto &entry : entries)
        total_self += entry.selfMs;
    std::string html =
        "<table>\n" + tableRow({"scope path", "count", "total [ms]",
                                "self [ms]", "self %"},
                               true);
    for (const auto &entry : entries) {
        const double share =
            total_self > 0.0 ? entry.selfMs / total_self * 100.0 : 0.0;
        html += tableRow({htmlEscape(entry.path),
                          std::to_string(entry.count),
                          fmtNum(entry.totalMs), fmtNum(entry.selfMs),
                          fmtNum(share)});
    }
    html += "</table>\n";
    return html;
}

/** Hot-path bench table from a BENCH_hotpaths.json document. */
std::string
benchSection(const util::Json &doc)
{
    std::string html =
        "<table>\n" + tableRow({"benchmark", "unit", "iterations",
                                "ns/op", "ops/s", "allocs/op"},
                               true);
    for (const auto &row : doc.at("benchmarks").array()) {
        html += tableRow(
            {htmlEscape(row.at("name").str()),
             htmlEscape(row.at("unit").str()),
             fmtNum(row.at("iterations").number()),
             fmtNum(row.at("ns_per_op").number()),
             fmtNum(row.at("ops_per_sec").number()),
             fmtNum(row.at("allocs_per_op").number())});
    }
    html += "</table>\n";
    return html;
}

/** Band color per alert kind (matches obs::alertKindName strings). */
const char *
incidentColor(const std::string &kind)
{
    if (kind == "tail_latency")
        return "#c1121f";
    if (kind == "tj_ceiling")
        return "#9d0208";
    if (kind == "brownout")
        return "#e09f3e";
    if (kind == "fluid_level")
        return "#2a6f97";
    if (kind == "wear_rate")
        return "#5f0f40";
    return "#555555";
}

/**
 * SVG timeline of one point's incidents: a horizontal band per
 * incident (lane-stacked, colored by alert kind, open ends drawn to
 * the horizon) over vertical tick marks for every noted fault.
 */
std::string
incidentTimeline(const util::Json &point, double horizon)
{
    const int w = 700;
    const int lane_h = 16;
    const int axis_h = 18;
    const auto &incidents = point.at("incidents").array();
    const auto &faults = point.at("faults").array();
    const int lanes = std::max<int>(1, static_cast<int>(incidents.size()));
    const int h = lanes * lane_h + axis_h;
    const double span = horizon > 0.0 ? horizon : 1.0;
    const auto x_of = [&](double t) {
        return std::clamp(t / span, 0.0, 1.0) * (w - 2.0) + 1.0;
    };

    std::string svg = "<svg class=\"timeline\" width=\"" +
                      std::to_string(w) + "\" height=\"" +
                      std::to_string(h) + "\" viewBox=\"0 0 " +
                      std::to_string(w) + " " + std::to_string(h) +
                      "\">";
    // Fault ticks first, underneath the bands.
    for (const auto &fault : faults) {
        const std::string x = fmtCoord(x_of(fault.at("t_s").number()));
        svg += "<line x1=\"" + x + "\" y1=\"0\" x2=\"" + x +
               "\" y2=\"" + std::to_string(lanes * lane_h) +
               "\" stroke=\"#999\" stroke-dasharray=\"2,2\">"
               "<title>" +
               htmlEscape(fault.at("label").str()) + " @ " +
               fmtNum(fault.at("t_s").number()) + " s</title></line>";
    }
    int lane = 0;
    for (const auto &incident : incidents) {
        const double opened = incident.at("opened_s").number();
        const double closed = incident.at("closed_s").number();
        const double end = closed >= 0.0 ? closed : horizon;
        const double x0 = x_of(opened);
        const double x1 = std::max(x_of(end), x0 + 2.0); // Visible sliver.
        const std::string kind = incident.at("kind").str();
        svg += "<rect x=\"" + fmtCoord(x0) + "\" y=\"" +
               std::to_string(lane * lane_h + 2) + "\" width=\"" +
               fmtCoord(x1 - x0) + "\" height=\"" +
               std::to_string(lane_h - 4) + "\" rx=\"2\" fill=\"" +
               incidentColor(kind) + "\" fill-opacity=\"0.85\">"
               "<title>" +
               htmlEscape(incident.at("rule").str()) + " [" +
               htmlEscape(kind) + "] " + fmtNum(opened) + " s → " +
               (closed >= 0.0 ? fmtNum(closed) + " s"
                              : std::string("open")) +
               ", peak " + fmtNum(incident.at("peak_value").number()) +
               " (threshold " +
               fmtNum(incident.at("threshold").number()) +
               ")</title></rect>";
        ++lane;
    }
    // Time axis.
    const int axis_y = lanes * lane_h + 4;
    svg += "<line x1=\"1\" y1=\"" + std::to_string(axis_y) +
           "\" x2=\"" + std::to_string(w - 1) + "\" y2=\"" +
           std::to_string(axis_y) + "\" stroke=\"#888\"/>";
    svg += "<text x=\"2\" y=\"" + std::to_string(axis_y + 12) +
           "\" class=\"axis\">0 s</text>";
    svg += "<text x=\"" + std::to_string(w - 2) + "\" y=\"" +
           std::to_string(axis_y + 12) +
           "\" class=\"axis\" text-anchor=\"end\">" + fmtNum(horizon) +
           " s</text>";
    svg += "</svg>";
    return svg;
}

/**
 * Incident timelines from an imsim.incidents/1 document: per point, a
 * detail table of incidents over the SVG band chart.
 */
std::string
incidentsSection(const util::Json &doc)
{
    const std::string schema =
        doc.has("schema") ? doc.at("schema").str() : "(none)";
    util::fatalIf(schema != obs::kIncidentSchema,
                  "unsupported incident schema '" + schema +
                      "' (this build reads " +
                      std::string(obs::kIncidentSchema) + ")");
    const auto &points = doc.at("points").array();

    // One shared horizon so the per-point charts line up.
    double horizon = 0.0;
    for (const auto &point : points) {
        for (const auto &incident : point.at("incidents").array()) {
            horizon = std::max(horizon, incident.at("opened_s").number());
            horizon = std::max(horizon, incident.at("closed_s").number());
        }
        for (const auto &fault : point.at("faults").array())
            horizon = std::max(horizon, fault.at("t_s").number());
    }

    std::string html;
    std::size_t total = 0;
    for (const auto &point : points) {
        const auto &incidents = point.at("incidents").array();
        total += incidents.size();
        html += "<h3>" + htmlEscape(point.at("label").str()) + " (" +
                std::to_string(incidents.size()) + " incidents, " +
                std::to_string(point.at("faults").array().size()) +
                " faults)</h3>\n";
        html += incidentTimeline(point, horizon);
        if (incidents.empty())
            continue;
        html += "<table>\n" + tableRow({"rule", "kind", "opened [s]",
                                        "closed [s]", "peak",
                                        "threshold", "faults"},
                                       true);
        for (const auto &incident : incidents) {
            const double closed = incident.at("closed_s").number();
            std::string fault_list;
            for (const auto &fault : incident.at("faults").array()) {
                if (!fault_list.empty())
                    fault_list += ", ";
                fault_list += htmlEscape(fault.at("label").str());
            }
            html += tableRow(
                {htmlEscape(incident.at("rule").str()),
                 htmlEscape(incident.at("kind").str()),
                 fmtNum(incident.at("opened_s").number()),
                 closed >= 0.0 ? fmtNum(closed) : std::string("open"),
                 fmtNum(incident.at("peak_value").number()),
                 fmtNum(incident.at("threshold").number()),
                 fault_list.empty() ? std::string("&mdash;")
                                    : fault_list});
        }
        html += "</table>\n";
    }
    if (total == 0 && points.empty())
        html += "<p class=\"muted\">Document has no points.</p>\n";
    return html;
}

/** Lane palette for blackbox alert bands (one lane per alert rule). */
const char *
blackboxLaneColor(std::size_t lane)
{
    static const char *kPalette[] = {"#c1121f", "#e09f3e", "#2a6f97",
                                     "#5f0f40", "#386641", "#9d0208"};
    return kPalette[lane % (sizeof kPalette / sizeof kPalette[0])];
}

/**
 * SVG timeline of one flight-recorder point's event ring: alert
 * intervals reconstructed from alert_raise/alert_clear pairs (one lane
 * per rule; a clear whose raise was evicted from the bounded ring
 * draws from t=0, an unmatched raise draws to the horizon) over
 * vertical tick marks for faults, invariant violations, and notes.
 */
std::string
blackboxTimeline(const util::Json &point, double horizon)
{
    struct Span
    {
        std::string rule;
        double open = 0.0;
        double close = -1.0; // -1: still raised at dump time.
        double value = 0.0;
    };
    std::vector<Span> spans;
    std::map<std::string, std::size_t> raised; // rule -> open span.
    struct Mark
    {
        double t = 0.0;
        std::string kind;
        std::string label;
    };
    std::vector<Mark> marks;
    for (const auto &event : point.at("events").array()) {
        const double t = event.at("t_s").number();
        const std::string kind = event.at("kind").str();
        const std::string label = event.at("label").str();
        if (kind == "alert_raise") {
            raised[label] = spans.size();
            spans.push_back(
                {label, t, -1.0, event.at("value").number()});
        } else if (kind == "alert_clear") {
            const auto it = raised.find(label);
            if (it != raised.end()) {
                spans[it->second].close = t;
                raised.erase(it);
            } else {
                // The matching raise fell off the bounded ring: the
                // alert was already up when retention began.
                spans.push_back(
                    {label, 0.0, t, event.at("value").number()});
            }
        } else {
            marks.push_back({t, kind, label});
        }
    }

    // One lane per distinct rule, in first-seen order.
    std::map<std::string, int> lane_of;
    for (const auto &span : spans)
        if (lane_of.find(span.rule) == lane_of.end()) {
            const int next = static_cast<int>(lane_of.size());
            lane_of[span.rule] = next;
        }
    const int w = 700;
    const int lane_h = 16;
    const int axis_h = 18;
    const int lanes = std::max<int>(1, static_cast<int>(lane_of.size()));
    const int h = lanes * lane_h + axis_h;
    const double span_t = horizon > 0.0 ? horizon : 1.0;
    const auto x_of = [&](double t) {
        return std::clamp(t / span_t, 0.0, 1.0) * (w - 2.0) + 1.0;
    };

    std::string svg = "<svg class=\"timeline\" width=\"" +
                      std::to_string(w) + "\" height=\"" +
                      std::to_string(h) + "\" viewBox=\"0 0 " +
                      std::to_string(w) + " " + std::to_string(h) +
                      "\">";
    // Fault/violation/note ticks first, underneath the alert bands.
    for (const auto &mark : marks) {
        const std::string x = fmtCoord(x_of(mark.t));
        const char *stroke = mark.kind == "violation" ? "#9d0208"
                             : mark.kind == "fault"   ? "#999"
                                                      : "#bbb";
        const char *dash = mark.kind == "violation" ? "" : "2,2";
        svg += "<line x1=\"" + x + "\" y1=\"0\" x2=\"" + x +
               "\" y2=\"" + std::to_string(lanes * lane_h) +
               "\" stroke=\"" + stroke + "\" stroke-dasharray=\"" +
               dash + "\"><title>" + htmlEscape(mark.kind) + ": " +
               htmlEscape(mark.label) + " @ " + fmtNum(mark.t) +
               " s</title></line>";
    }
    for (const auto &span : spans) {
        const int lane = lane_of[span.rule];
        const double end = span.close >= 0.0 ? span.close : horizon;
        const double x0 = x_of(span.open);
        const double x1 = std::max(x_of(end), x0 + 2.0); // Sliver.
        svg += "<rect x=\"" + fmtCoord(x0) + "\" y=\"" +
               std::to_string(lane * lane_h + 2) + "\" width=\"" +
               fmtCoord(x1 - x0) + "\" height=\"" +
               std::to_string(lane_h - 4) + "\" rx=\"2\" fill=\"" +
               blackboxLaneColor(static_cast<std::size_t>(lane)) +
               "\" fill-opacity=\"0.85\"><title>" +
               htmlEscape(span.rule) + " " + fmtNum(span.open) +
               " s → " +
               (span.close >= 0.0 ? fmtNum(span.close) + " s"
                                  : std::string("open")) +
               ", value " + fmtNum(span.value) + "</title></rect>";
    }
    // Time axis.
    const int axis_y = lanes * lane_h + 4;
    svg += "<line x1=\"1\" y1=\"" + std::to_string(axis_y) +
           "\" x2=\"" + std::to_string(w - 1) + "\" y2=\"" +
           std::to_string(axis_y) + "\" stroke=\"#888\"/>";
    svg += "<text x=\"2\" y=\"" + std::to_string(axis_y + 12) +
           "\" class=\"axis\">0 s</text>";
    svg += "<text x=\"" + std::to_string(w - 2) + "\" y=\"" +
           std::to_string(axis_y + 12) +
           "\" class=\"axis\" text-anchor=\"end\">" + fmtNum(horizon) +
           " s</text>";
    svg += "</svg>";
    return svg;
}

/**
 * Flight-recorder section from an imsim.blackbox/1 document: per
 * point, the event timeline over one table per retention tier (a
 * sparkline of bin means plus the min/max envelope per channel).
 */
std::string
blackboxSection(const util::Json &doc)
{
    const std::string schema =
        doc.has("schema") ? doc.at("schema").str() : "(none)";
    util::fatalIf(schema != obs::kBlackboxSchema,
                  "unsupported blackbox schema '" + schema +
                      "' (this build reads " +
                      std::string(obs::kBlackboxSchema) + ")");
    const auto &points = doc.at("points").array();

    // One shared horizon so the per-point charts line up.
    double horizon = 0.0;
    for (const auto &point : points) {
        for (const auto &tier : point.at("tiers").array()) {
            const double res = tier.at("resolution_s").number();
            const auto &rows = tier.at("rows").array();
            if (!rows.empty())
                horizon = std::max(
                    horizon, rows.back().array()[0].number() + res);
        }
        for (const auto &event : point.at("events").array())
            horizon = std::max(horizon, event.at("t_s").number());
    }

    std::string html;
    for (const auto &point : points) {
        const auto &channels = point.at("channels").array();
        html += "<h3>" + htmlEscape(point.at("label").str()) + " (" +
                fmtNum(point.at("ticks").number()) + " ticks, " +
                fmtNum(point.at("events_noted").number()) +
                " events noted)</h3>\n";
        html += blackboxTimeline(point, horizon);
        for (const auto &tier : point.at("tiers").array()) {
            const double res = tier.at("resolution_s").number();
            const auto &rows = tier.at("rows").array();
            html += "<h4>Tier: " + fmtNum(res) + " s bins, " +
                    fmtNum(tier.at("capacity").number()) +
                    " retained (" + std::to_string(rows.size()) +
                    " filled)</h4>\n";
            if (rows.empty()) {
                html += "<p class=\"muted\">No bins in this tier "
                        "yet.</p>\n";
                continue;
            }
            html += "<table>\n" + tableRow({"channel", "min", "max",
                                            "last mean",
                                            "mean sparkline"},
                                           true);
            for (std::size_t c = 0; c < channels.size(); ++c) {
                std::vector<double> ts;
                std::vector<double> means;
                double lo = 0.0;
                double hi = 0.0;
                bool any = false;
                for (const auto &row_json : rows) {
                    // Row: [t, samples, min0, mean0, max0, min1, ...].
                    const auto &row = row_json.array();
                    ts.push_back(row[0].number());
                    const double mn = row[2 + c * 3 + 0].number();
                    const double mean = row[2 + c * 3 + 1].number();
                    const double mx = row[2 + c * 3 + 2].number();
                    means.push_back(mean);
                    if (!std::isfinite(mn) || !std::isfinite(mx))
                        continue;
                    lo = any ? std::min(lo, mn) : mn;
                    hi = any ? std::max(hi, mx) : mx;
                    any = true;
                }
                html += tableRow(
                    {htmlEscape(channels[c].str()),
                     any ? fmtNum(lo) : std::string("&mdash;"),
                     any ? fmtNum(hi) : std::string("&mdash;"),
                     fmtNum(means.back()), sparkline(ts, means)});
            }
            html += "</table>\n";
        }
    }
    if (points.empty())
        html += "<p class=\"muted\">Document has no points.</p>\n";
    return html;
}

/**
 * Run @p build and return its HTML; on FatalError (missing file, parse
 * failure, schema mismatch) return a muted message paragraph instead
 * and warn on stderr — stale artifacts degrade, they don't crash the
 * report.
 */
template <typename Fn>
std::string
gracefulSection(const std::string &what, Fn &&build)
{
    try {
        return build();
    } catch (const Error &err) {
        std::cerr << "imsim_report: warning: " << what
                  << " section skipped: " << err.what() << "\n";
        return "<p class=\"muted\">Could not render " +
               htmlEscape(what) + ": " +
               htmlEscape(err.what()) + "</p>\n";
    }
}

const char *kUsage =
    "usage: imsim_report --report run.json [--telemetry run.csv]\n"
    "                    [--incidents incidents.json]\n"
    "                    [--blackbox blackbox.json]\n"
    "                    [--profile prof.json] [--bench bench.json]\n"
    "                    [--out report.html] [--title STRING]\n";

const char *kStyle =
    "body{font-family:system-ui,sans-serif;margin:2em auto;"
    "max-width:72em;padding:0 1em;color:#1b1b1b}"
    "h1{border-bottom:2px solid #2a6f97;padding-bottom:.2em}"
    "h2{margin-top:1.6em;color:#2a6f97}"
    "table{border-collapse:collapse;margin:.5em 0}"
    "th,td{border:1px solid #ccc;padding:.25em .6em;text-align:left;"
    "font-variant-numeric:tabular-nums}"
    "th{background:#eef4f8}"
    "table.kv td:first-child{font-weight:600;background:#f7f7f7}"
    ".muted{color:#777}"
    ".spark{vertical-align:middle;background:#fafcfe;"
    "border:1px solid #e5e5e5}"
    ".timeline{background:#fafcfe;border:1px solid #e5e5e5;"
    "margin:.3em 0}"
    ".axis{font-size:11px;fill:#777}"
    ".bar{display:flex;width:16em;height:.9em;background:#f0f0f0}"
    ".bar .queue{background:#c9b458}"
    ".bar .wall{background:#2a6f97}";

} // namespace

int
main(int argc, char **argv)
{
    const util::Cli cli(argc, argv);
    const std::string report_path = cli.get("--report");
    if (report_path.empty()) {
        std::cerr << kUsage;
        return 2;
    }
    const std::string telemetry_path = cli.get("--telemetry");
    const std::string incidents_path = cli.get("--incidents");
    const std::string blackbox_path = cli.get("--blackbox");
    const std::string profile_path = cli.get("--profile");
    const std::string bench_path = cli.get("--bench");
    const std::string out_path = cli.get("--out", "report.html");

    // The report is the page's backbone: unreadable or wrong-schema
    // means no page, but still a message rather than a crash.
    exp::RunReport report;
    try {
        report = exp::RunReport::fromJson(slurp(report_path));
    } catch (const FatalError &err) {
        std::cerr << "imsim_report: cannot load " << report_path << ": "
                  << err.what() << "\n";
        return 1;
    }
    const std::string title =
        cli.get("--title", report.name().empty() ? "ImmerSim run"
                                                 : report.name());

    std::string html = "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
                       "<meta charset=\"utf-8\">\n<title>" +
                       htmlEscape(title) +
                       "</title>\n<style>" + kStyle +
                       "</style>\n</head>\n<body>\n";
    html += "<h1>" + htmlEscape(title) + "</h1>\n";

    html += "<h2>Provenance</h2>\n" + manifestSection(report);
    html += "<h2>Results (" + std::to_string(report.records().size()) +
            " sweep points)</h2>\n" + resultsSection(report);
    // Control reports (bench_control) get the latency/cost trade-off
    // plotted; detection is by report name so other sweeps that happen
    // to share metric names are left alone.
    if (report.name() == "control")
        html += "<h2>Latency/cost Pareto front</h2>\n" +
                gracefulSection("pareto", [&] {
                    return paretoSection(report);
                });
    if (report.hasTiming())
        html += "<h2>Wall-clock timing</h2>\n" + timingSection(report);

    if (!telemetry_path.empty()) {
        html += "<h2>Telemetry</h2>\n" +
                gracefulSection("telemetry", [&] {
                    const std::string text = slurp(telemetry_path);
                    // First `# schema:` comment line, when present,
                    // must name the schema this build reads; pre-schema
                    // artifacts (no stamp) still parse.
                    const std::string stamp = "# schema: ";
                    if (text.compare(0, stamp.size(), stamp) == 0) {
                        const std::size_t eol = text.find('\n');
                        const std::string schema = text.substr(
                            stamp.size(),
                            eol - stamp.size());
                        util::fatalIf(
                            schema != obs::kTelemetrySchema,
                            "unsupported telemetry schema '" + schema +
                                "' (this build reads " +
                                std::string(obs::kTelemetrySchema) +
                                ")");
                    }
                    std::istringstream in(text);
                    const auto series = obs::parseTelemetryCsv(in);
                    return "<p>" + std::to_string(series.size()) +
                           " series.</p>\n" + telemetrySection(series);
                });
    }
    if (!incidents_path.empty()) {
        html += "<h2>Incident timelines</h2>\n" +
                gracefulSection("incidents", [&] {
                    const util::Json doc =
                        util::Json::parse(slurp(incidents_path));
                    return incidentsSection(doc);
                });
    }
    if (!blackbox_path.empty()) {
        html += "<h2>Flight recorder</h2>\n" +
                gracefulSection("blackbox", [&] {
                    const util::Json doc =
                        util::Json::parse(slurp(blackbox_path));
                    return blackboxSection(doc);
                });
    }
    if (!profile_path.empty()) {
        html += "<h2>Wall-clock profile</h2>\n" +
                gracefulSection("profile", [&] {
                    return profileSection(
                        obs::ProfileReport::fromJson(
                            slurp(profile_path)));
                });
    }
    if (!bench_path.empty()) {
        html += "<h2>Hot-path benchmarks</h2>\n" +
                gracefulSection("benchmarks", [&] {
                    return benchSection(
                        util::Json::parse(slurp(bench_path)));
                });
    }

    html += "<p class=\"muted\">Generated by imsim_report from " +
            htmlEscape(report_path) + ".</p>\n</body>\n</html>\n";

    std::ofstream out(out_path);
    util::fatalIf(!out, "imsim_report: cannot write " + out_path);
    out << html;
    out.close();
    std::cout << "Wrote " << out_path << " (" << html.size()
              << " bytes)\n";
    return 0;
}
