/**
 * @file
 * One-file HTML run report: merges the artifacts a bench run leaves
 * behind — the RunReport JSON (--report), the merged telemetry CSV
 * (--telemetry), the profiler dump (--profile) and a hot-path bench
 * baseline (--bench) — into a single self-contained page with inline
 * SVG sparklines. No external assets, scripts, or stylesheets: the
 * file can be mailed around or archived next to the run.
 *
 * Usage:
 *   imsim_report --report run.json [--telemetry run.csv]
 *                [--profile prof.json] [--bench BENCH_hotpaths.json]
 *                [--out report.html] [--title STRING]
 *
 * Only --report is required; every other section appears when its
 * artifact is given. The provenance table at the top renders the
 * report's "meta" block (see obs::RunManifest), so the page answers
 * "which commit, which compiler, which seed produced these numbers?"
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/report.hh"
#include "obs/profiler.hh"
#include "obs/timeseries.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace imsim;

namespace {

/** Read a whole file; FatalError when unreadable. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    util::fatalIf(!in, "imsim_report: cannot read " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Escape &, <, >, " for HTML text and attribute contexts. */
std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '"': out += "&quot;"; break;
        default: out += c;
        }
    }
    return out;
}

/** Compact human-facing number: %.6g, non-finite spelled out. */
std::string
fmtNum(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", v);
    return buffer;
}

/** One coordinate in an SVG points list. */
std::string
fmtCoord(double v)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.1f", v);
    return buffer;
}

/**
 * Inline SVG sparkline of (t, value) samples. Non-finite values break
 * the polyline into segments rather than being interpolated over, so a
 * NaN gap in a gauge is visible as a gap. Flat series draw a midline.
 */
std::string
sparkline(const std::vector<double> &ts, const std::vector<double> &vs)
{
    const int w = 240;
    const int h = 40;
    const int pad = 2;
    double lo = 0.0;
    double hi = 0.0;
    double t_lo = 0.0;
    double t_hi = 0.0;
    bool any = false;
    for (std::size_t i = 0; i < vs.size(); ++i) {
        if (!std::isfinite(vs[i]))
            continue;
        if (!any) {
            lo = hi = vs[i];
            t_lo = t_hi = ts[i];
            any = true;
        } else {
            lo = std::min(lo, vs[i]);
            hi = std::max(hi, vs[i]);
            t_lo = std::min(t_lo, ts[i]);
            t_hi = std::max(t_hi, ts[i]);
        }
    }
    if (!any)
        return "<span class=\"muted\">no finite samples</span>";
    const double t_span = t_hi > t_lo ? t_hi - t_lo : 1.0;
    const double v_span = hi > lo ? hi - lo : 1.0;
    std::string svg = "<svg class=\"spark\" width=\"" +
                      std::to_string(w) + "\" height=\"" +
                      std::to_string(h) + "\" viewBox=\"0 0 " +
                      std::to_string(w) + " " + std::to_string(h) +
                      "\">";
    std::string points;
    const auto flush = [&] {
        if (points.empty())
            return;
        svg += "<polyline fill=\"none\" stroke=\"#2a6f97\" "
               "stroke-width=\"1.5\" points=\"" +
               points + "\"/>";
        points.clear();
    };
    for (std::size_t i = 0; i < vs.size(); ++i) {
        if (!std::isfinite(vs[i])) {
            flush(); // NaN/inf sample: visible gap in the line.
            continue;
        }
        const double x =
            pad + (ts[i] - t_lo) / t_span * (w - 2.0 * pad);
        const double y =
            h - pad - (vs[i] - lo) / v_span * (h - 2.0 * pad);
        if (!points.empty())
            points += " ";
        points += fmtCoord(x) + "," + fmtCoord(y);
    }
    flush();
    svg += "</svg>";
    return svg;
}

/** <tr> of <th> or <td> cells, already-escaped content. */
std::string
tableRow(const std::vector<std::string> &cells, bool header = false)
{
    const char *tag = header ? "th" : "td";
    std::string row = "<tr>";
    for (const auto &cell : cells)
        row += std::string("<") + tag + ">" + cell + "</" + tag + ">";
    row += "</tr>\n";
    return row;
}

/** Provenance table from the report's meta block. */
std::string
manifestSection(const exp::RunReport &report)
{
    if (!report.hasMeta())
        return "<p class=\"muted\">No provenance block in the report "
               "(run the bench with a build that stamps "
               "obs::RunManifest).</p>\n";
    std::string html = "<table class=\"kv\">\n";
    for (const auto &field : report.meta())
        html += tableRow(
            {htmlEscape(field.first), htmlEscape(field.second)});
    html += "</table>\n";
    return html;
}

/** Sweep results: one row per point, params then metric columns. */
std::string
resultsSection(const exp::RunReport &report)
{
    const auto &records = report.records();
    if (records.empty())
        return "<p class=\"muted\">Report has no sweep points.</p>\n";
    std::vector<std::string> header;
    for (const auto &param : records.front().params)
        header.push_back(htmlEscape(param.first));
    std::vector<std::string> metric_names;
    for (const auto &record : records)
        for (const auto &metric : record.metrics.entries())
            if (std::find(metric_names.begin(), metric_names.end(),
                          metric.first) == metric_names.end())
                metric_names.push_back(metric.first);
    for (const auto &name : metric_names)
        header.push_back(htmlEscape(name));
    std::string html = "<table>\n" + tableRow(header, true);
    for (const auto &record : records) {
        std::vector<std::string> row;
        for (const auto &param : record.params)
            row.push_back(htmlEscape(param.second));
        for (const auto &name : metric_names)
            row.push_back(record.metrics.has(name)
                              ? fmtNum(record.metrics.get(name))
                              : std::string("&mdash;"));
        html += tableRow(row);
    }
    html += "</table>\n";
    return html;
}

/** Per-point wall-clock bars from the report's timing section. */
std::string
timingSection(const exp::RunReport &report)
{
    const auto &timing = report.timing();
    double max_ms = 0.0;
    for (const auto &point : timing.points)
        max_ms = std::max(max_ms, point.queueMs + point.wallMs);
    std::string html = "<p>Total sweep wall time: <b>" +
                       fmtNum(timing.totalWallMs) + " ms</b> across " +
                       std::to_string(timing.points.size()) +
                       " points.</p>\n";
    html += "<table>\n" + tableRow({"point", "worker", "queue [ms]",
                                    "wall [ms]", ""},
                                   true);
    for (const auto &point : timing.points) {
        const double span = max_ms > 0.0 ? max_ms : 1.0;
        const double queue_pct = point.queueMs / span * 100.0;
        const double wall_pct = point.wallMs / span * 100.0;
        const std::string bar =
            "<div class=\"bar\"><div class=\"queue\" style=\"width:" +
            fmtCoord(queue_pct) +
            "%\"></div><div class=\"wall\" style=\"width:" +
            fmtCoord(wall_pct) + "%\"></div></div>";
        html += tableRow({std::to_string(point.index),
                          std::to_string(point.worker),
                          fmtNum(point.queueMs), fmtNum(point.wallMs),
                          bar});
    }
    html += "</table>\n";
    return html;
}

/** Sparkline grid: one row per (point label, telemetry column). */
std::string
telemetrySection(const std::vector<obs::LabelledSeries> &series)
{
    std::string html =
        "<table>\n" +
        tableRow({"point", "column", "min", "max", "last", "samples",
                  "sparkline"},
                 true);
    for (const auto &labelled : series) {
        const auto &ts = labelled.series;
        std::vector<double> times(ts.rows());
        for (std::size_t i = 0; i < ts.rows(); ++i)
            times[i] = ts.time(i);
        for (std::size_t c = 0; c < ts.columns().size(); ++c) {
            std::vector<double> values(ts.rows());
            double lo = std::nan("");
            double hi = std::nan("");
            double last = std::nan("");
            for (std::size_t i = 0; i < ts.rows(); ++i) {
                values[i] = ts.row(i)[c];
                if (!std::isfinite(values[i]))
                    continue;
                lo = std::isnan(lo) ? values[i]
                                    : std::min(lo, values[i]);
                hi = std::isnan(hi) ? values[i]
                                    : std::max(hi, values[i]);
                last = values[i];
            }
            html += tableRow({htmlEscape(labelled.label),
                              htmlEscape(ts.columns()[c]), fmtNum(lo),
                              fmtNum(hi), fmtNum(last),
                              std::to_string(ts.rows()),
                              sparkline(times, values)});
        }
    }
    html += "</table>\n";
    return html;
}

/** Wall-clock profile table, heaviest self time first. */
std::string
profileSection(const obs::ProfileReport &profile)
{
    auto entries = profile.entries();
    std::sort(entries.begin(), entries.end(),
              [](const obs::ProfileEntry &a, const obs::ProfileEntry &b) {
                  return a.selfMs > b.selfMs;
              });
    double total_self = 0.0;
    for (const auto &entry : entries)
        total_self += entry.selfMs;
    std::string html =
        "<table>\n" + tableRow({"scope path", "count", "total [ms]",
                                "self [ms]", "self %"},
                               true);
    for (const auto &entry : entries) {
        const double share =
            total_self > 0.0 ? entry.selfMs / total_self * 100.0 : 0.0;
        html += tableRow({htmlEscape(entry.path),
                          std::to_string(entry.count),
                          fmtNum(entry.totalMs), fmtNum(entry.selfMs),
                          fmtNum(share)});
    }
    html += "</table>\n";
    return html;
}

/** Hot-path bench table from a BENCH_hotpaths.json document. */
std::string
benchSection(const util::Json &doc)
{
    std::string html =
        "<table>\n" + tableRow({"benchmark", "unit", "iterations",
                                "ns/op", "ops/s", "allocs/op"},
                               true);
    for (const auto &row : doc.at("benchmarks").array()) {
        html += tableRow(
            {htmlEscape(row.at("name").str()),
             htmlEscape(row.at("unit").str()),
             fmtNum(row.at("iterations").number()),
             fmtNum(row.at("ns_per_op").number()),
             fmtNum(row.at("ops_per_sec").number()),
             fmtNum(row.at("allocs_per_op").number())});
    }
    html += "</table>\n";
    return html;
}

const char *kUsage =
    "usage: imsim_report --report run.json [--telemetry run.csv]\n"
    "                    [--profile prof.json] [--bench bench.json]\n"
    "                    [--out report.html] [--title STRING]\n";

const char *kStyle =
    "body{font-family:system-ui,sans-serif;margin:2em auto;"
    "max-width:72em;padding:0 1em;color:#1b1b1b}"
    "h1{border-bottom:2px solid #2a6f97;padding-bottom:.2em}"
    "h2{margin-top:1.6em;color:#2a6f97}"
    "table{border-collapse:collapse;margin:.5em 0}"
    "th,td{border:1px solid #ccc;padding:.25em .6em;text-align:left;"
    "font-variant-numeric:tabular-nums}"
    "th{background:#eef4f8}"
    "table.kv td:first-child{font-weight:600;background:#f7f7f7}"
    ".muted{color:#777}"
    ".spark{vertical-align:middle;background:#fafcfe;"
    "border:1px solid #e5e5e5}"
    ".bar{display:flex;width:16em;height:.9em;background:#f0f0f0}"
    ".bar .queue{background:#c9b458}"
    ".bar .wall{background:#2a6f97}";

} // namespace

int
main(int argc, char **argv)
{
    const util::Cli cli(argc, argv);
    const std::string report_path = cli.get("--report");
    if (report_path.empty()) {
        std::cerr << kUsage;
        return 2;
    }
    const std::string telemetry_path = cli.get("--telemetry");
    const std::string profile_path = cli.get("--profile");
    const std::string bench_path = cli.get("--bench");
    const std::string out_path = cli.get("--out", "report.html");

    const exp::RunReport report =
        exp::RunReport::fromJson(slurp(report_path));
    const std::string title =
        cli.get("--title", report.name().empty() ? "ImmerSim run"
                                                 : report.name());

    std::string html = "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
                       "<meta charset=\"utf-8\">\n<title>" +
                       htmlEscape(title) +
                       "</title>\n<style>" + kStyle +
                       "</style>\n</head>\n<body>\n";
    html += "<h1>" + htmlEscape(title) + "</h1>\n";

    html += "<h2>Provenance</h2>\n" + manifestSection(report);
    html += "<h2>Results (" + std::to_string(report.records().size()) +
            " sweep points)</h2>\n" + resultsSection(report);
    if (report.hasTiming())
        html += "<h2>Wall-clock timing</h2>\n" + timingSection(report);

    if (!telemetry_path.empty()) {
        std::ifstream in(telemetry_path);
        util::fatalIf(!in,
                      "imsim_report: cannot read " + telemetry_path);
        const auto series = obs::parseTelemetryCsv(in);
        html += "<h2>Telemetry (" + std::to_string(series.size()) +
                " series)</h2>\n" + telemetrySection(series);
    }
    if (!profile_path.empty()) {
        const auto profile =
            obs::ProfileReport::fromJson(slurp(profile_path));
        html += "<h2>Wall-clock profile</h2>\n" +
                profileSection(profile);
    }
    if (!bench_path.empty()) {
        const util::Json doc = util::Json::parse(slurp(bench_path));
        html += "<h2>Hot-path benchmarks</h2>\n" + benchSection(doc);
    }

    html += "<p class=\"muted\">Generated by imsim_report from " +
            htmlEscape(report_path) + ".</p>\n</body>\n</html>\n";

    std::ofstream out(out_path);
    util::fatalIf(!out, "imsim_report: cannot write " + out_path);
    out << html;
    out.close();
    std::cout << "Wrote " << out_path << " (" << html.size()
              << " bytes)\n";
    return 0;
}
