/**
 * @file
 * Regenerates Table X (the three mixed oversubscription scenarios) and
 * Fig. 13: per-application improvement of the metric of interest when
 * 20 vcores of batch + latency VMs run on 16 pcores (20 %
 * oversubscription) under B2 and OC3, relative to a 20-pcore B2
 * baseline.
 */

#include <functional>
#include <iostream>
#include <map>

#include "hw/configs.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "vm/hypervisor.hh"
#include "workload/app.hh"

using namespace imsim;

namespace {

struct Scenario
{
    const char *name;
    std::vector<const char *> vms;
};

const std::vector<Scenario> &
scenarios()
{
    // Table X: each scenario totals 20 vcores, run on 16 pcores.
    static const std::vector<Scenario> list{
        {"Scenario 1",
         {"SQL", "BI", "SPECJBB", "TeraSort", "TeraSort"}},
        {"Scenario 2", {"SQL", "BI", "SPECJBB", "SPECJBB", "TeraSort"}},
        {"Scenario 3", {"SQL", "SQL", "BI", "SPECJBB", "TeraSort"}},
    };
    return list;
}

/** Per-VM metric values for a scenario at (pcores, clocks). */
std::vector<vm::VmResult>
run(const Scenario &scenario, int pcores, const hw::DomainClocks &clocks)
{
    vm::HypervisorSim sim(pcores, clocks, util::Rng(13));
    for (const char *name : scenario.vms) {
        const auto &app = workload::app(name);
        if (app.serviceMean > 0.0 &&
            (app.metric == workload::Metric::P95Latency ||
             app.metric == workload::Metric::P99Latency)) {
            sim.addLatencyVm(app, 0.52 * app.cores / app.serviceMean);
        } else {
            sim.addBatchVm(app);
        }
    }
    sim.run(20.0);
    sim.resetStats();
    sim.run(120.0);
    return sim.results();
}

/** Improvement of `test` over `base` on the app's metric (positive =
 *  better). */
double
improvement(const vm::VmResult &base, const vm::VmResult &test)
{
    if (base.metric == workload::Metric::P95Latency ||
        base.metric == workload::Metric::P99Latency) {
        const double b = base.metric == workload::Metric::P99Latency
                             ? base.p99Latency
                             : base.p95Latency;
        const double t = base.metric == workload::Metric::P99Latency
                             ? test.p99Latency
                             : test.p95Latency;
        return b / t - 1.0;
    }
    return test.throughput / base.throughput - 1.0;
}

} // namespace

int
main()
{
    util::printHeading(std::cout,
                       "Table X: oversubscription scenarios (20 vcores on "
                       "16 pcores)");
    util::TableWriter tx({"Scenario", "Workloads", "vcores/pcores"});
    for (const auto &scenario : scenarios()) {
        std::string mix;
        std::map<std::string, int> counts;
        for (const char *name : scenario.vms)
            ++counts[name];
        for (const auto &[name, n] : counts) {
            if (!mix.empty())
                mix += ", ";
            mix += std::to_string(n) + " x " + name;
        }
        tx.addRow({scenario.name, mix, "20/16"});
    }
    tx.print(std::cout);

    const auto &b2 = hw::cpuConfig("B2");
    const auto &oc3 = hw::cpuConfig("OC3");
    const hw::DomainClocks b2_clocks{b2.core, b2.llc, b2.memory};
    const hw::DomainClocks oc3_clocks{oc3.core, oc3.llc, oc3.memory};

    util::printHeading(
        std::cout,
        "Fig. 13: metric improvement vs 20-pcore B2 baseline (positive = "
        "better)");
    util::TableWriter table({"Scenario", "VM", "B2 oversubscribed",
                             "OC3 oversubscribed"});
    for (const auto &scenario : scenarios()) {
        const auto baseline = run(scenario, 20, b2_clocks);
        const auto b2_over = run(scenario, 16, b2_clocks);
        const auto oc3_over = run(scenario, 16, oc3_clocks);
        for (std::size_t i = 0; i < baseline.size(); ++i) {
            table.addRow(
                {i == 0 ? scenario.name : "", baseline[i].name,
                 util::fmtPercent(improvement(baseline[i], b2_over[i])),
                 util::fmtPercent(improvement(baseline[i], oc3_over[i]))});
        }
    }
    table.print(std::cout);
    std::cout << "Paper shape: plain 20% oversubscription (B2 column)"
                 " degrades every workload,\nlatency-sensitive SQL/"
                 "SPECJBB worst; with OC3 all workloads improve (up to"
                 "\n+17%), the weakest being TeraSort in Scenario 1.\n";
    return 0;
}
