/**
 * @file
 * Regenerates the Sec. IV power-management discussion (Takeaway 1) as an
 * experiment: a power-oversubscribed feed hosting diurnal racks under
 * three overclocking policies — never, always, and power-aware — plus
 * the wear-credit scheduler's five-year ledger (the paper's wear-out
 * counter direction).
 */

#include <iostream>
#include <memory>

#include "cluster/datacenter.hh"
#include "core/credit.hh"
#include "exp/sweep.hh"
#include "obs/obs.hh"
#include "reliability/lifetime.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace imsim;

namespace {

exp::RunReport
powerOversubscription(const util::Cli &cli,
                      const obs::RunManifest &manifest)
{
    util::printHeading(
        std::cout,
        "Sec. IV Takeaway 1: overclocking under power oversubscription");
    std::cout << "3 racks x 24 servers (one latency rack at higher"
                 " capping priority), 40 kW feed,\n30% oversubscribed,"
                 " 14 simulated days of diurnal load.\n\n";

    cluster::RackConfig batch;
    batch.priority = 1;
    cluster::RackConfig latency;
    latency.priority = 2;
    latency.overclockDemand = 0.7;
    cluster::DatacenterPowerSim sim({batch, batch, latency}, 40000.0,
                                    1.3, 1.2);
    // Intra-run sharding: bit-identical for any value (see
    // DatacenterPowerSim::setSimThreads), so the table never moves.
    sim.setSimThreads(cli.simThreads());

    util::TableWriter table({"Policy", "Feed util", "Capping time",
                             "OC demand served", "OC wasted (capped)",
                             "Delivered speedup", "Energy [MWh]"});
    struct Row
    {
        const char *name;
        cluster::OverclockPolicy policy;
    };
    const std::vector<Row> rows{
        {"Never overclock", cluster::OverclockPolicy::Never},
        {"Always overclock", cluster::OverclockPolicy::Always},
        {"Power-aware overclock", cluster::OverclockPolicy::PowerAware}};

    // The three 14-day policy runs are independent; fan them across the
    // experiment engine. Each run keeps the bench's historical seed
    // (2021) so the table matches the serial output exactly.
    const auto progress = exp::progressFromCli(cli, "power_oversub");
    exp::SweepRunner runner({cli.jobs(), 2021, progress.get()});
    std::vector<exp::Params> grid;
    for (const auto &row : rows)
        grid.push_back(exp::Params{{"policy", row.name}});

    // `--blackbox FILE`: per-point flight-recorder bundles ticked by
    // the minute loop. Each point then runs a private sim instance
    // (identically configured) so parallel jobs never share observer
    // state; observers are pure reads, so the table and report are
    // byte-identical to the unobserved shared-sim path.
    std::vector<std::unique_ptr<obs::FleetBlackbox>> boxes;
    if (obs::blackboxRequested(cli)) {
        obs::FleetAggregator::Config agg_cfg;
        agg_cfg.record = false;
        agg_cfg.cumulative = false;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            boxes.push_back(std::make_unique<obs::FleetBlackbox>(
                agg_cfg, obs::FlightRecorder::Config{},
                /*fire_power_w=*/0.98 * 40000.0,
                /*clear_power_w=*/0.95 * 40000.0));
        }
    }

    exp::RunReport report = runner.run(
        "power_oversub", grid,
        [&](const exp::Params &, std::size_t i, util::Rng &,
            exp::MetricsRegistry &metrics) {
            util::Rng rng(2021);
            const auto outcome = [&] {
                if (boxes.empty())
                    return sim.run(rows[i].policy, rng, 14.0);
                cluster::DatacenterPowerSim local(
                    {batch, batch, latency}, 40000.0, 1.3, 1.2);
                local.setSimThreads(cli.simThreads());
                local.attachObservability(&boxes[i]->aggregator,
                                          &boxes[i]->watchdog,
                                          &boxes[i]->recorder);
                return local.run(rows[i].policy, rng, 14.0);
            }();
            metrics.scalar("feed_util", outcome.meanFeedUtilization);
            metrics.scalar("capping_share", outcome.cappingMinutesShare);
            metrics.scalar("oc_served_share", outcome.overclockShare);
            metrics.scalar("oc_capped_share",
                           outcome.cappedOverclockShare);
            metrics.scalar("speedup", outcome.speedupDelivered);
            metrics.scalar("energy_mwh", outcome.energyMwh);
        });
    report.setMeta(manifest.entries());
    for (const auto &record : report.records()) {
        const auto &m = record.metrics;
        table.addRow(
            {record.params[0].second,
             util::fmt(m.get("feed_util") * 100.0, 1) + "%",
             util::fmt(m.get("capping_share") * 100.0, 1) + "%",
             util::fmt(m.get("oc_served_share") * 100.0, 1) + "%",
             util::fmt(m.get("oc_capped_share") * 100.0, 1) + "%",
             util::fmt(m.get("speedup"), 3),
             util::fmt(m.get("energy_mwh"), 2)});
    }
    table.print(std::cout);
    std::cout << "Paper: 'Overclocking in oversubscribed datacenters"
                 " increases the chance of\nhitting limits and triggering"
                 " power capping ... might offset any performance\ngains'"
                 " — the always-overclock row pays capping minutes for"
                 " speedup it then\nloses; the power-aware row overclocks"
                 " in the diurnal valleys instead.\n";
    if (!boxes.empty()) {
        std::vector<std::pair<std::string, const obs::FlightRecorder *>>
            blackbox_points;
        for (std::size_t i = 0; i < rows.size(); ++i)
            blackbox_points.emplace_back(rows[i].name,
                                         &boxes[i]->recorder);
        obs::maybeWriteBlackbox(cli, blackbox_points, manifest,
                                std::cout);
    }
    return report;
}

void
creditLedger()
{
    util::printHeading(
        std::cout,
        "Sec. IV extension: five-year wear-credit ledger (HFE-7000)");
    const reliability::LifetimeModel model;
    reliability::WearTracker tracker(model, 5.0);
    core::CreditScheduler scheduler(tracker);

    const reliability::StressCondition nominal{0.90, 51.0, 35.0, 1.0, 1.0};
    const reliability::StressCondition green{0.98, 60.0, 35.0, 1.23, 1.0};
    const reliability::StressCondition red{1.01, 64.0, 35.0, 1.30, 1.0};

    util::Rng rng(5);
    const Years step = 6.0 / units::kHoursPerYear;
    double green_h = 0.0;
    double red_h = 0.0;
    util::TableWriter table({"Year", "Credit banked", "Wear consumed",
                             "Green-band hours", "Red-band hours"});
    for (int year = 1; year <= 5; ++year) {
        for (int slot = 0; slot < 1461; ++slot) {
            const bool demand = rng.bernoulli(0.4);
            const auto decision =
                scheduler.decide(nominal, green, red, demand, step);
            const auto &applied = decision.redBand ? red
                                  : decision.overclock ? green
                                                       : nominal;
            if (decision.redBand)
                red_h += 6.0;
            else if (decision.overclock)
                green_h += 6.0;
            scheduler.commit(applied, step);
        }
        table.addRow({util::fmt(year, 0),
                      util::fmtPercent(tracker.credit()),
                      util::fmtPercent(tracker.consumed()),
                      util::fmt(green_h, 0), util::fmt(red_h, 0)});
    }
    table.print(std::cout);
    std::cout << "The scheduler spends exactly the credit the"
                 " moderately-utilized server banks:\nred-band hours"
                 " (beyond +23%) appear once a reserve exists, and the"
                 " part retires\nat its design budget instead of under"
                 " it.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Flags: --jobs N (default hardware concurrency), --sim-threads N
    // (threads inside each run; results are bit-identical for any
    // value), --report FILE, --blackbox FILE (per-policy flight
    // recorders), --progress [FILE], --profile [FILE].
    const util::Cli cli(argc, argv);
    obs::maybeEnableProfiler(cli);
    const obs::RunManifest manifest =
        obs::RunManifest::capture(cli, 2021, cli.jobs());
    const exp::RunReport report = powerOversubscription(cli, manifest);
    creditLedger();
    exp::maybeWriteReport(cli, report, std::cout);
    obs::maybeWriteProfile(cli, manifest, std::cerr);
    return 0;
}
