/**
 * @file
 * Regenerates the configuration tables the evaluation sweeps run over:
 * Table VII (CPU frequency configurations B1-B4, OC1-OC3), Table VIII
 * (GPU configurations Base, OCG1-OCG3), and Table IX (the application
 * catalog with each app's metric of interest).
 */

#include <iostream>

#include "hw/configs.hh"
#include "workload/app.hh"
#include "workload/gpu_training.hh"
#include "util/table.hh"

using namespace imsim;

int
main()
{
    util::printHeading(std::cout,
                       "Table VII: CPU frequency configurations");
    util::TableWriter cpu({"Config", "Core [GHz]", "Voltage offset [mV]",
                           "Turbo", "LLC [GHz]", "Memory [GHz]"});
    for (const auto &config : hw::cpuConfigCatalog()) {
        cpu.addRow({config.name, util::fmt(config.core, 1),
                    util::fmt(config.voltageOffsetMv, 0),
                    config.isOverclock() ? "N/A"
                                         : (config.turboEnabled ? "yes"
                                                                : "no"),
                    util::fmt(config.llc, 1), util::fmt(config.memory, 1)});
    }
    cpu.print(std::cout);

    util::printHeading(std::cout, "Table VIII: GPU configurations");
    util::TableWriter gpu({"Config", "Power [W]", "Base [GHz]",
                           "Turbo [GHz]", "Memory [GHz]",
                           "Voltage offset [mV]"});
    for (const auto &config : hw::gpuConfigCatalog()) {
        gpu.addRow({config.name, util::fmt(config.powerLimit, 0),
                    util::fmt(config.base, 2), util::fmt(config.turbo, 3),
                    util::fmt(config.memory, 1),
                    util::fmt(config.voltageOffsetMv, 0)});
    }
    gpu.print(std::cout);

    util::printHeading(std::cout, "Table IX: application catalog");
    util::TableWriter apps({"Application", "#Cores", "Source", "Metric",
                            "Core/LLC/Mem/IO split"});
    for (const auto &app : workload::appCatalog()) {
        apps.addRow({app.name, util::fmt(app.cores, 0),
                     app.inHouse ? "in-house" : "public",
                     workload::metricName(app.metric),
                     util::fmt(app.work.core, 2) + "/" +
                         util::fmt(app.work.llc, 2) + "/" +
                         util::fmt(app.work.mem, 2) + "/" +
                         util::fmt(app.work.io, 2)});
    }
    apps.addRow({"VGG", "16", "public", "Seconds",
                 "GPU training (6 variants, Fig. 11)"});
    apps.addRow({"STREAM", "16", "public", "MB/S",
                 "memory bandwidth kernels (Fig. 10)"});
    apps.print(std::cout);
    std::cout << "The Core/LLC/Mem/IO split is this repo's calibrated"
                 " bottleneck decomposition\n(the substitution for the"
                 " closed-source binaries; see DESIGN.md).\n";
    return 0;
}
